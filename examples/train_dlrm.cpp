/**
 * @file
 * Full-pipeline scenario: raw logs -> columnar storage -> in-storage
 * preprocessing -> actual DLRM training with SGD. A scaled-down version
 * of Figure 1's end-to-end training pipeline that really learns: the
 * loss printed at the end has dropped from its initial value.
 *
 * Build & run:  ./build/examples/train_dlrm [steps]
 */
#include <cstdio>
#include <cstdlib>

#include "core/managers.h"
#include "dlrm/dlrm.h"
#include "dlrm/metrics.h"
#include "ops/preprocessor.h"

using namespace presto;

int
main(int argc, char** argv)
{
    size_t steps = 24;
    if (argc > 1)
        steps = static_cast<size_t>(std::atoi(argv[1]));
    if (steps < 2) {
        std::fprintf(stderr, "usage: %s [steps >= 2]\n", argv[0]);
        return 1;
    }

    // A shrunk RM1 so a laptop-scale run finishes in seconds.
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;

    // Storage + preprocessing (PreSto mode: preprocessing runs at the
    // storage node, raw bytes never cross the network).
    RawDataGenerator generator(cfg);
    PartitionStore store(generator);
    PreprocessManager manager(cfg, store, PreprocessMode::kPreSto,
                              /*num_workers=*/2);
    manager.start(steps);

    // Model: Table I architecture shrunk to dim 16 / 2k-row tables.
    DlrmParams params = DlrmParams::fromRmConfig(cfg, 16, 2048);
    params.learning_rate = 0.08f;
    DlrmModel model(params);
    std::printf("DLRM: %zu tables x %zu rows x dim %zu, %zu parameters\n",
                params.num_tables, params.embedding_rows,
                params.embedding_dim, model.parameterCount());

    float first_loss = 0.0f, last_loss = 0.0f;
    for (size_t step = 0; step < steps; ++step) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        const float loss = model.trainStep(*mb);
        if (step == 0)
            first_loss = loss;
        last_loss = loss;
        if (step % 4 == 0 || step + 1 == steps) {
            std::printf("step %3zu  batch %zu rows  BCE loss %.4f\n", step,
                        mb->batch_size, loss);
        }
    }

    const auto& stats = manager.stats();
    std::printf("\npreprocessed %zu batches in-storage (%.1f MiB P2P, "
                "0 raw bytes over the network)\n",
                stats.batches_delivered,
                static_cast<double>(stats.raw_bytes_p2p) / (1 << 20));
    std::printf("loss: %.4f -> %.4f %s\n", first_loss, last_loss,
                last_loss < first_loss ? "(learning)" : "(NOT learning!)");

    // Held-out evaluation on an unseen partition.
    const MiniBatch held_out = Preprocessor(cfg).preprocess(
        generator.generatePartition(steps + 1000));
    const Matrix logits = model.forward(held_out);
    std::printf("held-out: BCE %.4f, ROC-AUC %.3f, accuracy %.3f\n",
                model.evaluate(held_out),
                rocAuc(logits.data(), held_out.labels),
                accuracyAtZeroLogit(logits.data(), held_out.labels));
    return last_loss < first_loss ? 0 : 1;
}
