/**
 * @file
 * Feature-engineering scenario: the reason online preprocessing exists.
 *
 * An ML engineer iterates on *which* features a model consumes and *how*
 * they are transformed. With offline preprocessing every iteration would
 * re-materialize the whole corpus; with PreSto the raw columnar data
 * stays put and each iteration is just a new TransformPlan executed
 * in-storage. This example runs three plan iterations over the same raw
 * partition and also demonstrates the ISP datapath emulator producing
 * bit-identical tensors to the CPU reference.
 *
 * Build & run:  ./build/examples/feature_engineering
 */
#include <cstdio>

#include "columnar/columnar_file.h"
#include "common/crc32.h"
#include "core/isp_emulator.h"
#include "datagen/generator.h"
#include "ops/plan.h"

using namespace presto;

namespace {

uint64_t
tensorChecksum(const MiniBatch& mb)
{
    uint32_t crc = crc32c(mb.dense.data(), mb.dense.size() * sizeof(float));
    for (const auto& jag : mb.sparse)
        crc = crc32c(jag.values.data(), jag.values.size() * sizeof(int64_t),
                     crc);
    return crc;
}

void
describe(const char* name, const MiniBatch& mb)
{
    std::printf("  %-22s -> %zu dense features, %zu tables, %zu sparse "
                "indices (checksum %08llx)\n",
                name, mb.num_dense, mb.sparse.size(),
                mb.totalSparseValues(),
                static_cast<unsigned long long>(tensorChecksum(mb)));
}

}  // namespace

int
main()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 1024;
    RawDataGenerator generator(cfg);
    const RowBatch raw = generator.generatePartition(0);
    const Schema& schema = raw.schema();
    std::printf("raw partition: %zu rows, %zu logged features (stored "
                "once)\n\n", raw.numRows(), raw.numColumns());

    std::printf("iteration 1: the standard Table I plan\n");
    PlanExecutor standard(TransformPlan::standard(cfg), schema);
    describe("standard", standard.run(raw));

    std::printf("iteration 2: lean model - 4 dense + 6 sparse features\n");
    {
        TransformPlan plan;
        PlanOutput label;
        label.kind = PlanOutput::Kind::kLabel;
        label.output_name = label.source_feature = "label";
        plan.add(label);
        for (int f = 0; f < 4; ++f) {
            PlanOutput out;
            out.kind = PlanOutput::Kind::kDense;
            out.output_name = out.source_feature =
                "dense_" + std::to_string(f);
            out.dense_ops = {DenseOp::fillMissing(0.0f),
                             DenseOp::clamp(0.0f, 1e4f), DenseOp::log()};
            plan.add(out);
        }
        for (int f = 0; f < 6; ++f) {
            PlanOutput out;
            out.kind = PlanOutput::Kind::kSparse;
            out.output_name = out.source_feature =
                "sparse_" + std::to_string(f);
            out.sparse_ops = {SparseOp::sigridHash(1000 + f, 100000)};
            plan.add(out);
        }
        PlanExecutor executor(plan, schema);
        describe("lean", executor.run(raw));
    }

    std::printf("iteration 3: extra generated features, finer buckets\n");
    {
        TransformPlan plan = TransformPlan::standard(cfg);
        for (int g = 0; g < 4; ++g) {
            PlanOutput out;
            out.kind = PlanOutput::Kind::kGenerated;
            out.output_name = "xgen_" + std::to_string(g);
            out.source_feature = "dense_" + std::to_string(5 + g);
            out.dense_ops = {DenseOp::fillMissing(0.0f)};
            out.bucket_boundaries = 8192;
            out.sparse_ops = {SparseOp::sigridHash(7000 + g, 500000)};
            plan.add(out);
        }
        PlanExecutor executor(plan, schema);
        describe("extra-generated", executor.run(raw));
    }

    std::printf("\nISP datapath emulation vs CPU reference (standard "
                "plan):\n");
    const auto encoded = ColumnarFileWriter().write(raw, 0);
    IspEmulator emulator(cfg);
    auto processed = emulator.process(encoded);
    if (!processed.ok()) {
        std::printf("  ISP decode failed: %s\n",
                    processed.status().toString().c_str());
        return 1;
    }
    const MiniBatch on_device = std::move(processed).value();
    const MiniBatch on_cpu = standard.run(raw);
    describe("FPGA datapath", on_device);
    describe("CPU reference", on_cpu);
    const bool identical = tensorChecksum(on_device) ==
                           tensorChecksum(on_cpu);
    std::printf("  identical tensors: %s; units engaged: %u, buffer "
                "swaps: %llu, P2P: %llu bytes\n",
                identical ? "yes" : "NO",
                emulator.counters().feature_units_used,
                static_cast<unsigned long long>(
                    emulator.counters().buffer_swaps),
                static_cast<unsigned long long>(
                    emulator.counters().p2p_bytes));
    return identical ? 0 : 1;
}
