/**
 * @file
 * Quickstart: the smallest end-to-end use of the PreSto library.
 *
 * Generates a raw Criteo-like partition, stores it as a columnar PSF
 * file, preprocesses it through the Bucketize/SigridHash/Log pipeline,
 * and prints the resulting train-ready tensors — everything a training
 * loop would consume.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "columnar/columnar_file.h"
#include "common/units.h"
#include "datagen/generator.h"
#include "ops/preprocessor.h"

using namespace presto;

int
main()
{
    // 1. Pick a workload: RM1 is the public Criteo-shaped configuration.
    RmConfig config = rmConfig(1);
    config.batch_size = 1024;  // keep the demo instant

    // 2. Synthesize one raw partition (what the data-generation +
    //    storage stages of the training pipeline would have logged).
    RawDataGenerator generator(config);
    RowBatch raw = generator.generatePartition(/*partition_index=*/0);
    std::printf("raw partition: %zu rows x %zu features (%s in memory)\n",
                raw.numRows(), raw.numColumns(),
                formatBytes(static_cast<double>(raw.byteSize())).c_str());

    // 3. Store it as a columnar PSF file and read back a projection —
    //    the Extract step. Columnar layout means we touch only the
    //    features we ask for.
    ColumnarFileWriter writer;
    const std::vector<uint8_t> encoded = writer.write(raw, 0);
    ColumnarFileReader reader;
    if (Status st = reader.open(encoded); !st.ok()) {
        std::fprintf(stderr, "open failed: %s\n", st.toString().c_str());
        return 1;
    }
    auto projected = reader.readColumns({"label", "dense_0", "sparse_0"});
    std::printf("columnar file: %s encoded; 3-column projection touched "
                "%s (%.1f%% of the file)\n",
                formatBytes(static_cast<double>(encoded.size())).c_str(),
                formatBytes(static_cast<double>(reader.bytesTouched()))
                    .c_str(),
                100.0 * static_cast<double>(reader.bytesTouched()) /
                    static_cast<double>(encoded.size()));

    // 4. Transform: the full preprocessing plan (FillMissing, Bucketize,
    //    Log, SigridHash, mini-batch conversion).
    Preprocessor preprocessor(config);
    MiniBatch mb = preprocessor.preprocess(raw);
    std::printf("train-ready mini-batch: %zu rows, %zu dense features, "
                "%zu embedding tables, %zu sparse indices (%s)\n",
                mb.batch_size, mb.num_dense, mb.sparse.size(),
                mb.totalSparseValues(),
                formatBytes(static_cast<double>(mb.byteSize())).c_str());

    // 5. Peek at the data a GPU trainer would see.
    std::printf("row 0: label=%.0f dense[0..3] = %.3f %.3f %.3f %.3f\n",
                mb.labels[0], mb.dense[0], mb.dense[1], mb.dense[2],
                mb.dense[3]);
    const auto& table0 = mb.sparse[0];
    std::printf("row 0: table '%s' indices:", table0.feature_name.c_str());
    for (uint32_t i = 0; i < table0.lengths[0]; ++i)
        std::printf(" %lld", static_cast<long long>(table0.values[i]));
    std::printf("\n");

    const auto& generated = mb.sparse[config.num_sparse];
    std::printf("row 0: generated table '%s' bucket-hash index: %lld\n",
                generated.feature_name.c_str(),
                static_cast<long long>(generated.values[0]));
    return 0;
}
