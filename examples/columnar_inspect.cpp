/**
 * @file
 * Columnar storage scenario: write a partition to disk as a PSF file,
 * inspect its layout, demonstrate selective-column Extract (the reason
 * the storage stage uses a columnar format), and show integrity checking
 * catching corruption.
 *
 * Build & run:  ./build/examples/columnar_inspect [path]
 */
#include <cstdio>
#include <string>

#include "columnar/columnar_file.h"
#include "common/units.h"
#include "datagen/generator.h"

using namespace presto;

int
main(int argc, char** argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/presto_partition.psf";

    RmConfig config = rmConfig(1);
    config.batch_size = 2048;
    RawDataGenerator generator(config);
    const RowBatch raw = generator.generatePartition(7);

    // Write the partition to disk.
    const auto encoded = ColumnarFileWriter().write(raw, 7);
    if (Status st = saveToFile(path, encoded); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    std::printf("wrote %s (%s, %zu rows)\n\n", path.c_str(),
                formatBytes(static_cast<double>(encoded.size())).c_str(),
                raw.numRows());

    // Re-open and dump the column directory.
    auto bytes = loadFromFile(path);
    ColumnarFileReader reader;
    if (Status st = reader.open(*bytes); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    std::printf("%-12s %-7s %10s %10s\n", "column", "kind", "values",
                "bytes");
    size_t shown = 0;
    for (const auto& col : reader.footer().columns) {
        if (shown++ == 8 && reader.footer().columns.size() > 10) {
            std::printf("  ... %zu more columns ...\n",
                        reader.footer().columns.size() - 8);
            break;
        }
        uint64_t values = 0;
        for (const auto& s : col.streams)
            values = std::max(values, s.value_count);
        std::printf("%-12s %-7s %10llu %10llu\n", col.name.c_str(),
                    featureKindName(col.kind),
                    static_cast<unsigned long long>(values),
                    static_cast<unsigned long long>(col.byteSize()));
    }

    // Selective Extract: fetch two features for every user; row-oriented
    // storage would have read the whole file.
    auto projection = reader.readColumns({"dense_3", "sparse_11"});
    if (!projection.ok()) {
        std::fprintf(stderr, "%s\n", projection.status().toString().c_str());
        return 1;
    }
    std::printf("\nprojection of 2/%zu columns touched %s of %s (%.1f%%) "
                "-- no overfetch\n",
                reader.footer().columns.size(),
                formatBytes(static_cast<double>(reader.bytesTouched()))
                    .c_str(),
                formatBytes(static_cast<double>(bytes->size())).c_str(),
                100.0 * static_cast<double>(reader.bytesTouched()) /
                    static_cast<double>(bytes->size()));

    // Integrity: flip one byte in the middle of the data region and show
    // the per-page CRC catching it.
    auto corrupted = *bytes;
    corrupted[corrupted.size() / 2] ^= 0x40;
    ColumnarFileReader bad_reader;
    Status open_st = bad_reader.open(corrupted);
    Status read_st =
        open_st.ok() ? bad_reader.readAll().status() : open_st;
    std::printf("\nafter flipping one byte: %s\n",
                read_st.toString().c_str());
    return read_st.ok() ? 1 : 0;  // corruption *must* be detected
}
