/**
 * @file
 * Capacity-planning scenario: given a fleet of GPU training nodes and a
 * workload mix, size the preprocessing tier three ways (disaggregated
 * CPUs, disaggregated U280s, in-storage SmartSSDs) and compare power and
 * 3-year TCO — the decision the paper's TCO analysis informs.
 *
 * Build & run:  ./build/examples/provisioning_planner [num_gpu_nodes]
 */
#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/provisioner.h"
#include "models/calibration.h"

using namespace presto;

int
main(int argc, char** argv)
{
    int gpu_nodes = 16;
    if (argc > 1)
        gpu_nodes = std::atoi(argv[1]);
    if (gpu_nodes < 1) {
        std::fprintf(stderr, "usage: %s [num_gpu_nodes >= 1]\n", argv[0]);
        return 1;
    }
    const int gpus = gpu_nodes * cal::kGpusPerTrainingNode;

    // A typical mix: many concurrent jobs across the workload spectrum,
    // weighted toward the production-scale models.
    const int job_share[5] = {1, 2, 2, 2, 3};

    std::printf("Provisioning a preprocessing tier for %d GPU nodes "
                "(%d A100s), workload mix RM1..RM5 = 1:2:2:2:3\n\n",
                gpu_nodes, gpus);

    TablePrinter table({"System", "Workers", "Power", "CapEx", "3yr OpEx",
                        "3yr TCO", "TCO vs PreSto"});

    double total_cpu_cost = 0, total_u280_cost = 0, total_ssd_cost = 0;
    int cpu_workers = 0, u280_workers = 0, ssd_workers = 0;
    double cpu_watts = 0, u280_watts = 0, ssd_watts = 0;

    int total_share = 0;
    for (int s : job_share)
        total_share += s;

    for (int rm = 1; rm <= 5; ++rm) {
        const auto& cfg = rmConfig(rm);
        const int rm_gpus =
            std::max(1, gpus * job_share[rm - 1] / total_share);
        Provisioner prov(cfg);

        const Provision c = prov.provisionCpu(rm_gpus);
        cpu_workers += c.workers;
        cpu_watts += c.deployment.power_watts;
        total_cpu_cost += c.deployment.totalCostDollars();

        const Provision u = prov.provisionIsp(rm_gpus,
                                              IspParams::prestoU280());
        u280_workers += u.workers;
        u280_watts += u.deployment.power_watts;
        total_u280_cost += u.deployment.totalCostDollars();

        const Provision s = prov.provisionIsp(rm_gpus,
                                              IspParams::smartSsd());
        ssd_workers += s.workers;
        ssd_watts += s.deployment.power_watts;
        total_ssd_cost += s.deployment.totalCostDollars();
    }

    auto addRow = [&](const char* name, int workers, double watts,
                      double capex_less_opex_total, double opex_share) {
        const double capex = capex_less_opex_total - opex_share;
        table.addRow({name, std::to_string(workers),
                      formatDouble(watts / 1000.0, 1) + " kW",
                      "$" + formatDouble(capex, 0),
                      "$" + formatDouble(opex_share, 0),
                      "$" + formatDouble(capex_less_opex_total, 0),
                      formatDouble(capex_less_opex_total / total_ssd_cost,
                                   2) +
                          "x"});
    };

    auto opex = [](double watts) {
        return watts / 1000.0 * (cal::kDurationSec / kHour) *
               cal::kElectricityPerKwh;
    };

    addRow("Disagg CPU pool", cpu_workers, cpu_watts, total_cpu_cost,
           opex(cpu_watts));
    addRow("PreSto (U280)", u280_workers, u280_watts, total_u280_cost,
           opex(u280_watts));
    addRow("PreSto (SmartSSD)", ssd_workers, ssd_watts, total_ssd_cost,
           opex(ssd_watts));
    table.print();

    std::printf("\nSmartSSD tier saves $%.0f (%.1fx) over the CPU pool "
                "across the 3-year deployment.\n",
                total_cpu_cost - total_ssd_cost,
                total_cpu_cost / total_ssd_cost);
    return 0;
}
