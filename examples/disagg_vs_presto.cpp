/**
 * @file
 * End-to-end training run, Disagg vs PreSto, on the *functional* path:
 * real partitions are encoded, decoded, transformed, and delivered
 * through the train manager's input queue while the managers account for
 * every byte that crosses the datacenter network vs the SmartSSD P2P
 * path. Finishes with the calibrated large-scale comparison.
 *
 * Build & run:  ./build/examples/disagg_vs_presto
 */
#include <cstdio>

#include "common/units.h"
#include "core/managers.h"
#include "core/provisioner.h"
#include "models/calibration.h"

using namespace presto;

namespace {

void
runFunctional(const RmConfig& config, PreprocessMode mode)
{
    RawDataGenerator generator(config);
    PartitionStore store(generator);
    TrainManager trainer(config, store, mode);

    const size_t batches = 6;
    const RunStats stats = trainer.train(batches);

    const char* label =
        mode == PreprocessMode::kDisaggCpu ? "Disagg" : "PreSto";
    std::printf("%-7s delivered %zu batches | raw over network: %-10s "
                "raw via P2P: %-10s tensors out: %-10s | checksum %016llx\n",
                label, stats.batches_delivered,
                formatBytes(static_cast<double>(
                                stats.raw_bytes_over_network))
                    .c_str(),
                formatBytes(static_cast<double>(stats.raw_bytes_p2p))
                    .c_str(),
                formatBytes(static_cast<double>(
                                stats.tensor_bytes_over_network))
                    .c_str(),
                static_cast<unsigned long long>(
                    trainer.deliveredChecksum()));
}

}  // namespace

int
main()
{
    RmConfig config = rmConfig(2);
    config.batch_size = 512;  // functional demo stays fast on one host

    std::printf("== Functional end-to-end run (%s, %zu-row batches) ==\n",
                config.name.c_str(), config.batch_size);
    runFunctional(config, PreprocessMode::kDisaggCpu);
    runFunctional(config, PreprocessMode::kPreSto);
    std::printf("-> identical checksums: the ISP path changes *where* "
                "preprocessing runs, never the tensors produced.\n\n");

    std::printf("== Calibrated large-scale comparison (8xA100 node) ==\n");
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision cpus = prov.provisionCpu(cal::kGpusPerTrainingNode);
        const Provision isps =
            prov.provisionIsp(cal::kGpusPerTrainingNode,
                              IspParams::smartSsd());
        std::printf("%s: demand %.1f batch/s -> Disagg %d cores (%.0f W, "
                    "$%.0f) vs PreSto %d SmartSSDs (%.0f W, $%.0f)\n",
                    cfg.name.c_str(), cpus.demand_batches_per_sec,
                    cpus.workers, cpus.deployment.power_watts,
                    cpus.deployment.totalCostDollars(), isps.workers,
                    isps.deployment.power_watts,
                    isps.deployment.totalCostDollars());
    }
    return 0;
}
