/**
 * @file
 * SegmentStore: the persistent home of PSF partitions.
 *
 * A store is one directory holding
 *
 *   JOURNAL            append-only lifecycle log (see journal.h)
 *   seg-XXXXXXXX.psf   immutable segment files, one PSF partition each
 *
 * Write protocol for one segment (numbers are durable-op boundaries,
 * i.e. crash windows the fault tests sweep):
 *
 *   1. append kSegmentWriting{id, partition, file}    (intent)
 *   2. publish the segment file crash-atomically
 *   3. append kSegmentSealed{full meta + page plans}  (COMMIT POINT)
 *
 * A crash before 3 leaves at most an orphan file (or a torn temp),
 * which recovery deletes; the segment never existed. A crash after 3
 * leaves a fully committed segment. There is no window in which a
 * partially-written segment is visible to readers.
 *
 * Recovery (open()) replays the journal, drops its torn tail, derives
 * every segment's state from the intact record prefix, deletes orphans
 * and stray temp files, verifies each live segment file's size + whole-
 * file CRC against its sealed meta (failures => quarantined, reported,
 * never served), and rebuilds the in-memory manifest. Recovery never
 * writes the journal, so recovering twice — or crashing mid-recovery
 * and recovering again — is idempotent by construction.
 *
 * Reads go through the IoRing: a cold read preads the file tail
 * (footer) plus each planned page frame through the ring's device
 * workers, with the ring's retry/backoff and the per-page CRC re-read
 * semantics intact. A read that still decodes corrupt quarantines the
 * segment (journaled) instead of serving bad batches.
 *
 * Maintenance runs as bounded ticks — a CRC scrub of a few pages per
 * tick plus at most one compaction attempt — submitted to a shared
 * ThreadPool, one tick in flight at a time, so background work never
 * queues up behind itself and foreground fetch latency stays bounded.
 */
#ifndef PRESTO_STORE_SEGMENT_STORE_H_
#define PRESTO_STORE_SEGMENT_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "io/async_reader.h"
#include "store/journal.h"
#include "store/store_fs.h"
#include "tabular/row_batch.h"

namespace presto {

class ThreadPool;

/** Lifecycle state of one segment (derived from the journal). */
enum class SegmentState : uint8_t {
    kSealed,       ///< live, serving reads
    kCompacted,    ///< superseded by a compaction rewrite, file intact
    kRetired,      ///< file deleted
    kQuarantined,  ///< failed a CRC check; never served
};

/** Human-readable state name. */
const char* segmentStateName(SegmentState state);

/** Manifest entry for one segment. */
struct SegmentInfo {
    SegmentMeta meta;
    SegmentState state = SegmentState::kSealed;
    std::string quarantine_reason;   ///< set when kQuarantined
    uint64_t compacted_into = 0;     ///< replacement id when kCompacted
};

/** What recovery found and decided while opening a store. */
struct RecoveryReport {
    uint64_t records_replayed = 0;
    uint64_t torn_tail_bytes = 0;     ///< journal bytes dropped as torn
    std::string torn_reason;          ///< why the replay stopped early
    std::vector<std::string> orphans_removed;  ///< unsealed/temp files
    std::vector<uint64_t> quarantined;  ///< segments failing size/CRC
    uint64_t live_segments = 0;

    /** One line per decision, for the CLI and logs. */
    std::vector<std::string> decisions() const;
};

/** Scrub work accounting (see scrubSome / setScrubPriority). */
struct ScrubCounters {
    uint64_t pages_total = 0;        ///< page frames CRC-verified
    uint64_t pages_prioritized = 0;  ///< of those, on priority>0 segments
};

/** Store configuration. */
struct SegmentStoreOptions {
    std::string directory;  ///< must exist and be writable
    /** PSF writer knobs for new segments. */
    WriterOptions writer;
    /** Crash/fault oracle (not owned; may be nullptr). */
    const FaultInjector* faults = nullptr;
    /** Pages CRC-scrubbed per maintenance tick (the throttle). */
    size_t scrub_pages_per_tick = 32;
    /** Rewrite the journal once it exceeds this many bytes. */
    uint64_t checkpoint_journal_bytes = 1 << 20;
};

/**
 * Thread-safe: appends, reads, and maintenance ticks may come from
 * different threads. One store instance owns its directory.
 */
class SegmentStore
{
  public:
    /**
     * Open (and recover) the store in @p options.directory. A missing
     * journal means an empty store and one is created; anything else
     * runs recovery as described above. @p report (optional) receives
     * what recovery found.
     */
    static StatusOr<std::unique_ptr<SegmentStore>> open(
        SegmentStoreOptions options, RecoveryReport* report = nullptr);

    /** Encode @p batch as PSF and commit it as a new segment. */
    StatusOr<uint64_t> appendPartition(const RowBatch& batch,
                                       uint64_t partition_id);

    /** Commit already-encoded PSF bytes as a new segment. */
    StatusOr<uint64_t> appendEncoded(std::span<const uint8_t> psf,
                                     uint64_t partition_id);

    /**
     * The live (sealed or compacted-but-present) segment holding
     * @p partition_id; the newest wins when compaction left several.
     * kNotFound when the partition is absent or quarantined.
     */
    StatusOr<SegmentInfo> segmentForPartition(uint64_t partition_id) const;

    /**
     * Cold read: stream the segment's pages from storage through
     * @p reader's IoRing (pread per page frame) and decode into
     * @p out. Decode-level corruption quarantines the segment.
     */
    Status readSegment(uint64_t segment_id, AsyncPartitionReader& reader,
                       RowBatch& out);

    /** Whole-file blocking read + decode (no ring); same quarantine
        behavior. */
    Status readSegmentBlocking(uint64_t segment_id, RowBatch& out);

    /** Mark a segment retired and delete its file. */
    Status retireSegment(uint64_t segment_id);

    /**
     * Compact one segment: re-encode the best candidate (largest live
     * segment whose re-encoded form is strictly smaller) into a new
     * sealed segment, mark the old one compacted, then retire it.
     * @return the new segment id, or 0 when nothing was worth
     * compacting.
     */
    StatusOr<uint64_t> compactOnce();

    /**
     * CRC-scrub up to @p max_pages page frames, resuming where the
     * last pass stopped. A failing page quarantines its segment.
     * Without a priority hook, segments are visited round-robin in
     * ascending id order; with one (setScrubPriority), each pass
     * visits higher-priority segments first — the mechanism behind
     * pin-aware scrubbing, where trainer-pinned epochs get verified
     * ahead of cold ones. @return pages verified this pass.
     */
    StatusOr<uint64_t> scrubSome(size_t max_pages);

    /**
     * Install a scrub priority hook: given a partition id, return its
     * priority (higher scrubs first; 0 = baseline). The hook is called
     * outside the store mutex — it may take its own locks (the catalog
     * hook takes the pin-count mutex) but must not call back into this
     * store. nullptr restores plain ascending-id order.
     */
    void setScrubPriority(std::function<uint64_t(uint64_t)> priority);

    /** Scrub work done so far (total and priority-driven pages). */
    ScrubCounters scrubCounters() const;

    /** Bytes of live (sealed or compacted-but-present) segment files —
        the store's steady-state disk footprint. */
    uint64_t liveBytes() const;

    /**
     * Whole-file blocking read of a live segment's encoded PSF bytes,
     * CRC-verified against the sealed meta (mismatch quarantines), not
     * decoded. The cold-tier path: lets a partition cache re-load
     * encoded bytes off disk without paying a decode.
     */
    StatusOr<std::vector<uint8_t>> readSegmentRaw(uint64_t segment_id);

    /**
     * Submit one bounded maintenance tick (scrub + at most one
     * compaction) to @p pool unless a tick is already pending — the
     * back-pressure that keeps background work from piling up.
     * @return true when a tick was scheduled.
     */
    bool scheduleMaintenance(ThreadPool& pool);

    /** Rewrite the journal to just the live state (checkpoint). */
    Status checkpointJournal();

    /** Snapshot of every known segment, ascending id. */
    std::vector<SegmentInfo> listSegments() const;

    /** What recovery found when this store was opened. */
    const RecoveryReport& recoveryReport() const { return recovery_; }

    const std::string& directory() const { return options_.directory; }
    std::string journalPath() const;
    std::string segmentPath(const SegmentMeta& meta) const;

    /** Durable operations issued so far (crash-sweep upper bound). */
    uint64_t durableOps() const;

  private:
    explicit SegmentStore(SegmentStoreOptions options);

    Status recover(RecoveryReport& report);
    Status appendRecord(const JournalRecord& record);
    Status quarantineLocked(uint64_t segment_id, const std::string& reason);
    StatusOr<SegmentInfo> segmentLocked(uint64_t segment_id) const;
    Status checkpointLocked();
    void maintenanceTick();

    SegmentStoreOptions options_;
    RecoveryReport recovery_;

    mutable std::mutex mu_;
    StoreIo io_;                             // guarded by mu_
    std::map<uint64_t, SegmentInfo> segments_;  // guarded by mu_
    uint64_t next_segment_id_ = 1;           // guarded by mu_
    uint64_t journal_bytes_ = 0;             // guarded by mu_
    uint64_t scrub_cursor_segment_ = 0;      // guarded by mu_
    uint64_t scrub_cursor_page_ = 0;         // guarded by mu_
    ScrubCounters scrub_counters_;           // guarded by mu_
    /** Priority hook (guarded by mu_ for the pointer; invoked outside
        mu_ — see setScrubPriority). */
    std::function<uint64_t(uint64_t)> scrub_priority_;
    bool maintenance_pending_ = false;       // guarded by mu_
    /** Segments already considered by compactOnce() (in-memory only —
        after a restart each gets one fresh look). Guarded by mu_. */
    std::set<uint64_t> compact_tried_;
};

}  // namespace presto

#endif  // PRESTO_STORE_SEGMENT_STORE_H_
