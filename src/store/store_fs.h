/**
 * @file
 * StoreIo: the segment store's durable-operation layer, with
 * deterministic crash-point injection.
 *
 * Every state change the store makes goes through exactly one of two
 * durable operations:
 *
 *   appendDurable()   - append bytes to the journal, then fsync
 *   publishDurable()  - crash-atomic whole-file publish
 *                       (temp + fsync + rename + dir fsync)
 *
 * StoreIo numbers these operations 0, 1, 2, ... in issue order. With a
 * FaultInjector whose spec sets crash_at_durable_op = k, operation k
 * "crashes": the write is torn at a seed-derived byte length (an
 * append leaves a torn journal tail; a publish leaves only a torn temp
 * file, since the rename never happens), the operation returns
 * kAborted, and every later operation fails kAborted immediately — the
 * process is "dead" as far as the store is concerned. Re-opening the
 * store directory then exercises recovery against precisely the k-th
 * crash window, and sweeping k over a workload's operation count
 * covers every window the workload has.
 */
#ifndef PRESTO_STORE_STORE_FS_H_
#define PRESTO_STORE_STORE_FS_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/fault_injector.h"
#include "common/status.h"

namespace presto {

class StoreIo
{
  public:
    explicit StoreIo(const FaultInjector* faults = nullptr)
        : faults_(faults)
    {}

    /**
     * Append @p bytes to the file at @p path (created if absent) and
     * fsync it. On an injected crash, a torn prefix of @p bytes is
     * appended instead and kAborted is returned.
     */
    Status appendDurable(const std::string& path,
                         std::span<const uint8_t> bytes);

    /**
     * Crash-atomic whole-file publish. On an injected crash, only
     * "@p path.tmp" exists afterwards, holding a torn prefix — the
     * rename (the atomic step) never happened.
     */
    Status publishDurable(const std::string& path,
                          std::span<const uint8_t> bytes);

    /** Durable operations issued so far (== the next op's index). */
    uint64_t durableOps() const { return ops_; }

    /** True once an injected crash fired; all further ops abort. */
    bool crashed() const { return crashed_; }

  private:
    /** Returns true when the op now being issued is the crash point;
        @p torn_len receives the injected torn write length. */
    bool drawCrash(uint64_t full_len, uint64_t& torn_len);

    const FaultInjector* faults_;
    uint64_t ops_ = 0;
    bool crashed_ = false;
};

}  // namespace presto

#endif  // PRESTO_STORE_STORE_FS_H_
