#include "store/segment_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

#include <dirent.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace presto {

namespace {

constexpr const char* kJournalName = "JOURNAL";

std::string
segmentFileName(uint64_t segment_id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%08" PRIu64 ".psf", segment_id);
    return buf;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Plain names of regular files in @p dir (no error is fatal here). */
std::vector<std::string>
listDir(const std::string& dir)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..")
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace

const char*
segmentStateName(SegmentState state)
{
    switch (state) {
      case SegmentState::kSealed:      return "sealed";
      case SegmentState::kCompacted:   return "compacted";
      case SegmentState::kRetired:     return "retired";
      case SegmentState::kQuarantined: return "quarantined";
    }
    return "unknown";
}

std::vector<std::string>
RecoveryReport::decisions() const
{
    std::vector<std::string> out;
    out.push_back("replayed " + std::to_string(records_replayed) +
                  " journal record(s)");
    if (torn_tail_bytes > 0) {
        out.push_back("dropped torn journal tail: " +
                      std::to_string(torn_tail_bytes) + " byte(s) (" +
                      torn_reason + ")");
    }
    for (const auto& name : orphans_removed)
        out.push_back("removed orphan " + name);
    for (uint64_t id : quarantined)
        out.push_back("quarantined segment " + std::to_string(id));
    out.push_back(std::to_string(live_segments) + " live segment(s)");
    return out;
}

SegmentStore::SegmentStore(SegmentStoreOptions options)
    : options_(std::move(options)), io_(options_.faults)
{
}

std::string
SegmentStore::journalPath() const
{
    return options_.directory + "/" + kJournalName;
}

std::string
SegmentStore::segmentPath(const SegmentMeta& meta) const
{
    return options_.directory + "/" + meta.file_name;
}

uint64_t
SegmentStore::durableOps() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return io_.durableOps();
}

StatusOr<std::unique_ptr<SegmentStore>>
SegmentStore::open(SegmentStoreOptions options, RecoveryReport* report)
{
    PRESTO_CHECK(!options.directory.empty(), "store needs a directory");
    std::unique_ptr<SegmentStore> store(new SegmentStore(std::move(options)));
    RecoveryReport local;
    PRESTO_RETURN_IF_ERROR(store->recover(local));
    store->recovery_ = local;
    if (report != nullptr)
        *report = std::move(local);
    return store;
}

Status
SegmentStore::recover(RecoveryReport& report)
{
    // Recovery only reads the journal (plus one idempotent truncate of
    // a torn tail) and deletes files the intact prefix proves dead, so
    // running it twice — or crashing partway and running it again —
    // reaches the same state.
    const std::string jpath = journalPath();
    auto jsize = fileSizeOf(jpath);
    if (!jsize.ok()) {
        // No journal means no store: nothing in the directory can be
        // trusted (e.g. a torn JOURNAL.tmp from a crash during the very
        // first initialization), so sweep leftovers before starting
        // fresh. This publish is the one durable op an open may issue.
        for (const std::string& name : listDir(options_.directory)) {
            if (!endsWith(name, ".tmp") && !endsWith(name, ".psf"))
                continue;
            if (::unlink((options_.directory + "/" + name).c_str()) == 0)
                report.orphans_removed.push_back(name);
        }
        std::lock_guard<std::mutex> lock(mu_);
        const auto header = encodeJournalHeader();
        PRESTO_RETURN_IF_ERROR(io_.publishDurable(jpath, header));
        journal_bytes_ = header.size();
        next_segment_id_ = 1;
        return Status::okStatus();
    }

    auto bytes = loadFromFile(jpath);
    if (!bytes.ok())
        return bytes.status();
    JournalReplay replay;
    PRESTO_RETURN_IF_ERROR(replayJournal(*bytes, replay));
    report.records_replayed = replay.records.size();
    report.torn_tail_bytes = replay.torn_bytes;
    report.torn_reason = replay.torn_reason;
    if (replay.torn_bytes > 0) {
        // Future appends must land right after the intact prefix, so
        // the torn tail is cut off now. Truncating to the same prefix
        // again is a no-op — idempotence holds.
        if (::truncate(jpath.c_str(), (off_t)replay.valid_bytes) != 0)
            return Status::unavailable("cannot truncate torn journal tail");
        PRESTO_RETURN_IF_ERROR(fsyncDirOf(jpath));
    }

    std::lock_guard<std::mutex> lock(mu_);
    journal_bytes_ = replay.valid_bytes;

    // Fold the intact records into per-segment state.
    struct Intent {
        uint64_t partition_id;
        std::string file_name;
    };
    std::map<uint64_t, Intent> intents;
    for (const JournalRecord& rec : replay.records) {
        switch (rec.kind) {
          case JournalRecordKind::kSegmentWriting:
            intents[rec.segment_id] =
                Intent{rec.partition_id, rec.file_name};
            next_segment_id_ =
                std::max(next_segment_id_, rec.segment_id + 1);
            break;
          case JournalRecordKind::kSegmentSealed: {
            SegmentInfo info;
            info.meta = rec.meta;
            info.state = SegmentState::kSealed;
            segments_[rec.meta.segment_id] = std::move(info);
            intents.erase(rec.meta.segment_id);
            next_segment_id_ =
                std::max(next_segment_id_, rec.meta.segment_id + 1);
            break;
          }
          case JournalRecordKind::kSegmentCompacted: {
            auto it = segments_.find(rec.segment_id);
            if (it != segments_.end()) {
                it->second.state = SegmentState::kCompacted;
                it->second.compacted_into = rec.new_segment_id;
            }
            break;
          }
          case JournalRecordKind::kSegmentRetired: {
            auto it = segments_.find(rec.segment_id);
            if (it != segments_.end())
                it->second.state = SegmentState::kRetired;
            break;
          }
          case JournalRecordKind::kSegmentQuarantined: {
            auto it = segments_.find(rec.segment_id);
            if (it != segments_.end()) {
                it->second.state = SegmentState::kQuarantined;
                it->second.quarantine_reason = rec.reason;
            }
            break;
          }
          case JournalRecordKind::kCheckpoint:
            next_segment_id_ =
                std::max(next_segment_id_, rec.next_segment_id);
            break;
        }
    }

    // Unsealed intents are crash leftovers: the commit point was never
    // reached, so whatever the crash left of their files is garbage.
    for (const auto& [id, intent] : intents) {
        const std::string path = options_.directory + "/" + intent.file_name;
        bool removed = false;
        if (::unlink(path.c_str()) == 0)
            removed = true;
        if (::unlink((path + ".tmp").c_str()) == 0)
            removed = true;
        if (removed)
            report.orphans_removed.push_back(intent.file_name);
    }

    // Directory sweep: stray temp files (torn publishes) and segment
    // files no intact record accounts for cannot be trusted; retired
    // segments whose unlink the crash swallowed go too.
    std::set<std::string> referenced;
    for (const auto& [id, info] : segments_) {
        if (info.state == SegmentState::kSealed ||
            info.state == SegmentState::kCompacted ||
            info.state == SegmentState::kQuarantined) {
            referenced.insert(info.meta.file_name);
        }
    }
    for (const std::string& name : listDir(options_.directory)) {
        if (name == kJournalName)
            continue;
        const bool is_tmp = endsWith(name, ".tmp");
        const bool is_segment = endsWith(name, ".psf");
        if (!is_tmp && !is_segment)
            continue;
        if (is_segment && referenced.count(name) > 0)
            continue;
        if (::unlink((options_.directory + "/" + name).c_str()) == 0)
            report.orphans_removed.push_back(name);
    }

    // Verify every live segment's bytes against its sealed meta. A
    // mismatch quarantines the segment in memory (recovery never
    // appends journal records — the decision re-derives identically on
    // every replay; the scrub journals it later if asked to).
    for (auto& [id, info] : segments_) {
        if (info.state != SegmentState::kSealed &&
            info.state != SegmentState::kCompacted) {
            continue;
        }
        const std::string path = segmentPath(info.meta);
        auto size = fileSizeOf(path);
        std::string why;
        if (!size.ok() || *size != info.meta.byte_size) {
            why = "segment file missing or mis-sized";
        } else {
            auto data = loadFromFile(path);
            if (!data.ok()) {
                why = "segment file unreadable";
            } else if (crc32c(data->data(), data->size()) !=
                       info.meta.file_crc) {
                why = "segment checksum mismatch";
            }
        }
        if (!why.empty()) {
            info.state = SegmentState::kQuarantined;
            info.quarantine_reason = why;
            report.quarantined.push_back(id);
        } else {
            ++report.live_segments;
        }
    }
    return Status::okStatus();
}

Status
SegmentStore::appendRecord(const JournalRecord& record)
{
    const auto frame = encodeJournalFrame(record);
    PRESTO_RETURN_IF_ERROR(io_.appendDurable(journalPath(), frame));
    journal_bytes_ += frame.size();
    return Status::okStatus();
}

StatusOr<uint64_t>
SegmentStore::appendPartition(const RowBatch& batch, uint64_t partition_id)
{
    ColumnarFileWriter writer(options_.writer);
    const auto psf = writer.write(batch, partition_id);
    return appendEncoded(psf, partition_id);
}

StatusOr<uint64_t>
SegmentStore::appendEncoded(std::span<const uint8_t> psf,
                            uint64_t partition_id)
{
    // Derive the sealed meta (footer parse + page plans) before any
    // durable op, so a malformed file is rejected with the journal
    // untouched.
    ColumnarFileReader reader;
    PRESTO_RETURN_IF_ERROR(reader.open(psf));
    if (reader.footer().partition_id != partition_id)
        return Status::invalidArgument(
            "PSF partition id disagrees with append");
    SegmentMeta meta;
    PRESTO_RETURN_IF_ERROR(reader.planPageReads(meta.plans));
    meta.partition_id = partition_id;
    meta.byte_size = psf.size();
    meta.file_crc = crc32c(psf.data(), psf.size());
    meta.num_rows = reader.footer().num_rows;
    // bytesTouched() after open() is footer + trailer + header magic;
    // the tail region excludes the 4 header bytes.
    meta.tail_bytes = static_cast<uint32_t>(reader.bytesTouched() - 4);

    std::lock_guard<std::mutex> lock(mu_);
    meta.segment_id = next_segment_id_++;
    meta.file_name = segmentFileName(meta.segment_id);

    // 1. intent; 2. file; 3. seal — see the header for crash windows.
    JournalRecord intent;
    intent.kind = JournalRecordKind::kSegmentWriting;
    intent.segment_id = meta.segment_id;
    intent.partition_id = partition_id;
    intent.file_name = meta.file_name;
    PRESTO_RETURN_IF_ERROR(appendRecord(intent));

    PRESTO_RETURN_IF_ERROR(io_.publishDurable(segmentPath(meta), psf));

    JournalRecord seal;
    seal.kind = JournalRecordKind::kSegmentSealed;
    seal.meta = meta;
    PRESTO_RETURN_IF_ERROR(appendRecord(seal));

    SegmentInfo info;
    info.meta = std::move(meta);
    info.state = SegmentState::kSealed;
    const uint64_t id = info.meta.segment_id;
    segments_[id] = std::move(info);

    if (journal_bytes_ > options_.checkpoint_journal_bytes)
        PRESTO_RETURN_IF_ERROR(checkpointLocked());
    return id;
}

StatusOr<SegmentInfo>
SegmentStore::segmentForPartition(uint64_t partition_id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const SegmentInfo* best = nullptr;
    for (const auto& [id, info] : segments_) {
        if (info.meta.partition_id != partition_id)
            continue;
        if (info.state != SegmentState::kSealed &&
            info.state != SegmentState::kCompacted) {
            continue;
        }
        // Ascending map order: the last live match is the newest.
        if (best == nullptr || info.state == SegmentState::kSealed ||
            best->state != SegmentState::kSealed) {
            best = &info;
        }
    }
    if (best == nullptr)
        return Status::notFound("no live segment holds partition " +
                                std::to_string(partition_id));
    return *best;
}

StatusOr<SegmentInfo>
SegmentStore::segmentLocked(uint64_t segment_id) const
{
    auto it = segments_.find(segment_id);
    if (it == segments_.end())
        return Status::notFound("unknown segment " +
                                std::to_string(segment_id));
    const SegmentInfo& info = it->second;
    if (info.state == SegmentState::kRetired)
        return Status::notFound("segment " + std::to_string(segment_id) +
                                " is retired");
    if (info.state == SegmentState::kQuarantined)
        return Status::unavailable("segment " + std::to_string(segment_id) +
                                   " is quarantined: " +
                                   info.quarantine_reason);
    return info;
}

Status
SegmentStore::quarantineLocked(uint64_t segment_id,
                               const std::string& reason)
{
    auto it = segments_.find(segment_id);
    if (it == segments_.end())
        return Status::notFound("unknown segment");
    if (it->second.state == SegmentState::kQuarantined)
        return Status::okStatus();
    JournalRecord rec;
    rec.kind = JournalRecordKind::kSegmentQuarantined;
    rec.segment_id = segment_id;
    rec.reason = reason;
    PRESTO_RETURN_IF_ERROR(appendRecord(rec));
    it->second.state = SegmentState::kQuarantined;
    it->second.quarantine_reason = reason;
    return Status::okStatus();
}

Status
SegmentStore::readSegment(uint64_t segment_id, AsyncPartitionReader& reader,
                          RowBatch& out)
{
    SegmentInfo info;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto got = segmentLocked(segment_id);
        if (!got.ok())
            return got.status();
        info = std::move(got).value();
    }
    const std::string path = segmentPath(info.meta);
    auto fd = openReadOnly(path);
    if (!fd.ok())
        return fd.status();

    // Cold read: only the tail (footer + trailer) is pread here; every
    // page frame then flows through the ring's device workers.
    std::vector<uint8_t> tail(info.meta.tail_bytes);
    Status st = preadExact(*fd, tail.data(), tail.size(),
                           info.meta.byte_size - tail.size(), path);
    if (st.ok()) {
        AsyncPartitionReader::FileReadSource src;
        src.fd = *fd;
        src.file_size = info.meta.byte_size;
        src.tail = tail;
        src.plans = info.meta.plans;
        st = reader.readFile(src, info.meta.partition_id, out);
    }
    ::close(*fd);
    if (st.code() == StatusCode::kCorruption) {
        std::lock_guard<std::mutex> lock(mu_);
        (void)quarantineLocked(segment_id, st.message());
    }
    return st;
}

Status
SegmentStore::readSegmentBlocking(uint64_t segment_id, RowBatch& out)
{
    SegmentInfo info;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto got = segmentLocked(segment_id);
        if (!got.ok())
            return got.status();
        info = std::move(got).value();
    }
    auto bytes = loadFromFile(segmentPath(info.meta));
    Status st = bytes.status();
    if (st.ok() &&
        crc32c(bytes->data(), bytes->size()) != info.meta.file_crc) {
        st = Status::corruption("segment checksum mismatch");
    }
    if (st.ok()) {
        ColumnarFileReader reader;
        st = reader.open(*bytes);
        if (st.ok())
            st = reader.readAllInto(out);
    }
    if (st.code() == StatusCode::kCorruption) {
        std::lock_guard<std::mutex> lock(mu_);
        (void)quarantineLocked(segment_id, st.message());
    }
    return st;
}

Status
SegmentStore::retireSegment(uint64_t segment_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(segment_id);
    if (it == segments_.end())
        return Status::notFound("unknown segment");
    if (it->second.state == SegmentState::kRetired)
        return Status::okStatus();
    JournalRecord rec;
    rec.kind = JournalRecordKind::kSegmentRetired;
    rec.segment_id = segment_id;
    PRESTO_RETURN_IF_ERROR(appendRecord(rec));
    // The record is durable before the unlink: if the unlink is lost to
    // a crash, recovery's directory sweep finishes the job.
    (void)::unlink(segmentPath(it->second.meta).c_str());
    it->second.state = SegmentState::kRetired;
    return Status::okStatus();
}

StatusOr<uint64_t>
SegmentStore::compactOnce()
{
    // Candidate: the largest live segment we have not tried yet this
    // process (compaction outputs are skipped — re-encoding them again
    // cannot win).
    SegmentInfo candidate;
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t best_size = 0;
        for (const auto& [id, info] : segments_) {
            if (info.state != SegmentState::kSealed)
                continue;
            if (compact_tried_.count(id) > 0)
                continue;
            if (info.meta.byte_size > best_size) {
                best_size = info.meta.byte_size;
                candidate = info;
                found = true;
            }
        }
        if (found)
            compact_tried_.insert(candidate.meta.segment_id);
    }
    if (!found)
        return uint64_t{0};

    RowBatch batch;
    PRESTO_RETURN_IF_ERROR(
        readSegmentBlocking(candidate.meta.segment_id, batch));
    ColumnarFileWriter writer(options_.writer);
    const auto rewritten =
        writer.write(batch, candidate.meta.partition_id);
    if (rewritten.size() >= candidate.meta.byte_size)
        return uint64_t{0};  // no win; remembered in compact_tried_

    auto new_id = appendEncoded(rewritten, candidate.meta.partition_id);
    if (!new_id.ok())
        return new_id.status();
    {
        std::lock_guard<std::mutex> lock(mu_);
        JournalRecord rec;
        rec.kind = JournalRecordKind::kSegmentCompacted;
        rec.segment_id = candidate.meta.segment_id;
        rec.new_segment_id = *new_id;
        PRESTO_RETURN_IF_ERROR(appendRecord(rec));
        auto it = segments_.find(candidate.meta.segment_id);
        if (it != segments_.end()) {
            it->second.state = SegmentState::kCompacted;
            it->second.compacted_into = *new_id;
        }
        compact_tried_.insert(*new_id);
    }
    PRESTO_RETURN_IF_ERROR(retireSegment(candidate.meta.segment_id));
    return *new_id;
}

void
SegmentStore::setScrubPriority(std::function<uint64_t(uint64_t)> priority)
{
    std::lock_guard<std::mutex> lock(mu_);
    scrub_priority_ = std::move(priority);
}

ScrubCounters
SegmentStore::scrubCounters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return scrub_counters_;
}

uint64_t
SegmentStore::liveBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [id, info] : segments_) {
        if (info.state == SegmentState::kSealed ||
            info.state == SegmentState::kCompacted) {
            total += info.meta.byte_size;
        }
    }
    return total;
}

StatusOr<std::vector<uint8_t>>
SegmentStore::readSegmentRaw(uint64_t segment_id)
{
    SegmentInfo info;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto got = segmentLocked(segment_id);
        if (!got.ok())
            return got.status();
        info = std::move(got).value();
    }
    auto bytes = loadFromFile(segmentPath(info.meta));
    if (!bytes.ok())
        return bytes.status();
    if (crc32c(bytes->data(), bytes->size()) != info.meta.file_crc) {
        Status st = Status::corruption("segment checksum mismatch");
        std::lock_guard<std::mutex> lock(mu_);
        (void)quarantineLocked(segment_id, st.message());
        return st;
    }
    return *std::move(bytes);
}

StatusOr<uint64_t>
SegmentStore::scrubSome(size_t max_pages)
{
    // Snapshot the live segments; the cursor pair (segment, page)
    // resumes where the previous pass stopped and wraps at the end.
    std::vector<SegmentInfo> live;
    std::function<uint64_t(uint64_t)> priority;
    uint64_t cursor_segment;
    uint64_t cursor_page;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [id, info] : segments_) {
            if (info.state == SegmentState::kSealed ||
                info.state == SegmentState::kCompacted) {
                live.push_back(info);
            }
        }
        priority = scrub_priority_;
        cursor_segment = scrub_cursor_segment_;
        cursor_page = scrub_cursor_page_;
    }
    if (live.empty())
        return uint64_t{0};

    // Priorities are computed outside mu_: the hook may take its own
    // locks (the catalog's pin-count mutex) and must never nest under
    // the store mutex.
    std::vector<uint64_t> prio(live.size(), 0);
    if (priority) {
        for (size_t i = 0; i < live.size(); ++i)
            prio[i] = priority(live[i].meta.partition_id);
    }
    std::vector<size_t> order(live.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         if (prio[a] != prio[b])
                             return prio[a] > prio[b];
                         return live[a].meta.segment_id <
                                live[b].meta.segment_id;
                     });

    // Resume at the cursor's segment if it is still live; pin churn
    // can reorder or retire it between passes, in which case the pass
    // restarts at the head of the (new) priority order.
    size_t start = 0;
    while (start < order.size() &&
           live[order[start]].meta.segment_id != cursor_segment) {
        ++start;
    }
    if (start == order.size()) {
        start = 0;
        cursor_page = 0;
    }

    uint64_t verified = 0;
    uint64_t prioritized = 0;
    std::vector<uint8_t> frame;
    for (size_t step = 0; step < order.size() && verified < max_pages;
         ++step) {
        const size_t idx = order[(start + step) % order.size()];
        const SegmentInfo& info = live[idx];
        const std::string path = segmentPath(info.meta);
        uint64_t page = step == 0 ? cursor_page : 0;
        for (; page < info.meta.plans.size() && verified < max_pages;
             ++page) {
            const PageReadPlan& plan = info.meta.plans[page];
            Status st = readFileRange(path, plan.offset, plan.frame_bytes,
                                      frame);
            if (st.ok()) {
                size_t pos = 0;
                PageView view;
                st = readPageFrame(frame, pos, view);
                if (st.ok() && pos != frame.size())
                    st = Status::corruption("page frame size mismatch");
            }
            if (!st.ok()) {
                std::lock_guard<std::mutex> lock(mu_);
                (void)quarantineLocked(
                    info.meta.segment_id,
                    "scrub: " + st.message() + " (page " +
                        std::to_string(page) + ")");
                break;  // rest of this segment is moot
            }
            ++verified;
            if (prio[idx] > 0)
                ++prioritized;
        }
        cursor_segment = info.meta.segment_id;
        cursor_page = page;
        if (page >= info.meta.plans.size()) {
            // Advance to the next segment in this pass's order.
            cursor_segment =
                live[order[(start + step + 1) % order.size()]]
                    .meta.segment_id;
            cursor_page = 0;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        scrub_cursor_segment_ = cursor_segment;
        scrub_cursor_page_ = cursor_page;
        scrub_counters_.pages_total += verified;
        scrub_counters_.pages_prioritized += prioritized;
    }
    return verified;
}

bool
SegmentStore::scheduleMaintenance(ThreadPool& pool)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (maintenance_pending_)
            return false;
        maintenance_pending_ = true;
    }
    pool.submit([this] { maintenanceTick(); });
    return true;
}

void
SegmentStore::maintenanceTick()
{
    // Bounded work per tick: a slice of the CRC scrub and at most one
    // compaction attempt. Failures are advisory here — the next tick
    // (or the foreground read that hits the segment) retries or
    // quarantines as appropriate.
    (void)scrubSome(options_.scrub_pages_per_tick);
    (void)compactOnce();
    std::lock_guard<std::mutex> lock(mu_);
    maintenance_pending_ = false;
}

Status
SegmentStore::checkpointJournal()
{
    std::lock_guard<std::mutex> lock(mu_);
    return checkpointLocked();
}

Status
SegmentStore::checkpointLocked()
{
    // Atomic whole-journal rewrite: a checkpoint record (the id
    // allocator floor) followed by the live state. Retired segments'
    // history is the garbage being collected.
    std::vector<uint8_t> bytes = encodeJournalHeader();
    JournalRecord cp;
    cp.kind = JournalRecordKind::kCheckpoint;
    cp.next_segment_id = next_segment_id_;
    auto frame = encodeJournalFrame(cp);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    for (const auto& [id, info] : segments_) {
        if (info.state == SegmentState::kRetired)
            continue;
        JournalRecord seal;
        seal.kind = JournalRecordKind::kSegmentSealed;
        seal.meta = info.meta;
        frame = encodeJournalFrame(seal);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
        if (info.state == SegmentState::kCompacted) {
            JournalRecord rec;
            rec.kind = JournalRecordKind::kSegmentCompacted;
            rec.segment_id = id;
            rec.new_segment_id = info.compacted_into;
            frame = encodeJournalFrame(rec);
            bytes.insert(bytes.end(), frame.begin(), frame.end());
        } else if (info.state == SegmentState::kQuarantined) {
            JournalRecord rec;
            rec.kind = JournalRecordKind::kSegmentQuarantined;
            rec.segment_id = id;
            rec.reason = info.quarantine_reason;
            frame = encodeJournalFrame(rec);
            bytes.insert(bytes.end(), frame.begin(), frame.end());
        }
    }
    PRESTO_RETURN_IF_ERROR(io_.publishDurable(journalPath(), bytes));
    journal_bytes_ = bytes.size();
    // Retired entries served their purpose once the rewrite is durable.
    for (auto it = segments_.begin(); it != segments_.end();) {
        if (it->second.state == SegmentState::kRetired)
            it = segments_.erase(it);
        else
            ++it;
    }
    return Status::okStatus();
}

std::vector<SegmentInfo>
SegmentStore::listSegments() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SegmentInfo> out;
    out.reserve(segments_.size());
    for (const auto& [id, info] : segments_)
        out.push_back(info);
    return out;
}

}  // namespace presto
