#include "store/store_fs.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/durable_file.h"

namespace presto {

namespace {

Status
writeAll(int fd, std::span<const uint8_t> bytes, const std::string& path)
{
    size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable("write to " + path + ": " +
                                       std::strerror(errno));
        }
        done += static_cast<size_t>(n);
    }
    return Status::okStatus();
}

Status
appendToFile(const std::string& path, std::span<const uint8_t> bytes,
             bool do_fsync)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return Status::unavailable("open for append " + path + ": " +
                                   std::strerror(errno));
    Status st = writeAll(fd, bytes, path);
    if (st.ok() && do_fsync)
        st = fsyncFd(fd, path);
    ::close(fd);
    return st;
}

}  // namespace

bool
StoreIo::drawCrash(uint64_t full_len, uint64_t& torn_len)
{
    if (faults_ == nullptr || !faults_->crashAtDurableOp(ops_))
        return false;
    torn_len = faults_->tornWriteLength(/*stream=*/ops_, /*event=*/0,
                                        full_len);
    return true;
}

Status
StoreIo::appendDurable(const std::string& path,
                       std::span<const uint8_t> bytes)
{
    if (crashed_)
        return Status::aborted("store crashed at an injected crash point");
    uint64_t torn_len = 0;
    const bool crash = drawCrash(bytes.size(), torn_len);
    ++ops_;
    if (crash) {
        crashed_ = true;
        // The torn prefix reaches the file, the fsync never does —
        // recovery must drop it as the journal's torn tail.
        (void)appendToFile(path, bytes.subspan(0, torn_len),
                           /*do_fsync=*/false);
        return Status::aborted("injected crash during journal append");
    }
    return appendToFile(path, bytes, /*do_fsync=*/true);
}

Status
StoreIo::publishDurable(const std::string& path,
                        std::span<const uint8_t> bytes)
{
    if (crashed_)
        return Status::aborted("store crashed at an injected crash point");
    uint64_t torn_len = 0;
    const bool crash = drawCrash(bytes.size(), torn_len);
    ++ops_;
    if (crash) {
        crashed_ = true;
        // Crash inside writeFileDurable()'s window: the temp file holds
        // a torn prefix and the rename never happens, so the target
        // path is untouched (absent for a new file, old content for a
        // rewrite). Recovery must treat the leftover temp as garbage.
        const std::string tmp = path + ".tmp";
        const int fd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            (void)writeAll(fd, bytes.subspan(0, torn_len), tmp);
            ::close(fd);
        }
        return Status::aborted("injected crash during file publish");
    }
    return writeFileDurable(path, bytes);
}

}  // namespace presto
