/**
 * @file
 * Append-only, CRC-framed journal of segment lifecycle for the
 * persistent segment store.
 *
 * The journal is the store's single source of truth: a segment exists
 * iff its kSegmentSealed record is durable (the commit point), and the
 * later kSegmentCompacted / kSegmentRetired / kSegmentQuarantined
 * records move it through the lifecycle
 *
 *   written -> sealed -> compacted -> retired
 *
 * Layout:
 *   "PSJ1"                      4-byte header magic
 *   frame*                      records, each framed as
 *     payload_len u32
 *     payload_crc u32           crc32c over the payload bytes
 *     payload                   [kind u8][kind-specific varint fields]
 *
 * Damage model: the journal is only ever appended to (or atomically
 * rewritten whole at a checkpoint), so a crash can tear exclusively the
 * *tail*. Replay therefore stops at the first frame whose length or CRC
 * does not check out and reports every byte from there on as the torn
 * tail; everything before it is intact by construction.
 */
#ifndef PRESTO_STORE_JOURNAL_H_
#define PRESTO_STORE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/status.h"

namespace presto {

/** Journal record kinds (stable on-disk values). */
enum class JournalRecordKind : uint8_t {
    kSegmentWriting = 1,      ///< segment file about to be written
    kSegmentSealed = 2,       ///< segment durable + verified (commit point)
    kSegmentCompacted = 3,    ///< segment superseded by a rewrite
    kSegmentRetired = 4,      ///< segment file deleted
    kSegmentQuarantined = 5,  ///< segment failed a CRC check
    kCheckpoint = 6,          ///< first record of a rewritten journal
};

/** Human-readable kind name (for the CLI and reports). */
const char* journalRecordKindName(JournalRecordKind kind);

/**
 * Durable description of one sealed segment. The page plans are the
 * same PageReadPlan vector planPageReads() produced at seal time; they
 * ride in the journal (CRC-framed) so a cold read needs to pread only
 * the file tail plus the planned page frames, never a full scan.
 */
struct SegmentMeta {
    uint64_t segment_id = 0;
    uint64_t partition_id = 0;
    std::string file_name;
    uint64_t byte_size = 0;   ///< whole segment file size
    uint32_t file_crc = 0;    ///< crc32c over the whole file
    uint64_t num_rows = 0;
    uint32_t tail_bytes = 0;  ///< footer + trailer span at the file end
    std::vector<PageReadPlan> plans;
};

/** One decoded journal record (fields used depend on kind). */
struct JournalRecord {
    JournalRecordKind kind = JournalRecordKind::kSegmentWriting;
    SegmentMeta meta;              ///< kSealed: the full segment
    uint64_t segment_id = 0;       ///< kWriting/kCompacted/kRetired/kQuar.
    uint64_t partition_id = 0;     ///< kWriting
    std::string file_name;         ///< kWriting
    uint64_t new_segment_id = 0;   ///< kCompacted: the replacement
    std::string reason;            ///< kQuarantined
    uint64_t next_segment_id = 0;  ///< kCheckpoint: id allocator floor
};

/** Result of replaying journal bytes. */
struct JournalReplay {
    std::vector<JournalRecord> records;  ///< intact records, in order
    uint64_t valid_bytes = 0;   ///< prefix length that replayed cleanly
    uint64_t torn_bytes = 0;    ///< trailing bytes dropped as torn
    std::string torn_reason;    ///< why the scan stopped (empty if clean)
};

/** The 4-byte journal header magic. */
extern const char kJournalMagic[4];

/** Serialize one record as a CRC-framed journal frame. */
std::vector<uint8_t> encodeJournalFrame(const JournalRecord& record);

/** Serialize the 4-byte journal header. */
std::vector<uint8_t> encodeJournalHeader();

/**
 * Replay journal bytes: validate the header, then decode frames until
 * the bytes run out or a frame fails its length/CRC/payload check —
 * everything from the first bad frame on is reported as the torn tail,
 * never an error (that is the journal's crash signature). Only a
 * missing/bad *header* is a hard corruption, since appends cannot
 * damage it.
 */
Status replayJournal(std::span<const uint8_t> bytes, JournalReplay& out);

}  // namespace presto

#endif  // PRESTO_STORE_JOURNAL_H_
