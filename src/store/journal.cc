#include "store/journal.h"

#include <cstring>

#include "common/crc32.h"

namespace presto {

namespace {

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(std::span<const uint8_t> in, size_t pos)
{
    return static_cast<uint32_t>(in[pos]) |
           static_cast<uint32_t>(in[pos + 1]) << 8 |
           static_cast<uint32_t>(in[pos + 2]) << 16 |
           static_cast<uint32_t>(in[pos + 3]) << 24;
}

void
putString(std::vector<uint8_t>& out, const std::string& s)
{
    enc::putVarint(out, s.size());
    for (char c : s)
        out.push_back(static_cast<uint8_t>(c));
}

Status
getString(std::span<const uint8_t> in, size_t& pos, std::string& s)
{
    uint64_t len = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, len));
    if (pos + len > in.size())
        return Status::corruption("truncated string in journal record");
    s.assign(reinterpret_cast<const char*>(in.data() + pos), len);
    pos += len;
    return Status::okStatus();
}

void
putMeta(std::vector<uint8_t>& out, const SegmentMeta& meta)
{
    enc::putVarint(out, meta.segment_id);
    enc::putVarint(out, meta.partition_id);
    putString(out, meta.file_name);
    enc::putVarint(out, meta.byte_size);
    enc::putVarint(out, meta.file_crc);
    enc::putVarint(out, meta.num_rows);
    enc::putVarint(out, meta.tail_bytes);
    enc::putVarint(out, meta.plans.size());
    for (const PageReadPlan& plan : meta.plans) {
        enc::putVarint(out, plan.offset);
        enc::putVarint(out, plan.frame_bytes);
        enc::putVarint(out, plan.value_count);
        enc::putVarint(out, plan.out_offset);
        enc::putVarint(out, plan.column);
        enc::putVarint(out, plan.stream);
    }
}

Status
getMeta(std::span<const uint8_t> in, size_t& pos, SegmentMeta& meta)
{
    uint64_t u = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, meta.segment_id));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, meta.partition_id));
    PRESTO_RETURN_IF_ERROR(getString(in, pos, meta.file_name));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, meta.byte_size));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
    meta.file_crc = static_cast<uint32_t>(u);
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, meta.num_rows));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
    meta.tail_bytes = static_cast<uint32_t>(u);
    uint64_t num_plans = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, num_plans));
    if (num_plans > in.size())
        return Status::corruption("implausible plan count in journal");
    meta.plans.clear();
    meta.plans.reserve(num_plans);
    for (uint64_t p = 0; p < num_plans; ++p) {
        PageReadPlan plan;
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, plan.offset));
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
        plan.frame_bytes = static_cast<uint32_t>(u);
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
        plan.value_count = static_cast<uint32_t>(u);
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, plan.out_offset));
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
        plan.column = static_cast<uint32_t>(u);
        PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, u));
        plan.stream = static_cast<uint32_t>(u);
        meta.plans.push_back(plan);
    }
    return Status::okStatus();
}

Status
decodePayload(std::span<const uint8_t> payload, JournalRecord& record)
{
    if (payload.empty())
        return Status::corruption("empty journal record");
    const uint8_t kind = payload[0];
    if (kind < static_cast<uint8_t>(JournalRecordKind::kSegmentWriting) ||
        kind > static_cast<uint8_t>(JournalRecordKind::kCheckpoint)) {
        return Status::corruption("unknown journal record kind");
    }
    record = JournalRecord{};
    record.kind = static_cast<JournalRecordKind>(kind);
    size_t pos = 1;
    switch (record.kind) {
      case JournalRecordKind::kSegmentWriting:
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.segment_id));
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.partition_id));
        PRESTO_RETURN_IF_ERROR(getString(payload, pos, record.file_name));
        break;
      case JournalRecordKind::kSegmentSealed:
        PRESTO_RETURN_IF_ERROR(getMeta(payload, pos, record.meta));
        record.segment_id = record.meta.segment_id;
        break;
      case JournalRecordKind::kSegmentCompacted:
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.segment_id));
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.new_segment_id));
        break;
      case JournalRecordKind::kSegmentRetired:
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.segment_id));
        break;
      case JournalRecordKind::kSegmentQuarantined:
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.segment_id));
        PRESTO_RETURN_IF_ERROR(getString(payload, pos, record.reason));
        break;
      case JournalRecordKind::kCheckpoint:
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(payload, pos, record.next_segment_id));
        break;
    }
    if (pos != payload.size())
        return Status::corruption("trailing bytes in journal record");
    return Status::okStatus();
}

}  // namespace

const char kJournalMagic[4] = {'P', 'S', 'J', '1'};

const char*
journalRecordKindName(JournalRecordKind kind)
{
    switch (kind) {
      case JournalRecordKind::kSegmentWriting:     return "writing";
      case JournalRecordKind::kSegmentSealed:      return "sealed";
      case JournalRecordKind::kSegmentCompacted:   return "compacted";
      case JournalRecordKind::kSegmentRetired:     return "retired";
      case JournalRecordKind::kSegmentQuarantined: return "quarantined";
      case JournalRecordKind::kCheckpoint:         return "checkpoint";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeJournalFrame(const JournalRecord& record)
{
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(record.kind));
    switch (record.kind) {
      case JournalRecordKind::kSegmentWriting:
        enc::putVarint(payload, record.segment_id);
        enc::putVarint(payload, record.partition_id);
        putString(payload, record.file_name);
        break;
      case JournalRecordKind::kSegmentSealed:
        putMeta(payload, record.meta);
        break;
      case JournalRecordKind::kSegmentCompacted:
        enc::putVarint(payload, record.segment_id);
        enc::putVarint(payload, record.new_segment_id);
        break;
      case JournalRecordKind::kSegmentRetired:
        enc::putVarint(payload, record.segment_id);
        break;
      case JournalRecordKind::kSegmentQuarantined:
        enc::putVarint(payload, record.segment_id);
        putString(payload, record.reason);
        break;
      case JournalRecordKind::kCheckpoint:
        enc::putVarint(payload, record.next_segment_id);
        break;
    }
    std::vector<uint8_t> frame;
    frame.reserve(8 + payload.size());
    putU32(frame, static_cast<uint32_t>(payload.size()));
    putU32(frame, crc32c(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

std::vector<uint8_t>
encodeJournalHeader()
{
    std::vector<uint8_t> out;
    for (char c : kJournalMagic)
        out.push_back(static_cast<uint8_t>(c));
    return out;
}

Status
replayJournal(std::span<const uint8_t> bytes, JournalReplay& out)
{
    out = JournalReplay{};
    if (bytes.size() < 4)
        return Status::corruption("journal too small for its header");
    if (std::memcmp(bytes.data(), kJournalMagic, 4) != 0)
        return Status::corruption("bad journal magic");

    size_t pos = 4;
    for (;;) {
        if (pos == bytes.size())
            break;  // clean end
        if (bytes.size() - pos < 8) {
            out.torn_reason = "torn frame header";
            break;
        }
        const uint32_t len = getU32(bytes, pos);
        const uint32_t crc = getU32(bytes, pos + 4);
        if (len > bytes.size() - pos - 8) {
            out.torn_reason = "torn frame payload";
            break;
        }
        const auto payload = bytes.subspan(pos + 8, len);
        if (crc32c(payload.data(), payload.size()) != crc) {
            out.torn_reason = "frame checksum mismatch";
            break;
        }
        JournalRecord record;
        if (!decodePayload(payload, record).ok()) {
            // A CRC-valid but undecodable payload can only be a torn
            // write that happened to keep its checksum (or software
            // damage); either way the append-only damage model says
            // nothing after it is trustworthy.
            out.torn_reason = "undecodable record payload";
            break;
        }
        out.records.push_back(std::move(record));
        pos += 8 + len;
    }
    out.valid_bytes = pos;
    out.torn_bytes = bytes.size() - pos;
    return Status::okStatus();
}

}  // namespace presto
