/**
 * @file
 * The PreSto software architecture (Figure 9): TrainManager and
 * PreprocessManager running the *functional* end-to-end pipeline.
 *
 * This path really moves bytes: partitions are decoded from PSF files,
 * transformed by the operator library, and delivered as train-ready
 * MiniBatch tensors through a bounded input queue — while the managers
 * account for every byte that crosses the (simulated) datacenter network
 * versus the SmartSSD-internal P2P path.
 */
#ifndef PRESTO_CORE_MANAGERS_H_
#define PRESTO_CORE_MANAGERS_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/batch_arena.h"
#include "core/partition_store.h"
#include "datagen/rm_config.h"
#include "ops/preprocessor.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"

namespace presto {

class AsyncPartitionReader;
class IoRing;

/** Where preprocessing executes (determines data movement accounting). */
enum class PreprocessMode {
    kDisaggCpu,  ///< raw partitions cross the network to a CPU pool
    kPreSto,     ///< partitions stay inside the storage node (ISP)
};

/** Byte-movement and progress accounting of one training run. */
struct RunStats {
    size_t batches_delivered = 0;
    uint64_t raw_bytes_over_network = 0;  ///< storage -> preproc pool
    uint64_t raw_bytes_p2p = 0;           ///< SSD -> FPGA inside the node
    uint64_t tensor_bytes_over_network = 0;  ///< preproc -> train manager
    uint64_t columnar_bytes_touched = 0;  ///< selective-read accounting
    double wall_seconds = 0;
    /** Injected transient read errors retried (fault injection only). */
    uint64_t transient_read_errors = 0;
    /** Partitions re-fetched after a page-CRC corruption detection. */
    uint64_t corrupt_partition_refetches = 0;
};

/**
 * Spawns preprocessing workers over a PartitionStore and serves
 * train-ready mini-batches (Figure 9 steps 3-5).
 */
class PreprocessManager
{
  public:
    /**
     * @param config Workload description (also selects the Transform plan).
     * @param store The storage node holding encoded partitions.
     * @param mode Disagg vs PreSto data-path accounting.
     * @param num_workers Preprocessing (transform) worker threads.
     * @param queue_capacity Bound of the mini-batch input queue.
     * @param prefetch Stage the pipeline: dedicated fetcher threads
     *        decode partition N+1 while transform workers run partition
     *        N, connected by a bounded decoded-partition queue. Off
     *        runs the seed's combined fetch+transform loop per worker.
     *        Delivered batches are identical either way (ordering may
     *        differ, as it already can between workers).
     * @param decode_pool Optional thread pool the per-worker readers
     *        use for page-parallel decode (models the FPGA Decoder
     *        unit). nullptr keeps per-page decode serial within each
     *        worker. Shared across workers; must outlive the manager.
     * @param io_ring Optional async I/O engine. When set, the Extract
     *        stage streams page frames through the ring instead of the
     *        blocking whole-file fetch: each fetcher keeps a window of
     *        pages in flight and decodes them as they complete, so
     *        decode overlaps modeled storage latency. Faults then act
     *        on individual in-flight page reads (ring-level retry with
     *        backoff; CRC-caught bit flips re-read just that page).
     *        Shared across workers; must outlive the manager. Delivered
     *        batches are bit-identical to the blocking path.
     */
    PreprocessManager(const RmConfig& config, PartitionStore& store,
                      PreprocessMode mode, int num_workers,
                      size_t queue_capacity = 8, bool prefetch = true,
                      ThreadPool* decode_pool = nullptr,
                      IoRing* io_ring = nullptr);

    /** Stops workers and drains the queue. */
    ~PreprocessManager();

    PreprocessManager(const PreprocessManager&) = delete;
    PreprocessManager& operator=(const PreprocessManager&) = delete;

    /** Begin producing partitions [0, total_batches). */
    void start(size_t total_batches);

    /**
     * Blocking fetch of the next mini-batch (Figure 9 step 5).
     * @return nullptr once all requested batches were delivered.
     */
    std::unique_ptr<MiniBatch> nextBatch();

    /**
     * Return a consumed mini-batch so its tensors are reused for a
     * later partition (steady-state zero-allocation delivery). Safe to
     * skip — workers then allocate fresh batches as in the seed.
     */
    void recycle(std::unique_ptr<MiniBatch> mb);

    const RunStats& stats() const { return stats_; }
    PreprocessMode mode() const { return mode_; }

  private:
    /** One fetched+decoded partition moving between pipeline stages. */
    struct DecodedPartition {
        RowBatch batch;
        uint64_t raw_bytes = 0;       ///< encoded partition size
        uint64_t bytes_touched = 0;   ///< columnar bytes read to decode
        uint64_t transient_errors = 0;
        uint64_t corrupt_refetches = 0;
    };

    void workerLoop();
    void fetchLoop();
    void transformLoop();
    bool claimPartition(uint64_t& id);
    /** Fetch + decode partition @p id with the seed's fault-retry
     * semantics, reusing @p reader and dp.batch buffers. */
    void fetchDecode(uint64_t id, ColumnarFileReader& reader,
                     DecodedPartition& dp);
    /** Async-ring variant of fetchDecode: page-granular reads via
     * @p reader's IoRing, fault handling inside the ring. */
    void fetchDecodeAsync(uint64_t id, AsyncPartitionReader& reader,
                          DecodedPartition& dp);
    /** Transform + enqueue one decoded partition; returns its shell. */
    void transformAndDeliver(DecodedPartition& dp, BatchArena& arena);
    std::unique_ptr<MiniBatch> takeRecycledBatch();

    RmConfig config_;
    PartitionStore& store_;
    PreprocessMode mode_;
    Preprocessor preprocessor_;
    size_t queue_capacity_;
    int num_workers_;
    bool prefetch_;
    ThreadPool* decode_pool_;
    IoRing* io_ring_;
    // Fetch-stage share of the worker budget, derived from the measured
    // decode vs fused-transform rates for this workload (see start()).
    double fetch_share_;

    std::mutex mu_;
    std::condition_variable queue_not_empty_;
    std::condition_variable queue_not_full_;
    std::condition_variable decoded_not_empty_;
    std::condition_variable decoded_not_full_;
    std::deque<std::unique_ptr<MiniBatch>> queue_;
    // Staged-pipeline state: decoded partitions in flight, recycled
    // shells, and recycled output batches.
    std::deque<std::unique_ptr<DecodedPartition>> decoded_;
    size_t decoded_capacity_ = 0;
    std::vector<std::unique_ptr<DecodedPartition>> free_shells_;
    std::vector<std::unique_ptr<MiniBatch>> free_batches_;
    int active_fetchers_ = 0;
    std::vector<std::thread> workers_;
    uint64_t next_partition_ = 0;
    size_t total_batches_ = 0;
    size_t delivered_ = 0;
    bool stopping_ = false;
    RunStats stats_;
};

/**
 * Drives one end-to-end training job (Figure 9 steps 1-2 and 6-7):
 * bootstraps, measures the GPU's maximum throughput, provisions the
 * preprocess manager via T/P, and consumes mini-batches.
 */
class TrainManager
{
  public:
    TrainManager(const RmConfig& config, PartitionStore& store,
                 PreprocessMode mode);

    /**
     * Run @p total_batches training steps; preprocessing worker count is
     * derived from the T/P rule unless @p worker_override > 0.
     * @return accounting of the run.
     */
    RunStats train(size_t total_batches, int worker_override = 0);

    /** T: measured maximum single-GPU training throughput (batches/s). */
    double measuredTrainingThroughput() const;

    /** Derived worker count from the last train() call. */
    int provisionedWorkers() const { return provisioned_workers_; }

    /** Structural checksum of all delivered batches (for replay tests). */
    uint64_t deliveredChecksum() const { return checksum_; }

  private:
    RmConfig config_;
    PartitionStore& store_;
    PreprocessMode mode_;
    int provisioned_workers_ = 0;
    uint64_t checksum_ = 0;
};

}  // namespace presto

#endif  // PRESTO_CORE_MANAGERS_H_
