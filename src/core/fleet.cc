#include "core/fleet.h"

#include "common/logging.h"
#include "models/data_size.h"

namespace presto {

FleetModel::FleetModel(std::vector<JobSpec> jobs) : jobs_(std::move(jobs))
{
    PRESTO_CHECK(!jobs_.empty(), "fleet needs at least one job");
    for (const auto& job : jobs_) {
        PRESTO_CHECK(job.rm_id >= 1 && job.rm_id <= 5, "bad RM id");
        PRESTO_CHECK(job.num_gpus >= 1, "job needs at least one GPU");
    }
}

FleetSummary
FleetModel::evaluate(FleetSystem system) const
{
    FleetSummary summary;
    summary.system = system == FleetSystem::kDisaggCpu
                         ? "Disagg CPU"
                         : "PreSto (SmartSSD)";

    for (const auto& job : jobs_) {
        const RmConfig& cfg = rmConfig(job.rm_id);
        Provisioner prov(cfg);

        Provision p;
        if (system == FleetSystem::kDisaggCpu) {
            p = prov.provisionCpu(job.num_gpus);
        } else {
            p = prov.provisionIsp(job.num_gpus, IspParams::smartSsd());
        }
        summary.total_workers += p.workers;
        summary.total_power_watts += p.deployment.power_watts;
        summary.total_cost_dollars += p.deployment.totalCostDollars();
        summary.total_demand_batches_per_sec += p.demand_batches_per_sec;

        // Steady state: the preprocessing tier produces exactly the
        // GPU demand; each batch moves its raw bytes in (Disagg only)
        // and its train-ready bytes out.
        const double batches = p.demand_batches_per_sec;
        if (system == FleetSystem::kDisaggCpu) {
            summary.raw_in_bytes_per_sec += batches * rawEncodedBytes(cfg);
        }
        summary.tensors_out_bytes_per_sec +=
            batches * miniBatchBytes(cfg);
    }
    return summary;
}

double
FleetModel::networkReliefFactor() const
{
    const double disagg =
        evaluate(FleetSystem::kDisaggCpu).networkBytesPerSec();
    const double presto =
        evaluate(FleetSystem::kPrestoSmartSsd).networkBytesPerSec();
    return disagg / presto;
}

}  // namespace presto
