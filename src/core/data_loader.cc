#include "core/data_loader.h"

#include <numeric>

#include "common/logging.h"

namespace presto {

EpochPartitionLoader::EpochPartitionLoader(uint64_t num_partitions,
                                           uint64_t seed, bool shuffle)
    : num_partitions_(num_partitions), seed_(seed), shuffle_(shuffle)
{
    PRESTO_CHECK(num_partitions_ > 0, "dataset needs >= 1 partition");
    loadEpoch(0);
}

std::vector<uint64_t>
EpochPartitionLoader::epochOrder(uint64_t epoch) const
{
    std::vector<uint64_t> order(num_partitions_);
    std::iota(order.begin(), order.end(), 0);
    if (!shuffle_)
        return order;
    // Independent stream per epoch; Fisher-Yates.
    Rng rng(mix64(seed_ ^ mix64(epoch + 0x5b111e70ULL)));
    for (uint64_t i = num_partitions_ - 1; i > 0; --i) {
        const uint64_t j = rng.uniformInt(i + 1);
        std::swap(order[i], order[j]);
    }
    return order;
}

void
EpochPartitionLoader::loadEpoch(uint64_t epoch)
{
    epoch_ = epoch;
    cursor_ = 0;
    order_ = epochOrder(epoch);
}

uint64_t
EpochPartitionLoader::next()
{
    if (cursor_ >= order_.size())
        loadEpoch(epoch_ + 1);
    return order_[cursor_++];
}

}  // namespace presto
