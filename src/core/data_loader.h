/**
 * @file
 * Epoch-based data loading over a partitioned dataset: deterministic
 * per-epoch shuffling of partition order (Fisher-Yates over a seeded
 * stream), the access pattern a multi-epoch RecSys training job drives
 * into the preprocessing tier.
 */
#ifndef PRESTO_CORE_DATA_LOADER_H_
#define PRESTO_CORE_DATA_LOADER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace presto {

/**
 * Yields partition ids epoch by epoch, each epoch a fresh deterministic
 * permutation of [0, num_partitions).
 */
class EpochPartitionLoader
{
  public:
    /**
     * @param num_partitions Partitions in the dataset (> 0).
     * @param seed Base seed; epoch e uses an independent stream.
     * @param shuffle When false, epochs iterate in ascending order.
     */
    EpochPartitionLoader(uint64_t num_partitions, uint64_t seed,
                         bool shuffle = true);

    /** Next partition id; advances to the next epoch transparently. */
    uint64_t next();

    /** Epoch of the id most recently returned by next() (0 before). */
    uint64_t currentEpoch() const { return epoch_; }

    /** Position within the current epoch (ids consumed so far). */
    uint64_t positionInEpoch() const { return cursor_; }

    uint64_t numPartitions() const { return num_partitions_; }

    /** The full permutation used for @p epoch (for tests/replay). */
    std::vector<uint64_t> epochOrder(uint64_t epoch) const;

  private:
    void loadEpoch(uint64_t epoch);

    uint64_t num_partitions_;
    uint64_t seed_;
    bool shuffle_;
    uint64_t epoch_ = 0;
    uint64_t cursor_ = 0;
    std::vector<uint64_t> order_;
};

}  // namespace presto

#endif  // PRESTO_CORE_DATA_LOADER_H_
