#include "core/provisioner.h"

#include <cmath>

#include "common/logging.h"
#include "models/calibration.h"

namespace presto {

Provisioner::Provisioner(const RmConfig& config)
    : config_(config), cpu_(config), gpu_(config)
{
}

double
Provisioner::trainingDemand(int num_gpus) const
{
    PRESTO_CHECK(num_gpus > 0, "need at least one GPU");
    return gpu_.maxThroughput() * num_gpus;
}

Provision
Provisioner::provisionCpu(int num_gpus) const
{
    Provision p;
    p.demand_batches_per_sec = trainingDemand(num_gpus);
    p.per_worker_throughput = cpu_.throughputPerCore();
    p.workers = static_cast<int>(
        std::ceil(p.demand_batches_per_sec / p.per_worker_throughput));
    p.deployment = makeCpuDeployment(p.workers);
    return p;
}

Provision
Provisioner::provisionIsp(int num_gpus, const IspParams& params) const
{
    Provision p;
    p.demand_batches_per_sec = trainingDemand(num_gpus);
    IspDeviceModel device(params, config_);
    p.per_worker_throughput = device.throughput();
    p.workers = static_cast<int>(
        std::ceil(p.demand_batches_per_sec / p.per_worker_throughput));
    p.deployment =
        makeIspDeployment(p.workers, params.watts, params.dollars);
    return p;
}

}  // namespace presto
