/**
 * @file
 * The T/P provisioning rule (Section IV-B, step 2): measure the GPUs'
 * maximum training throughput T, measure one preprocessing worker's
 * throughput P, and allocate ceil(T/P) workers so the training stage
 * never starves.
 */
#ifndef PRESTO_CORE_PROVISIONER_H_
#define PRESTO_CORE_PROVISIONER_H_

#include "datagen/rm_config.h"
#include "models/cost_model.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"

namespace presto {

/** Result of provisioning one preprocessing system for one job. */
struct Provision {
    double demand_batches_per_sec = 0;  ///< T x num_gpus
    double per_worker_throughput = 0;   ///< P
    int workers = 0;                    ///< ceil(demand / P)
    Deployment deployment;              ///< cost/power of those workers
};

/** Sizes preprocessing deployments against GPU training demand. */
class Provisioner
{
  public:
    explicit Provisioner(const RmConfig& config);

    /** Aggregate training demand of @p num_gpus A100s (batches/sec). */
    double trainingDemand(int num_gpus) const;

    /** Disaggregated CPU cores needed (Figure 4 / Figure 14 right axis). */
    Provision provisionCpu(int num_gpus) const;

    /** ISP units needed for a given accelerator build (Figure 14). */
    Provision provisionIsp(int num_gpus, const IspParams& params) const;

    const RmConfig& config() const { return config_; }
    const CpuWorkerModel& cpuModel() const { return cpu_; }
    const GpuTrainModel& gpuModel() const { return gpu_; }

  private:
    RmConfig config_;
    CpuWorkerModel cpu_;
    GpuTrainModel gpu_;
};

}  // namespace presto

#endif  // PRESTO_CORE_PROVISIONER_H_
