/**
 * @file
 * Datacenter fleet model: many concurrent training jobs sharing the
 * storage system and the datacenter network (the setting Section VI-A
 * appeals to when arguing PreSto's network relief matters at fleet
 * scale).
 *
 * For a mix of jobs, the model provisions each job's preprocessing tier
 * (Disagg CPUs or PreSto ISP units), then aggregates worker counts,
 * power, 3-year TCO, and the steady-state preprocessing traffic offered
 * to the datacenter network.
 */
#ifndef PRESTO_CORE_FLEET_H_
#define PRESTO_CORE_FLEET_H_

#include <string>
#include <vector>

#include "core/provisioner.h"
#include "datagen/rm_config.h"

namespace presto {

/** One training job in the fleet. */
struct JobSpec {
    int rm_id = 1;     ///< workload (Table I row)
    int num_gpus = 8;  ///< GPUs training this job
};

/** Aggregated outcome for one preprocessing-system choice. */
struct FleetSummary {
    std::string system;
    int total_workers = 0;       ///< CPU cores or ISP units
    double total_power_watts = 0;
    double total_cost_dollars = 0;   ///< 3-year CapEx + OpEx
    double raw_in_bytes_per_sec = 0; ///< storage -> preproc network flow
    double tensors_out_bytes_per_sec = 0;  ///< preproc -> trainers flow
    double total_demand_batches_per_sec = 0;

    /** All preprocessing-related network traffic (bytes/sec). */
    double
    networkBytesPerSec() const
    {
        return raw_in_bytes_per_sec + tensors_out_bytes_per_sec;
    }
};

/** Which preprocessing tier serves the fleet. */
enum class FleetSystem {
    kDisaggCpu,
    kPrestoSmartSsd,
};

/**
 * Provisions and aggregates a job mix under one preprocessing system.
 */
class FleetModel
{
  public:
    explicit FleetModel(std::vector<JobSpec> jobs);

    /** Aggregate provisioning outcome for @p system. */
    FleetSummary evaluate(FleetSystem system) const;

    /** Network traffic reduction of PreSto vs Disagg (>= 1). */
    double networkReliefFactor() const;

    const std::vector<JobSpec>& jobs() const { return jobs_; }

  private:
    std::vector<JobSpec> jobs_;
};

}  // namespace presto

#endif  // PRESTO_CORE_FLEET_H_
