#include "core/isp_emulator.h"

#include <cmath>

#include "columnar/columnar_file.h"
#include "common/logging.h"
#include "ops/opvm.h"

namespace presto {

namespace {

/** On-chip buffer capacity of one PE (values per double-buffer half). */
constexpr size_t kPeBufferValues = 4096;

}  // namespace

IspEmulator::IspEmulator(const RmConfig& config, int num_feature_units,
                         ThreadPool* decode_pool)
    : config_(config), num_feature_units_(num_feature_units),
      reference_plan_(config),
      unit_used_(static_cast<size_t>(num_feature_units > 0
                                         ? num_feature_units
                                         : 1))
{
    PRESTO_CHECK(num_feature_units_ >= 1, "need at least one feature unit");
    reader_.setThreadPool(decode_pool);
}

StatusOr<MiniBatch>
IspEmulator::process(std::span<const uint8_t> encoded_partition)
{
    MiniBatch mb;
    PRESTO_RETURN_IF_ERROR(processInto(encoded_partition, mb));
    return StatusOr<MiniBatch>(std::move(mb));
}

Status
IspEmulator::processInto(std::span<const uint8_t> encoded_partition,
                         MiniBatch& mb)
{
    counters_ = IspUnitCounters();

    // --- P2P transfer: the encoded partition streams SSD -> FPGA DRAM.
    counters_.p2p_bytes = encoded_partition.size();

    // --- Decoder unit: parse the columnar pages into feature streams
    // (into the device-resident raw_ buffers). Page CRC32C checks run
    // here; any damage surfaces as kCorruption.
    if (Status st = reader_.open(encoded_partition); !st.ok())
        return Status(st.code(), "ISP decode failed: " + st.message());
    if (Status st = reader_.readAllInto(raw_); !st.ok())
        return Status(st.code(), "ISP decode failed: " + st.message());
    const RowBatch& raw = raw_;
    counters_.decoded_values = raw.totalValues();

    const CompiledProgram& prog = reference_plan_.program();
    if (raw.schema().fingerprint() != prog.inputSchema().fingerprint()) {
        return Status::corruption(
            "partition schema does not match the workload");
    }

    const size_t batch = raw.numRows();
    mb.batch_size = batch;
    mb.num_dense = prog.numDense();
    mb.dense.resize(batch * prog.numDense());
    mb.sparse.resize(prog.numSparse());

    const auto levels = static_cast<uint64_t>(
        std::log2(static_cast<double>(config_.bucket_size)) + 1.0);

    std::fill(unit_used_.begin(), unit_used_.end(), 0);
    auto engageUnit = [&](size_t stream) {
        unit_used_[stream % unit_used_.size()] = 1;
    };

    // Process one output's value stream through a PE in double-buffered
    // chunks: while chunk i is being transformed, chunk i+1 would be
    // fetched from device DRAM — each chunk boundary is a buffer swap.
    auto chunked = [&](size_t total, auto&& body) {
        for (size_t pos = 0; pos < total; pos += kPeBufferValues) {
            const size_t len = std::min(kPeBufferValues, total - pos);
            body(pos, len);
            ++counters_.buffer_swaps;
        }
    };

    // Each PE executes the same compiled bytecode chain the CPU path
    // runs, one fused pass per stream; the unit counters stay
    // analytically exact because the per-value op counts of a fused
    // chain equal the sum of its constituent ops.
    for (const CompiledOutput& out : prog.outputs()) {
        switch (out.kind) {
          case PlanOutput::Kind::kLabel: {
            const auto& col = raw.dense(out.source);
            mb.labels.assign(col.values().begin(), col.values().end());
            counters_.convert_values += batch;  // labels through DMA-out
            break;
          }
          case PlanOutput::Kind::kDense: {
            // Generation + dense Normalization unit: FillMissing + Log
            // fused in the PE pipeline, strided DMA-out gather.
            engageUnit(out.unit_stream);
            const auto& col = raw.dense(out.source);
            chunked(batch, [&](size_t pos, size_t len) {
                prog.runDenseRange(
                    out, col.values().data() + pos, len,
                    mb.dense.data() + pos * prog.numDense() + out.slot,
                    prog.numDense());
            });
            counters_.log_values += batch;
            counters_.convert_values += batch;
            break;
          }
          case PlanOutput::Kind::kSparse: {
            // Sparse Normalization unit: SigridHash straight from the
            // decoded stream into the output tensor.
            engageUnit(out.unit_stream);
            const auto& col = raw.sparse(out.source);
            auto& jag = mb.sparse[out.slot];
            jag.feature_name = out.name;
            jag.values.resize(col.numValues());
            chunked(jag.values.size(), [&](size_t pos, size_t len) {
                prog.runHashRange(out, col.values().data() + pos, len,
                                  jag.values.data() + pos);
            });
            counters_.hash_values += jag.values.size();
            jag.lengths.resize(batch);
            for (size_t r = 0; r < batch; ++r)
                jag.lengths[r] = static_cast<uint32_t>(col.rowLength(r));
            counters_.convert_values += jag.values.size();
            break;
          }
          case PlanOutput::Kind::kGenerated: {
            // Rides its source dense feature's unit: Fill + Bucketize +
            // SigridHash in one fused PE pass over the decoded stream.
            engageUnit(out.unit_stream);
            const auto& col = raw.dense(out.source);
            auto& jag = mb.sparse[out.slot];
            jag.feature_name = out.name;
            jag.values.resize(batch);
            chunked(batch, [&](size_t pos, size_t len) {
                prog.runGeneratedRange(out, col.values().data() + pos,
                                       len, jag.values.data() + pos);
            });
            counters_.bucketize_values += batch;
            counters_.bucketize_levels += batch * levels;
            counters_.hash_values += batch;
            jag.lengths.assign(batch, 1);
            counters_.convert_values += batch;
            break;
          }
        }
    }

    for (char used : unit_used_)
        counters_.feature_units_used += used != 0;

    PRESTO_CHECK(mb.consistent(), "emulator produced a bad batch");
    return Status::okStatus();
}

}  // namespace presto
