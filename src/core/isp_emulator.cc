#include "core/isp_emulator.h"

#include <cmath>

#include "columnar/columnar_file.h"
#include "common/logging.h"
#include "ops/fast_ops.h"
#include "ops/hash.h"
#include "ops/ops.h"

namespace presto {

namespace {

/** On-chip buffer capacity of one PE (values per double-buffer half). */
constexpr size_t kPeBufferValues = 4096;

}  // namespace

IspEmulator::IspEmulator(const RmConfig& config, int num_feature_units,
                         ThreadPool* decode_pool)
    : config_(config), num_feature_units_(num_feature_units),
      reference_plan_(config), bucketizer_(reference_plan_.boundaries()),
      unit_used_(static_cast<size_t>(num_feature_units > 0
                                         ? num_feature_units
                                         : 1))
{
    PRESTO_CHECK(num_feature_units_ >= 1, "need at least one feature unit");
    reader_.setThreadPool(decode_pool);
}

StatusOr<MiniBatch>
IspEmulator::process(std::span<const uint8_t> encoded_partition)
{
    MiniBatch mb;
    PRESTO_RETURN_IF_ERROR(processInto(encoded_partition, mb));
    return StatusOr<MiniBatch>(std::move(mb));
}

Status
IspEmulator::processInto(std::span<const uint8_t> encoded_partition,
                         MiniBatch& mb)
{
    counters_ = IspUnitCounters();

    // --- P2P transfer: the encoded partition streams SSD -> FPGA DRAM.
    counters_.p2p_bytes = encoded_partition.size();

    // --- Decoder unit: parse the columnar pages into feature streams
    // (into the device-resident raw_ buffers). Page CRC32C checks run
    // here; any damage surfaces as kCorruption.
    if (Status st = reader_.open(encoded_partition); !st.ok())
        return Status(st.code(), "ISP decode failed: " + st.message());
    if (Status st = reader_.readAllInto(raw_); !st.ok())
        return Status(st.code(), "ISP decode failed: " + st.message());
    const RowBatch& raw = raw_;
    counters_.decoded_values = raw.totalValues();

    const auto& schema = raw.schema();
    const size_t batch = raw.numRows();
    const auto label_idx = schema.indexOf("label");
    if (!label_idx.has_value())
        return Status::corruption("partition lacks a label column");
    const auto& dense_idx = schema.indicesOfKind(FeatureKind::kDense);
    const auto& sparse_idx = schema.indicesOfKind(FeatureKind::kSparse);
    if (dense_idx.size() != config_.num_dense ||
        sparse_idx.size() != config_.num_sparse) {
        return Status::corruption(
            "partition schema does not match the workload");
    }

    mb.batch_size = batch;
    mb.num_dense = config_.num_dense;
    mb.dense.resize(batch * config_.num_dense);
    mb.labels.assign(raw.dense(*label_idx).values().begin(),
                     raw.dense(*label_idx).values().end());
    mb.sparse.resize(config_.totalSparseFeatures());
    counters_.convert_values += batch;  // labels through the out stage

    const auto levels = static_cast<uint64_t>(
        std::log2(static_cast<double>(config_.bucket_size)) + 1.0);

    std::fill(unit_used_.begin(), unit_used_.end(), 0);
    auto engageUnit = [&](size_t feature) {
        unit_used_[feature % unit_used_.size()] = 1;
    };

    // Process one feature's value stream through a PE in double-buffered
    // chunks: while chunk i is being transformed, chunk i+1 would be
    // fetched from device DRAM — each chunk boundary is a buffer swap.
    auto chunked = [&](size_t total, auto&& body) {
        for (size_t pos = 0; pos < total; pos += kPeBufferValues) {
            const size_t len = std::min(kPeBufferValues, total - pos);
            body(pos, len);
            ++counters_.buffer_swaps;
        }
    };

    // --- Generation + dense Normalization units (one stream per dense
    // feature, PEs engaged round-robin).
    for (size_t f = 0; f < config_.num_dense; ++f) {
        engageUnit(f);
        const auto& col = raw.dense(dense_idx[f]);
        std::vector<float>& values = arena_.f32(f);
        values.assign(col.values().begin(), col.values().end());

        chunked(values.size(), [&](size_t pos, size_t len) {
            std::span<float> chunk(values.data() + pos, len);
            fillMissingInPlaceFast(chunk, 0.0f);
        });

        if (f < config_.num_generated) {
            auto& jag = mb.sparse[config_.num_sparse + f];
            jag.feature_name = "generated_" + std::to_string(f);
            jag.values.resize(batch);
            chunked(batch, [&](size_t pos, size_t len) {
                bucketizer_.bucketizeInto(
                    std::span<const float>(values.data() + pos, len),
                    std::span<int64_t>(jag.values.data() + pos, len));
            });
            counters_.bucketize_values += batch;
            counters_.bucketize_levels += batch * levels;

            const uint64_t seed =
                reference_plan_.hashSeed(config_.num_sparse + f);
            chunked(batch, [&](size_t pos, size_t len) {
                sigridHashInPlaceFast(
                    std::span<int64_t>(jag.values.data() + pos, len),
                    seed, reference_plan_.tableSize());
            });
            counters_.hash_values += batch;
            jag.lengths.assign(batch, 1);
            // Generated indices also leave through the conversion stage.
            counters_.convert_values += batch;
        }

        chunked(values.size(), [&](size_t pos, size_t len) {
            logTransformInPlaceFast(
                std::span<float>(values.data() + pos, len));
        });
        counters_.log_values += values.size();

        // Conversion unit: gather the column into the row-major matrix.
        for (size_t r = 0; r < batch; ++r)
            mb.dense[r * config_.num_dense + f] = values[r];
        counters_.convert_values += values.size();
    }

    // --- Sparse Normalization units.
    for (size_t f = 0; f < config_.num_sparse; ++f) {
        engageUnit(config_.num_dense + f);
        const auto& col = raw.sparse(sparse_idx[f]);
        auto& jag = mb.sparse[f];
        jag.feature_name = schema.feature(sparse_idx[f]).name;
        jag.values.resize(col.values().size());

        const uint64_t seed = reference_plan_.hashSeed(f);
        chunked(jag.values.size(), [&](size_t pos, size_t len) {
            sigridHashInto(
                std::span<const int64_t>(col.values().data() + pos, len),
                std::span<int64_t>(jag.values.data() + pos, len), seed,
                reference_plan_.tableSize());
        });
        counters_.hash_values += jag.values.size();

        jag.lengths.resize(batch);
        for (size_t r = 0; r < batch; ++r)
            jag.lengths[r] = static_cast<uint32_t>(col.rowLength(r));
        counters_.convert_values += jag.values.size();
    }

    for (char used : unit_used_)
        counters_.feature_units_used += used != 0;

    arena_.noteBatch();
    PRESTO_CHECK(mb.consistent(), "emulator produced a bad batch");
    return Status::okStatus();
}

}  // namespace presto
