/**
 * @file
 * Discrete-event simulation of the end-to-end RecSys training pipeline
 * (Figure 9): preprocessing workers produce mini-batches into the train
 * manager's bounded input queue; the GPU training worker consumes them.
 *
 * This is where Figure 3's GPU utilization and the throughput numbers of
 * Figure 11 come from: when the aggregate preprocessing throughput falls
 * short of the GPU's demand, the queue runs dry and the GPU idles.
 */
#ifndef PRESTO_CORE_TRAINING_PIPELINE_H_
#define PRESTO_CORE_TRAINING_PIPELINE_H_

#include <string>

#include "datagen/rm_config.h"
#include "models/isp_model.h"

namespace presto {

/** Which device executes the preprocessing workers. */
enum class PreprocBackend {
    kColocatedCpu,  ///< training-node cores, local storage reads
    kDisaggCpu,     ///< disaggregated pool cores, remote Extract
    kIsp,           ///< accelerator devices (SmartSSD / U280 builds)
};

/** Pipeline simulation knobs. */
struct PipelineOptions {
    PreprocBackend backend = PreprocBackend::kDisaggCpu;
    int num_workers = 1;          ///< CPU cores or ISP devices
    int num_gpus = 1;             ///< training consumers
    size_t queue_capacity = 32;   ///< train-manager input queue depth
    size_t batches_to_train = 512;///< simulation length
    IspParams isp_params;         ///< used when backend == kIsp
};

/** Measured outcome of one pipeline simulation. */
struct PipelineResult {
    double sim_seconds = 0;
    size_t batches_trained = 0;
    double train_throughput = 0;      ///< batches/sec actually trained
    double preproc_throughput = 0;    ///< batches/sec produced
    double gpu_utilization = 0;       ///< busy fraction of the GPU(s)
    double gpu_max_throughput = 0;    ///< demand line (dotted in Fig 3)
    size_t max_stalled_producers = 0; ///< backpressure high-water mark
};

/**
 * Runs the producer-consumer pipeline simulation for one workload.
 */
class TrainingPipeline
{
  public:
    TrainingPipeline(const RmConfig& config, PipelineOptions options);

    /** Simulate until batches_to_train are consumed; deterministic. */
    PipelineResult run() const;

    /** Per-worker batch production period for the configured backend. */
    double workerPeriodSeconds() const;

  private:
    RmConfig config_;
    PipelineOptions options_;
};

}  // namespace presto

#endif  // PRESTO_CORE_TRAINING_PIPELINE_H_
