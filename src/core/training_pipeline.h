/**
 * @file
 * Discrete-event simulation of the end-to-end RecSys training pipeline
 * (Figure 9): preprocessing workers produce mini-batches into the train
 * manager's bounded input queue; the GPU training worker consumes them.
 *
 * This is where Figure 3's GPU utilization and the throughput numbers of
 * Figure 11 come from: when the aggregate preprocessing throughput falls
 * short of the GPU's demand, the queue runs dry and the GPU idles.
 *
 * A FaultSpec turns on degraded-mode simulation: workers can fail-stop
 * mid-run (surviving workers keep producing while the queue drains and
 * GPU utilization dips), straggle at a slowdown factor, suffer
 * transient partition-read errors retried with exponential backoff, or
 * deliver corrupt partitions that cost a re-fetch. All fault effects
 * are deterministic given the spec's seed, and a default FaultSpec
 * reproduces the fault-free simulation bit for bit.
 */
#ifndef PRESTO_CORE_TRAINING_PIPELINE_H_
#define PRESTO_CORE_TRAINING_PIPELINE_H_

#include <string>

#include "common/fault_injector.h"
#include "datagen/rm_config.h"
#include "models/isp_model.h"

namespace presto {

/** Which device executes the preprocessing workers. */
enum class PreprocBackend {
    kColocatedCpu,  ///< training-node cores, local storage reads
    kDisaggCpu,     ///< disaggregated pool cores, remote Extract
    kIsp,           ///< accelerator devices (SmartSSD / U280 builds)
};

/** Pipeline simulation knobs. */
struct PipelineOptions {
    PreprocBackend backend = PreprocBackend::kDisaggCpu;
    int num_workers = 1;          ///< CPU cores or ISP devices
    int num_gpus = 1;             ///< training consumers
    size_t queue_capacity = 32;   ///< train-manager input queue depth
    size_t batches_to_train = 512;///< simulation length
    IspParams isp_params;         ///< used when backend == kIsp
    FaultSpec faults;             ///< default: no faults injected
    /**
     * Model the staged Extract/Transform pipeline inside each worker:
     * fetch+decode of partition N+1 overlaps the transform of N, so the
     * steady-state batch period shrinks to the slower of the two stages
     * (the backend's latency breakdown decides the split). Off keeps
     * the seed's sequential per-worker schedule.
     */
    bool prefetch_overlap = false;
};

/** Fault-handling activity observed during one pipeline simulation. */
struct PipelineDegradation {
    size_t workers_failed = 0;      ///< fail-stops + exhausted retries
    size_t straggler_workers = 0;   ///< workers running slowed down
    int surviving_workers = 0;      ///< producers alive at sim end
    uint64_t transient_read_errors = 0;  ///< injected read failures
    uint64_t read_retries = 0;           ///< backoff retries executed
    double retry_backoff_seconds = 0;    ///< total time spent backing off
    uint64_t corrupt_batches_refetched = 0;  ///< CRC-failed partitions
    double refetch_seconds = 0;     ///< time spent re-fetching partitions
    double gpu_idle_seconds = 0;    ///< aggregate GPU starvation time
    /** True when producers died before batches_to_train completed. */
    bool starved = false;
};

/** Measured outcome of one pipeline simulation. */
struct PipelineResult {
    double sim_seconds = 0;
    size_t batches_trained = 0;
    double train_throughput = 0;      ///< batches/sec actually trained
    double preproc_throughput = 0;    ///< batches/sec produced
    double gpu_utilization = 0;       ///< busy fraction of the GPU(s)
    double gpu_max_throughput = 0;    ///< demand line (dotted in Fig 3)
    size_t max_stalled_producers = 0; ///< backpressure high-water mark
    /** Fault counters are all zero in fault-free runs (idle time and
     *  surviving_workers are reported either way). */
    PipelineDegradation degradation;
};

/**
 * Runs the producer-consumer pipeline simulation for one workload.
 */
class TrainingPipeline
{
  public:
    TrainingPipeline(const RmConfig& config, PipelineOptions options);

    /**
     * Simulate until batches_to_train are consumed — or, under injected
     * faults, until every producer has failed and the queue is dry
     * (degradation.starved is then set and batches_trained reports the
     * partial progress). Deterministic.
     */
    PipelineResult run() const;

    /** Per-worker batch production period for the configured backend. */
    double workerPeriodSeconds() const;

  private:
    RmConfig config_;
    PipelineOptions options_;
};

}  // namespace presto

#endif  // PRESTO_CORE_TRAINING_PIPELINE_H_
