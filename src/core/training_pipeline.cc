#include "core/training_pipeline.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "models/breakdown.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "sim/sim_queue.h"
#include "sim/simulator.h"
#include "sim/utilization.h"

namespace presto {

TrainingPipeline::TrainingPipeline(const RmConfig& config,
                                   PipelineOptions options)
    : config_(config), options_(std::move(options))
{
    PRESTO_CHECK(options_.num_workers >= 1, "need at least one worker");
    PRESTO_CHECK(options_.num_gpus >= 1, "need at least one GPU");
    PRESTO_CHECK(options_.batches_to_train >= 1, "nothing to simulate");
}

namespace {

/** Fraction of a batch spent in the Extract (read + decode) stage. */
double
extractShare(const LatencyBreakdown& lat)
{
    const double t = lat.total();
    return t > 0 ? (lat.extract_read + lat.extract_decode) / t : 0.0;
}

/**
 * Steady-state period scale of a two-stage pipeline: with Extract of
 * partition N+1 overlapping Transform of N, a worker emits a batch
 * every max(extract, transform) instead of their sum.
 */
double
overlapScale(const LatencyBreakdown& lat)
{
    const double es = extractShare(lat);
    return std::max(es, 1.0 - es);
}

}  // namespace

double
TrainingPipeline::workerPeriodSeconds() const
{
    switch (options_.backend) {
      case PreprocBackend::kColocatedCpu: {
        CpuWorkerModel cpu(config_);
        const double period = 1.0 / cpu.colocatedThroughputPerCore();
        return options_.prefetch_overlap
                   ? period * overlapScale(cpu.batchLatencyLocalRead())
                   : period;
      }
      case PreprocBackend::kDisaggCpu: {
        CpuWorkerModel cpu(config_);
        const double period = 1.0 / cpu.throughputPerCore();
        return options_.prefetch_overlap
                   ? period * overlapScale(cpu.batchLatency())
                   : period;
      }
      case PreprocBackend::kIsp: {
        IspDeviceModel device(options_.isp_params, config_);
        const double period = 1.0 / device.throughput();
        return options_.prefetch_overlap
                   ? period * overlapScale(device.batchLatency())
                   : period;
      }
    }
    PRESTO_PANIC("unknown backend");
}

PipelineResult
TrainingPipeline::run() const
{
    Simulator sim;
    SimQueue<size_t> queue(options_.queue_capacity);
    UtilizationTracker gpu_busy;

    GpuTrainModel gpu(config_);
    const double step_time = 1.0 / gpu.maxThroughput();
    const double worker_period = workerPeriodSeconds();

    const FaultInjector injector(options_.faults);
    const bool faulty = injector.enabled();

    size_t produced = 0;
    size_t trained = 0;
    double end_time = 0.0;
    bool done = false;

    PipelineDegradation deg;
    const size_t workers = static_cast<size_t>(options_.num_workers);
    std::vector<char> dead(workers, 0);
    std::vector<double> slowdown(workers, 1.0);
    std::vector<uint64_t> read_event(workers, 0);
    std::vector<uint64_t> fetch_event(workers, 0);
    if (faulty) {
        for (size_t w = 0; w < workers; ++w) {
            slowdown[w] = injector.slowdownFactor(static_cast<int>(w));
            if (slowdown[w] > 1.0)
                ++deg.straggler_workers;
        }
    }

    // Preprocessing workers: each is an independent produce loop. Worker
    // start offsets are staggered so producers do not fire in lockstep.
    // Under faults, one produced batch costs:
    //   (transient-read backoffs) + period * slowdown + (re-fetch cost)
    // where a CRC-detected corrupt partition is re-fetched and decoded
    // again (one extra slowed period).
    std::function<void(int)> produce = [&](int worker) {
        if (done || dead[static_cast<size_t>(worker)])
            return;
        double delay = worker_period;
        if (faulty) {
            const auto w = static_cast<size_t>(worker);
            delay *= slowdown[w];
            // Extract: the partition read can fail transiently; retry
            // with exponential backoff until the retry budget runs out,
            // at which point the device is declared failed.
            int retry = 0;
            while (injector.transientReadError(
                static_cast<uint64_t>(worker), read_event[w]++)) {
                ++deg.transient_read_errors;
                if (retry >= options_.faults.max_read_retries) {
                    dead[w] = 1;
                    ++deg.workers_failed;
                    return;
                }
                const double backoff = injector.retryBackoffSec(retry);
                delay += backoff;
                deg.retry_backoff_seconds += backoff;
                ++deg.read_retries;
                ++retry;
            }
            // Decode: a bit-flipped partition fails its page CRC after
            // delivery; the fallback re-fetches it from a replica.
            if (injector.corruptionOccurs(static_cast<uint64_t>(worker),
                                          fetch_event[w]++)) {
                const double refetch = worker_period * slowdown[w];
                delay += refetch;
                deg.refetch_seconds += refetch;
                ++deg.corrupt_batches_refetched;
            }
        }
        sim.schedule(delay, [&, worker] {
            if (done || dead[static_cast<size_t>(worker)])
                return;
            queue.push(produced++, [&, worker] {
                // Space acknowledged: immediately begin the next batch.
                produce(worker);
            });
        });
    };

    // GPU training workers: consume, train for step_time, repeat.
    std::function<void(int)> consume = [&](int g) {
        if (done)
            return;
        queue.pop([&, g](size_t) {
            gpu_busy.addBusy(step_time);
            sim.schedule(step_time, [&, g] {
                ++trained;
                if (trained >= options_.batches_to_train) {
                    done = true;
                    end_time = sim.now();
                    return;
                }
                consume(g);
            });
        });
    };

    for (int w = 0; w < options_.num_workers; ++w) {
        const double offset =
            worker_period * static_cast<double>(w) /
            static_cast<double>(options_.num_workers);
        sim.schedule(offset, [&, w] { produce(w); });
    }
    for (int g = 0; g < options_.num_gpus; ++g)
        consume(g);

    // Fail-stop faults: the worker dies at its scheduled time and its
    // in-flight batch is lost; survivors keep feeding the queue.
    if (faulty) {
        for (size_t w = 0; w < workers; ++w) {
            const auto when = injector.failStopTime(static_cast<int>(w));
            if (!when)
                continue;
            sim.scheduleAt(*when, [&, w] {
                if (done || dead[w])
                    return;
                dead[w] = 1;
                ++deg.workers_failed;
            });
        }
    }

    sim.run();
    if (!done) {
        // Only injected faults may leave training unfinished: producers
        // all died and the queue drained. Report the partial run.
        PRESTO_CHECK(faulty, "pipeline deadlocked before training finished");
        end_time = sim.now();
        deg.starved = true;
    }

    PipelineResult r;
    r.sim_seconds = end_time;
    r.batches_trained = trained;
    r.train_throughput =
        end_time > 0 ? static_cast<double>(trained) / end_time : 0.0;
    r.preproc_throughput =
        end_time > 0 ? static_cast<double>(queue.totalPushed()) / end_time
                     : 0.0;
    r.gpu_utilization = gpu_busy.utilization(
        end_time * static_cast<double>(options_.num_gpus));
    r.gpu_max_throughput =
        gpu.maxThroughput() * static_cast<double>(options_.num_gpus);
    r.max_stalled_producers = queue.maxWaitingProducers();
    deg.surviving_workers =
        options_.num_workers - static_cast<int>(deg.workers_failed);
    deg.gpu_idle_seconds =
        end_time * static_cast<double>(options_.num_gpus) -
        gpu_busy.busySeconds();
    if (deg.gpu_idle_seconds < 0)
        deg.gpu_idle_seconds = 0;
    r.degradation = deg;
    return r;
}

}  // namespace presto
