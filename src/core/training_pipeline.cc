#include "core/training_pipeline.h"

#include <memory>

#include "common/logging.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "sim/sim_queue.h"
#include "sim/simulator.h"
#include "sim/utilization.h"

namespace presto {

TrainingPipeline::TrainingPipeline(const RmConfig& config,
                                   PipelineOptions options)
    : config_(config), options_(std::move(options))
{
    PRESTO_CHECK(options_.num_workers >= 1, "need at least one worker");
    PRESTO_CHECK(options_.num_gpus >= 1, "need at least one GPU");
    PRESTO_CHECK(options_.batches_to_train >= 1, "nothing to simulate");
}

double
TrainingPipeline::workerPeriodSeconds() const
{
    switch (options_.backend) {
      case PreprocBackend::kColocatedCpu: {
        CpuWorkerModel cpu(config_);
        return 1.0 / cpu.colocatedThroughputPerCore();
      }
      case PreprocBackend::kDisaggCpu: {
        CpuWorkerModel cpu(config_);
        return 1.0 / cpu.throughputPerCore();
      }
      case PreprocBackend::kIsp: {
        IspDeviceModel device(options_.isp_params, config_);
        return 1.0 / device.throughput();
      }
    }
    PRESTO_PANIC("unknown backend");
}

PipelineResult
TrainingPipeline::run() const
{
    Simulator sim;
    SimQueue<size_t> queue(options_.queue_capacity);
    UtilizationTracker gpu_busy;

    GpuTrainModel gpu(config_);
    const double step_time = 1.0 / gpu.maxThroughput();
    const double worker_period = workerPeriodSeconds();

    size_t produced = 0;
    size_t trained = 0;
    double end_time = 0.0;
    bool done = false;

    // Preprocessing workers: each is an independent produce loop. Worker
    // start offsets are staggered so producers do not fire in lockstep.
    std::function<void(int)> produce = [&](int worker) {
        if (done)
            return;
        sim.schedule(worker_period, [&, worker] {
            if (done)
                return;
            queue.push(produced++, [&, worker] {
                // Space acknowledged: immediately begin the next batch.
                produce(worker);
            });
        });
    };

    // GPU training workers: consume, train for step_time, repeat.
    std::function<void(int)> consume = [&](int g) {
        if (done)
            return;
        queue.pop([&, g](size_t) {
            gpu_busy.addBusy(step_time);
            sim.schedule(step_time, [&, g] {
                ++trained;
                if (trained >= options_.batches_to_train) {
                    done = true;
                    end_time = sim.now();
                    return;
                }
                consume(g);
            });
        });
    };

    for (int w = 0; w < options_.num_workers; ++w) {
        const double offset =
            worker_period * static_cast<double>(w) /
            static_cast<double>(options_.num_workers);
        sim.schedule(offset, [&, w] { produce(w); });
    }
    for (int g = 0; g < options_.num_gpus; ++g)
        consume(g);

    sim.run();
    PRESTO_CHECK(done, "pipeline deadlocked before training finished");

    PipelineResult r;
    r.sim_seconds = end_time;
    r.batches_trained = trained;
    r.train_throughput =
        end_time > 0 ? static_cast<double>(trained) / end_time : 0.0;
    r.preproc_throughput =
        end_time > 0 ? static_cast<double>(queue.totalPushed()) / end_time
                     : 0.0;
    r.gpu_utilization = gpu_busy.utilization(
        end_time * static_cast<double>(options_.num_gpus));
    r.gpu_max_throughput =
        gpu.maxThroughput() * static_cast<double>(options_.num_gpus);
    r.max_stalled_producers = queue.maxWaitingProducers();
    return r;
}

}  // namespace presto
