#include "core/pool_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "core/provisioner.h"
#include "sim/simulator.h"

namespace presto {

double
PoolResult::utilization(int pool_size) const
{
    if (makespan_sec <= 0 || pool_size <= 0)
        return 0.0;
    return device_busy_sec / (makespan_sec * pool_size);
}

PoolScheduler::PoolScheduler(int pool_size, IspParams params)
    : pool_size_(pool_size), params_(std::move(params))
{
    PRESTO_CHECK(pool_size_ >= 1, "pool needs at least one device");
}

int
PoolScheduler::devicesForJob(const PoolJob& job) const
{
    Provisioner prov(rmConfig(job.rm_id));
    return prov.provisionIsp(job.num_gpus, params_).workers;
}

PoolResult
PoolScheduler::run(std::vector<PoolJob> jobs) const
{
    // Stable arrival order (FCFS admission by arrival time, then index).
    std::vector<size_t> order(jobs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return jobs[a].arrival_sec < jobs[b].arrival_sec;
                     });

    PoolResult result;
    result.jobs.resize(jobs.size());

    Simulator sim;
    int free_devices = pool_size_;
    int in_use = 0;
    std::deque<size_t> admission_queue;  // job indices waiting FCFS

    // Admit from the head of the queue while capacity allows. FCFS:
    // a large job at the head blocks smaller jobs behind it (no
    // backfilling), keeping admission order deterministic and fair.
    std::function<void()> tryAdmit = [&] {
        while (!admission_queue.empty()) {
            const size_t idx = admission_queue.front();
            const int need = result.jobs[idx].devices;
            if (need > free_devices)
                return;
            admission_queue.pop_front();
            free_devices -= need;
            in_use += need;
            result.peak_devices_in_use =
                std::max(result.peak_devices_in_use, in_use);

            PoolJobResult& job_result = result.jobs[idx];
            job_result.start_sec = sim.now();
            const double duration = jobs[idx].duration_sec;
            job_result.finish_sec = sim.now() + duration;
            result.device_busy_sec += duration * need;
            sim.schedule(duration, [&, idx, need] {
                free_devices += need;
                in_use -= need;
                result.makespan_sec =
                    std::max(result.makespan_sec, sim.now());
                tryAdmit();
            });
        }
    };

    for (size_t idx : order) {
        const PoolJob& job = jobs[idx];
        PRESTO_CHECK(job.arrival_sec >= 0 && job.duration_sec > 0,
                     "job times must be positive");
        PoolJobResult& job_result = result.jobs[idx];
        job_result.job_index = idx;
        job_result.arrival_sec = job.arrival_sec;
        job_result.devices = devicesForJob(job);
        if (job_result.devices > pool_size_) {
            // Cannot ever fit: reject.
            job_result.devices = 0;
            job_result.start_sec = job_result.finish_sec = job.arrival_sec;
            continue;
        }
        sim.scheduleAt(job.arrival_sec, [&, idx] {
            admission_queue.push_back(idx);
            tryAdmit();
        });
    }

    sim.run();

    double wait_sum = 0;
    size_t admitted = 0;
    for (const auto& job_result : result.jobs) {
        if (job_result.devices == 0)
            continue;
        wait_sum += job_result.waitSec();
        ++admitted;
    }
    result.mean_wait_sec = admitted ? wait_sum / admitted : 0.0;
    return result;
}

}  // namespace presto
