#include "core/pool_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "core/provisioner.h"
#include "sim/simulator.h"

namespace presto {

const char*
rejectKindName(RejectKind kind)
{
    switch (kind) {
    case RejectKind::kNone:
        return "none";
    case RejectKind::kDemandExceedsPool:
        return "demand_exceeds_pool";
    case RejectKind::kCapacityLost:
        return "capacity_lost";
    case RejectKind::kSloBudget:
        return "slo_budget";
    }
    return "unknown";
}

double
PoolResult::utilization(int pool_size) const
{
    if (makespan_sec <= 0 || pool_size <= 0)
        return 0.0;
    return device_busy_sec / (makespan_sec * pool_size);
}

PoolScheduler::PoolScheduler(int pool_size, IspParams params)
    : pool_size_(pool_size), params_(std::move(params))
{
    PRESTO_CHECK(pool_size_ >= 1, "pool needs at least one device");
}

int
PoolScheduler::devicesForJob(const PoolJob& job) const
{
    Provisioner prov(rmConfig(job.rm_id));
    return prov.provisionIsp(job.num_gpus, params_).workers;
}

PoolResult
PoolScheduler::run(std::vector<PoolJob> jobs) const
{
    return runImpl(std::move(jobs), nullptr);
}

PoolResult
PoolScheduler::run(std::vector<PoolJob> jobs,
                   const FaultInjector& faults) const
{
    return runImpl(std::move(jobs), faults.enabled() ? &faults : nullptr);
}

PoolResult
PoolScheduler::runImpl(std::vector<PoolJob> jobs,
                       const FaultInjector* faults) const
{
    // Stable arrival order (FCFS admission by arrival time, then index).
    std::vector<size_t> order(jobs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return jobs[a].arrival_sec < jobs[b].arrival_sec;
                     });

    PoolResult result;
    result.jobs.resize(jobs.size());

    Simulator sim;
    int free_devices = pool_size_;
    int in_use = 0;
    std::deque<size_t> admission_queue;  // job indices waiting FCFS
    std::vector<int> alloc(jobs.size(), 0);    // devices currently held
    std::vector<char> running(jobs.size(), 0);

    // Capacity a running job lost to a fail-stop and is waiting to get
    // back. Served FIFO, ahead of new admissions.
    struct Replacement {
        size_t job;
        double fail_time;
    };
    std::deque<Replacement> replacement_queue;

    // Admit from the head of the queue while capacity allows. FCFS:
    // a large job at the head blocks smaller jobs behind it (no
    // backfilling), keeping admission order deterministic and fair.
    // Replacement requests outrank new admissions: restoring a running
    // job's lost throughput beats starting more underfed work.
    std::function<void()> tryAdmit = [&] {
        while (!replacement_queue.empty() && free_devices > 0) {
            const Replacement repl = replacement_queue.front();
            replacement_queue.pop_front();
            if (!running[repl.job])
                continue;  // job finished while degraded
            --free_devices;
            ++in_use;
            ++alloc[repl.job];
            result.peak_devices_in_use =
                std::max(result.peak_devices_in_use, in_use);
            const double latency = sim.now() - repl.fail_time;
            result.jobs[repl.job].reprovision_latency_sec += latency;
            result.jobs[repl.job].capacity_loss_device_sec += latency;
            result.capacity_loss_device_sec += latency;
            ++result.replacements_granted;
            result.mean_reprovision_latency_sec += latency;  // sum; div later
        }
        while (!admission_queue.empty()) {
            const size_t idx = admission_queue.front();
            const int need = result.jobs[idx].devices;
            if (need > free_devices)
                return;
            admission_queue.pop_front();
            free_devices -= need;
            in_use += need;
            alloc[idx] = need;
            running[idx] = 1;
            result.peak_devices_in_use =
                std::max(result.peak_devices_in_use, in_use);

            PoolJobResult& job_result = result.jobs[idx];
            job_result.start_sec = sim.now();
            const double duration = jobs[idx].duration_sec;
            job_result.finish_sec = sim.now() + duration;
            result.device_busy_sec += duration * need;
            sim.schedule(duration, [&, idx] {
                // Release whatever the job currently holds (it may have
                // shrunk under failures or been restored since).
                free_devices += alloc[idx];
                in_use -= alloc[idx];
                alloc[idx] = 0;
                running[idx] = 0;
                // Un-replaced losses stay degraded to the end: account
                // the capacity hole up to the finish time.
                for (auto it = replacement_queue.begin();
                     it != replacement_queue.end();) {
                    if (it->job == idx) {
                        const double loss = sim.now() - it->fail_time;
                        result.jobs[idx].capacity_loss_device_sec += loss;
                        result.capacity_loss_device_sec += loss;
                        it = replacement_queue.erase(it);
                    } else {
                        ++it;
                    }
                }
                result.makespan_sec =
                    std::max(result.makespan_sec, sim.now());
                tryAdmit();
            });
        }
    };

    for (size_t idx : order) {
        const PoolJob& job = jobs[idx];
        PRESTO_CHECK(job.arrival_sec >= 0 && job.duration_sec > 0,
                     "job times must be positive");
        PoolJobResult& job_result = result.jobs[idx];
        job_result.job_index = idx;
        job_result.arrival_sec = job.arrival_sec;
        job_result.devices = devicesForJob(job);
        if (job_result.devices > pool_size_) {
            // Cannot ever fit: reject.
            job_result.reject_reason =
                "demand of " + std::to_string(job_result.devices) +
                " devices exceeds pool of " + std::to_string(pool_size_);
            job_result.reject_kind = RejectKind::kDemandExceedsPool;
            job_result.devices = 0;
            job_result.rejected = true;
            job_result.start_sec = job_result.finish_sec = job.arrival_sec;
            continue;
        }
        sim.scheduleAt(job.arrival_sec, [&, idx] {
            // SLO admission: the committed work ahead of this job,
            // spread over the whole pool, is the optimistic lower bound
            // on its wait for capacity. A job whose budget is already
            // blown by that bound is rejected up front instead of
            // queueing into a promise the pool cannot keep.
            double outstanding_device_sec = 0;
            for (size_t j = 0; j < jobs.size(); ++j) {
                if (running[j]) {
                    outstanding_device_sec +=
                        alloc[j] *
                        std::max(0.0, result.jobs[j].finish_sec - sim.now());
                }
            }
            for (const size_t queued : admission_queue) {
                outstanding_device_sec +=
                    result.jobs[queued].devices * jobs[queued].duration_sec;
            }
            PoolJobResult& job_result = result.jobs[idx];
            job_result.projected_wait_sec =
                outstanding_device_sec / pool_size_;
            if (jobs[idx].max_wait_slo_sec > 0 &&
                job_result.projected_wait_sec > jobs[idx].max_wait_slo_sec) {
                job_result.reject_reason =
                    "projected wait of " +
                    std::to_string(job_result.projected_wait_sec) +
                    "s exceeds admission SLO budget of " +
                    std::to_string(jobs[idx].max_wait_slo_sec) + "s";
                job_result.reject_kind = RejectKind::kSloBudget;
                job_result.devices = 0;
                job_result.rejected = true;
                job_result.start_sec = job_result.finish_sec =
                    job_result.arrival_sec;
                return;
            }
            admission_queue.push_back(idx);
            tryAdmit();
        });
    }

    // Device fail-stops: each removes one device from the pool for good.
    // An idle device absorbs the failure silently; otherwise the running
    // job with the largest allocation (ties: lowest index) loses one
    // device and queues a replacement request.
    if (faults != nullptr) {
        for (const FailStop& fs : faults->failStopsByTime()) {
            sim.scheduleAt(fs.time_sec, [&] {
                if (free_devices > 0) {
                    --free_devices;
                    ++result.devices_failed;
                    return;
                }
                size_t victim = jobs.size();
                for (size_t j = 0; j < jobs.size(); ++j) {
                    if (!running[j])
                        continue;
                    if (victim == jobs.size() ||
                        alloc[j] > alloc[victim])
                        victim = j;
                }
                if (victim == jobs.size() || alloc[victim] == 0)
                    return;  // every device already failed
                --alloc[victim];
                --in_use;
                ++result.devices_failed;
                ++result.jobs[victim].devices_lost;
                ++result.replacements_requested;
                replacement_queue.push_back(Replacement{victim, sim.now()});
            });
        }
    }

    sim.run();

    // Jobs still queued when the trace drains were starved by capacity
    // lost to failures (or head-of-line blocking behind such a job).
    for (const size_t idx : admission_queue) {
        PoolJobResult& job_result = result.jobs[idx];
        job_result.devices = 0;
        job_result.rejected = true;
        job_result.reject_reason =
            "pool capacity lost to device failures before admission";
        job_result.reject_kind = RejectKind::kCapacityLost;
        job_result.start_sec = job_result.finish_sec =
            job_result.arrival_sec;
    }

    double wait_sum = 0;
    size_t admitted = 0;
    for (const auto& job_result : result.jobs) {
        if (job_result.devices == 0)
            continue;
        wait_sum += job_result.waitSec();
        ++admitted;
    }
    result.mean_wait_sec = admitted ? wait_sum / admitted : 0.0;
    if (result.replacements_granted > 0)
        result.mean_reprovision_latency_sec /= result.replacements_granted;
    return result;
}

}  // namespace presto
