/**
 * @file
 * PartitionStore: the storage-node substrate holding encoded columnar
 * partitions (Figure 1's data-storage stage).
 *
 * Each partition (one mini-batch worth of rows) is a self-contained PSF
 * file stored contiguously on one device — the property (from Meta's
 * Tectonic layout) that lets a SmartSSD preprocess a partition entirely
 * locally. Partitions are materialized lazily and deterministically from
 * the synthetic generator.
 */
#ifndef PRESTO_CORE_PARTITION_STORE_H_
#define PRESTO_CORE_PARTITION_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/fault_injector.h"
#include "datagen/generator.h"
#include "store/segment_store.h"

namespace presto {

/** In-memory stand-in for one storage device's partition set. */
class PartitionStore
{
  public:
    /**
     * @param generator Source of raw partitions (owned by the caller,
     *        must outlive the store).
     */
    explicit PartitionStore(const RawDataGenerator& generator,
                            WriterOptions writer_options = {});

    /**
     * Encoded PSF bytes of a partition (generated on first access).
     * With a cache budget set, the reference is only guaranteed valid
     * until the next partition() call on any thread — long-lived
     * callers should use fetchPartition(), which returns a copy.
     */
    const std::vector<uint8_t>& partition(uint64_t partition_id);

    /**
     * Bound the encoded-partition cache to @p bytes (0 = unlimited,
     * the default). When an insert pushes the cache over budget, the
     * oldest cached partitions are evicted (FIFO); partition content is
     * a pure function of (generator seed, id), so an evicted partition
     * re-materializes bit-identically on its next access. This is what
     * lets a continuously running service stream unboundedly many
     * epochs through a bounded memory footprint.
     */
    void setCacheBudget(uint64_t bytes);

    /** Encoded bytes currently cached. */
    uint64_t cachedBytes() const;

    /** Partitions evicted by the cache budget so far. */
    uint64_t evictions() const;

    /**
     * Install a fault injector for fetchPartition (nullptr disables;
     * the injector must outlive the store). The cached partitions stay
     * pristine — faults only affect fetched copies.
     */
    void setFaultInjector(const FaultInjector* faults);

    /**
     * Fetch a copy of the partition the way a preprocessing worker
     * reads it off the device. With a fault injector installed, the
     * read can fail transiently (kUnavailable) or deliver bytes with a
     * bit flipped — which the PSF page CRCs catch downstream, making
     * this the hook for exercising the corruption-recovery path.
     *
     * Tiering: a partition resident in the hot memory tier (see
     * promotePartition) is served straight from memory — no device
     * read, so no fault draw — and counted as a hot-tier hit. Any
     * other fetch is a cold fetch: served from the encoded cache when
     * present, re-read from the backing segment store (persistent
     * mode, counted in diskReads()) or re-materialized from the
     * generator otherwise. A retired partition is kNotFound.
     *
     * @param attempt Retry ordinal of this fetch (0 = first try);
     *        part of the deterministic fault-draw identity.
     * @param hot_tier_hit Optional: set to whether this fetch was
     *        served from the hot tier.
     */
    StatusOr<std::vector<uint8_t>> fetchPartition(
        uint64_t partition_id, uint64_t attempt = 0,
        bool* hot_tier_hit = nullptr);

    // --- Hot memory tier -------------------------------------------------
    //
    // The hot tier holds the encoded bytes of the epoch trainers are
    // actually streaming (the catalog promotes the head epoch into it).
    // Hot entries are exempt from the FIFO cache eviction and are served
    // without touching the device path at all; the tier is bounded by
    // its own budget so promotion of a fat epoch degrades to partial
    // residency instead of unbounded memory growth.

    /**
     * Bound the hot tier to @p bytes (0 = promotion disabled; the
     * default). Shrinking the budget below current residency demotes
     * hottest-last until it fits.
     */
    void setHotTierBudget(uint64_t bytes);

    /**
     * Pin @p partition_id's encoded bytes into the hot tier.
     * kResourceExhausted when the budget cannot hold it (callers stop
     * promoting the rest of the epoch); ok and idempotent otherwise.
     */
    Status promotePartition(uint64_t partition_id);

    /** Drop @p partition_id from the hot tier (no-op when absent). */
    void demotePartition(uint64_t partition_id);

    /** Encoded bytes currently resident in the hot tier. */
    uint64_t hotTierBytes() const;

    /** Partitions currently resident in the hot tier. */
    size_t hotTierCount() const;

    /** Fetches served from the hot tier. */
    uint64_t hotTierHits() const;

    /** Fetches served outside the hot tier (cache, disk, generator). */
    uint64_t coldFetches() const;

    /** Cold fetches that re-read encoded bytes off the segment store. */
    uint64_t diskReads() const;

    // --- Retirement ------------------------------------------------------

    /**
     * Retire @p partition_id: durably retire every live segment holding
     * it on the backing store (persistent mode; each retire record is
     * journaled before the unlink, so a crash mid-retire recovers to
     * the journal's prefix), then drop its cached and hot-tier bytes
     * and refuse future fetches with kNotFound. Idempotent.
     * @return encoded bytes reclaimed (disk bytes in persistent mode,
     *         cached bytes otherwise).
     */
    StatusOr<uint64_t> retirePartition(uint64_t partition_id);

    /** True when @p partition_id has been retired. */
    bool isRetired(uint64_t partition_id) const;

    /** Encoded size of a partition in bytes. */
    uint64_t partitionBytes(uint64_t partition_id);

    /** Number of partitions materialized so far. */
    size_t materializedCount() const;

    /** True when a fault injector is installed and active. */
    bool faultInjectionEnabled() const;

    /**
     * The installed fault injector (nullptr when none is active). The
     * async read path hands this to an IoRing so page-granular reads
     * draw from the same deterministic fault oracle as fetchPartition.
     */
    const FaultInjector* faultInjector() const;

    const RawDataGenerator& generator() const { return generator_; }

    /**
     * Persistence mode: back this store with an on-disk SegmentStore
     * (not owned; must outlive this object; nullptr disables). Once
     * enabled, persistPartition() commits partitions as durable
     * segments and the async Extract path streams their pages from
     * real storage through the IoRing instead of from the in-memory
     * cache.
     */
    void enablePersistence(SegmentStore* segments);

    /** The backing segment store (nullptr when persistence is off). */
    SegmentStore* segmentStore() const;

    /**
     * Ensure @p partition_id is durably committed, encoding and
     * appending it on first call; idempotent afterwards (recovered
     * segments from an earlier process are reused, not rewritten).
     * @return the live segment id holding the partition.
     */
    StatusOr<uint64_t> persistPartition(uint64_t partition_id);

  private:
    /** Materialize (if needed) and return @p partition_id; mu_ held. */
    const std::vector<uint8_t>& partitionLocked(uint64_t partition_id);
    /** Insert freshly obtained encoded bytes into the cache and evict
        past the budget; mu_ held. Returns the cached entry. */
    const std::vector<uint8_t>& insertCacheLocked(
        uint64_t partition_id, std::vector<uint8_t> bytes);
    /** Copy of the encoded bytes, taken while holding mu_ — safe
        against concurrent eviction, unlike the reference from
        partition(). */
    std::vector<uint8_t> partitionCopy(uint64_t partition_id);
    /** Demote hot entries (largest id first) until the tier fits its
        budget; mu_ held. */
    void shrinkHotTierLocked();

    const RawDataGenerator& generator_;
    ColumnarFileWriter writer_;
    const FaultInjector* faults_ = nullptr;
    SegmentStore* segments_ = nullptr;
    mutable std::mutex mu_;
    std::map<uint64_t, std::vector<uint8_t>> partitions_;
    std::deque<uint64_t> cache_order_;  ///< insertion order for eviction
    uint64_t cache_budget_bytes_ = 0;   ///< 0 = unlimited
    uint64_t cached_bytes_ = 0;
    uint64_t evictions_ = 0;
    std::map<uint64_t, std::vector<uint8_t>> hot_;  ///< hot memory tier
    uint64_t hot_budget_bytes_ = 0;  ///< 0 = promotion disabled
    uint64_t hot_bytes_ = 0;
    uint64_t hot_hits_ = 0;
    uint64_t cold_fetches_ = 0;
    uint64_t disk_reads_ = 0;
    std::set<uint64_t> retired_;  ///< retired partition ids
};

}  // namespace presto

#endif  // PRESTO_CORE_PARTITION_STORE_H_
