/**
 * @file
 * Elastic ISP-device pool scheduling.
 *
 * The disaggregated-CPU baseline's key operational property is elastic,
 * on-demand allocation of preprocessing capacity per training job
 * (Section II-D). PreSto keeps that property at device granularity: a
 * storage cluster exposes its SmartSSDs as a pool, and each arriving
 * training job is allocated ceil(T/P) devices for its lifetime.
 *
 * This module simulates such a pool under a deterministic job trace:
 * FCFS admission, per-job device counts from the Provisioner, and
 * device-hour accounting.
 */
#ifndef PRESTO_CORE_POOL_SCHEDULER_H_
#define PRESTO_CORE_POOL_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "datagen/rm_config.h"
#include "models/isp_model.h"

namespace presto {

/** One training job in the trace. */
struct PoolJob {
    double arrival_sec = 0;
    double duration_sec = 0;  ///< training time once running
    int rm_id = 1;
    int num_gpus = 8;
};

/** Per-job outcome. */
struct PoolJobResult {
    size_t job_index = 0;
    int devices = 0;
    double arrival_sec = 0;
    double start_sec = 0;  ///< admission time (>= arrival under queueing)
    double finish_sec = 0;

    double waitSec() const { return start_sec - arrival_sec; }
};

/** Aggregate outcome of one pool simulation. */
struct PoolResult {
    std::vector<PoolJobResult> jobs;
    double makespan_sec = 0;        ///< last finish time
    double device_busy_sec = 0;     ///< sum of device x busy seconds
    int peak_devices_in_use = 0;
    double mean_wait_sec = 0;

    /** Pool-wide device utilization over the makespan. */
    double utilization(int pool_size) const;
};

/**
 * FCFS elastic pool simulator for one accelerator build.
 */
class PoolScheduler
{
  public:
    /**
     * @param pool_size Devices in the storage cluster.
     * @param params Accelerator build (sets per-device throughput).
     */
    PoolScheduler(int pool_size, IspParams params = IspParams::smartSsd());

    /** Devices the T/P rule assigns to one job. */
    int devicesForJob(const PoolJob& job) const;

    /**
     * Simulate a trace. Jobs are admitted FCFS; a job whose device
     * demand exceeds the whole pool is rejected (dropped with devices=0
     * in the result). Deterministic.
     */
    PoolResult run(std::vector<PoolJob> jobs) const;

    int poolSize() const { return pool_size_; }

  private:
    int pool_size_;
    IspParams params_;
};

}  // namespace presto

#endif  // PRESTO_CORE_POOL_SCHEDULER_H_
