/**
 * @file
 * Elastic ISP-device pool scheduling.
 *
 * The disaggregated-CPU baseline's key operational property is elastic,
 * on-demand allocation of preprocessing capacity per training job
 * (Section II-D). PreSto keeps that property at device granularity: a
 * storage cluster exposes its SmartSSDs as a pool, and each arriving
 * training job is allocated ceil(T/P) devices for its lifetime.
 *
 * This module simulates such a pool under a deterministic job trace:
 * FCFS admission, per-job device counts from the Provisioner, and
 * device-hour accounting. A FaultInjector can remove devices mid-run
 * (fail-stop); the scheduler is then failure-aware: a running job that
 * loses a device gets replacement capacity from the free pool as soon
 * as any is available (replacements outrank new admissions), and the
 * result reports re-provisioning latency and capacity-loss seconds —
 * the operational cost of a small pool where each device is a large
 * fraction of a job's preprocessing throughput.
 */
#ifndef PRESTO_CORE_POOL_SCHEDULER_H_
#define PRESTO_CORE_POOL_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "datagen/rm_config.h"
#include "models/isp_model.h"

namespace presto {

/** One training job in the trace. */
struct PoolJob {
    double arrival_sec = 0;
    double duration_sec = 0;  ///< training time once running
    int rm_id = 1;
    int num_gpus = 8;
    /**
     * Admission SLO budget: reject at arrival when the projected wait
     * for capacity (outstanding committed device-seconds / pool size)
     * already exceeds this. 0 = no budget (wait forever).
     */
    double max_wait_slo_sec = 0;
};

/** Why a job was rejected (machine-readable form of reject_reason). */
enum class RejectKind {
    kNone = 0,            ///< not rejected
    kDemandExceedsPool,   ///< can never fit in this pool
    kCapacityLost,        ///< starved by fail-stop capacity loss
    kSloBudget,           ///< projected wait exceeds max_wait_slo_sec
};

/** Short stable label of a RejectKind ("none", "demand", ...). */
const char* rejectKindName(RejectKind kind);

/** Per-job outcome. */
struct PoolJobResult {
    size_t job_index = 0;
    int devices = 0;
    double arrival_sec = 0;
    double start_sec = 0;  ///< admission time (>= arrival under queueing)
    double finish_sec = 0;
    bool rejected = false;        ///< never admitted (devices == 0)
    std::string reject_reason;    ///< empty unless rejected
    RejectKind reject_kind = RejectKind::kNone;
    /** Projected capacity wait computed at arrival (SLO admission). */
    double projected_wait_sec = 0;

    int devices_lost = 0;  ///< fail-stops that hit this job's allocation
    /** Summed wait from each device loss to its replacement grant. */
    double reprovision_latency_sec = 0;
    /** Device-seconds the job ran below its provisioned allocation. */
    double capacity_loss_device_sec = 0;

    double waitSec() const { return start_sec - arrival_sec; }
};

/** Aggregate outcome of one pool simulation. */
struct PoolResult {
    std::vector<PoolJobResult> jobs;
    double makespan_sec = 0;        ///< last finish time
    double device_busy_sec = 0;     ///< sum of device x busy seconds
    int peak_devices_in_use = 0;
    double mean_wait_sec = 0;

    int devices_failed = 0;          ///< fail-stops that removed a device
    int replacements_requested = 0;  ///< device losses that hit a running job
    int replacements_granted = 0;    ///< lost devices re-provisioned
    double mean_reprovision_latency_sec = 0;
    /** Total device-seconds jobs ran short of their allocation. */
    double capacity_loss_device_sec = 0;

    /** Pool-wide device utilization over the makespan. */
    double utilization(int pool_size) const;
};

/**
 * FCFS elastic pool simulator for one accelerator build.
 */
class PoolScheduler
{
  public:
    /**
     * @param pool_size Devices in the storage cluster.
     * @param params Accelerator build (sets per-device throughput).
     */
    PoolScheduler(int pool_size, IspParams params = IspParams::smartSsd());

    /** Devices the T/P rule assigns to one job. */
    int devicesForJob(const PoolJob& job) const;

    /**
     * Simulate a trace. Jobs are admitted FCFS; a job whose device
     * demand exceeds the whole pool is rejected (devices = 0 and the
     * `rejected` flag set in the result). Deterministic.
     */
    PoolResult run(std::vector<PoolJob> jobs) const;

    /**
     * Simulate a trace under injected device fail-stops. The fault
     * timeline comes from @p faults (FaultSpec::fail_stops; device ids
     * are ignored — the pool treats devices as fungible). Deterministic:
     * the same seed and spec reproduce the result byte for byte, and a
     * no-fault injector reproduces run(jobs) exactly.
     */
    PoolResult run(std::vector<PoolJob> jobs,
                   const FaultInjector& faults) const;

    int poolSize() const { return pool_size_; }

  private:
    PoolResult runImpl(std::vector<PoolJob> jobs,
                       const FaultInjector* faults) const;

    int pool_size_;
    IspParams params_;
};

}  // namespace presto

#endif  // PRESTO_CORE_POOL_SCHEDULER_H_
