#include "core/partition_store.h"

namespace presto {

PartitionStore::PartitionStore(const RawDataGenerator& generator,
                               WriterOptions writer_options)
    : generator_(generator), writer_(writer_options)
{
}

const std::vector<uint8_t>&
PartitionStore::partition(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id);
}

std::vector<uint8_t>
PartitionStore::partitionCopy(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id);
}

const std::vector<uint8_t>&
PartitionStore::partitionLocked(uint64_t partition_id)
{
    auto it = partitions_.find(partition_id);
    if (it == partitions_.end()) {
        RowBatch raw = generator_.generatePartition(partition_id);
        it = partitions_
                 .emplace(partition_id, writer_.write(raw, partition_id))
                 .first;
        cache_order_.push_back(partition_id);
        cached_bytes_ += it->second.size();
        // Evict oldest entries past the budget — but never the one just
        // requested, whose reference we are about to return.
        while (cache_budget_bytes_ > 0 &&
               cached_bytes_ > cache_budget_bytes_ &&
               cache_order_.front() != partition_id) {
            auto victim = partitions_.find(cache_order_.front());
            cache_order_.pop_front();
            if (victim == partitions_.end())
                continue;
            cached_bytes_ -= victim->second.size();
            partitions_.erase(victim);
            ++evictions_;
        }
    }
    return it->second;
}

void
PartitionStore::setCacheBudget(uint64_t bytes)
{
    std::scoped_lock lock(mu_);
    cache_budget_bytes_ = bytes;
}

uint64_t
PartitionStore::cachedBytes() const
{
    std::scoped_lock lock(mu_);
    return cached_bytes_;
}

uint64_t
PartitionStore::evictions() const
{
    std::scoped_lock lock(mu_);
    return evictions_;
}

void
PartitionStore::setFaultInjector(const FaultInjector* faults)
{
    std::scoped_lock lock(mu_);
    faults_ = (faults != nullptr && faults->enabled()) ? faults : nullptr;
}

StatusOr<std::vector<uint8_t>>
PartitionStore::fetchPartition(uint64_t partition_id, uint64_t attempt)
{
    // Fault draws key off (partition, attempt) — not thread schedule —
    // so concurrent workers observe a reproducible fault pattern. The
    // bytes are copied under the lock: with a cache budget set, a
    // concurrent materialization may evict this partition at any time.
    const FaultInjector* faults = nullptr;
    std::vector<uint8_t> bytes;
    {
        std::scoped_lock lock(mu_);
        bytes = partitionLocked(partition_id);
        faults = faults_;
    }
    if (faults == nullptr)
        return bytes;
    if (faults->transientReadError(partition_id, attempt)) {
        return Status::unavailable(
            "transient read error on partition " +
            std::to_string(partition_id) + " (attempt " +
            std::to_string(attempt) + ")");
    }
    if (faults->corruptionOccurs(partition_id, attempt))
        faults->corruptBytes(bytes, partition_id, attempt);
    return bytes;
}

void
PartitionStore::enablePersistence(SegmentStore* segments)
{
    std::scoped_lock lock(mu_);
    segments_ = segments;
}

SegmentStore*
PartitionStore::segmentStore() const
{
    std::scoped_lock lock(mu_);
    return segments_;
}

StatusOr<uint64_t>
PartitionStore::persistPartition(uint64_t partition_id)
{
    SegmentStore* segments = segmentStore();
    if (segments == nullptr)
        return Status::failedPrecondition("persistence is not enabled");
    auto existing = segments->segmentForPartition(partition_id);
    if (existing.ok())
        return existing->meta.segment_id;
    if (existing.status().code() != StatusCode::kNotFound)
        return existing.status();
    // First touch: encode (or reuse the cached encoding) and commit.
    // Copied under the lock — the cache may evict it concurrently.
    const std::vector<uint8_t> encoded = partitionCopy(partition_id);
    return segments->appendEncoded(encoded, partition_id);
}

uint64_t
PartitionStore::partitionBytes(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id).size();
}

size_t
PartitionStore::materializedCount() const
{
    std::scoped_lock lock(mu_);
    return partitions_.size();
}

bool
PartitionStore::faultInjectionEnabled() const
{
    std::scoped_lock lock(mu_);
    return faults_ != nullptr;
}

const FaultInjector*
PartitionStore::faultInjector() const
{
    std::scoped_lock lock(mu_);
    return faults_;
}

}  // namespace presto
