#include "core/partition_store.h"

namespace presto {

PartitionStore::PartitionStore(const RawDataGenerator& generator,
                               WriterOptions writer_options)
    : generator_(generator), writer_(writer_options)
{
}

const std::vector<uint8_t>&
PartitionStore::partition(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id);
}

std::vector<uint8_t>
PartitionStore::partitionCopy(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id);
}

const std::vector<uint8_t>&
PartitionStore::partitionLocked(uint64_t partition_id)
{
    auto it = partitions_.find(partition_id);
    if (it != partitions_.end())
        return it->second;
    RowBatch raw = generator_.generatePartition(partition_id);
    return insertCacheLocked(partition_id, writer_.write(raw, partition_id));
}

const std::vector<uint8_t>&
PartitionStore::insertCacheLocked(uint64_t partition_id,
                                  std::vector<uint8_t> bytes)
{
    auto it = partitions_.emplace(partition_id, std::move(bytes)).first;
    cache_order_.push_back(partition_id);
    cached_bytes_ += it->second.size();
    // Evict oldest entries past the budget — but never the one just
    // requested, whose reference we are about to return.
    while (cache_budget_bytes_ > 0 &&
           cached_bytes_ > cache_budget_bytes_ &&
           cache_order_.front() != partition_id) {
        auto victim = partitions_.find(cache_order_.front());
        cache_order_.pop_front();
        if (victim == partitions_.end())
            continue;
        cached_bytes_ -= victim->second.size();
        partitions_.erase(victim);
        ++evictions_;
    }
    return it->second;
}

void
PartitionStore::setCacheBudget(uint64_t bytes)
{
    std::scoped_lock lock(mu_);
    cache_budget_bytes_ = bytes;
}

uint64_t
PartitionStore::cachedBytes() const
{
    std::scoped_lock lock(mu_);
    return cached_bytes_;
}

uint64_t
PartitionStore::evictions() const
{
    std::scoped_lock lock(mu_);
    return evictions_;
}

void
PartitionStore::setFaultInjector(const FaultInjector* faults)
{
    std::scoped_lock lock(mu_);
    faults_ = (faults != nullptr && faults->enabled()) ? faults : nullptr;
}

StatusOr<std::vector<uint8_t>>
PartitionStore::fetchPartition(uint64_t partition_id, uint64_t attempt,
                               bool* hot_tier_hit)
{
    if (hot_tier_hit != nullptr)
        *hot_tier_hit = false;
    // Fault draws key off (partition, attempt) — not thread schedule —
    // so concurrent workers observe a reproducible fault pattern. The
    // bytes are copied under the lock: with a cache budget set, a
    // concurrent materialization may evict this partition at any time.
    const FaultInjector* faults = nullptr;
    std::vector<uint8_t> bytes;
    {
        std::scoped_lock lock(mu_);
        if (retired_.count(partition_id) != 0) {
            return Status::notFound("partition " +
                                    std::to_string(partition_id) +
                                    " is retired");
        }
        if (auto hot = hot_.find(partition_id); hot != hot_.end()) {
            // Hot-tier hit: served from memory, never touches the
            // device path — so no fault draw either.
            ++hot_hits_;
            if (hot_tier_hit != nullptr)
                *hot_tier_hit = true;
            return hot->second;
        }
        ++cold_fetches_;
        auto cached = partitions_.find(partition_id);
        if (cached != partitions_.end()) {
            bytes = cached->second;
        } else if (segments_ != nullptr) {
            // Cold pin of an evicted partition in persistent mode:
            // stream the encoded bytes back off the segment store
            // rather than silently regenerating them.
            auto info = segments_->segmentForPartition(partition_id);
            if (info.ok()) {
                auto raw = segments_->readSegmentRaw(
                    info->meta.segment_id);
                if (!raw.ok())
                    return raw.status();
                ++disk_reads_;
                bytes = insertCacheLocked(partition_id, *std::move(raw));
            } else if (info.status().code() == StatusCode::kNotFound) {
                bytes = partitionLocked(partition_id);
            } else {
                return info.status();
            }
        } else {
            bytes = partitionLocked(partition_id);
        }
        faults = faults_;
    }
    if (faults == nullptr)
        return bytes;
    if (faults->transientReadError(partition_id, attempt)) {
        return Status::unavailable(
            "transient read error on partition " +
            std::to_string(partition_id) + " (attempt " +
            std::to_string(attempt) + ")");
    }
    if (faults->corruptionOccurs(partition_id, attempt))
        faults->corruptBytes(bytes, partition_id, attempt);
    return bytes;
}

void
PartitionStore::setHotTierBudget(uint64_t bytes)
{
    std::scoped_lock lock(mu_);
    hot_budget_bytes_ = bytes;
    shrinkHotTierLocked();
}

void
PartitionStore::shrinkHotTierLocked()
{
    const uint64_t budget = hot_budget_bytes_;
    while (!hot_.empty() && (budget == 0 || hot_bytes_ > budget)) {
        auto last = std::prev(hot_.end());
        hot_bytes_ -= last->second.size();
        hot_.erase(last);
    }
}

Status
PartitionStore::promotePartition(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    if (retired_.count(partition_id) != 0) {
        return Status::notFound("partition " +
                                std::to_string(partition_id) +
                                " is retired");
    }
    if (hot_budget_bytes_ == 0)
        return Status::failedPrecondition("hot tier is disabled");
    if (hot_.count(partition_id) != 0)
        return Status::okStatus();
    // Materializing through the cache keeps hot bytes bit-identical to
    // what a cold fetch would serve.
    std::vector<uint8_t> bytes = partitionLocked(partition_id);
    if (hot_bytes_ + bytes.size() > hot_budget_bytes_) {
        return Status::resourceExhausted(
            "hot tier budget exhausted (" +
            std::to_string(hot_bytes_) + " + " +
            std::to_string(bytes.size()) + " > " +
            std::to_string(hot_budget_bytes_) + " bytes)");
    }
    hot_bytes_ += bytes.size();
    hot_.emplace(partition_id, std::move(bytes));
    return Status::okStatus();
}

void
PartitionStore::demotePartition(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    auto it = hot_.find(partition_id);
    if (it == hot_.end())
        return;
    hot_bytes_ -= it->second.size();
    hot_.erase(it);
}

uint64_t
PartitionStore::hotTierBytes() const
{
    std::scoped_lock lock(mu_);
    return hot_bytes_;
}

size_t
PartitionStore::hotTierCount() const
{
    std::scoped_lock lock(mu_);
    return hot_.size();
}

uint64_t
PartitionStore::hotTierHits() const
{
    std::scoped_lock lock(mu_);
    return hot_hits_;
}

uint64_t
PartitionStore::coldFetches() const
{
    std::scoped_lock lock(mu_);
    return cold_fetches_;
}

uint64_t
PartitionStore::diskReads() const
{
    std::scoped_lock lock(mu_);
    return disk_reads_;
}

StatusOr<uint64_t>
PartitionStore::retirePartition(uint64_t partition_id)
{
    // Mark first, drop memory, then retire segments. Marking before the
    // durable retire is safe: retired_ is in-memory only, and the
    // catalog's recovery path re-drives the durable retire after a
    // crash, so the on-disk state still converges.
    SegmentStore* segments = nullptr;
    uint64_t reclaimed = 0;
    {
        std::scoped_lock lock(mu_);
        if (!retired_.insert(partition_id).second)
            return uint64_t{0};  // already retired
        auto cached = partitions_.find(partition_id);
        if (cached != partitions_.end()) {
            cached_bytes_ -= cached->second.size();
            if (segments_ == nullptr)
                reclaimed += cached->second.size();
            partitions_.erase(cached);
        }
        auto hot = hot_.find(partition_id);
        if (hot != hot_.end()) {
            hot_bytes_ -= hot->second.size();
            hot_.erase(hot);
        }
        segments = segments_;
    }
    if (segments == nullptr)
        return reclaimed;
    // Retire every live segment holding the partition (compaction can
    // leave several); each retire is journaled before its unlink, so a
    // crash leaves a durable prefix that recovery completes.
    for (;;) {
        auto info = segments->segmentForPartition(partition_id);
        if (info.status().code() == StatusCode::kNotFound)
            break;
        if (!info.ok())
            return info.status();
        if (Status st = segments->retireSegment(info->meta.segment_id);
            !st.ok())
            return st;
        reclaimed += info->meta.byte_size;
    }
    return reclaimed;
}

bool
PartitionStore::isRetired(uint64_t partition_id) const
{
    std::scoped_lock lock(mu_);
    return retired_.count(partition_id) != 0;
}

void
PartitionStore::enablePersistence(SegmentStore* segments)
{
    std::scoped_lock lock(mu_);
    segments_ = segments;
}

SegmentStore*
PartitionStore::segmentStore() const
{
    std::scoped_lock lock(mu_);
    return segments_;
}

StatusOr<uint64_t>
PartitionStore::persistPartition(uint64_t partition_id)
{
    SegmentStore* segments = segmentStore();
    if (segments == nullptr)
        return Status::failedPrecondition("persistence is not enabled");
    auto existing = segments->segmentForPartition(partition_id);
    if (existing.ok())
        return existing->meta.segment_id;
    if (existing.status().code() != StatusCode::kNotFound)
        return existing.status();
    // First touch: encode (or reuse the cached encoding) and commit.
    // Copied under the lock — the cache may evict it concurrently.
    const std::vector<uint8_t> encoded = partitionCopy(partition_id);
    return segments->appendEncoded(encoded, partition_id);
}

uint64_t
PartitionStore::partitionBytes(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    return partitionLocked(partition_id).size();
}

size_t
PartitionStore::materializedCount() const
{
    std::scoped_lock lock(mu_);
    return partitions_.size();
}

bool
PartitionStore::faultInjectionEnabled() const
{
    std::scoped_lock lock(mu_);
    return faults_ != nullptr;
}

const FaultInjector*
PartitionStore::faultInjector() const
{
    std::scoped_lock lock(mu_);
    return faults_;
}

}  // namespace presto
