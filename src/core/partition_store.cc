#include "core/partition_store.h"

namespace presto {

PartitionStore::PartitionStore(const RawDataGenerator& generator,
                               WriterOptions writer_options)
    : generator_(generator), writer_(writer_options)
{
}

const std::vector<uint8_t>&
PartitionStore::partition(uint64_t partition_id)
{
    std::scoped_lock lock(mu_);
    auto it = partitions_.find(partition_id);
    if (it == partitions_.end()) {
        RowBatch raw = generator_.generatePartition(partition_id);
        it = partitions_
                 .emplace(partition_id, writer_.write(raw, partition_id))
                 .first;
    }
    return it->second;
}

uint64_t
PartitionStore::partitionBytes(uint64_t partition_id)
{
    return partition(partition_id).size();
}

size_t
PartitionStore::materializedCount() const
{
    std::scoped_lock lock(mu_);
    return partitions_.size();
}

}  // namespace presto
