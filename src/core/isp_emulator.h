/**
 * @file
 * Functional emulation of the PreSto accelerator datapath (Figure 10):
 * a Decoder unit, per-feature Generation and Normalization processing
 * elements with double buffering, and a conversion/DMA-out stage —
 * executed in software over real encoded partitions.
 *
 * The emulator's outputs are bit-identical to the plain Preprocessor
 * path (verified in tests); its value is (a) validating that the
 * microarchitecture's dataflow computes the right thing and (b)
 * producing per-unit work counters that cross-check the analytical
 * TransformWork model priced by models/isp_model.
 *
 * The datapath executes the same compiled bytecode program as the CPU
 * path (ops/opvm.h), streamed through the PEs in double-buffered
 * kPeBufferValues chunks — the PE's fused pipeline is exactly a fused
 * op chain, so emulation and CPU execution share one lowering.
 */
#ifndef PRESTO_CORE_ISP_EMULATOR_H_
#define PRESTO_CORE_ISP_EMULATOR_H_

#include <cstdint>
#include <span>

#include "columnar/columnar_file.h"
#include "common/batch_arena.h"
#include "common/status.h"
#include "datagen/rm_config.h"
#include "ops/fast_ops.h"
#include "ops/preprocessor.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"

namespace presto {

/** Per-unit activity counters of one emulated batch. */
struct IspUnitCounters {
    uint64_t p2p_bytes = 0;          ///< SSD -> FPGA transfer
    uint64_t decoded_values = 0;     ///< Decoder unit output
    uint64_t bucketize_values = 0;   ///< Generation unit input values
    uint64_t bucketize_levels = 0;   ///< total search levels executed
    uint64_t hash_values = 0;        ///< SigridHash unit values
    uint64_t log_values = 0;         ///< Log unit values
    uint64_t convert_values = 0;     ///< conversion/DMA-out scalars
    uint64_t buffer_swaps = 0;       ///< double-buffer flips observed
    uint32_t feature_units_used = 0; ///< distinct PEs engaged
};

/**
 * Emulates one SmartSSD's FPGA processing a single encoded partition.
 *
 * An emulator instance models one device: it owns its decode and
 * transform buffers (the FPGA's DRAM), which are reused across
 * process() calls so steady-state batches allocate nothing. Not
 * thread-safe; use one instance per device/worker.
 */
class IspEmulator
{
  public:
    /**
     * @param config Workload (selects the transform plan).
     * @param num_feature_units PEs available for inter-feature
     *        parallelism (features are assigned round-robin).
     * @param decode_pool Optional thread pool for page-parallel decode
     *        (models the Decoder unit working on independent pages
     *        concurrently). nullptr keeps decode serial. The pool may
     *        be shared by several emulators and must outlive them.
     */
    explicit IspEmulator(const RmConfig& config, int num_feature_units = 8,
                         ThreadPool* decode_pool = nullptr);

    /**
     * Run the datapath over one encoded PSF partition (as stored on the
     * device's local SSD). Corruption-safe: page CRC32C mismatches,
     * framing damage, and schema/workload disagreements surface as
     * kCorruption so the caller can re-fetch the partition from a
     * replica instead of crashing the device.
     */
    StatusOr<MiniBatch> process(std::span<const uint8_t> encoded_partition);

    /**
     * Buffer-reusing form of process(): writes into @p out, whose
     * tensors are recycled across calls. Identical output and counters.
     */
    Status processInto(std::span<const uint8_t> encoded_partition,
                       MiniBatch& out);

    /** Counters of the most recent process() call. */
    const IspUnitCounters& counters() const { return counters_; }

    const RmConfig& config() const { return config_; }

  private:
    RmConfig config_;
    int num_feature_units_;
    Preprocessor reference_plan_;  ///< owns the compiled standard program
    IspUnitCounters counters_;
    // Device DRAM stand-ins, reused across partitions.
    ColumnarFileReader reader_;
    RowBatch raw_;
    std::vector<char> unit_used_;  ///< per-PE engagement scratch
};

}  // namespace presto

#endif  // PRESTO_CORE_ISP_EMULATOR_H_
