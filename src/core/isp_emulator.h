/**
 * @file
 * Functional emulation of the PreSto accelerator datapath (Figure 10):
 * a Decoder unit, per-feature Generation and Normalization processing
 * elements with double buffering, and a conversion/DMA-out stage —
 * executed in software over real encoded partitions.
 *
 * The emulator's outputs are bit-identical to the plain Preprocessor
 * path (verified in tests); its value is (a) validating that the
 * microarchitecture's dataflow computes the right thing and (b)
 * producing per-unit work counters that cross-check the analytical
 * TransformWork model priced by models/isp_model.
 */
#ifndef PRESTO_CORE_ISP_EMULATOR_H_
#define PRESTO_CORE_ISP_EMULATOR_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "datagen/rm_config.h"
#include "ops/preprocessor.h"
#include "tabular/minibatch.h"

namespace presto {

/** Per-unit activity counters of one emulated batch. */
struct IspUnitCounters {
    uint64_t p2p_bytes = 0;          ///< SSD -> FPGA transfer
    uint64_t decoded_values = 0;     ///< Decoder unit output
    uint64_t bucketize_values = 0;   ///< Generation unit input values
    uint64_t bucketize_levels = 0;   ///< total search levels executed
    uint64_t hash_values = 0;        ///< SigridHash unit values
    uint64_t log_values = 0;         ///< Log unit values
    uint64_t convert_values = 0;     ///< conversion/DMA-out scalars
    uint64_t buffer_swaps = 0;       ///< double-buffer flips observed
    uint32_t feature_units_used = 0; ///< distinct PEs engaged
};

/**
 * Emulates one SmartSSD's FPGA processing a single encoded partition.
 */
class IspEmulator
{
  public:
    /**
     * @param config Workload (selects the transform plan).
     * @param num_feature_units PEs available for inter-feature
     *        parallelism (features are assigned round-robin).
     */
    explicit IspEmulator(const RmConfig& config, int num_feature_units = 8);

    /**
     * Run the datapath over one encoded PSF partition (as stored on the
     * device's local SSD). Corruption-safe: page CRC32C mismatches,
     * framing damage, and schema/workload disagreements surface as
     * kCorruption so the caller can re-fetch the partition from a
     * replica instead of crashing the device.
     */
    StatusOr<MiniBatch> process(std::span<const uint8_t> encoded_partition);

    /** Counters of the most recent process() call. */
    const IspUnitCounters& counters() const { return counters_; }

    const RmConfig& config() const { return config_; }

  private:
    RmConfig config_;
    int num_feature_units_;
    Preprocessor reference_plan_;  ///< seeds/boundaries shared with CPU path
    IspUnitCounters counters_;
};

}  // namespace presto

#endif  // PRESTO_CORE_ISP_EMULATOR_H_
