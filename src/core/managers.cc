#include "core/managers.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/rng.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"

namespace presto {

PreprocessManager::PreprocessManager(const RmConfig& config,
                                     PartitionStore& store,
                                     PreprocessMode mode, int num_workers,
                                     size_t queue_capacity)
    : config_(config), store_(store), mode_(mode), preprocessor_(config),
      queue_capacity_(queue_capacity), num_workers_(num_workers)
{
    PRESTO_CHECK(num_workers_ >= 1, "need at least one worker");
    PRESTO_CHECK(queue_capacity_ >= 1, "queue capacity must be positive");
}

PreprocessManager::~PreprocessManager()
{
    {
        std::unique_lock lock(mu_);
        stopping_ = true;
    }
    queue_not_full_.notify_all();
    queue_not_empty_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
PreprocessManager::start(size_t total_batches)
{
    PRESTO_CHECK(workers_.empty(), "manager already started");
    total_batches_ = total_batches;
    workers_.reserve(num_workers_);
    for (int w = 0; w < num_workers_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

bool
PreprocessManager::claimPartition(uint64_t& id)
{
    std::unique_lock lock(mu_);
    if (next_partition_ >= total_batches_ || stopping_)
        return false;
    id = next_partition_++;
    return true;
}

namespace {

/** Fetch+decode attempts before a partition is declared unrecoverable. */
constexpr uint64_t kMaxFetchAttempts = 16;

}  // namespace

void
PreprocessManager::workerLoop()
{
    const bool faulty = store_.faultInjectionEnabled();
    for (;;) {
        uint64_t pid = 0;
        if (!claimPartition(pid))
            return;

        // Extract: fetch the encoded partition from the (local) SSD and
        // decode it. In Disagg mode the encoded bytes crossed the
        // datacenter network first; in PreSto mode they moved SSD->FPGA
        // over the device-internal P2P path. Under fault injection a
        // fetch can fail transiently (retried) or deliver bit-flipped
        // bytes — caught by the PSF page CRCs and answered by
        // re-fetching the partition.
        RowBatch raw;
        uint64_t raw_bytes = 0;
        uint64_t bytes_touched = 0;
        uint64_t transient_errors = 0;
        uint64_t corrupt_refetches = 0;
        if (!faulty) {
            const auto& encoded = store_.partition(pid);
            ColumnarFileReader reader;
            Status st = reader.open(encoded);
            PRESTO_CHECK(st.ok(), "partition ", pid, " unreadable: ",
                         st.toString());
            auto batch_or = reader.readAll();
            PRESTO_CHECK(batch_or.ok(), "partition ", pid, " corrupt: ",
                         batch_or.status().toString());
            raw = std::move(batch_or).value();
            raw_bytes = encoded.size();
            bytes_touched = reader.bytesTouched();
        } else {
            bool recovered = false;
            for (uint64_t attempt = 0; attempt < kMaxFetchAttempts;
                 ++attempt) {
                auto fetched = store_.fetchPartition(pid, attempt);
                if (!fetched.ok()) {
                    PRESTO_CHECK(fetched.status().code() ==
                                     StatusCode::kUnavailable,
                                 "partition ", pid, " unreadable: ",
                                 fetched.status().toString());
                    ++transient_errors;
                    continue;
                }
                ColumnarFileReader reader;
                Status st = reader.open(*fetched);
                StatusOr<RowBatch> batch_or =
                    st.ok() ? reader.readAll() : StatusOr<RowBatch>(st);
                if (!batch_or.ok()) {
                    PRESTO_CHECK(batch_or.status().code() ==
                                     StatusCode::kCorruption,
                                 "partition ", pid, " unreadable: ",
                                 batch_or.status().toString());
                    ++corrupt_refetches;
                    continue;
                }
                raw = std::move(batch_or).value();
                raw_bytes = fetched->size();
                bytes_touched = reader.bytesTouched();
                recovered = true;
                break;
            }
            PRESTO_CHECK(recovered, "partition ", pid,
                         " unrecoverable after ", kMaxFetchAttempts,
                         " fetch attempts");
        }

        // Transform: the full operator pipeline.
        auto mb = std::make_unique<MiniBatch>(preprocessor_.preprocess(raw));
        const uint64_t tensor_bytes = mb->byteSize();

        std::unique_lock lock(mu_);
        queue_not_full_.wait(lock, [this] {
            return queue_.size() < queue_capacity_ || stopping_;
        });
        if (stopping_)
            return;
        if (mode_ == PreprocessMode::kDisaggCpu) {
            stats_.raw_bytes_over_network += raw_bytes;
        } else {
            stats_.raw_bytes_p2p += raw_bytes;
        }
        stats_.tensor_bytes_over_network += tensor_bytes;
        stats_.columnar_bytes_touched += bytes_touched;
        stats_.transient_read_errors += transient_errors;
        stats_.corrupt_partition_refetches += corrupt_refetches;
        queue_.push_back(std::move(mb));
        lock.unlock();
        queue_not_empty_.notify_one();
    }
}

std::unique_ptr<MiniBatch>
PreprocessManager::nextBatch()
{
    std::unique_lock lock(mu_);
    if (delivered_ >= total_batches_)
        return nullptr;
    queue_not_empty_.wait(lock, [this] {
        return !queue_.empty() || stopping_;
    });
    if (queue_.empty())
        return nullptr;
    auto mb = std::move(queue_.front());
    queue_.pop_front();
    ++delivered_;
    ++stats_.batches_delivered;
    lock.unlock();
    queue_not_full_.notify_one();
    return mb;
}

TrainManager::TrainManager(const RmConfig& config, PartitionStore& store,
                           PreprocessMode mode)
    : config_(config), store_(store), mode_(mode)
{
}

double
TrainManager::measuredTrainingThroughput() const
{
    // Figure 9 step 2: stress-test the GPU with dummy mini-batches. With
    // no physical GPU, the calibrated A100 model plays that role.
    return GpuTrainModel(config_).maxThroughput();
}

RunStats
TrainManager::train(size_t total_batches, int worker_override)
{
    // T/P rule: workers = ceil(T / P).
    const double demand = measuredTrainingThroughput();
    double per_worker = 0;
    if (mode_ == PreprocessMode::kDisaggCpu) {
        per_worker = CpuWorkerModel(config_).throughputPerCore();
    } else {
        per_worker =
            IspDeviceModel(IspParams::smartSsd(), config_).throughput();
    }
    provisioned_workers_ = worker_override > 0
                               ? worker_override
                               : static_cast<int>(
                                     std::ceil(demand / per_worker));
    // The functional path runs on this host: cap the real thread count.
    const int threads = std::clamp(provisioned_workers_, 1, 4);

    const auto wall_start = std::chrono::steady_clock::now();
    PreprocessManager manager(config_, store_, mode_, threads);
    manager.start(total_batches);

    checksum_ = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        PRESTO_CHECK(mb->consistent(), "train manager got a bad batch");
        // "Training": fold a structural checksum so replays can assert
        // byte-identical delivery.
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum_ ^= mix64(crc + mb->batch_size);
    }

    RunStats stats = manager.stats();
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return stats;
}

}  // namespace presto
