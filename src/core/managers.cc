#include "core/managers.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/rng.h"
#include "io/async_reader.h"
#include "models/calibration.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"

namespace presto {

namespace {

/**
 * Fetch-stage share of one partition's measured cost. Extract decodes
 * w.raw_values at the vectorized page-decode rate while Transform
 * retires w.output_values through the fused op-chain VM; both rates are
 * measured on this host (models/calibration.h, provenance
 * BENCH_decode.json / BENCH_fused.json), so the staged-pipeline split
 * tracks the real kernels instead of assuming the stages cost the same.
 */
double
measuredFetchShare(const RmConfig& config)
{
    const TransformWork w = TransformWork::expected(config);
    const double fetch =
        w.raw_values * cal::kMeasuredSimdDecodeSecPerValue;
    const double transform =
        w.output_values * cal::kMeasuredFusedSecPerValue;
    return fetch / (fetch + transform);
}

}  // namespace

PreprocessManager::PreprocessManager(const RmConfig& config,
                                     PartitionStore& store,
                                     PreprocessMode mode, int num_workers,
                                     size_t queue_capacity, bool prefetch,
                                     ThreadPool* decode_pool,
                                     IoRing* io_ring)
    : config_(config), store_(store), mode_(mode), preprocessor_(config),
      queue_capacity_(queue_capacity), num_workers_(num_workers),
      prefetch_(prefetch), decode_pool_(decode_pool), io_ring_(io_ring),
      fetch_share_(measuredFetchShare(config))
{
    PRESTO_CHECK(num_workers_ >= 1, "need at least one worker");
    PRESTO_CHECK(queue_capacity_ >= 1, "queue capacity must be positive");
    // Prefetch window: one decoded partition per worker plus the
    // fetchers' lead, sized from the same measured split (a fetch-heavy
    // workload earns a deeper window because its transformers drain
    // slower relative to the fetchers filling it).
    decoded_capacity_ = std::max<size_t>(
        2, static_cast<size_t>(
               std::ceil(num_workers_ * (1.0 + fetch_share_))));
}

PreprocessManager::~PreprocessManager()
{
    {
        std::unique_lock lock(mu_);
        stopping_ = true;
    }
    queue_not_full_.notify_all();
    queue_not_empty_.notify_all();
    decoded_not_full_.notify_all();
    decoded_not_empty_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
PreprocessManager::start(size_t total_batches)
{
    PRESTO_CHECK(workers_.empty(), "manager already started");
    total_batches_ = total_batches;
    if (!prefetch_) {
        workers_.reserve(num_workers_);
        for (int w = 0; w < num_workers_; ++w)
            workers_.emplace_back([this] { workerLoop(); });
        return;
    }
    // Staged pipeline: dedicated fetchers decode partition N+1 while
    // transform workers run partition N. The budget splits in
    // proportion to the measured per-partition stage costs (see
    // measuredFetchShare) instead of a static half/half: a decode-heavy
    // workload (long sparse rows) earns more fetchers, a transform-heavy
    // one more transformers. A single-worker budget still gets one
    // thread per stage — that is the minimal double buffer.
    int fetchers =
        static_cast<int>(std::lround(num_workers_ * fetch_share_));
    fetchers = std::clamp(fetchers, 1, std::max(1, num_workers_ - 1));
    const int transformers = std::max(1, num_workers_ - fetchers);
    inform("staged pipeline (", config_.name, "): ", fetchers,
           " fetch + ", transformers,
           " transform workers, measured fetch share ",
           static_cast<int>(std::lround(fetch_share_ * 100)),
           "%, prefetch window ", decoded_capacity_);
    active_fetchers_ = fetchers;
    workers_.reserve(static_cast<size_t>(fetchers + transformers));
    for (int w = 0; w < fetchers; ++w)
        workers_.emplace_back([this] { fetchLoop(); });
    for (int w = 0; w < transformers; ++w)
        workers_.emplace_back([this] { transformLoop(); });
}

bool
PreprocessManager::claimPartition(uint64_t& id)
{
    std::unique_lock lock(mu_);
    if (next_partition_ >= total_batches_ || stopping_)
        return false;
    id = next_partition_++;
    return true;
}

namespace {

/** Fetch+decode attempts before a partition is declared unrecoverable. */
constexpr uint64_t kMaxFetchAttempts = 16;

}  // namespace

void
PreprocessManager::fetchDecode(uint64_t id, ColumnarFileReader& reader,
                               DecodedPartition& dp)
{
    // Extract: fetch the encoded partition from the (local) SSD and
    // decode it. In Disagg mode the encoded bytes crossed the
    // datacenter network first; in PreSto mode they moved SSD->FPGA
    // over the device-internal P2P path. Under fault injection a
    // fetch can fail transiently (retried) or deliver bit-flipped
    // bytes — caught by the PSF page CRCs and answered by
    // re-fetching the partition.
    dp.raw_bytes = 0;
    dp.bytes_touched = 0;
    dp.transient_errors = 0;
    dp.corrupt_refetches = 0;
    if (!store_.faultInjectionEnabled()) {
        const auto& encoded = store_.partition(id);
        Status st = reader.open(encoded);
        PRESTO_CHECK(st.ok(), "partition ", id, " unreadable: ",
                     st.toString());
        st = reader.readAllInto(dp.batch);
        PRESTO_CHECK(st.ok(), "partition ", id, " corrupt: ",
                     st.toString());
        dp.raw_bytes = encoded.size();
        dp.bytes_touched = reader.bytesTouched();
        return;
    }
    bool recovered = false;
    for (uint64_t attempt = 0; attempt < kMaxFetchAttempts; ++attempt) {
        auto fetched = store_.fetchPartition(id, attempt);
        if (!fetched.ok()) {
            PRESTO_CHECK(fetched.status().code() ==
                             StatusCode::kUnavailable,
                         "partition ", id, " unreadable: ",
                         fetched.status().toString());
            ++dp.transient_errors;
            continue;
        }
        Status st = reader.open(*fetched);
        if (st.ok())
            st = reader.readAllInto(dp.batch);
        if (!st.ok()) {
            PRESTO_CHECK(st.code() == StatusCode::kCorruption,
                         "partition ", id, " unreadable: ", st.toString());
            ++dp.corrupt_refetches;
            continue;
        }
        dp.raw_bytes = fetched->size();
        dp.bytes_touched = reader.bytesTouched();
        recovered = true;
        break;
    }
    PRESTO_CHECK(recovered, "partition ", id, " unrecoverable after ",
                 kMaxFetchAttempts, " fetch attempts");
}

void
PreprocessManager::fetchDecodeAsync(uint64_t id,
                                    AsyncPartitionReader& reader,
                                    DecodedPartition& dp)
{
    // Extract over the ring: page frames of the partition stream
    // through the IoRing and decode as they complete, so decode of
    // page k overlaps the modeled storage latency of the pages behind
    // it. Faults act on individual in-flight reads — transient errors
    // and timeouts retry inside the ring with backoff, and a CRC-caught
    // bit flip re-reads just that page instead of refetching the whole
    // partition as the blocking path does.
    //
    // With persistence enabled the partition lives in the on-disk
    // segment store, and every page frame arrives through a real
    // pread issued by the ring's device workers — the cold-read path —
    // with identical retry and CRC semantics.
    SegmentStore* segments = store_.segmentStore();
    if (segments != nullptr) {
        auto sid = store_.persistPartition(id);
        PRESTO_CHECK(sid.ok(), "partition ", id,
                     " not persistable: ", sid.status().toString());
        Status st = segments->readSegment(*sid, reader, dp.batch);
        PRESTO_CHECK(st.ok(), "segment ", *sid, " of partition ", id,
                     " unreadable: ", st.toString());
        const AsyncReadStats& rs = reader.lastReadStats();
        dp.raw_bytes = reader.reader().totalDataBytes();
        dp.bytes_touched = reader.reader().bytesTouched();
        dp.transient_errors = rs.device_retries;
        dp.corrupt_refetches = rs.corrupt_page_rereads;
        return;
    }
    const auto& encoded = store_.partition(id);
    Status st = reader.read(encoded, id, dp.batch);
    PRESTO_CHECK(st.ok(), "partition ", id,
                 " unrecoverable over async ring: ", st.toString());
    const AsyncReadStats& rs = reader.lastReadStats();
    dp.raw_bytes = encoded.size();
    dp.bytes_touched = reader.reader().bytesTouched();
    dp.transient_errors = rs.device_retries;
    dp.corrupt_refetches = rs.corrupt_page_rereads;
}

std::unique_ptr<MiniBatch>
PreprocessManager::takeRecycledBatch()
{
    std::unique_lock lock(mu_);
    if (free_batches_.empty())
        return nullptr;
    auto mb = std::move(free_batches_.back());
    free_batches_.pop_back();
    return mb;
}

void
PreprocessManager::transformAndDeliver(DecodedPartition& dp,
                                       BatchArena& arena)
{
    // Transform: the full operator pipeline, into a recycled batch.
    auto mb = takeRecycledBatch();
    if (mb == nullptr)
        mb = std::make_unique<MiniBatch>();
    preprocessor_.preprocessInto(dp.batch, *mb, arena);
    const uint64_t tensor_bytes = mb->byteSize();

    std::unique_lock lock(mu_);
    queue_not_full_.wait(lock, [this] {
        return queue_.size() < queue_capacity_ || stopping_;
    });
    if (stopping_)
        return;
    if (mode_ == PreprocessMode::kDisaggCpu) {
        stats_.raw_bytes_over_network += dp.raw_bytes;
    } else {
        stats_.raw_bytes_p2p += dp.raw_bytes;
    }
    stats_.tensor_bytes_over_network += tensor_bytes;
    stats_.columnar_bytes_touched += dp.bytes_touched;
    stats_.transient_read_errors += dp.transient_errors;
    stats_.corrupt_partition_refetches += dp.corrupt_refetches;
    queue_.push_back(std::move(mb));
    lock.unlock();
    queue_not_empty_.notify_one();
}

void
PreprocessManager::workerLoop()
{
    // Unstaged (seed) schedule: each worker alternates Extract and
    // Transform, but with the device-style persistent decode buffers.
    ColumnarFileReader reader;
    reader.setThreadPool(decode_pool_);
    std::unique_ptr<AsyncPartitionReader> async;
    if (io_ring_ != nullptr) {
        async = std::make_unique<AsyncPartitionReader>(*io_ring_);
        async->setDecodePool(decode_pool_);
    }
    BatchArena arena;
    DecodedPartition dp;
    for (;;) {
        uint64_t pid = 0;
        if (!claimPartition(pid))
            return;
        if (async != nullptr)
            fetchDecodeAsync(pid, *async, dp);
        else
            fetchDecode(pid, reader, dp);
        transformAndDeliver(dp, arena);
    }
}

void
PreprocessManager::fetchLoop()
{
    ColumnarFileReader reader;
    reader.setThreadPool(decode_pool_);
    std::unique_ptr<AsyncPartitionReader> async;
    if (io_ring_ != nullptr) {
        async = std::make_unique<AsyncPartitionReader>(*io_ring_);
        async->setDecodePool(decode_pool_);
    }
    uint64_t pid = 0;
    while (claimPartition(pid)) {
        std::unique_ptr<DecodedPartition> dp;
        {
            std::unique_lock lock(mu_);
            if (!free_shells_.empty()) {
                dp = std::move(free_shells_.back());
                free_shells_.pop_back();
            }
        }
        if (dp == nullptr)
            dp = std::make_unique<DecodedPartition>();
        if (async != nullptr)
            fetchDecodeAsync(pid, *async, *dp);
        else
            fetchDecode(pid, reader, *dp);

        bool stopped = false;
        {
            std::unique_lock lock(mu_);
            decoded_not_full_.wait(lock, [this] {
                return decoded_.size() < decoded_capacity_ || stopping_;
            });
            stopped = stopping_;
            if (!stopped)
                decoded_.push_back(std::move(dp));
        }
        if (stopped)
            break;
        decoded_not_empty_.notify_one();
    }
    {
        std::unique_lock lock(mu_);
        --active_fetchers_;
    }
    // Wake every transformer so the last ones observe the drained queue.
    decoded_not_empty_.notify_all();
}

void
PreprocessManager::transformLoop()
{
    BatchArena arena;
    for (;;) {
        std::unique_ptr<DecodedPartition> dp;
        {
            std::unique_lock lock(mu_);
            decoded_not_empty_.wait(lock, [this] {
                return !decoded_.empty() || active_fetchers_ == 0 ||
                       stopping_;
            });
            if (stopping_)
                return;
            if (decoded_.empty())
                return;  // all fetchers finished and the queue drained
            dp = std::move(decoded_.front());
            decoded_.pop_front();
        }
        decoded_not_full_.notify_one();
        transformAndDeliver(*dp, arena);
        std::unique_lock lock(mu_);
        free_shells_.push_back(std::move(dp));
    }
}

void
PreprocessManager::recycle(std::unique_ptr<MiniBatch> mb)
{
    if (mb == nullptr)
        return;
    std::unique_lock lock(mu_);
    free_batches_.push_back(std::move(mb));
}

std::unique_ptr<MiniBatch>
PreprocessManager::nextBatch()
{
    std::unique_lock lock(mu_);
    if (delivered_ >= total_batches_)
        return nullptr;
    queue_not_empty_.wait(lock, [this] {
        return !queue_.empty() || stopping_;
    });
    if (queue_.empty())
        return nullptr;
    auto mb = std::move(queue_.front());
    queue_.pop_front();
    ++delivered_;
    ++stats_.batches_delivered;
    lock.unlock();
    queue_not_full_.notify_one();
    return mb;
}

TrainManager::TrainManager(const RmConfig& config, PartitionStore& store,
                           PreprocessMode mode)
    : config_(config), store_(store), mode_(mode)
{
}

double
TrainManager::measuredTrainingThroughput() const
{
    // Figure 9 step 2: stress-test the GPU with dummy mini-batches. With
    // no physical GPU, the calibrated A100 model plays that role.
    return GpuTrainModel(config_).maxThroughput();
}

RunStats
TrainManager::train(size_t total_batches, int worker_override)
{
    // T/P rule: workers = ceil(T / P).
    const double demand = measuredTrainingThroughput();
    double per_worker = 0;
    if (mode_ == PreprocessMode::kDisaggCpu) {
        per_worker = CpuWorkerModel(config_).throughputPerCore();
    } else {
        per_worker =
            IspDeviceModel(IspParams::smartSsd(), config_).throughput();
    }
    provisioned_workers_ = worker_override > 0
                               ? worker_override
                               : static_cast<int>(
                                     std::ceil(demand / per_worker));
    // The functional path runs on this host: cap the real thread count.
    const int threads = std::clamp(provisioned_workers_, 1, 4);

    const auto wall_start = std::chrono::steady_clock::now();
    PreprocessManager manager(config_, store_, mode_, threads);
    manager.start(total_batches);

    checksum_ = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        PRESTO_CHECK(mb->consistent(), "train manager got a bad batch");
        // "Training": fold a structural checksum so replays can assert
        // byte-identical delivery.
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum_ ^= mix64(crc + mb->batch_size);
        // Hand the tensors back so the next partition reuses them.
        manager.recycle(std::move(mb));
    }

    RunStats stats = manager.stats();
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return stats;
}

}  // namespace presto
