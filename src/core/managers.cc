#include "core/managers.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/rng.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"

namespace presto {

PreprocessManager::PreprocessManager(const RmConfig& config,
                                     PartitionStore& store,
                                     PreprocessMode mode, int num_workers,
                                     size_t queue_capacity)
    : config_(config), store_(store), mode_(mode), preprocessor_(config),
      queue_capacity_(queue_capacity), num_workers_(num_workers)
{
    PRESTO_CHECK(num_workers_ >= 1, "need at least one worker");
    PRESTO_CHECK(queue_capacity_ >= 1, "queue capacity must be positive");
}

PreprocessManager::~PreprocessManager()
{
    {
        std::unique_lock lock(mu_);
        stopping_ = true;
    }
    queue_not_full_.notify_all();
    queue_not_empty_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
PreprocessManager::start(size_t total_batches)
{
    PRESTO_CHECK(workers_.empty(), "manager already started");
    total_batches_ = total_batches;
    workers_.reserve(num_workers_);
    for (int w = 0; w < num_workers_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

bool
PreprocessManager::claimPartition(uint64_t& id)
{
    std::unique_lock lock(mu_);
    if (next_partition_ >= total_batches_ || stopping_)
        return false;
    id = next_partition_++;
    return true;
}

void
PreprocessManager::workerLoop()
{
    for (;;) {
        uint64_t pid = 0;
        if (!claimPartition(pid))
            return;

        // Extract: fetch the encoded partition from the (local) SSD and
        // decode it. In Disagg mode the encoded bytes crossed the
        // datacenter network first; in PreSto mode they moved SSD->FPGA
        // over the device-internal P2P path.
        const auto& encoded = store_.partition(pid);
        ColumnarFileReader reader;
        Status st = reader.open(encoded);
        PRESTO_CHECK(st.ok(), "partition ", pid, " unreadable: ",
                     st.toString());
        auto batch_or = reader.readAll();
        PRESTO_CHECK(batch_or.ok(), "partition ", pid, " corrupt: ",
                     batch_or.status().toString());

        // Transform: the full operator pipeline.
        auto mb = std::make_unique<MiniBatch>(
            preprocessor_.preprocess(*batch_or));
        const uint64_t tensor_bytes = mb->byteSize();

        std::unique_lock lock(mu_);
        queue_not_full_.wait(lock, [this] {
            return queue_.size() < queue_capacity_ || stopping_;
        });
        if (stopping_)
            return;
        if (mode_ == PreprocessMode::kDisaggCpu) {
            stats_.raw_bytes_over_network += encoded.size();
        } else {
            stats_.raw_bytes_p2p += encoded.size();
        }
        stats_.tensor_bytes_over_network += tensor_bytes;
        stats_.columnar_bytes_touched += reader.bytesTouched();
        queue_.push_back(std::move(mb));
        lock.unlock();
        queue_not_empty_.notify_one();
    }
}

std::unique_ptr<MiniBatch>
PreprocessManager::nextBatch()
{
    std::unique_lock lock(mu_);
    if (delivered_ >= total_batches_)
        return nullptr;
    queue_not_empty_.wait(lock, [this] {
        return !queue_.empty() || stopping_;
    });
    if (queue_.empty())
        return nullptr;
    auto mb = std::move(queue_.front());
    queue_.pop_front();
    ++delivered_;
    ++stats_.batches_delivered;
    lock.unlock();
    queue_not_full_.notify_one();
    return mb;
}

TrainManager::TrainManager(const RmConfig& config, PartitionStore& store,
                           PreprocessMode mode)
    : config_(config), store_(store), mode_(mode)
{
}

double
TrainManager::measuredTrainingThroughput() const
{
    // Figure 9 step 2: stress-test the GPU with dummy mini-batches. With
    // no physical GPU, the calibrated A100 model plays that role.
    return GpuTrainModel(config_).maxThroughput();
}

RunStats
TrainManager::train(size_t total_batches, int worker_override)
{
    // T/P rule: workers = ceil(T / P).
    const double demand = measuredTrainingThroughput();
    double per_worker = 0;
    if (mode_ == PreprocessMode::kDisaggCpu) {
        per_worker = CpuWorkerModel(config_).throughputPerCore();
    } else {
        per_worker =
            IspDeviceModel(IspParams::smartSsd(), config_).throughput();
    }
    provisioned_workers_ = worker_override > 0
                               ? worker_override
                               : static_cast<int>(
                                     std::ceil(demand / per_worker));
    // The functional path runs on this host: cap the real thread count.
    const int threads = std::clamp(provisioned_workers_, 1, 4);

    const auto wall_start = std::chrono::steady_clock::now();
    PreprocessManager manager(config_, store_, mode_, threads);
    manager.start(total_batches);

    checksum_ = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        PRESTO_CHECK(mb->consistent(), "train manager got a bad batch");
        // "Training": fold a structural checksum so replays can assert
        // byte-identical delivery.
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum_ ^= mix64(crc + mb->batch_size);
    }

    RunStats stats = manager.stats();
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return stats;
}

}  // namespace presto
