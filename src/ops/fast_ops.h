/**
 * @file
 * Optimized CPU kernels for the bottleneck operators.
 *
 * The paper's diagnosis is that latency-optimized CPUs fail to exploit
 * the inter-/intra-feature parallelism of feature generation and
 * normalization. These kernels squeeze what a CPU *can* do —
 * cache-friendly Eytzinger search layout and instruction-level
 * parallelism — and are differentially tested against the reference
 * implementations in ops.h. The `bench_ops_kernels` binary quantifies
 * the (bounded) gains, motivating the move to domain-specific hardware.
 */
#ifndef PRESTO_OPS_FAST_OPS_H_
#define PRESTO_OPS_FAST_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ops/ops.h"

namespace presto {

/**
 * Bucketize with an Eytzinger (BFS) boundary layout: the binary search
 * walks k -> 2k+{1,2}, so the hot top levels share a few cache lines and
 * the access pattern is prefetch-friendly.
 *
 * Produces bucket ids identical to BucketBoundaries::searchBucketId.
 */
class EytzingerBucketizer
{
  public:
    explicit EytzingerBucketizer(const BucketBoundaries& boundaries);

    /** Bucket id of one value (== upper_bound index; NaN -> 0). */
    int64_t searchBucketId(float value) const;

    /** Vector form over a batch. */
    void bucketizeInto(std::span<const float> values,
                       std::span<int64_t> out) const;

    size_t size() const { return num_boundaries_; }

  private:
    void build(std::span<const float> sorted, size_t& src, size_t node);

    size_t num_boundaries_;
    std::vector<float> tree_;   ///< 1-based Eytzinger order
    std::vector<size_t> rank_;  ///< node -> index in the sorted array
};

/**
 * SigridHash over a buffer with 4-way unrolling; results identical to
 * sigridHashInPlace.
 */
void sigridHashInPlaceUnrolled(std::span<int64_t> values, uint64_t seed,
                               int64_t max_value);

/**
 * Log normalization with a fast-path polynomial avoided: still log1p,
 * but processed in strides to expose ILP; identical results (same libm
 * call per element, reordered only).
 */
void logTransformInPlaceStrided(std::span<float> values);

}  // namespace presto

#endif  // PRESTO_OPS_FAST_OPS_H_
