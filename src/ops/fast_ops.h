/**
 * @file
 * Optimized CPU kernels for the bottleneck operators.
 *
 * The paper's diagnosis is that latency-optimized CPUs fail to exploit
 * the inter-/intra-feature parallelism of feature generation and
 * normalization. These kernels squeeze what a CPU *can* do —
 * cache-friendly search layouts, instruction-level parallelism, and
 * runtime-dispatched SIMD (scalar / AVX2 / AVX-512, chosen once at
 * startup by activeSimdLevel()) — and are differentially tested against
 * the reference implementations in ops.h: every dispatch level returns
 * bit-identical MiniBatch output. `bench_ops_kernels` and
 * `bench_hotpath` quantify the (bounded) gains, motivating the move to
 * domain-specific hardware. See docs/PERF.md.
 */
#ifndef PRESTO_OPS_FAST_OPS_H_
#define PRESTO_OPS_FAST_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ops/ops.h"

namespace presto {

/**
 * Bucketize with an Eytzinger (BFS) boundary layout: the binary search
 * walks k -> 2k+{1,2}, so the hot top levels share a few cache lines and
 * the access pattern is prefetch-friendly.
 *
 * Produces bucket ids identical to BucketBoundaries::searchBucketId.
 */
class EytzingerBucketizer
{
  public:
    explicit EytzingerBucketizer(const BucketBoundaries& boundaries);

    /** Bucket id of one value (== upper_bound index; NaN -> 0). */
    int64_t searchBucketId(float value) const;

    /** Vector form over a batch. */
    void bucketizeInto(std::span<const float> values,
                       std::span<int64_t> out) const;

    size_t size() const { return num_boundaries_; }

  private:
    void build(std::span<const float> sorted, size_t& src, size_t node);

    size_t num_boundaries_;
    std::vector<float> tree_;   ///< 1-based Eytzinger order
    std::vector<size_t> rank_;  ///< node -> index in the sorted array
};

/**
 * SigridHash over a buffer with 4-way unrolling; results identical to
 * sigridHashInPlace.
 */
void sigridHashInPlaceUnrolled(std::span<int64_t> values, uint64_t seed,
                               int64_t max_value);

/**
 * Log normalization processed in strides to expose ILP; bit-identical to
 * logTransformInPlace (both apply fastLog1p per element).
 */
void logTransformInPlaceStrided(std::span<float> values);

// --- Runtime-dispatched SIMD kernels (scalar / AVX2 / AVX-512) -------------
//
// Each entry point picks the widest implementation the CPU supports (see
// ops/simd.h; cap with PRESTO_SIMD=scalar|avx2|avx512). All levels are
// bit-identical to the reference ops in ops.h.

/** SigridHash + mod of @p src into @p dst (may alias; sizes must match). */
void sigridHashInto(std::span<const int64_t> src, std::span<int64_t> dst,
                    uint64_t seed, int64_t max_value);

/** In-place form of sigridHashInto; replaces sigridHashInPlace. */
void sigridHashInPlaceFast(std::span<int64_t> values, uint64_t seed,
                           int64_t max_value);

/** Vectorized v -> log1p(max(v, 0)); bit-identical to logTransformInPlace. */
void logTransformInPlaceFast(std::span<float> values);

/** Vectorized NaN -> fill; bit-identical to fillMissing's replacement. */
void fillMissingInPlaceFast(std::span<float> values, float fill_value);

/**
 * Batch bucketizer with a branchless, value-independent bisection
 * schedule ("halves" sequence): every value walks the same sequence of
 * step sizes, so the vector form replaces the scalar upper_bound's
 * data-dependent branches with gathers + compares. Bucket ids are
 * identical to BucketBoundaries::searchBucketId (upper_bound index,
 * NaN -> 0) on every dispatch level.
 */
class FastBucketizer
{
  public:
    FastBucketizer() = default;
    explicit FastBucketizer(const BucketBoundaries& boundaries);

    /** Bucket id of one value (== upper_bound index; NaN -> 0). */
    int64_t searchBucketId(float value) const;

    /** Vector form over a batch (out.size() must equal values.size()). */
    void bucketizeInto(std::span<const float> values,
                       std::span<int64_t> out) const;

    size_t size() const { return bounds_.size(); }

    /** Raw boundary/bisection arrays (the fused op-chain VM's operands). */
    const std::vector<float>& bounds() const { return bounds_; }
    const std::vector<int32_t>& halves() const { return halves_; }

  private:
    std::vector<float> bounds_;    ///< sorted boundary copy (owned)
    std::vector<int32_t> halves_;  ///< bisection step sizes, largest first
};

}  // namespace presto

#endif  // PRESTO_OPS_FAST_OPS_H_
