// AVX-512 kernels of the dispatched fast ops. Compiled with
// -mavx512f -mavx512dq and -ffp-contract=off; only reached when the CPU
// reports both avx512f and avx512dq at runtime.
//
// The per-register bodies (including the two exact hash reduction
// strategies — double-reciprocal modulo for d <= 2^25, Barrett above)
// live in fast_ops_avx512_inl.h, shared with the fused op-chain VM
// (opvm_avx512.cc); these wrappers add the loop and the tails.
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "ops/fast_math.h"
#include "ops/fast_ops_avx512_inl.h"
#include "ops/fast_ops_internal.h"
#include "ops/hash.h"

namespace presto::simd_detail {

void
hashIntoAvx512(const int64_t* src, int64_t* dst, size_t n, uint64_t seed,
               int64_t max_value)
{
    // Callers guarantee max_value >= 2 (d == 1 short-circuits upstream).
    const auto c =
        Avx512HashConsts::make(seed, static_cast<uint64_t>(max_value));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i h = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, hashMod8(h, c));
    }
    for (; i < n; ++i)
        dst[i] = sigridHashMod(src[i], seed, max_value);
}

void
logAvx512(float* v, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(v + i, log16(_mm512_loadu_ps(v + i)));
    if (i < n)
        logAvx2(v + i, n - i);
}

void
fillAvx512(float* v, size_t n, float fill)
{
    const __m512 vf = _mm512_set1_ps(fill);
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(v + i, fill16(_mm512_loadu_ps(v + i), vf));
    for (; i < n; ++i) {
        if (std::isnan(v[i]))
            v[i] = fill;
    }
}

}  // namespace presto::simd_detail
