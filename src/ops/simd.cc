#include "ops/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace presto {

namespace {

#if defined(PRESTO_HAVE_X86_SIMD)
SimdLevel
probeCpu()
{
    // The vector tiers also require BMI2 (pext in the varint decoder).
    // Every AVX2-capable core ships it, but the bits are independent in
    // CPUID, so check rather than assume.
    if (!__builtin_cpu_supports("bmi2"))
        return SimdLevel::kScalar;
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
        return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
}
#else
SimdLevel
probeCpu()
{
    return SimdLevel::kScalar;
}
#endif

SimdLevel
applyEnvCap(SimdLevel level)
{
    const char* env = std::getenv("PRESTO_SIMD");
    if (env == nullptr)
        return level;
    SimdLevel cap = level;
    if (std::strcmp(env, "scalar") == 0)
        cap = SimdLevel::kScalar;
    else if (std::strcmp(env, "avx2") == 0)
        cap = SimdLevel::kAvx2;
    else if (std::strcmp(env, "avx512") == 0)
        cap = SimdLevel::kAvx512;
    return static_cast<int>(cap) < static_cast<int>(level) ? cap : level;
}

std::atomic<int>&
activeLevelStorage()
{
    static std::atomic<int> active{
        static_cast<int>(applyEnvCap(probeCpu()))};
    return active;
}

}  // namespace

SimdLevel
detectedSimdLevel()
{
    static const SimdLevel detected = applyEnvCap(probeCpu());
    return detected;
}

SimdLevel
activeSimdLevel()
{
    return static_cast<SimdLevel>(
        activeLevelStorage().load(std::memory_order_relaxed));
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    const SimdLevel max = detectedSimdLevel();
    if (static_cast<int>(level) > static_cast<int>(max))
        level = max;
    if (static_cast<int>(level) < 0)
        level = SimdLevel::kScalar;
    activeLevelStorage().store(static_cast<int>(level),
                               std::memory_order_relaxed);
    return level;
}

bool
avx512ByteCompactionSupported()
{
#if defined(PRESTO_HAVE_X86_SIMD)
    static const bool supported = __builtin_cpu_supports("avx512bw") &&
                                  __builtin_cpu_supports("avx512vbmi") &&
                                  __builtin_cpu_supports("avx512vbmi2");
    return supported;
#else
    return false;
#endif
}

const char*
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kScalar: return "scalar";
      case SimdLevel::kAvx2:   return "avx2";
      case SimdLevel::kAvx512: return "avx512";
    }
    return "?";
}

}  // namespace presto
