#include "ops/plan_json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

namespace presto {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader. The repo deliberately carries no third-party
// dependencies, and plan documents are small hand-written configs, so a
// strict recursive-descent parser over a tiny value model is all that
// is needed. No \uXXXX escapes (plan identifiers are ASCII).
// ---------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
/** Map keeps members by insertion order irrelevant; plans are small. */
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0;
    /** Exact value for integer tokens (64-bit hash seeds do not survive
        a double round-trip). Valid when is_integer. */
    bool is_integer = false;
    uint64_t integer = 0;
    bool negative = false;  ///< integer token had a leading '-'
    std::string string;
    std::shared_ptr<JsonArray> array;
    std::shared_ptr<JsonObject> object;
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Status
    parse(JsonValue& out)
    {
        skipWs();
        if (Status st = parseValue(out); !st.ok())
            return st;
        skipWs();
        if (pos_ != text_.size())
            return error("trailing characters after document");
        return Status::okStatus();
    }

  private:
    Status
    error(const std::string& message) const
    {
        return Status::invalidArgument("plan JSON, line " +
                                       std::to_string(line_) + ": " +
                                       message);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status
    parseValue(JsonValue& out)
    {
        if (pos_ >= text_.size())
            return error("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{' || c == '[') {
            // Containers recurse one stack frame per nesting level;
            // bound it so a pathological document ("[[[[...") fails
            // cleanly instead of overflowing the stack.
            if (depth_ >= kMaxDepth)
                return error("nesting deeper than " +
                             std::to_string(kMaxDepth) + " levels");
            ++depth_;
            Status st = c == '{' ? parseObject(out) : parseArray(out);
            --depth_;
            return st;
        }
        if (c == '"') {
            out.type = JsonValue::Type::kString;
            return parseString(out.string);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (text_.substr(pos_, 4) != "null")
                return error("bad literal");
            pos_ += 4;
            out.type = JsonValue::Type::kNull;
            return Status::okStatus();
        }
        return parseNumber(out);
    }

    Status
    parseBool(JsonValue& out)
    {
        out.type = JsonValue::Type::kBool;
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            out.boolean = true;
            return Status::okStatus();
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            out.boolean = false;
            return Status::okStatus();
        }
        return error("bad literal");
    }

    Status
    parseNumber(JsonValue& out)
    {
        const size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return error("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return error("malformed number '" + token + "'");
        out.type = JsonValue::Type::kNumber;
        // Pure-digit tokens also keep their exact 64-bit value.
        out.negative = token[0] == '-';
        const std::string digits =
            out.negative ? token.substr(1) : token;
        out.is_integer =
            !digits.empty() &&
            digits.find_first_not_of("0123456789") == std::string::npos;
        if (out.is_integer) {
            errno = 0;
            out.integer = std::strtoull(digits.c_str(), &end, 10);
            if (errno == ERANGE)
                out.is_integer = false;
        }
        return Status::okStatus();
    }

    Status
    parseString(std::string& out)
    {
        if (!consume('"'))
            return error("expected a string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return Status::okStatus();
            if (c == '\n')
                return error("unterminated string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return error("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            default:
                return error(std::string("unsupported escape '\\") + esc +
                             "'");
            }
        }
        return error("unterminated string");
    }

    Status
    parseArray(JsonValue& out)
    {
        consume('[');
        out.type = JsonValue::Type::kArray;
        out.array = std::make_shared<JsonArray>();
        skipWs();
        if (consume(']'))
            return Status::okStatus();
        for (;;) {
            JsonValue element;
            skipWs();
            if (Status st = parseValue(element); !st.ok())
                return st;
            out.array->push_back(std::move(element));
            skipWs();
            if (consume(']'))
                return Status::okStatus();
            if (!consume(','))
                return error("expected ',' or ']' in array");
        }
    }

    Status
    parseObject(JsonValue& out)
    {
        consume('{');
        out.type = JsonValue::Type::kObject;
        out.object = std::make_shared<JsonObject>();
        skipWs();
        if (consume('}'))
            return Status::okStatus();
        for (;;) {
            skipWs();
            std::string key;
            if (Status st = parseString(key); !st.ok())
                return st;
            skipWs();
            if (!consume(':'))
                return error("expected ':' after key \"" + key + "\"");
            skipWs();
            JsonValue value;
            if (Status st = parseValue(value); !st.ok())
                return st;
            out.object->emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume('}'))
                return Status::okStatus();
            if (!consume(','))
                return error("expected ',' or '}' in object");
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    size_t pos_ = 0;
    size_t line_ = 1;
    int depth_ = 0;  ///< current container nesting level
};

// ---------------------------------------------------------------------
// JSON -> TransformPlan interpretation.
// ---------------------------------------------------------------------

const JsonValue*
findMember(const JsonValue& object, const std::string& key)
{
    for (const auto& [k, v] : *object.object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Status
requireString(const JsonValue& object, const std::string& key,
              const std::string& context, std::string& out)
{
    const JsonValue* member = findMember(object, key);
    if (member == nullptr ||
        member->type != JsonValue::Type::kString) {
        return Status::invalidArgument(context + ": missing string field \"" +
                                       key + "\"");
    }
    out = member->string;
    return Status::okStatus();
}

Status
requireNumber(const JsonValue& object, const std::string& key,
              const std::string& context, double& out)
{
    const JsonValue* member = findMember(object, key);
    if (member == nullptr ||
        member->type != JsonValue::Type::kNumber) {
        return Status::invalidArgument(context + ": missing number field \"" +
                                       key + "\"");
    }
    out = member->number;
    return Status::okStatus();
}

/** Exact unsigned integer field (hash seeds need all 64 bits). */
Status
requireUint(const JsonValue& object, const std::string& key,
            const std::string& context, uint64_t& out)
{
    const JsonValue* member = findMember(object, key);
    if (member == nullptr || member->type != JsonValue::Type::kNumber ||
        !member->is_integer || member->negative) {
        return Status::invalidArgument(
            context + ": missing non-negative integer field \"" + key +
            "\"");
    }
    out = member->integer;
    return Status::okStatus();
}

Status
checkKnownKeys(const JsonValue& object, const std::string& context,
               std::initializer_list<const char*> known)
{
    for (const auto& [key, value] : *object.object) {
        bool found = false;
        for (const char* k : known)
            found = found || key == k;
        if (!found) {
            return Status::invalidArgument(context + ": unknown field \"" +
                                           key + "\"");
        }
    }
    return Status::okStatus();
}

Status
parseDenseOp(const JsonValue& value, const std::string& context,
             DenseOp& out)
{
    if (value.type != JsonValue::Type::kObject)
        return Status::invalidArgument(context + ": op must be an object");
    std::string op;
    if (Status st = requireString(value, "op", context, op); !st.ok())
        return st;
    if (op == "fill_missing") {
        if (Status st = checkKnownKeys(value, context, {"op", "value"});
            !st.ok()) {
            return st;
        }
        double fill = 0;
        if (Status st = requireNumber(value, "value", context, fill);
            !st.ok()) {
            return st;
        }
        out = DenseOp::fillMissing(static_cast<float>(fill));
        return Status::okStatus();
    }
    if (op == "log") {
        if (Status st = checkKnownKeys(value, context, {"op"}); !st.ok())
            return st;
        out = DenseOp::log();
        return Status::okStatus();
    }
    if (op == "clamp") {
        if (Status st = checkKnownKeys(value, context, {"op", "lo", "hi"});
            !st.ok()) {
            return st;
        }
        double lo = 0;
        double hi = 0;
        if (Status st = requireNumber(value, "lo", context, lo); !st.ok())
            return st;
        if (Status st = requireNumber(value, "hi", context, hi); !st.ok())
            return st;
        out = DenseOp::clamp(static_cast<float>(lo),
                             static_cast<float>(hi));
        return Status::okStatus();
    }
    return Status::invalidArgument(context + ": unknown dense op \"" + op +
                                   "\"");
}

Status
parseSparseOp(const JsonValue& value, const std::string& context,
              SparseOp& out)
{
    if (value.type != JsonValue::Type::kObject)
        return Status::invalidArgument(context + ": op must be an object");
    std::string op;
    if (Status st = requireString(value, "op", context, op); !st.ok())
        return st;
    if (op == "sigrid_hash") {
        if (Status st = checkKnownKeys(value, context,
                                       {"op", "seed", "max_value"});
            !st.ok()) {
            return st;
        }
        uint64_t seed = 0;
        uint64_t max_value = 0;
        if (Status st = requireUint(value, "seed", context, seed);
            !st.ok()) {
            return st;
        }
        if (Status st = requireUint(value, "max_value", context, max_value);
            !st.ok()) {
            return st;
        }
        // max_value is consumed as a signed modulus; a uint64 above
        // INT64_MAX would wrap negative instead of erroring.
        if (max_value >
            static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
            return Status::invalidArgument(
                context + ": \"max_value\" exceeds the int64 range");
        }
        out = SparseOp::sigridHash(seed, static_cast<int64_t>(max_value));
        return Status::okStatus();
    }
    if (op == "first_x") {
        if (Status st = checkKnownKeys(value, context, {"op", "max_ids"});
            !st.ok()) {
            return st;
        }
        uint64_t max_ids = 0;
        if (Status st = requireUint(value, "max_ids", context, max_ids);
            !st.ok()) {
            return st;
        }
        out = SparseOp::firstX(static_cast<size_t>(max_ids));
        return Status::okStatus();
    }
    return Status::invalidArgument(context + ": unknown sparse op \"" + op +
                                   "\"");
}

Status
parseOutput(const JsonValue& value, size_t index, PlanOutput& out)
{
    const std::string context = "outputs[" + std::to_string(index) + "]";
    if (value.type != JsonValue::Type::kObject)
        return Status::invalidArgument(context + ": must be an object");
    if (Status st = checkKnownKeys(value, context,
                                   {"kind", "name", "source", "dense_ops",
                                    "sparse_ops", "bucket_boundaries"});
        !st.ok()) {
        return st;
    }
    std::string kind;
    if (Status st = requireString(value, "kind", context, kind); !st.ok())
        return st;
    if (kind == "label") {
        out.kind = PlanOutput::Kind::kLabel;
    } else if (kind == "dense") {
        out.kind = PlanOutput::Kind::kDense;
    } else if (kind == "sparse") {
        out.kind = PlanOutput::Kind::kSparse;
    } else if (kind == "generated") {
        out.kind = PlanOutput::Kind::kGenerated;
    } else {
        return Status::invalidArgument(context + ": unknown kind \"" + kind +
                                       "\"");
    }
    if (Status st = requireString(value, "name", context, out.output_name);
        !st.ok()) {
        return st;
    }
    if (Status st =
            requireString(value, "source", context, out.source_feature);
        !st.ok()) {
        return st;
    }
    if (const JsonValue* ops = findMember(value, "dense_ops");
        ops != nullptr) {
        if (ops->type != JsonValue::Type::kArray)
            return Status::invalidArgument(context +
                                           ": dense_ops must be an array");
        for (size_t i = 0; i < ops->array->size(); ++i) {
            DenseOp op;
            if (Status st = parseDenseOp(
                    (*ops->array)[i],
                    context + ".dense_ops[" + std::to_string(i) + "]", op);
                !st.ok()) {
                return st;
            }
            out.dense_ops.push_back(op);
        }
    }
    if (const JsonValue* ops = findMember(value, "sparse_ops");
        ops != nullptr) {
        if (ops->type != JsonValue::Type::kArray)
            return Status::invalidArgument(context +
                                           ": sparse_ops must be an array");
        for (size_t i = 0; i < ops->array->size(); ++i) {
            SparseOp op;
            if (Status st = parseSparseOp(
                    (*ops->array)[i],
                    context + ".sparse_ops[" + std::to_string(i) + "]", op);
                !st.ok()) {
                return st;
            }
            out.sparse_ops.push_back(op);
        }
    }
    if (findMember(value, "bucket_boundaries") != nullptr) {
        uint64_t boundaries = 0;
        if (Status st = requireUint(value, "bucket_boundaries", context,
                                    boundaries);
            !st.ok()) {
            return st;
        }
        out.bucket_boundaries = static_cast<size_t>(boundaries);
    }
    return Status::okStatus();
}

// ---------------------------------------------------------------------
// TransformPlan -> JSON emission.
// ---------------------------------------------------------------------

std::string
escapeJson(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

/** Shortest float form that round-trips (%.9g covers float exactly). */
std::string
formatNumber(double value)
{
    char buf[48];
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", value);
    }
    return buf;
}

std::string
denseOpToJson(const DenseOp& op)
{
    switch (op.kind) {
    case DenseOp::Kind::kFillMissing:
        return "{\"op\": \"fill_missing\", \"value\": " +
               formatNumber(op.a) + "}";
    case DenseOp::Kind::kLog:
        return "{\"op\": \"log\"}";
    case DenseOp::Kind::kClamp:
        return "{\"op\": \"clamp\", \"lo\": " + formatNumber(op.a) +
               ", \"hi\": " + formatNumber(op.b) + "}";
    }
    return "{}";
}

std::string
sparseOpToJson(const SparseOp& op)
{
    switch (op.kind) {
    case SparseOp::Kind::kSigridHash:
        return "{\"op\": \"sigrid_hash\", \"seed\": " +
               std::to_string(op.seed) +
               ", \"max_value\": " + std::to_string(op.max_value) + "}";
    case SparseOp::Kind::kFirstX:
        return "{\"op\": \"first_x\", \"max_ids\": " +
               std::to_string(op.max_ids) + "}";
    }
    return "{}";
}

const char*
kindName(PlanOutput::Kind kind)
{
    switch (kind) {
    case PlanOutput::Kind::kLabel: return "label";
    case PlanOutput::Kind::kDense: return "dense";
    case PlanOutput::Kind::kSparse: return "sparse";
    case PlanOutput::Kind::kGenerated: return "generated";
    }
    return "unknown";
}

}  // namespace

StatusOr<TransformPlan>
parsePlanJson(std::string_view json)
{
    JsonValue doc;
    if (Status st = JsonParser(json).parse(doc); !st.ok())
        return st;
    if (doc.type != JsonValue::Type::kObject)
        return Status::invalidArgument("plan JSON: document must be an "
                                       "object with an \"outputs\" array");
    if (Status st = checkKnownKeys(doc, "plan", {"outputs"}); !st.ok())
        return st;
    const JsonValue* outputs = findMember(doc, "outputs");
    if (outputs == nullptr || outputs->type != JsonValue::Type::kArray)
        return Status::invalidArgument(
            "plan JSON: missing \"outputs\" array");
    TransformPlan plan;
    for (size_t i = 0; i < outputs->array->size(); ++i) {
        PlanOutput out;
        if (Status st = parseOutput((*outputs->array)[i], i, out); !st.ok())
            return st;
        plan.add(std::move(out));
    }
    return plan;
}

std::string
planToJson(const TransformPlan& plan)
{
    std::string out = "{\n  \"outputs\": [\n";
    const auto& outputs = plan.outputs();
    for (size_t i = 0; i < outputs.size(); ++i) {
        const PlanOutput& output = outputs[i];
        out += "    {\"kind\": \"" + std::string(kindName(output.kind)) +
               "\", \"name\": \"" + escapeJson(output.output_name) +
               "\", \"source\": \"" + escapeJson(output.source_feature) +
               "\"";
        if (output.bucket_boundaries > 0) {
            out += ",\n     \"bucket_boundaries\": " +
                   std::to_string(output.bucket_boundaries);
        }
        if (!output.dense_ops.empty()) {
            out += ",\n     \"dense_ops\": [";
            for (size_t j = 0; j < output.dense_ops.size(); ++j) {
                if (j > 0)
                    out += ",\n                   ";
                out += denseOpToJson(output.dense_ops[j]);
            }
            out += "]";
        }
        if (!output.sparse_ops.empty()) {
            out += ",\n     \"sparse_ops\": [";
            for (size_t j = 0; j < output.sparse_ops.size(); ++j) {
                if (j > 0)
                    out += ",\n                    ";
                out += sparseOpToJson(output.sparse_ops[j]);
            }
            out += "]";
        }
        out += "}";
        out += i + 1 < outputs.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

}  // namespace presto
