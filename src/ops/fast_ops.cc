#include "ops/fast_ops.h"

#include <bit>
#include <cmath>

#include "common/logging.h"
#include "ops/hash.h"

namespace presto {

EytzingerBucketizer::EytzingerBucketizer(const BucketBoundaries& boundaries)
    : num_boundaries_(boundaries.size()), tree_(boundaries.size() + 1),
      rank_(boundaries.size() + 1)
{
    size_t src = 0;
    build(boundaries.values(), src, 1);
    PRESTO_CHECK(src == num_boundaries_, "eytzinger build incomplete");
}

void
EytzingerBucketizer::build(std::span<const float> sorted, size_t& src,
                           size_t node)
{
    if (node > num_boundaries_)
        return;
    // In-order traversal of the implicit heap assigns sorted values, so
    // rank_[node] is the node's index in the sorted boundary array.
    build(sorted, src, 2 * node);
    tree_[node] = sorted[src];
    rank_[node] = src;
    ++src;
    build(sorted, src, 2 * node + 1);
}

int64_t
EytzingerBucketizer::searchBucketId(float value) const
{
    if (std::isnan(value))
        return 0;
    // Descend the implicit tree; going right (boundary <= value) appends
    // a 1 bit. Stripping the trailing 1s plus one step recovers the
    // Eytzinger node of the first boundary > value (upper_bound).
    size_t k = 1;
    while (k <= num_boundaries_)
        k = 2 * k + (tree_[k] <= value ? 1 : 0);
    k >>= (std::countr_one(k) + 1);
    if (k == 0)
        return static_cast<int64_t>(num_boundaries_);  // above every bound
    return static_cast<int64_t>(rank_[k]);
}

void
EytzingerBucketizer::bucketizeInto(std::span<const float> values,
                                   std::span<int64_t> out) const
{
    PRESTO_CHECK(out.size() == values.size(), "output size mismatch");
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = searchBucketId(values[i]);
}

void
sigridHashInPlaceUnrolled(std::span<int64_t> values, uint64_t seed,
                          int64_t max_value)
{
    PRESTO_CHECK(max_value > 0, "SigridHash max_value must be positive");
    size_t i = 0;
    const size_t n4 = values.size() & ~size_t{3};
    for (; i < n4; i += 4) {
        const int64_t a = sigridHashMod(values[i + 0], seed, max_value);
        const int64_t b = sigridHashMod(values[i + 1], seed, max_value);
        const int64_t c = sigridHashMod(values[i + 2], seed, max_value);
        const int64_t d = sigridHashMod(values[i + 3], seed, max_value);
        values[i + 0] = a;
        values[i + 1] = b;
        values[i + 2] = c;
        values[i + 3] = d;
    }
    for (; i < values.size(); ++i)
        values[i] = sigridHashMod(values[i], seed, max_value);
}

void
logTransformInPlaceStrided(std::span<float> values)
{
    size_t i = 0;
    const size_t n4 = values.size() & ~size_t{3};
    for (; i < n4; i += 4) {
        const float a = std::log1p(std::max(values[i + 0], 0.0f));
        const float b = std::log1p(std::max(values[i + 1], 0.0f));
        const float c = std::log1p(std::max(values[i + 2], 0.0f));
        const float d = std::log1p(std::max(values[i + 3], 0.0f));
        values[i + 0] = a;
        values[i + 1] = b;
        values[i + 2] = c;
        values[i + 3] = d;
    }
    for (; i < values.size(); ++i)
        values[i] = std::log1p(std::max(values[i], 0.0f));
}

}  // namespace presto
