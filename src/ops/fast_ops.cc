#include "ops/fast_ops.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "ops/fast_math.h"
#include "ops/fast_ops_internal.h"
#include "ops/hash.h"
#include "ops/simd.h"

namespace presto {

namespace simd_detail {

void
hashIntoScalar(const int64_t* src, int64_t* dst, size_t n, uint64_t seed,
               int64_t max_value)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = sigridHashMod(src[i], seed, max_value);
}

void
fillScalar(float* v, size_t n, float fill)
{
    for (size_t i = 0; i < n; ++i) {
        if (std::isnan(v[i]))
            v[i] = fill;
    }
}

void
bucketizeScalar(const float* values, int64_t* out, size_t n,
                const float* bounds, const int32_t* halves,
                size_t num_halves)
{
    for (size_t i = 0; i < n; ++i) {
        const float v = values[i];
        // NaN compares false with every boundary, so it lands in bucket
        // 0 without an explicit isnan branch.
        int32_t base = 0;
        for (size_t s = 0; s < num_halves; ++s) {
            const int32_t half = halves[s];
            if (bounds[base + half - 1] <= v)
                base += half;
        }
        if (bounds[base] <= v)
            base += 1;
        out[i] = base;
    }
}

}  // namespace simd_detail

EytzingerBucketizer::EytzingerBucketizer(const BucketBoundaries& boundaries)
    : num_boundaries_(boundaries.size()), tree_(boundaries.size() + 1),
      rank_(boundaries.size() + 1)
{
    size_t src = 0;
    build(boundaries.values(), src, 1);
    PRESTO_CHECK(src == num_boundaries_, "eytzinger build incomplete");
}

void
EytzingerBucketizer::build(std::span<const float> sorted, size_t& src,
                           size_t node)
{
    if (node > num_boundaries_)
        return;
    // In-order traversal of the implicit heap assigns sorted values, so
    // rank_[node] is the node's index in the sorted boundary array.
    build(sorted, src, 2 * node);
    tree_[node] = sorted[src];
    rank_[node] = src;
    ++src;
    build(sorted, src, 2 * node + 1);
}

int64_t
EytzingerBucketizer::searchBucketId(float value) const
{
    if (std::isnan(value))
        return 0;
    // Descend the implicit tree; going right (boundary <= value) appends
    // a 1 bit. Stripping the trailing 1s plus one step recovers the
    // Eytzinger node of the first boundary > value (upper_bound).
    size_t k = 1;
    while (k <= num_boundaries_)
        k = 2 * k + (tree_[k] <= value ? 1 : 0);
    k >>= (std::countr_one(k) + 1);
    if (k == 0)
        return static_cast<int64_t>(num_boundaries_);  // above every bound
    return static_cast<int64_t>(rank_[k]);
}

void
EytzingerBucketizer::bucketizeInto(std::span<const float> values,
                                   std::span<int64_t> out) const
{
    PRESTO_CHECK(out.size() == values.size(), "output size mismatch");
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = searchBucketId(values[i]);
}

void
sigridHashInPlaceUnrolled(std::span<int64_t> values, uint64_t seed,
                          int64_t max_value)
{
    PRESTO_CHECK(max_value > 0, "SigridHash max_value must be positive");
    size_t i = 0;
    const size_t n4 = values.size() & ~size_t{3};
    for (; i < n4; i += 4) {
        const int64_t a = sigridHashMod(values[i + 0], seed, max_value);
        const int64_t b = sigridHashMod(values[i + 1], seed, max_value);
        const int64_t c = sigridHashMod(values[i + 2], seed, max_value);
        const int64_t d = sigridHashMod(values[i + 3], seed, max_value);
        values[i + 0] = a;
        values[i + 1] = b;
        values[i + 2] = c;
        values[i + 3] = d;
    }
    for (; i < values.size(); ++i)
        values[i] = sigridHashMod(values[i], seed, max_value);
}

void
logTransformInPlaceStrided(std::span<float> values)
{
    size_t i = 0;
    const size_t n4 = values.size() & ~size_t{3};
    for (; i < n4; i += 4) {
        const float a = fastLog1p(std::max(values[i + 0], 0.0f));
        const float b = fastLog1p(std::max(values[i + 1], 0.0f));
        const float c = fastLog1p(std::max(values[i + 2], 0.0f));
        const float d = fastLog1p(std::max(values[i + 3], 0.0f));
        values[i + 0] = a;
        values[i + 1] = b;
        values[i + 2] = c;
        values[i + 3] = d;
    }
    for (; i < values.size(); ++i)
        values[i] = fastLog1p(std::max(values[i], 0.0f));
}

void
sigridHashInto(std::span<const int64_t> src, std::span<int64_t> dst,
               uint64_t seed, int64_t max_value)
{
    PRESTO_CHECK(max_value > 0, "SigridHash max_value must be positive");
    PRESTO_CHECK(dst.size() == src.size(), "output size mismatch");
    if (max_value == 1) {
        // h % 1 == 0 for every input; the vector kernels assume d >= 2
        // (a d == 1 Barrett magic would overflow 64 bits).
        std::fill(dst.begin(), dst.end(), int64_t{0});
        return;
    }
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        simd_detail::hashIntoAvx512(src.data(), dst.data(), src.size(),
                                    seed, max_value);
        return;
      case SimdLevel::kAvx2:
        simd_detail::hashIntoAvx2(src.data(), dst.data(), src.size(),
                                  seed, max_value);
        return;
#endif
      default:
        simd_detail::hashIntoScalar(src.data(), dst.data(), src.size(),
                                    seed, max_value);
    }
}

void
sigridHashInPlaceFast(std::span<int64_t> values, uint64_t seed,
                      int64_t max_value)
{
    sigridHashInto(values, values, seed, max_value);
}

void
logTransformInPlaceFast(std::span<float> values)
{
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        simd_detail::logAvx512(values.data(), values.size());
        return;
      case SimdLevel::kAvx2:
        simd_detail::logAvx2(values.data(), values.size());
        return;
#endif
      default:
        fastLog1pArray(values.data(), values.size());
    }
}

void
fillMissingInPlaceFast(std::span<float> values, float fill_value)
{
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        simd_detail::fillAvx512(values.data(), values.size(), fill_value);
        return;
      case SimdLevel::kAvx2:
        simd_detail::fillAvx2(values.data(), values.size(), fill_value);
        return;
#endif
      default:
        simd_detail::fillScalar(values.data(), values.size(), fill_value);
    }
}

FastBucketizer::FastBucketizer(const BucketBoundaries& boundaries)
    : bounds_(boundaries.values().begin(), boundaries.values().end())
{
    PRESTO_CHECK(bounds_.size() < (size_t{1} << 30),
                 "boundary array too large for 32-bit bisection");
    // Value-independent bisection: every search takes the same step
    // sizes, only the base offset differs. sum(halves) == size - 1, so
    // the final base is a valid index for the +1 probe.
    size_t len = bounds_.size();
    while (len > 1) {
        const size_t half = len / 2;
        halves_.push_back(static_cast<int32_t>(half));
        len -= half;
    }
}

int64_t
FastBucketizer::searchBucketId(float value) const
{
    if (bounds_.empty())
        return 0;
    int64_t out = 0;
    simd_detail::bucketizeScalar(&value, &out, 1, bounds_.data(),
                                 halves_.data(), halves_.size());
    return out;
}

void
FastBucketizer::bucketizeInto(std::span<const float> values,
                              std::span<int64_t> out) const
{
    PRESTO_CHECK(out.size() == values.size(), "output size mismatch");
    if (bounds_.empty()) {
        std::fill(out.begin(), out.end(), int64_t{0});
        return;
    }
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:  // no dedicated AVX-512 variant; AVX2 wins
      case SimdLevel::kAvx2:
        simd_detail::bucketizeAvx2(values.data(), out.data(),
                                   values.size(), bounds_.data(),
                                   halves_.data(), halves_.size());
        return;
#endif
      default:
        simd_detail::bucketizeScalar(values.data(), out.data(),
                                     values.size(), bounds_.data(),
                                     halves_.data(), halves_.size());
    }
}

}  // namespace presto
