/**
 * @file
 * Element-wise preprocessing operators (the Transform phase).
 *
 * These are the TorchArrow operations the paper identifies as the
 * preprocessing bottleneck:
 *  - Bucketize (Algorithm 1): feature generation; digitizes a dense
 *    feature into bucket ids via binary search over boundaries.
 *  - SigridHash (Algorithm 2): sparse feature normalization; seeded hash
 *    reduced into embedding-table range.
 *  - Log: dense feature normalization, log1p of the non-negative part.
 * Plus supporting ops: FillMissing, Clamp, FirstX.
 *
 * Every operator works element-wise with no cross-row dependencies
 * (intra-feature parallelism) and independently per feature
 * (inter-feature parallelism).
 */
#ifndef PRESTO_OPS_OPS_H_
#define PRESTO_OPS_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tabular/column.h"

namespace presto {

// --- Bucketize (feature generation) --------------------------------------

/**
 * Sorted bucket boundaries for Bucketize.
 *
 * With m boundaries b[0..m-1], a value v maps to the number of boundaries
 * strictly below-or-equal v, i.e. bucket id in [0, m] such that
 * b[id-1] <= v < b[id] (matching std::upper_bound semantics and
 * torch.bucketize right=false behaviour on sorted boundaries).
 */
class BucketBoundaries
{
  public:
    /** @param boundaries Must be sorted ascending (checked). */
    explicit BucketBoundaries(std::vector<float> boundaries);

    /** Deterministic log-spaced boundaries for synthetic dense data. */
    static BucketBoundaries makeLogSpaced(size_t num_boundaries, float lo,
                                          float hi);

    size_t size() const { return boundaries_.size(); }
    std::span<const float> values() const { return boundaries_; }

    /** Binary-search the bucket id of one value (Algorithm 1 line 5). */
    int64_t searchBucketId(float value) const;

  private:
    std::vector<float> boundaries_;
};

/**
 * Digitize a dense column into a one-id-per-row sparse column of bucket
 * ids (the generated sparse feature).
 */
SparseColumn bucketize(const DenseColumn& input,
                       const BucketBoundaries& boundaries);

/** Bucketize into a caller-provided id buffer (one id per value). */
void bucketizeInto(std::span<const float> values,
                   const BucketBoundaries& boundaries,
                   std::span<int64_t> out);

// --- SigridHash (sparse feature normalization) ----------------------------

/**
 * Normalize every id of a sparse column into [0, max_value) with the
 * seeded hash (Algorithm 2). Offsets are preserved.
 */
SparseColumn sigridHash(const SparseColumn& input, uint64_t seed,
                        int64_t max_value);

/** In-place variant over a raw id buffer. */
void sigridHashInPlace(std::span<int64_t> values, uint64_t seed,
                       int64_t max_value);

// --- Log (dense feature normalization) ------------------------------------

/**
 * Dense normalization: x -> log1p(max(x, 0)). NaNs propagate (FillMissing
 * runs first in the standard plan).
 */
DenseColumn logTransform(const DenseColumn& input);

/** In-place variant over a raw value buffer. */
void logTransformInPlace(std::span<float> values);

// --- Supporting ops --------------------------------------------------------

/** Replace NaN entries with @p fill_value. */
DenseColumn fillMissing(const DenseColumn& input, float fill_value);

/** In-place variant. */
void fillMissingInPlace(std::span<float> values, float fill_value);

/** Clamp dense values into [lo, hi]. */
DenseColumn clamp(const DenseColumn& input, float lo, float hi);

/** Truncate each sparse row to at most its first @p max_ids ids. */
SparseColumn firstX(const SparseColumn& input, size_t max_ids);

/**
 * Sorted id vocabulary for MapIdList: maps known raw ids to their dense
 * vocabulary index (an alternative to SigridHash when the id set is
 * closed and collision-free indices are required).
 */
class IdVocabulary
{
  public:
    /** @param ids Distinct ids; sorted internally. */
    explicit IdVocabulary(std::vector<int64_t> ids);

    size_t size() const { return ids_.size(); }

    /** Vocabulary index of @p id, or -1 when unknown. */
    int64_t lookup(int64_t id) const;

  private:
    std::vector<int64_t> ids_;  ///< sorted ascending
};

/**
 * Map every id of a sparse column through @p vocab; unknown ids become
 * @p miss_value (commonly 0 or a dedicated OOV index).
 */
SparseColumn mapIdList(const SparseColumn& input, const IdVocabulary& vocab,
                       int64_t miss_value);

}  // namespace presto

#endif  // PRESTO_OPS_OPS_H_
