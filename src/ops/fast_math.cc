// NOTE: this translation unit must be compiled with -ffp-contract=off
// (set in src/ops/CMakeLists.txt). The vector Log kernels replay this
// exact operation sequence with separate mul/add instructions; letting
// the compiler contract a*b+c into an FMA here would break the
// bit-identity contract between dispatch levels.
#include "ops/fast_math.h"

#include <bit>
#include <cmath>
#include <cstdint>

namespace presto {

namespace {

/** Core logf for finite u >= 1 (cephes logf operation sequence). */
inline float
logfCore(float u)
{
    const uint32_t ui = std::bit_cast<uint32_t>(u);
    int32_t e = static_cast<int32_t>((ui >> 23) & 0xff) - 126;
    // Mantissa scaled into [0.5, 1).
    float m = std::bit_cast<float>((ui & 0x807fffffu) | 0x3f000000u);
    const float kSqrtHf = 0.707106781186547524f;
    const bool lo = m < kSqrtHf;
    e -= lo ? 1 : 0;
    m = (m + (lo ? m : 0.0f)) - 1.0f;
    const float z = m * m;
    float y = 7.0376836292e-2f;
    y = y * m + -1.1514610310e-1f;
    y = y * m + 1.1676998740e-1f;
    y = y * m + -1.2420140846e-1f;
    y = y * m + 1.4249322787e-1f;
    y = y * m + -1.6668057665e-1f;
    y = y * m + 2.0000714765e-1f;
    y = y * m + -2.4999993993e-1f;
    y = y * m + 3.3333331174e-1f;
    y = y * m * z;
    const float fe = static_cast<float>(e);
    y = y + fe * -2.12194440e-4f;
    y = y - 0.5f * z;
    float r = m + y;
    r = r + fe * 0.693359375f;
    return r;
}

}  // namespace

float
fastLog1p(float x)
{
    if (std::isnan(x) || x == INFINITY)
        return x;
    const float u = 1.0f + x;
    if (u == 1.0f)
        return x;  // x == 0 or tiny: log1p(x) ~= x exactly at this scale
    // Goldberg's correction: log(u) * x / (u - 1) repairs the rounding
    // of 1 + x, keeping the result within ~1 ulp of true log1p.
    return logfCore(u) * (x / (u - 1.0f));
}

void
fastLog1pArray(float* values, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        const float x = values[i] < 0.0f ? 0.0f : values[i];
        values[i] = fastLog1p(x);
    }
}

}  // namespace presto
