/**
 * @file
 * Bit-exact portable float math shared by every SIMD dispatch level.
 *
 * fastLog1p is a cephes-style polynomial log1p whose IEEE operation
 * sequence is mirrored exactly by the AVX2 and AVX-512 Log kernels, so
 * all dispatch levels produce bit-identical dense normalization output.
 * Accuracy: within 2 ulp of glibc log1pf over adversarial inputs
 * (verified in hotpath_test), well inside EXPECT_FLOAT_EQ's 4-ulp band.
 *
 * The definitions live in fast_math.cc, compiled with -ffp-contract=off:
 * a fused multiply-add anywhere in the scalar sequence would diverge
 * from the vector kernels (which use separate mul/add on purpose).
 */
#ifndef PRESTO_OPS_FAST_MATH_H_
#define PRESTO_OPS_FAST_MATH_H_

#include <cstddef>

namespace presto {

/**
 * log1p(x) for x >= 0 (negative x must be clamped by the caller; NaN and
 * +inf pass through unchanged, matching log1p(max(x, 0)) semantics).
 */
float fastLog1p(float x);

/** Apply v -> fastLog1p(max(v, 0)) over a buffer (scalar reference). */
void fastLog1pArray(float* values, size_t n);

}  // namespace presto

#endif  // PRESTO_OPS_FAST_MATH_H_
