// AVX2 tier of the op-chain VM. Compiled with -mavx2 -ffp-contract=off;
// only reached behind the runtime CPU check in ops/simd.cc. Reuses the
// per-register bodies from fast_ops_avx2_inl.h, so a fused chain emits
// the exact same instruction sequence per value as the whole-column
// kernels — bit-identical to the unfused reference at every tile size.
//
// Per-op broadcast constants are hoisted into small stack arrays before
// the tile loop (bounded by kMaxFusedChainOps; longer chains never
// reach this tier). Values stream through one register across the whole
// chain: 8xf32 tiles for the float stage, 4xi64 lane groups for the
// hash stage.
#include <immintrin.h>

#include <cstdint>

#include "ops/fast_ops_avx2_inl.h"
#include "ops/fast_ops_internal.h"
#include "ops/opvm_internal.h"

namespace presto::opvm_detail {

namespace {

using simd_detail::Avx2HashConsts;

struct F32Consts {
    __m256 va[kMaxFusedChainOps];
    __m256 vb[kMaxFusedChainOps];
};

inline void
loadF32Consts(const OpInstr* ops, size_t nops, F32Consts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        c.va[k] = _mm256_set1_ps(ops[k].a);
        c.vb[k] = _mm256_set1_ps(ops[k].b);
    }
}

inline __m256
chain8(__m256 x, const OpInstr* ops, size_t nops, const F32Consts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        switch (ops[k].op) {
          case OpCode::kFill:
            x = simd_detail::fill8(x, c.va[k]);
            break;
          case OpCode::kLog:
            x = simd_detail::log8(x);
            break;
          case OpCode::kClamp:
            x = simd_detail::clamp8(x, c.va[k], c.vb[k]);
            break;
          default:
            break;
        }
    }
    return x;
}

struct HashConsts {
    Avx2HashConsts hc[kMaxFusedChainOps];
    bool one[kMaxFusedChainOps];  // max_value == 1: result is always 0
};

inline void
loadHashConsts(const OpInstr* ops, size_t nops, HashConsts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        c.one[k] = ops[k].max_value == 1;
        if (!c.one[k]) {
            c.hc[k] = Avx2HashConsts::make(
                ops[k].seed, static_cast<uint64_t>(ops[k].max_value));
        }
    }
}

inline __m256i
hashChain4(__m256i h, size_t nops, const HashConsts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        h = c.one[k] ? _mm256_setzero_si256()
                     : simd_detail::hashMod4(h, c.hc[k]);
    }
    return h;
}

}  // namespace

void
runDenseAvx2(const OpInstr* ops, size_t nops, const float* src, size_t n,
             float* dst, size_t stride)
{
    F32Consts c;
    loadF32Consts(ops, nops, c);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x = chain8(_mm256_loadu_ps(src + i), ops, nops, c);
        alignas(32) float tmp[8];
        _mm256_store_ps(tmp, x);
        for (size_t r = 0; r < 8; ++r)
            dst[(i + r) * stride] = tmp[r];
    }
    for (; i < n; ++i)
        dst[i * stride] = applyF32Scalar(ops, nops, src[i]);
}

void
runSparseAvx2(const OpInstr* ops, size_t nops, const int64_t* src,
              size_t n, int64_t* dst)
{
    HashConsts c;
    loadHashConsts(ops, nops, c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            hashChain4(h, nops, c));
    }
    for (; i < n; ++i)
        dst[i] = applyHashScalar(ops, nops, src[i]);
}

void
runGeneratedAvx2(const OpInstr* f32_ops, size_t nf32, const BucketTable& bt,
                 const OpInstr* hash_ops, size_t nhash, const float* src,
                 size_t n, int64_t* out)
{
    F32Consts fc;
    loadF32Consts(f32_ops, nf32, fc);
    HashConsts hc;
    loadHashConsts(hash_ops, nhash, hc);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x = chain8(_mm256_loadu_ps(src + i), f32_ops, nf32, fc);
        __m256i b32 =
            simd_detail::bucketize8(x, bt.bounds, bt.halves, bt.num_halves);
        __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(b32));
        __m256i hi =
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(b32, 1));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            hashChain4(lo, nhash, hc));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                            hashChain4(hi, nhash, hc));
    }
    for (; i < n; ++i) {
        const float v = applyF32Scalar(f32_ops, nf32, src[i]);
        int64_t id = 0;
        simd_detail::bucketizeScalar(&v, &id, 1, bt.bounds, bt.halves,
                                     bt.num_halves);
        out[i] = applyHashScalar(hash_ops, nhash, id);
    }
}

}  // namespace presto::opvm_detail
