/**
 * @file
 * Op-chain compiler + register-based bytecode VM for TransformPlans.
 *
 * A TransformPlan names, per output tensor, a chain of operators
 * (FillMissing/Log/Clamp on floats, Bucketize as the float->id bridge,
 * SigridHash/FirstX on ids). The reference executor runs one
 * whole-column pass per operator, materializing an intermediate column
 * between steps — N ops cost N memory round-trips. CompiledProgram
 * lowers each output chain once into a small bytecode program
 * (validated at compile time, never per batch) and executes it in a
 * single pass per column: values stream through SIMD registers
 * tile-by-tile (8xf32 / 4xi64 on AVX2, 16xf32 / 8xi64 on AVX-512), so
 * no intermediate ever touches memory. Dispatch reuses the per-register
 * kernels of fast_ops* — every tier is bit-identical to the unfused
 * reference path (every operator is elementwise, so any tiling of the
 * fused chain reproduces the reference output exactly).
 *
 * FirstX compiles away entirely: elementwise hashes commute with
 * positional prefix selection, so the chain's FirstX ops collapse into
 * one prefix cap applied while packing the input, and the hash chain
 * runs fused over the surviving ids.
 *
 * Execution is allocation-free in steady state: fused chains need no
 * scratch at all (registers write straight into the MiniBatch), and the
 * rare over-long chain (> kMaxFusedChainOps per stage) falls back to
 * whole-column passes over BatchArena scratch.
 *
 * See docs/OPVM.md for the bytecode format and register model.
 */
#ifndef PRESTO_OPS_OPVM_H_
#define PRESTO_OPS_OPVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/batch_arena.h"
#include "common/thread_pool.h"
#include "ops/fast_ops.h"
#include "ops/plan.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"

namespace presto {

/**
 * Longest operator chain (per stage: float ops, hash ops) executed
 * fused with hoisted per-op register constants. Longer stages run as
 * whole-column passes instead — same results, just not single-pass.
 */
inline constexpr size_t kMaxFusedChainOps = 16;

/** Bytecode operations. A program is [f32 ops][bucketize?][hash ops]. */
enum class OpCode : uint8_t {
    kFill,       ///< f32: NaN -> a
    kLog,        ///< f32: log1p(max(x, 0))
    kClamp,      ///< f32: min(max(x, a), b), NaN passes through
    kBucketize,  ///< bridge: f32 -> i64 bucket id (boundary table)
    kHash,       ///< i64: sigridHash(seed) mod max_value
};

/** Human-readable mnemonic of an OpCode. */
const char* opCodeName(OpCode op);

/** One bytecode instruction (a union of the per-op operand fields). */
struct OpInstr {
    OpCode op = OpCode::kLog;
    float a = 0.0f;          ///< kFill: fill value; kClamp: lo
    float b = 0.0f;          ///< kClamp: hi
    uint64_t seed = 0;       ///< kHash
    int64_t max_value = 1;   ///< kHash divisor (>= 1)
    int32_t table = -1;      ///< kBucketize: boundary-table index
};

/**
 * Chain-level algebraic simplification of an f32-stage instruction
 * sequence (kFill/kLog/kClamp only), run by compile() and exposed for
 * direct testing. Bit-identical to executing the original chain on any
 * input (including NaN payloads and signed zeros), on every SIMD tier:
 *
 *  - adjacent clamps fold into one: clamp(a1,b1);clamp(a2,b2) ->
 *    clamp(max(a1,a2), min(max(b1,a2),b2)), skipped when any bound is
 *    NaN (NaN bounds behave differently per tier and must stay as
 *    written);
 *  - fill(a1);fill(a2) with a1 NaN: the earlier fill is dominated by
 *    the later one and dropped (any NaN -> a1' (still NaN) -> a2);
 *  - a fill is dead and dropped when an earlier fill with a non-NaN
 *    value precedes it with only NaN-free ops between (kLog never
 *    produces NaN from non-NaN input; kClamp with non-NaN bounds
 *    neither) — no NaN can reach it. fill(NaN) with no prior fill is
 *    NOT dropped: it rewrites NaN payloads.
 *
 * Iterates to fixpoint (dropping a fill can make two clamps adjacent).
 */
std::vector<OpInstr> simplifyF32Chain(std::vector<OpInstr> ops);

/** The compiled form of one PlanOutput. */
struct CompiledOutput {
    PlanOutput::Kind kind = PlanOutput::Kind::kDense;
    std::string name;
    size_t source = 0;      ///< input column index in the schema
    size_t slot = 0;        ///< dense matrix column or mb.sparse index
    /**
     * Feature-unit stream id for the ISP emulator: dense outputs get
     * their dense slot, generated outputs share their source dense
     * feature's unit, raw sparse outputs follow after the dense units.
     */
    size_t unit_stream = 0;
    /**
     * Combined FirstX cap (min over the chain's FirstX ops; SIZE_MAX
     * when uncapped). Applied while packing input ids — see file
     * comment on why this commutes with the hash chain.
     */
    size_t prefix_cap = SIZE_MAX;
    std::vector<OpInstr> code;  ///< [f32 ops][kBucketize?][kHash ops]
    uint32_t num_f32 = 0;       ///< leading f32-stage instructions
    uint32_t num_hash = 0;      ///< trailing hash-stage instructions
    /**
     * f32-stage length before chain-level algebraic simplification
     * (adjacent-clamp folding and dead-fill elimination, see
     * simplifyF32Chain()); equals num_f32 when nothing was folded.
     * Disassembly surfaces the difference.
     */
    uint32_t unsimplified_f32 = 0;
    bool fused = true;          ///< false: some stage > kMaxFusedChainOps
};

/**
 * A TransformPlan lowered to bytecode, bound to one input schema.
 *
 * Validation happens exactly once, at compile time; run() only performs
 * an O(1) schema-fingerprint check per batch (see
 * planValidationCount()). Thread-safe for concurrent run() calls.
 */
class CompiledProgram
{
  public:
    CompiledProgram() = default;

    /**
     * Validate @p plan against @p input_schema and lower it. Panics on
     * invalid plans (use TransformPlan::validate first for recoverable
     * handling).
     */
    static CompiledProgram compile(TransformPlan plan,
                                   const Schema& input_schema);

    /**
     * Execute the program over one raw batch into @p mb, reusing its
     * buffers. Steady state performs zero heap allocations. @p arena is
     * only touched by non-fused fallback outputs; @p pool optionally
     * fans out one task per output.
     */
    void run(const RowBatch& raw, MiniBatch& mb, BatchArena& arena,
             ThreadPool* pool = nullptr) const;

    /**
     * Chunk-granular entry points for double-buffered PE emulation
     * (core/isp_emulator): run one fused output's full chain over a
     * sub-range of its column. Every op is elementwise, so executing a
     * column in chunks is bit-identical to one run() pass. Panics on
     * non-fused outputs.
     * @{
     */
    void runDenseRange(const CompiledOutput& out, const float* src,
                       size_t n, float* dst, size_t stride) const;
    void runHashRange(const CompiledOutput& out, const int64_t* src,
                      size_t n, int64_t* dst) const;
    void runGeneratedRange(const CompiledOutput& out, const float* src,
                           size_t n, int64_t* dst) const;
    /** @} */

    const std::vector<CompiledOutput>& outputs() const { return outputs_; }
    const TransformPlan& plan() const { return plan_; }
    const Schema& inputSchema() const { return input_schema_; }
    size_t numDense() const { return num_dense_; }
    size_t numSparse() const { return num_sparse_; }

    /** Boundary table of a kBucketize instruction. */
    const FastBucketizer&
    bucketizer(int32_t table) const
    {
        return bucketizers_[static_cast<size_t>(table)];
    }

    /** Assembly-style listing of the compiled program. */
    std::string disassemble() const;

  private:
    void runOutput(size_t o, const RowBatch& raw, MiniBatch& mb,
                   BatchArena& arena) const;
    void runDense(const CompiledOutput& out, const RowBatch& raw,
                  MiniBatch& mb, BatchArena& arena, size_t o) const;
    void runSparse(const CompiledOutput& out, const RowBatch& raw,
                   MiniBatch& mb) const;
    void runGenerated(const CompiledOutput& out, const RowBatch& raw,
                      MiniBatch& mb, BatchArena& arena, size_t o) const;

    TransformPlan plan_;
    Schema input_schema_;
    uint64_t schema_fp_ = 0;
    size_t num_dense_ = 0;
    size_t num_sparse_ = 0;
    bool has_fallback_ = false;  ///< any output with fused == false
    std::vector<CompiledOutput> outputs_;
    std::vector<FastBucketizer> bucketizers_;
};

}  // namespace presto

#endif  // PRESTO_OPS_OPVM_H_
