#include "ops/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ops/fast_math.h"
#include "ops/hash.h"

namespace presto {

// --- BucketBoundaries ------------------------------------------------------

BucketBoundaries::BucketBoundaries(std::vector<float> boundaries)
    : boundaries_(std::move(boundaries))
{
    PRESTO_CHECK(!boundaries_.empty(), "need at least one boundary");
    PRESTO_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()),
                 "bucket boundaries must be sorted ascending");
}

BucketBoundaries
BucketBoundaries::makeLogSpaced(size_t num_boundaries, float lo, float hi)
{
    PRESTO_CHECK(num_boundaries > 0, "need at least one boundary");
    PRESTO_CHECK(lo > 0.0f && hi > lo, "log-spaced range must be 0 < lo < hi");
    std::vector<float> b(num_boundaries);
    const double log_lo = std::log(static_cast<double>(lo));
    const double log_hi = std::log(static_cast<double>(hi));
    const double denom =
        num_boundaries > 1 ? static_cast<double>(num_boundaries - 1) : 1.0;
    for (size_t i = 0; i < num_boundaries; ++i) {
        const double t = static_cast<double>(i) / denom;
        b[i] = static_cast<float>(std::exp(log_lo + t * (log_hi - log_lo)));
    }
    // Guard against FP rounding breaking strict ordering for huge m.
    for (size_t i = 1; i < b.size(); ++i)
        b[i] = std::max(b[i], std::nextafter(b[i - 1], hi * 2.0f));
    return BucketBoundaries(std::move(b));
}

int64_t
BucketBoundaries::searchBucketId(float value) const
{
    // Missing values (NaN) map to the first bucket deterministically
    // (FillMissing normally runs first; this is a safety net).
    if (std::isnan(value))
        return 0;
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
    return static_cast<int64_t>(it - boundaries_.begin());
}

// --- Bucketize --------------------------------------------------------------

void
bucketizeInto(std::span<const float> values,
              const BucketBoundaries& boundaries, std::span<int64_t> out)
{
    PRESTO_CHECK(out.size() == values.size(), "output size mismatch");
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = boundaries.searchBucketId(values[i]);
}

SparseColumn
bucketize(const DenseColumn& input, const BucketBoundaries& boundaries)
{
    const size_t n = input.numRows();
    std::vector<int64_t> ids(n);
    bucketizeInto(input.values(), boundaries, ids);
    std::vector<uint32_t> offsets(n + 1);
    for (size_t i = 0; i <= n; ++i)
        offsets[i] = static_cast<uint32_t>(i);
    return SparseColumn(std::move(ids), std::move(offsets));
}

// --- SigridHash --------------------------------------------------------------

void
sigridHashInPlace(std::span<int64_t> values, uint64_t seed, int64_t max_value)
{
    PRESTO_CHECK(max_value > 0, "SigridHash max_value must be positive");
    for (auto& v : values)
        v = sigridHashMod(v, seed, max_value);
}

SparseColumn
sigridHash(const SparseColumn& input, uint64_t seed, int64_t max_value)
{
    std::vector<int64_t> values(input.values().begin(),
                                input.values().end());
    sigridHashInPlace(values, seed, max_value);
    std::vector<uint32_t> offsets(input.offsets().begin(),
                                  input.offsets().end());
    return SparseColumn(std::move(values), std::move(offsets));
}

// --- Log ----------------------------------------------------------------------

void
logTransformInPlace(std::span<float> values)
{
    // fastLog1p (within 2 ulp of libm log1pf) keeps this reference
    // bit-identical to the SIMD Log kernels on every dispatch level.
    fastLog1pArray(values.data(), values.size());
}

DenseColumn
logTransform(const DenseColumn& input)
{
    std::vector<float> values(input.values().begin(), input.values().end());
    logTransformInPlace(values);
    return DenseColumn(std::move(values));
}

// --- FillMissing ----------------------------------------------------------------

void
fillMissingInPlace(std::span<float> values, float fill_value)
{
    for (auto& v : values) {
        if (std::isnan(v))
            v = fill_value;
    }
}

DenseColumn
fillMissing(const DenseColumn& input, float fill_value)
{
    std::vector<float> values(input.values().begin(), input.values().end());
    fillMissingInPlace(values, fill_value);
    return DenseColumn(std::move(values));
}

// --- Clamp -----------------------------------------------------------------------

DenseColumn
clamp(const DenseColumn& input, float lo, float hi)
{
    PRESTO_CHECK(lo <= hi, "clamp range inverted");
    std::vector<float> values(input.values().begin(), input.values().end());
    for (auto& v : values) {
        if (v < lo)
            v = lo;
        else if (v > hi)
            v = hi;
    }
    return DenseColumn(std::move(values));
}

// --- MapIdList -------------------------------------------------------------------

IdVocabulary::IdVocabulary(std::vector<int64_t> ids) : ids_(std::move(ids))
{
    std::sort(ids_.begin(), ids_.end());
    const auto last = std::unique(ids_.begin(), ids_.end());
    PRESTO_CHECK(last == ids_.end(), "vocabulary ids must be distinct");
}

int64_t
IdVocabulary::lookup(int64_t id) const
{
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id)
        return -1;
    return it - ids_.begin();
}

SparseColumn
mapIdList(const SparseColumn& input, const IdVocabulary& vocab,
          int64_t miss_value)
{
    std::vector<int64_t> values(input.values().begin(),
                                input.values().end());
    for (auto& v : values) {
        const int64_t idx = vocab.lookup(v);
        v = idx >= 0 ? idx : miss_value;
    }
    std::vector<uint32_t> offsets(input.offsets().begin(),
                                  input.offsets().end());
    return SparseColumn(std::move(values), std::move(offsets));
}

// --- FirstX ----------------------------------------------------------------------

SparseColumn
firstX(const SparseColumn& input, size_t max_ids)
{
    const size_t num_rows = input.numRows();
    size_t total = 0;
    for (size_t r = 0; r < num_rows; ++r)
        total += std::min(input.row(r).size(), max_ids);
    std::vector<int64_t> values;
    values.reserve(total);
    std::vector<uint32_t> offsets;
    offsets.reserve(num_rows + 1);
    offsets.push_back(0);
    for (size_t r = 0; r < num_rows; ++r) {
        auto row = input.row(r);
        const size_t keep = std::min(row.size(), max_ids);
        values.insert(values.end(), row.begin(), row.begin() + keep);
        offsets.push_back(static_cast<uint32_t>(values.size()));
    }
    return SparseColumn(std::move(values), std::move(offsets));
}

}  // namespace presto
