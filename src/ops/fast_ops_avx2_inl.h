#pragma once

// Per-register AVX2 bodies shared by fast_ops_avx2.cc (whole-column
// kernels) and opvm_avx2.cc (fused op-chain VM). Include only from TUs
// compiled with -mavx2 and -ffp-contract=off: the log body mirrors the
// scalar fastLog1p operation sequence and must not gain FMAs, and both
// includers have to emit the exact same instruction sequence so fused
// and unfused execution stay bit-identical.
#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "ops/hash.h"

namespace presto::simd_detail {

/** Low 64 bits of a*b per lane (b_hi32 = b >> 32 hoisted). */
inline __m256i
mullo64(__m256i a, __m256i b, __m256i b_hi32)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
    __m256i t2 = _mm256_mul_epu32(a, b_hi32);
    return _mm256_add_epi64(
        lo, _mm256_slli_epi64(_mm256_add_epi64(t1, t2), 32));
}

/** High 64 bits of the unsigned 128-bit product a*b. */
inline __m256i
mulhi64u(__m256i a, __m256i b, __m256i b_hi)
{
    const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i p0 = _mm256_mul_epu32(a, b);
    __m256i p1 = _mm256_mul_epu32(a, b_hi);
    __m256i p2 = _mm256_mul_epu32(a_hi, b);
    __m256i p3 = _mm256_mul_epu32(a_hi, b_hi);
    __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(p0, 32),
                         _mm256_and_si256(p1, lo32)),
        _mm256_and_si256(p2, lo32));
    return _mm256_add_epi64(
        _mm256_add_epi64(p3, _mm256_srli_epi64(p1, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(p2, 32),
                         _mm256_srli_epi64(mid, 32)));
}

/** Hoisted broadcast constants for one (seed, max_value) hash op. */
struct Avx2HashConsts {
    __m256i vk1, vk1h, vk2, vk2h, vk3, vk3h;
    __m256i vseed, vseedk;
    __m256i vm, vmh, vd, vdh;
    __m256i bias, vdm1b;

    /** Requires max_value >= 2 (d == 1 short-circuits upstream). */
    static Avx2HashConsts
    make(uint64_t seed, uint64_t ud)
    {
        const auto magic = static_cast<uint64_t>(
            (static_cast<__uint128_t>(1) << 64) / ud);
        Avx2HashConsts c;
        c.vk1 = _mm256_set1_epi64x(static_cast<long long>(kHashK1));
        c.vk1h = _mm256_srli_epi64(c.vk1, 32);
        c.vk2 = _mm256_set1_epi64x(static_cast<long long>(kHashK2));
        c.vk2h = _mm256_srli_epi64(c.vk2, 32);
        c.vk3 = _mm256_set1_epi64x(static_cast<long long>(kHashK3));
        c.vk3h = _mm256_srli_epi64(c.vk3, 32);
        c.vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
        c.vseedk =
            _mm256_set1_epi64x(static_cast<long long>(seed * kHashK1));
        c.vm = _mm256_set1_epi64x(static_cast<long long>(magic));
        c.vmh = _mm256_srli_epi64(c.vm, 32);
        c.vd = _mm256_set1_epi64x(static_cast<long long>(ud));
        c.vdh = _mm256_srli_epi64(c.vd, 32);
        // AVX2 has only signed 64-bit compares; XOR with the sign bit
        // turns an unsigned compare into a signed one.
        c.bias = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        c.vdm1b = _mm256_xor_si256(
            _mm256_set1_epi64x(static_cast<long long>(ud - 1)), c.bias);
        return c;
    }
};

/** sigridHashMod for four lanes: seeded mix + exact Barrett modulo. */
inline __m256i
hashMod4(__m256i h, const Avx2HashConsts& c)
{
    h = _mm256_xor_si256(h, c.vseedk);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = mullo64(h, c.vk1, c.vk1h);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = mullo64(h, c.vk2, c.vk2h);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = _mm256_xor_si256(h, c.vseed);
    h = mullo64(h, c.vk3, c.vk3h);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
    // Barrett: q = floor(h * magic / 2^64) is h/d or h/d - 1; one
    // conditional subtract lands r in [0, d).
    __m256i q = mulhi64u(h, c.vm, c.vmh);
    __m256i r = _mm256_sub_epi64(h, mullo64(q, c.vd, c.vdh));
    __m256i ge =
        _mm256_cmpgt_epi64(_mm256_xor_si256(r, c.bias), c.vdm1b);
    return _mm256_sub_epi64(r, _mm256_and_si256(ge, c.vd));
}

/** fastLog1p(max(x, 0)) for eight lanes, bit-exact vs the scalar. */
inline __m256
log8(__m256 x0)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 sqrthf = _mm256_set1_ps(0.707106781186547524f);
    const __m256i mmask = _mm256_set1_epi32(0x807fffff);
    const __m256i mbits = _mm256_set1_epi32(0x3f000000);
    const __m256i e126 = _mm256_set1_epi32(126);
    const __m256 inf = _mm256_set1_ps(INFINITY);
    // Clamp negatives to zero; blendv keeps NaN lanes (cmp is false).
    __m256 ltz = _mm256_cmp_ps(x0, zero, _CMP_LT_OQ);
    __m256 x = _mm256_blendv_ps(x0, zero, ltz);
    __m256 u = _mm256_add_ps(one, x);
    __m256i ui = _mm256_castps_si256(u);
    __m256i e = _mm256_sub_epi32(
        _mm256_and_si256(_mm256_srli_epi32(ui, 23),
                         _mm256_set1_epi32(0xff)),
        e126);
    __m256 m = _mm256_castsi256_ps(
        _mm256_or_si256(_mm256_and_si256(ui, mmask), mbits));
    __m256 lo = _mm256_cmp_ps(m, sqrthf, _CMP_LT_OQ);
    e = _mm256_add_epi32(e, _mm256_castps_si256(lo));  // mask == -1
    m = _mm256_sub_ps(_mm256_add_ps(m, _mm256_and_ps(lo, m)), one);
    __m256 z = _mm256_mul_ps(m, m);
    __m256 y = _mm256_set1_ps(7.0376836292e-2f);
    auto step = [&](float c) {
        y = _mm256_add_ps(_mm256_mul_ps(y, m), _mm256_set1_ps(c));
    };
    step(-1.1514610310e-1f);
    step(1.1676998740e-1f);
    step(-1.2420140846e-1f);
    step(1.4249322787e-1f);
    step(-1.6668057665e-1f);
    step(2.0000714765e-1f);
    step(-2.4999993993e-1f);
    step(3.3333331174e-1f);
    y = _mm256_mul_ps(_mm256_mul_ps(y, m), z);
    __m256 fe = _mm256_cvtepi32_ps(e);
    y = _mm256_add_ps(
        y, _mm256_mul_ps(fe, _mm256_set1_ps(-2.12194440e-4f)));
    y = _mm256_sub_ps(y, _mm256_mul_ps(half, z));
    __m256 r = _mm256_add_ps(m, y);
    r = _mm256_add_ps(
        r, _mm256_mul_ps(fe, _mm256_set1_ps(0.693359375f)));
    // r == logfCore(u); log1p = r * (x / (u - 1)).
    __m256 res =
        _mm256_mul_ps(r, _mm256_div_ps(x, _mm256_sub_ps(u, one)));
    __m256 ueq1 = _mm256_cmp_ps(u, one, _CMP_EQ_OQ);
    res = _mm256_blendv_ps(res, x, ueq1);
    __m256 nan = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    __m256 isinf = _mm256_cmp_ps(x, inf, _CMP_EQ_OQ);
    return _mm256_blendv_ps(res, x, _mm256_or_ps(nan, isinf));
}

/** FillMissing for eight lanes: NaN -> vf. */
inline __m256
fill8(__m256 x, __m256 vf)
{
    __m256 nan = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    return _mm256_blendv_ps(x, vf, nan);
}

/**
 * min(max(v, lo), hi) with std::min/std::max NaN semantics: both
 * compares are false on NaN input, so NaN passes through unchanged
 * (exactly what the scalar `std::min(std::max(v, a), b)` does).
 */
inline __m256
clamp8(__m256 v, __m256 lo, __m256 hi)
{
    __m256 t = _mm256_blendv_ps(v, lo, _mm256_cmp_ps(v, lo, _CMP_LT_OQ));
    return _mm256_blendv_ps(t, hi, _mm256_cmp_ps(hi, t, _CMP_LT_OQ));
}

/**
 * Bucket ids (epi32) for eight values: the same value-independent
 * bisection schedule as the scalar halves loop, gathers instead of
 * scalar loads.
 */
inline __m256i
bucketize8(__m256 x, const float* bounds, const int32_t* halves,
           size_t num_halves)
{
    __m256i base = _mm256_setzero_si256();
    for (size_t s = 0; s < num_halves; ++s) {
        const int32_t half = halves[s];
        __m256i idx =
            _mm256_add_epi32(base, _mm256_set1_epi32(half - 1));
        __m256 bv = _mm256_i32gather_ps(bounds, idx, 4);
        __m256 le = _mm256_cmp_ps(bv, x, _CMP_LE_OQ);
        base = _mm256_add_epi32(
            base, _mm256_and_si256(_mm256_castps_si256(le),
                                   _mm256_set1_epi32(half)));
    }
    __m256 bv = _mm256_i32gather_ps(bounds, base, 4);
    __m256 le = _mm256_cmp_ps(bv, x, _CMP_LE_OQ);
    return _mm256_sub_epi32(base, _mm256_castps_si256(le));  // +1 if le
}

}  // namespace presto::simd_detail
