#pragma once

// Per-register AVX-512 bodies shared by fast_ops_avx512.cc
// (whole-column kernels) and opvm_avx512.cc (fused op-chain VM).
// Include only from TUs compiled with -mavx512f -mavx512dq and
// -ffp-contract=off, for the same bit-identity reasons as
// fast_ops_avx2_inl.h.
#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "ops/hash.h"

namespace presto::simd_detail {

constexpr int64_t kSmallDivisorMax = int64_t{1} << 25;

/** High 64 bits of the unsigned 128-bit product a*b. */
inline __m512i
mulhi64u512(__m512i a, __m512i b)
{
    const __m512i lo32 = _mm512_set1_epi64(0xffffffffLL);
    __m512i a_hi = _mm512_srli_epi64(a, 32);
    __m512i b_hi = _mm512_srli_epi64(b, 32);
    __m512i p0 = _mm512_mul_epu32(a, b);
    __m512i p1 = _mm512_mul_epu32(a, b_hi);
    __m512i p2 = _mm512_mul_epu32(a_hi, b);
    __m512i p3 = _mm512_mul_epu32(a_hi, b_hi);
    __m512i mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(p0, 32),
                         _mm512_and_si512(p1, lo32)),
        _mm512_and_si512(p2, lo32));
    return _mm512_add_epi64(
        _mm512_add_epi64(p3, _mm512_srli_epi64(p1, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(p2, 32),
                         _mm512_srli_epi64(mid, 32)));
}

/** Hoisted broadcast constants for one (seed, max_value) hash op. */
struct Avx512HashConsts {
    bool small;  // d <= kSmallDivisorMax: reciprocal path, else Barrett
    __m512i vk1, vk2, vk3;
    __m512i vseed, vseedk;
    __m512i vd, vdm1;
    __m512i vc32;  // small only: 2^32 mod d
    __m512d rd;    // small only: 1.0 / d
    __m512i vm;    // Barrett only: floor(2^64 / d)

    /** Requires max_value >= 2 (d == 1 short-circuits upstream). */
    static Avx512HashConsts
    make(uint64_t seed, uint64_t ud)
    {
        Avx512HashConsts c;
        c.small = static_cast<int64_t>(ud) <= kSmallDivisorMax;
        c.vk1 = _mm512_set1_epi64(static_cast<long long>(kHashK1));
        c.vk2 = _mm512_set1_epi64(static_cast<long long>(kHashK2));
        c.vk3 = _mm512_set1_epi64(static_cast<long long>(kHashK3));
        c.vseed = _mm512_set1_epi64(static_cast<long long>(seed));
        c.vseedk =
            _mm512_set1_epi64(static_cast<long long>(seed * kHashK1));
        c.vd = _mm512_set1_epi64(static_cast<long long>(ud));
        c.vdm1 = _mm512_set1_epi64(static_cast<long long>(ud - 1));
        if (c.small) {
            const uint64_t c32 = (uint64_t{1} << 32) % ud;
            c.vc32 = _mm512_set1_epi64(static_cast<long long>(c32));
            c.rd = _mm512_set1_pd(1.0 / static_cast<double>(ud));
            c.vm = _mm512_setzero_si512();
        } else {
            const auto magic = static_cast<uint64_t>(
                (static_cast<__uint128_t>(1) << 64) / ud);
            c.vc32 = _mm512_setzero_si512();
            c.rd = _mm512_setzero_pd();
            c.vm = _mm512_set1_epi64(static_cast<long long>(magic));
        }
        return c;
    }
};

/** The seeded mix of sigridHash64, eight lanes at a time. */
inline __m512i
hash8(__m512i h, __m512i vseed, __m512i vseedk, __m512i vk1, __m512i vk2,
      __m512i vk3)
{
    h = _mm512_xor_si512(h, vseedk);
    h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
    h = _mm512_mullo_epi64(h, vk1);
    h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
    h = _mm512_mullo_epi64(h, vk2);
    h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
    h = _mm512_xor_si512(h, vseed);
    h = _mm512_mullo_epi64(h, vk3);
    return _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
}

/**
 * sigridHashMod for eight lanes. Two exact reduction strategies:
 *  - d <= 2^25: double-precision reciprocal modulo. The 64-bit hash is
 *    first folded twice with c32 = 2^32 mod d (u = hi*c32 + lo), which
 *    bounds u < d^2 + 2^32 < 2^53, exactly representable in a double.
 *    q = trunc(u * (1.0/d)) is then off by at most one in either
 *    direction, fixed with two masked corrections. All products fit:
 *    q < d + 2^32/d < 2^32, so mul_epu32(q, d) is exact.
 *  - d > 2^25: Barrett reduction via full 128-bit high multiply
 *    (magic = floor(2^64/d) <= 2^39 here, far from overflow).
 */
inline __m512i
hashMod8(__m512i h, const Avx512HashConsts& c)
{
    h = hash8(h, c.vseed, c.vseedk, c.vk1, c.vk2, c.vk3);
    if (c.small) {
        // Fold the high halves down: u = hi(h)*c32 + lo(h), twice.
        // After two folds u < d*c32 + 2^32 <= d^2 + 2^32 < 2^53.
        __m512i u = _mm512_add_epi64(
            _mm512_mul_epu32(_mm512_srli_epi64(h, 32), c.vc32),
            _mm512_and_si512(h, _mm512_set1_epi64(0xffffffffLL)));
        u = _mm512_add_epi64(
            _mm512_mul_epu32(_mm512_srli_epi64(u, 32), c.vc32),
            _mm512_and_si512(u, _mm512_set1_epi64(0xffffffffLL)));
        __m512i q = _mm512_cvttpd_epu64(
            _mm512_mul_pd(_mm512_cvtepu64_pd(u), c.rd));
        __m512i r = _mm512_sub_epi64(u, _mm512_mul_epu32(q, c.vd));
        // q may be off by one either way: r in (-d, 2d).
        __mmask8 neg =
            _mm512_cmpgt_epi64_mask(_mm512_setzero_si512(), r);
        r = _mm512_mask_add_epi64(r, neg, r, c.vd);
        __mmask8 big = _mm512_cmpgt_epi64_mask(r, c.vdm1);
        return _mm512_mask_sub_epi64(r, big, r, c.vd);
    }
    __m512i q = mulhi64u512(h, c.vm);
    __m512i r = _mm512_sub_epi64(h, _mm512_mullo_epi64(q, c.vd));
    __mmask8 ge = _mm512_cmpgt_epu64_mask(r, c.vdm1);
    return _mm512_mask_sub_epi64(r, ge, r, c.vd);
}

/** fastLog1p(max(x, 0)) for sixteen lanes, bit-exact vs the scalar. */
inline __m512
log16(__m512 x0)
{
    const __m512 one = _mm512_set1_ps(1.0f);
    const __m512 zero = _mm512_setzero_ps();
    const __m512 half = _mm512_set1_ps(0.5f);
    const __m512 sqrthf = _mm512_set1_ps(0.707106781186547524f);
    const __m512i mmask = _mm512_set1_epi32(0x807fffff);
    const __m512i mbits = _mm512_set1_epi32(0x3f000000);
    const __m512i e126 = _mm512_set1_epi32(126);
    const __m512 inf = _mm512_set1_ps(INFINITY);
    __mmask16 ltz = _mm512_cmp_ps_mask(x0, zero, _CMP_LT_OQ);
    __m512 x = _mm512_mask_blend_ps(ltz, x0, zero);
    __m512 u = _mm512_add_ps(one, x);
    __m512i ui = _mm512_castps_si512(u);
    __m512i e = _mm512_sub_epi32(
        _mm512_and_si512(_mm512_srli_epi32(ui, 23),
                         _mm512_set1_epi32(0xff)),
        e126);
    __m512 m = _mm512_castsi512_ps(
        _mm512_or_si512(_mm512_and_si512(ui, mmask), mbits));
    __mmask16 lo = _mm512_cmp_ps_mask(m, sqrthf, _CMP_LT_OQ);
    e = _mm512_mask_sub_epi32(e, lo, e, _mm512_set1_epi32(1));
    m = _mm512_sub_ps(_mm512_mask_add_ps(m, lo, m, m), one);
    __m512 z = _mm512_mul_ps(m, m);
    __m512 y = _mm512_set1_ps(7.0376836292e-2f);
    auto step = [&](float c) {
        y = _mm512_add_ps(_mm512_mul_ps(y, m), _mm512_set1_ps(c));
    };
    step(-1.1514610310e-1f);
    step(1.1676998740e-1f);
    step(-1.2420140846e-1f);
    step(1.4249322787e-1f);
    step(-1.6668057665e-1f);
    step(2.0000714765e-1f);
    step(-2.4999993993e-1f);
    step(3.3333331174e-1f);
    y = _mm512_mul_ps(_mm512_mul_ps(y, m), z);
    __m512 fe = _mm512_cvtepi32_ps(e);
    y = _mm512_add_ps(
        y, _mm512_mul_ps(fe, _mm512_set1_ps(-2.12194440e-4f)));
    y = _mm512_sub_ps(y, _mm512_mul_ps(half, z));
    __m512 r = _mm512_add_ps(m, y);
    r = _mm512_add_ps(
        r, _mm512_mul_ps(fe, _mm512_set1_ps(0.693359375f)));
    __m512 res =
        _mm512_mul_ps(r, _mm512_div_ps(x, _mm512_sub_ps(u, one)));
    __mmask16 ueq1 = _mm512_cmp_ps_mask(u, one, _CMP_EQ_OQ);
    res = _mm512_mask_blend_ps(ueq1, res, x);
    __mmask16 nan = _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q);
    __mmask16 isinf = _mm512_cmp_ps_mask(x, inf, _CMP_EQ_OQ);
    return _mm512_mask_blend_ps(
        static_cast<__mmask16>(nan | isinf), res, x);
}

/** FillMissing for sixteen lanes: NaN -> vf. */
inline __m512
fill16(__m512 x, __m512 vf)
{
    __mmask16 nan = _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q);
    return _mm512_mask_blend_ps(nan, x, vf);
}

/** min(max(v, lo), hi), NaN passes through (see clamp8). */
inline __m512
clamp16(__m512 v, __m512 lo, __m512 hi)
{
    __m512 t = _mm512_mask_blend_ps(
        _mm512_cmp_ps_mask(v, lo, _CMP_LT_OQ), v, lo);
    return _mm512_mask_blend_ps(
        _mm512_cmp_ps_mask(hi, t, _CMP_LT_OQ), t, hi);
}

}  // namespace presto::simd_detail
