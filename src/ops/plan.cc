#include "ops/plan.h"

#include <atomic>
#include <unordered_set>

#include "common/rng.h"
#include "ops/hash.h"
#include "ops/opvm.h"
#include "ops/preprocessor.h"

namespace presto {

namespace {

std::atomic<uint64_t> g_validation_count{0};

}  // namespace

uint64_t
planValidationCount()
{
    return g_validation_count.load(std::memory_order_relaxed);
}

size_t
TransformPlan::numDenseOutputs() const
{
    size_t n = 0;
    for (const auto& out : outputs_)
        n += (out.kind == PlanOutput::Kind::kDense);
    return n;
}

size_t
TransformPlan::numSparseOutputs() const
{
    size_t n = 0;
    for (const auto& out : outputs_) {
        n += (out.kind == PlanOutput::Kind::kSparse ||
              out.kind == PlanOutput::Kind::kGenerated);
    }
    return n;
}

Status
TransformPlan::validate(const Schema& schema) const
{
    g_validation_count.fetch_add(1, std::memory_order_relaxed);
    std::unordered_set<std::string> names;
    size_t labels = 0;
    for (const auto& out : outputs_) {
        if (!names.insert(out.output_name).second) {
            return Status::invalidArgument("duplicate output name: " +
                                           out.output_name);
        }
        const auto idx = schema.indexOf(out.source_feature);
        if (!idx.has_value()) {
            return Status::notFound("unknown source feature: " +
                                    out.source_feature);
        }
        const FeatureKind kind = schema.feature(*idx).kind;
        switch (out.kind) {
          case PlanOutput::Kind::kLabel:
            if (kind != FeatureKind::kLabel)
                return Status::invalidArgument(
                    out.source_feature + " is not a label column");
            ++labels;
            break;
          case PlanOutput::Kind::kDense:
          case PlanOutput::Kind::kGenerated:
            if (kind != FeatureKind::kDense)
                return Status::invalidArgument(
                    out.source_feature + " is not a dense feature");
            break;
          case PlanOutput::Kind::kSparse:
            if (kind != FeatureKind::kSparse)
                return Status::invalidArgument(
                    out.source_feature + " is not a sparse feature");
            break;
        }
        if (out.kind == PlanOutput::Kind::kGenerated &&
            out.bucket_boundaries == 0) {
            return Status::invalidArgument(
                "generated output needs bucket boundaries: " +
                out.output_name);
        }
        if (out.kind == PlanOutput::Kind::kDense && !out.sparse_ops.empty())
            return Status::invalidArgument(
                "dense output cannot have sparse ops: " + out.output_name);
        if (out.kind == PlanOutput::Kind::kSparse && !out.dense_ops.empty())
            return Status::invalidArgument(
                "sparse output cannot have dense ops: " + out.output_name);
        for (const auto& op : out.dense_ops) {
            if (op.kind == DenseOp::Kind::kClamp && op.a > op.b)
                return Status::invalidArgument("clamp range inverted in " +
                                               out.output_name);
        }
        for (const auto& op : out.sparse_ops) {
            if (op.kind == SparseOp::Kind::kSigridHash && op.max_value <= 0)
                return Status::invalidArgument(
                    "SigridHash max must be positive in " +
                    out.output_name);
        }
    }
    if (labels > 1)
        return Status::invalidArgument("at most one label output");
    return Status::okStatus();
}

TransformPlan
TransformPlan::standard(const RmConfig& config)
{
    // Mirrors Preprocessor exactly (seeds, boundaries, output order).
    const auto seed = [](size_t table) {
        return mix64(0x516ffd4005ULL ^ table);
    };
    const auto table_size = static_cast<int64_t>(config.avg_embeddings);

    TransformPlan plan;
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kLabel;
        out.output_name = "label";
        out.source_feature = "label";
        plan.add(std::move(out));
    }
    for (size_t f = 0; f < config.num_dense; ++f) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "dense_" + std::to_string(f);
        out.source_feature = out.output_name;
        out.dense_ops = {DenseOp::fillMissing(0.0f), DenseOp::log()};
        plan.add(std::move(out));
    }
    for (size_t f = 0; f < config.num_sparse; ++f) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "sparse_" + std::to_string(f);
        out.source_feature = out.output_name;
        out.sparse_ops = {SparseOp::sigridHash(seed(f), table_size)};
        plan.add(std::move(out));
    }
    for (size_t g = 0; g < config.num_generated; ++g) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kGenerated;
        out.output_name = "generated_" + std::to_string(g);
        out.source_feature = "dense_" + std::to_string(g);
        out.dense_ops = {DenseOp::fillMissing(0.0f)};
        out.bucket_boundaries = config.bucket_size;
        out.sparse_ops = {
            SparseOp::sigridHash(seed(config.num_sparse + g), table_size)};
        plan.add(std::move(out));
    }
    return plan;
}

PlanExecutor::PlanExecutor(TransformPlan plan, const Schema& input_schema)
    : program_(std::make_shared<const CompiledProgram>(
          CompiledProgram::compile(std::move(plan), input_schema)))
{
    // Metadata for the unfused reference path only; the compiled program
    // carries its own copy of everything the fused path needs.
    const TransformPlan& p = program_->plan();
    source_index_.reserve(p.outputs().size());
    boundary_slot_.reserve(p.outputs().size());
    for (const auto& out : p.outputs()) {
        source_index_.push_back(
            *program_->inputSchema().indexOf(out.source_feature));
        if (out.kind == PlanOutput::Kind::kGenerated) {
            boundary_slot_.push_back(static_cast<int>(boundaries_.size()));
            boundaries_.push_back(BucketBoundaries::makeLogSpaced(
                out.bucket_boundaries, kStandardBucketLo,
                kStandardBucketHi));
        } else {
            boundary_slot_.push_back(-1);
        }
    }
}

const TransformPlan&
PlanExecutor::plan() const
{
    return program_->plan();
}

MiniBatch
PlanExecutor::run(const RowBatch& raw) const
{
    MiniBatch mb;
    BatchArena arena;
    program_->run(raw, mb, arena);
    return mb;
}

void
PlanExecutor::runInto(const RowBatch& raw, MiniBatch& out, BatchArena& arena,
                      ThreadPool* pool) const
{
    program_->run(raw, out, arena, pool);
}

MiniBatch
PlanExecutor::runUnfused(const RowBatch& raw) const
{
    const TransformPlan& plan_ = program_->plan();
    PRESTO_CHECK(raw.schema() == program_->inputSchema(),
                 "batch schema does not match the plan's input schema");
    const size_t batch = raw.numRows();

    MiniBatch mb;
    mb.batch_size = batch;
    mb.num_dense = plan_.numDenseOutputs();
    mb.dense.resize(batch * mb.num_dense);
    mb.sparse.reserve(plan_.numSparseOutputs());

    auto applyDenseOps = [](std::vector<float>& values,
                            const std::vector<DenseOp>& ops) {
        for (const auto& op : ops) {
            switch (op.kind) {
              case DenseOp::Kind::kFillMissing:
                fillMissingInPlace(values, op.a);
                break;
              case DenseOp::Kind::kLog:
                logTransformInPlace(values);
                break;
              case DenseOp::Kind::kClamp:
                for (auto& v : values)
                    v = std::min(std::max(v, op.a), op.b);
                break;
            }
        }
    };

    auto applySparseOps = [](SparseColumn col,
                             const std::vector<SparseOp>& ops) {
        for (const auto& op : ops) {
            switch (op.kind) {
              case SparseOp::Kind::kSigridHash:
                col = sigridHash(col, op.seed, op.max_value);
                break;
              case SparseOp::Kind::kFirstX:
                col = firstX(col, op.max_ids);
                break;
            }
        }
        return col;
    };

    size_t dense_slot = 0;
    for (size_t o = 0; o < plan_.outputs().size(); ++o) {
        const auto& out = plan_.outputs()[o];
        const size_t src = source_index_[o];
        switch (out.kind) {
          case PlanOutput::Kind::kLabel: {
            const auto& col = raw.dense(src);
            mb.labels.assign(col.values().begin(), col.values().end());
            break;
          }
          case PlanOutput::Kind::kDense: {
            const auto& col = raw.dense(src);
            std::vector<float> values(col.values().begin(),
                                      col.values().end());
            applyDenseOps(values, out.dense_ops);
            for (size_t r = 0; r < batch; ++r)
                mb.dense[r * mb.num_dense + dense_slot] = values[r];
            ++dense_slot;
            break;
          }
          case PlanOutput::Kind::kSparse: {
            const SparseColumn col =
                applySparseOps(raw.sparse(src), out.sparse_ops);
            JaggedIndices jag;
            jag.feature_name = out.output_name;
            jag.values.assign(col.values().begin(), col.values().end());
            jag.lengths.resize(batch);
            for (size_t r = 0; r < batch; ++r)
                jag.lengths[r] = static_cast<uint32_t>(col.rowLength(r));
            mb.sparse.push_back(std::move(jag));
            break;
          }
          case PlanOutput::Kind::kGenerated: {
            const auto& col = raw.dense(src);
            std::vector<float> values(col.values().begin(),
                                      col.values().end());
            applyDenseOps(values, out.dense_ops);
            const auto& bounds =
                boundaries_[static_cast<size_t>(boundary_slot_[o])];
            std::vector<int64_t> ids(batch);
            bucketizeInto(values, bounds, ids);
            std::vector<uint32_t> offsets(batch + 1);
            for (size_t r = 0; r <= batch; ++r)
                offsets[r] = static_cast<uint32_t>(r);
            const SparseColumn generated = applySparseOps(
                SparseColumn(std::move(ids), std::move(offsets)),
                out.sparse_ops);
            JaggedIndices jag;
            jag.feature_name = out.output_name;
            jag.values.assign(generated.values().begin(),
                              generated.values().end());
            jag.lengths.resize(batch);
            for (size_t r = 0; r < batch; ++r)
                jag.lengths[r] =
                    static_cast<uint32_t>(generated.rowLength(r));
            mb.sparse.push_back(std::move(jag));
            break;
          }
        }
    }

    PRESTO_CHECK(mb.consistent(), "plan produced an inconsistent batch");
    return mb;
}

}  // namespace presto
