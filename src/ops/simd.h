/**
 * @file
 * Runtime SIMD dispatch for the Transform hot-path kernels.
 *
 * The best instruction-set level is detected once at startup; every
 * dispatched kernel (fast_ops.h) then routes through the active level.
 * All levels are bit-identical by construction and differentially tested,
 * so the level only changes speed, never results. Tests and benchmarks
 * pin levels explicitly via setSimdLevel(); the PRESTO_SIMD environment
 * variable (scalar|avx2|avx512) caps the level for ad-hoc comparisons.
 */
#ifndef PRESTO_OPS_SIMD_H_
#define PRESTO_OPS_SIMD_H_

namespace presto {

/** Instruction-set tiers of the dispatched kernels, best last. */
enum class SimdLevel : int {
    kScalar = 0,  ///< portable reference-speed fallback
    kAvx2 = 1,    ///< 256-bit integer/float kernels
    kAvx512 = 2,  ///< 512-bit kernels (needs AVX-512 F + DQ)
};

/** Best level this CPU supports (cached; honors PRESTO_SIMD cap). */
SimdLevel detectedSimdLevel();

/** Level the dispatched kernels currently use. */
SimdLevel activeSimdLevel();

/**
 * Pin the active level (clamped to detectedSimdLevel()).
 * @return the level actually installed.
 */
SimdLevel setSimdLevel(SimdLevel level);

/** Short lowercase name ("scalar", "avx2", "avx512"). */
const char* simdLevelName(SimdLevel level);

/**
 * True when the CPU also has the AVX-512 byte-compaction extensions
 * (BW + VBMI + VBMI2: vpermb/vpcompressb) used by the 64-byte varint
 * decode tier. Checked separately because kAvx512 itself requires only
 * F + DQ; on cores without these bits the varint decoder stays on the
 * AVX2 kernels.
 */
bool avx512ByteCompactionSupported();

}  // namespace presto

#endif  // PRESTO_OPS_SIMD_H_
