/**
 * @file
 * JSON authoring format for TransformPlans.
 *
 * ML engineers iterate on feature definitions far faster than on C++
 * code; a plan they can write, diff, and review as text is the service
 * tier's configuration surface (TenantSpec::plan). The format mirrors
 * PlanOutput one to one:
 *
 *     {
 *       "outputs": [
 *         {"kind": "label", "name": "label", "source": "label"},
 *         {"kind": "dense", "name": "d0", "source": "dense_0",
 *          "dense_ops": [{"op": "fill_missing", "value": 0.0},
 *                        {"op": "log"},
 *                        {"op": "clamp", "lo": 0.0, "hi": 10.0}]},
 *         {"kind": "sparse", "name": "s0", "source": "sparse_0",
 *          "sparse_ops": [{"op": "sigrid_hash", "seed": 42,
 *                          "max_value": 100000},
 *                         {"op": "first_x", "max_ids": 20}]},
 *         {"kind": "generated", "name": "g0", "source": "dense_1",
 *          "bucket_boundaries": 256,
 *          "sparse_ops": [{"op": "sigrid_hash", "seed": 7,
 *                          "max_value": 65536}]}
 *       ]
 *     }
 *
 * parsePlanJson() accepts any JSON text of that shape (parse errors and
 * unknown fields are kInvalidArgument with a line number); planToJson()
 * emits it canonically, and the pair round-trips exactly:
 * parsePlanJson(planToJson(p)) == p for every plan. Semantic checks
 * (sources exist, names unique) remain TransformPlan::validate()'s job
 * against a concrete schema.
 */
#ifndef PRESTO_OPS_PLAN_JSON_H_
#define PRESTO_OPS_PLAN_JSON_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "ops/plan.h"

namespace presto {

/** Parse a JSON plan document into a TransformPlan. */
StatusOr<TransformPlan> parsePlanJson(std::string_view json);

/** Emit @p plan as canonical, indented plan JSON. */
std::string planToJson(const TransformPlan& plan);

}  // namespace presto

#endif  // PRESTO_OPS_PLAN_JSON_H_
