#include "ops/opvm.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "ops/fast_ops_internal.h"
#include "ops/opvm_internal.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

namespace presto {

const char*
opCodeName(OpCode op)
{
    switch (op) {
      case OpCode::kFill:      return "fill";
      case OpCode::kLog:       return "log";
      case OpCode::kClamp:     return "clamp";
      case OpCode::kBucketize: return "bucketize";
      case OpCode::kHash:      return "hash";
    }
    return "?";
}

namespace opvm_detail {

void
runDenseScalar(const OpInstr* ops, size_t nops, const float* src, size_t n,
               float* dst, size_t stride)
{
    for (size_t i = 0; i < n; ++i)
        dst[i * stride] = applyF32Scalar(ops, nops, src[i]);
}

void
runSparseScalar(const OpInstr* ops, size_t nops, const int64_t* src,
                size_t n, int64_t* dst)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = applyHashScalar(ops, nops, src[i]);
}

void
runGeneratedScalar(const OpInstr* f32_ops, size_t nf32,
                   const BucketTable& bt, const OpInstr* hash_ops,
                   size_t nhash, const float* src, size_t n, int64_t* out)
{
    for (size_t i = 0; i < n; ++i) {
        const float v = applyF32Scalar(f32_ops, nf32, src[i]);
        int64_t id = 0;
        simd_detail::bucketizeScalar(&v, &id, 1, bt.bounds, bt.halves,
                                     bt.num_halves);
        out[i] = applyHashScalar(hash_ops, nhash, id);
    }
}

}  // namespace opvm_detail

namespace {

using opvm_detail::BucketTable;

void
dispatchDense(const OpInstr* ops, size_t nops, const float* src, size_t n,
              float* dst, size_t stride)
{
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        opvm_detail::runDenseAvx512(ops, nops, src, n, dst, stride);
        return;
      case SimdLevel::kAvx2:
        opvm_detail::runDenseAvx2(ops, nops, src, n, dst, stride);
        return;
#endif
      default:
        opvm_detail::runDenseScalar(ops, nops, src, n, dst, stride);
    }
}

void
dispatchSparse(const OpInstr* ops, size_t nops, const int64_t* src,
               size_t n, int64_t* dst)
{
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        opvm_detail::runSparseAvx512(ops, nops, src, n, dst);
        return;
      case SimdLevel::kAvx2:
        opvm_detail::runSparseAvx2(ops, nops, src, n, dst);
        return;
#endif
      default:
        opvm_detail::runSparseScalar(ops, nops, src, n, dst);
    }
}

void
dispatchGenerated(const OpInstr* f32_ops, size_t nf32,
                  const BucketTable& bt, const OpInstr* hash_ops,
                  size_t nhash, const float* src, size_t n, int64_t* out)
{
    switch (activeSimdLevel()) {
#if defined(PRESTO_HAVE_X86_SIMD)
      case SimdLevel::kAvx512:
        opvm_detail::runGeneratedAvx512(f32_ops, nf32, bt, hash_ops, nhash,
                                        src, n, out);
        return;
      case SimdLevel::kAvx2:
        opvm_detail::runGeneratedAvx2(f32_ops, nf32, bt, hash_ops, nhash,
                                      src, n, out);
        return;
#endif
      default:
        opvm_detail::runGeneratedScalar(f32_ops, nf32, bt, hash_ops, nhash,
                                        src, n, out);
    }
}

/** Fallback: whole-column passes for a too-long f32 chain. */
void
applyF32Passes(const OpInstr* ops, size_t nops, std::vector<float>& values)
{
    for (size_t k = 0; k < nops; ++k) {
        switch (ops[k].op) {
          case OpCode::kFill:
            fillMissingInPlaceFast(values, ops[k].a);
            break;
          case OpCode::kLog:
            logTransformInPlaceFast(values);
            break;
          case OpCode::kClamp:
            for (auto& v : values)
                v = std::min(std::max(v, ops[k].a), ops[k].b);
            break;
          default:
            break;
        }
    }
}

/** Fallback: whole-column passes for a too-long hash chain. */
void
applyHashPasses(const OpInstr* ops, size_t nops,
                std::vector<int64_t>& values)
{
    for (size_t k = 0; k < nops; ++k)
        sigridHashInPlaceFast(values, ops[k].seed, ops[k].max_value);
}

}  // namespace

std::vector<OpInstr>
simplifyF32Chain(std::vector<OpInstr> ops)
{
    const auto nan_free_below = [&](size_t j) {
        // True when no NaN can reach ops[j]: an earlier non-NaN fill
        // scrubbed NaNs and every op since preserves NaN-freeness.
        bool clean = false;
        for (size_t i = 0; i < j; ++i) {
            switch (ops[i].op) {
              case OpCode::kFill:
                if (!std::isnan(ops[i].a))
                    clean = true;
                // fill(NaN) maps NaN to NaN: clean stays clean.
                break;
              case OpCode::kLog:
                break;  // log1p(max(x, 0)) of non-NaN is non-NaN
              case OpCode::kClamp:
                if (std::isnan(ops[i].a) || std::isnan(ops[i].b))
                    clean = false;  // NaN bound may surface (per tier)
                break;
              default:
                clean = false;  // not an f32-stage op; be conservative
                break;
            }
        }
        return clean;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k + 1 < ops.size() && !changed; ++k) {
            OpInstr& cur = ops[k];
            OpInstr& next = ops[k + 1];
            if (cur.op == OpCode::kClamp && next.op == OpCode::kClamp &&
                !std::isnan(cur.a) && !std::isnan(cur.b) &&
                !std::isnan(next.a) && !std::isnan(next.b)) {
                // clamp(a1,b1);clamp(a2,b2) == clamp(max(a1,a2),
                // min(max(b1,a2),b2)) — exactly these operand orders,
                // so signed-zero ties resolve as the composition does.
                const float lo = std::max(cur.a, next.a);
                const float hi = std::min(std::max(cur.b, next.a), next.b);
                cur.a = lo;
                cur.b = hi;
                ops.erase(ops.begin() + static_cast<ptrdiff_t>(k) + 1);
                changed = true;
            } else if (cur.op == OpCode::kFill &&
                       next.op == OpCode::kFill && std::isnan(cur.a)) {
                // Earlier fill dominated by the adjacent later one.
                ops.erase(ops.begin() + static_cast<ptrdiff_t>(k));
                changed = true;
            }
        }
        for (size_t k = 0; k < ops.size() && !changed; ++k) {
            if (ops[k].op == OpCode::kFill && nan_free_below(k)) {
                ops.erase(ops.begin() + static_cast<ptrdiff_t>(k));
                changed = true;
            }
        }
    }
    return ops;
}

CompiledProgram
CompiledProgram::compile(TransformPlan plan, const Schema& input_schema)
{
    CompiledProgram p;
    const Status st = plan.validate(input_schema);
    PRESTO_CHECK(st.ok(), "invalid plan: ", st.toString());
    p.plan_ = std::move(plan);
    p.input_schema_ = input_schema;
    p.schema_fp_ = input_schema.fingerprint();
    p.num_dense_ = p.plan_.numDenseOutputs();
    p.num_sparse_ = p.plan_.numSparseOutputs();

    size_t dense_slot = 0;
    size_t sparse_slot = 0;
    for (const auto& out : p.plan_.outputs()) {
        CompiledOutput c;
        c.kind = out.kind;
        c.name = out.output_name;
        c.source = *p.input_schema_.indexOf(out.source_feature);
        switch (out.kind) {
          case PlanOutput::Kind::kLabel:
            break;
          case PlanOutput::Kind::kDense:
            c.slot = dense_slot++;
            break;
          case PlanOutput::Kind::kSparse:
          case PlanOutput::Kind::kGenerated:
            c.slot = sparse_slot++;
            break;
        }
        for (const auto& op : out.dense_ops) {
            OpInstr in;
            switch (op.kind) {
              case DenseOp::Kind::kFillMissing:
                in.op = OpCode::kFill;
                in.a = op.a;
                break;
              case DenseOp::Kind::kLog:
                in.op = OpCode::kLog;
                break;
              case DenseOp::Kind::kClamp:
                in.op = OpCode::kClamp;
                in.a = op.a;
                in.b = op.b;
                break;
            }
            c.code.push_back(in);
            ++c.num_f32;
        }
        // Chain-level algebraic simplification: the code holds only
        // f32-stage ops at this point, so simplify wholesale and
        // remember the original length for the disassembly.
        c.unsimplified_f32 = c.num_f32;
        if (c.num_f32 > 1) {
            c.code = simplifyF32Chain(std::move(c.code));
            c.num_f32 = static_cast<uint32_t>(c.code.size());
        }
        if (out.kind == PlanOutput::Kind::kGenerated) {
            OpInstr in;
            in.op = OpCode::kBucketize;
            in.table = static_cast<int32_t>(p.bucketizers_.size());
            p.bucketizers_.emplace_back(BucketBoundaries::makeLogSpaced(
                out.bucket_boundaries, kStandardBucketLo,
                kStandardBucketHi));
            c.code.push_back(in);
        }
        // FirstX ops fold into one prefix cap applied while packing the
        // input ids (elementwise hashes commute with positional prefix
        // selection); the hash ops stay in chain order.
        for (const auto& op : out.sparse_ops) {
            if (op.kind == SparseOp::Kind::kFirstX) {
                c.prefix_cap = std::min(c.prefix_cap, op.max_ids);
            } else {
                OpInstr in;
                in.op = OpCode::kHash;
                in.seed = op.seed;
                in.max_value = op.max_value;
                c.code.push_back(in);
                ++c.num_hash;
            }
        }
        c.fused = c.num_f32 <= kMaxFusedChainOps &&
                  c.num_hash <= kMaxFusedChainOps;
        p.has_fallback_ |= !c.fused;
        p.outputs_.push_back(std::move(c));
    }

    // Feature-unit streams for the ISP emulator: one unit per dense
    // feature (a generated output rides its source feature's unit, the
    // two chains read the same decoded stream), raw sparse units after.
    for (auto& c : p.outputs_) {
        switch (c.kind) {
          case PlanOutput::Kind::kLabel:
            c.unit_stream = 0;
            break;
          case PlanOutput::Kind::kDense:
            c.unit_stream = c.slot;
            break;
          case PlanOutput::Kind::kSparse:
            c.unit_stream = p.num_dense_ + c.slot;
            break;
          case PlanOutput::Kind::kGenerated: {
            c.unit_stream = p.num_dense_ + c.slot;
            for (const auto& d : p.outputs_) {
                if (d.kind == PlanOutput::Kind::kDense &&
                    d.source == c.source) {
                    c.unit_stream = d.slot;
                    break;
                }
            }
            break;
          }
        }
    }
    return p;
}

void
CompiledProgram::run(const RowBatch& raw, MiniBatch& mb, BatchArena& arena,
                     ThreadPool* pool) const
{
    // Validation happened at compile time; per batch only an O(1)
    // fingerprint compare remains. The full comparison runs solely to
    // produce a precise panic on mismatch.
    if (raw.schema().fingerprint() != schema_fp_) {
        PRESTO_CHECK(raw.schema() == input_schema_,
                     "batch schema does not match the plan's input schema");
    }
    const size_t batch = raw.numRows();
    mb.batch_size = batch;
    mb.num_dense = num_dense_;
    mb.dense.resize(batch * num_dense_);
    mb.sparse.resize(num_sparse_);
    if (has_fallback_)
        arena.prepareF32(outputs_.size());

    auto task = [&](size_t o) { runOutput(o, raw, mb, arena); };
    if (pool != nullptr) {
        pool->parallelFor(outputs_.size(), task);
    } else {
        for (size_t o = 0; o < outputs_.size(); ++o)
            task(o);
    }

    arena.noteBatch();
    PRESTO_CHECK(mb.consistent(),
                 "compiled plan produced an inconsistent batch");
}

void
CompiledProgram::runDenseRange(const CompiledOutput& out, const float* src,
                               size_t n, float* dst, size_t stride) const
{
    PRESTO_CHECK(out.fused, "range execution requires a fused chain");
    dispatchDense(out.code.data(), out.num_f32, src, n, dst, stride);
}

void
CompiledProgram::runHashRange(const CompiledOutput& out, const int64_t* src,
                              size_t n, int64_t* dst) const
{
    PRESTO_CHECK(out.fused, "range execution requires a fused chain");
    // The hash stage is the code tail, after the f32 ops and the
    // bucketize bridge (if any).
    const OpInstr* hash_ops =
        out.code.data() + out.code.size() - out.num_hash;
    dispatchSparse(hash_ops, out.num_hash, src, n, dst);
}

void
CompiledProgram::runGeneratedRange(const CompiledOutput& out,
                                   const float* src, size_t n,
                                   int64_t* dst) const
{
    PRESTO_CHECK(out.fused, "range execution requires a fused chain");
    const OpInstr& bridge = out.code[out.num_f32];
    const FastBucketizer& bz = bucketizer(bridge.table);
    const BucketTable bt{bz.bounds().data(), bz.halves().data(),
                         bz.halves().size(), bz.bounds().size()};
    dispatchGenerated(out.code.data(), out.num_f32, bt,
                      out.code.data() + out.num_f32 + 1, out.num_hash, src,
                      n, dst);
}

void
CompiledProgram::runOutput(size_t o, const RowBatch& raw, MiniBatch& mb,
                           BatchArena& arena) const
{
    const CompiledOutput& out = outputs_[o];
    switch (out.kind) {
      case PlanOutput::Kind::kLabel: {
        const auto& col = raw.dense(out.source);
        mb.labels.assign(col.values().begin(), col.values().end());
        break;
      }
      case PlanOutput::Kind::kDense:
        runDense(out, raw, mb, arena, o);
        break;
      case PlanOutput::Kind::kSparse:
        runSparse(out, raw, mb);
        break;
      case PlanOutput::Kind::kGenerated:
        runGenerated(out, raw, mb, arena, o);
        break;
    }
}

void
CompiledProgram::runDense(const CompiledOutput& out, const RowBatch& raw,
                          MiniBatch& mb, BatchArena& arena, size_t o) const
{
    const auto& col = raw.dense(out.source);
    const size_t batch = raw.numRows();
    float* dst = mb.dense.data() + out.slot;
    if (out.fused) {
        dispatchDense(out.code.data(), out.num_f32, col.values().data(),
                      batch, dst, num_dense_);
        return;
    }
    std::vector<float>& scratch = arena.f32(o);
    scratch.assign(col.values().begin(), col.values().end());
    applyF32Passes(out.code.data(), out.num_f32, scratch);
    for (size_t r = 0; r < batch; ++r)
        dst[r * num_dense_] = scratch[r];
}

void
CompiledProgram::runSparse(const CompiledOutput& out, const RowBatch& raw,
                           MiniBatch& mb) const
{
    const auto& col = raw.sparse(out.source);
    const size_t batch = raw.numRows();
    JaggedIndices& jag = mb.sparse[out.slot];
    jag.feature_name = out.name;
    jag.lengths.resize(batch);
    const int64_t* src = nullptr;
    if (out.prefix_cap == SIZE_MAX) {
        for (size_t r = 0; r < batch; ++r)
            jag.lengths[r] = static_cast<uint32_t>(col.rowLength(r));
        jag.values.resize(col.numValues());
        src = col.values().data();
    } else {
        // Apply the folded FirstX cap while packing the surviving ids.
        size_t total = 0;
        for (size_t r = 0; r < batch; ++r) {
            const size_t len = std::min(col.rowLength(r), out.prefix_cap);
            jag.lengths[r] = static_cast<uint32_t>(len);
            total += len;
        }
        jag.values.resize(total);
        size_t w = 0;
        for (size_t r = 0; r < batch; ++r) {
            const auto row = col.row(r);
            const size_t len = std::min(row.size(), out.prefix_cap);
            std::copy_n(row.data(), len, jag.values.data() + w);
            w += len;
        }
        src = jag.values.data();
    }
    if (out.num_hash == 0) {
        if (src != jag.values.data())
            std::copy_n(src, jag.values.size(), jag.values.data());
        return;
    }
    // A kSparse program is hash-only, so its code starts at the hash ops.
    const OpInstr* hash_ops = out.code.data();
    if (out.fused) {
        dispatchSparse(hash_ops, out.num_hash, src, jag.values.size(),
                       jag.values.data());
        return;
    }
    if (src != jag.values.data())
        std::copy_n(src, jag.values.size(), jag.values.data());
    applyHashPasses(hash_ops, out.num_hash, jag.values);
}

void
CompiledProgram::runGenerated(const CompiledOutput& out,
                              const RowBatch& raw, MiniBatch& mb,
                              BatchArena& arena, size_t o) const
{
    const auto& col = raw.dense(out.source);
    const size_t batch = raw.numRows();
    JaggedIndices& jag = mb.sparse[out.slot];
    jag.feature_name = out.name;
    // Generated rows hold one id each, so a FirstX cap either keeps the
    // row (cap >= 1) or empties every row (cap == 0).
    const uint32_t rowlen = out.prefix_cap == 0 ? 0u : 1u;
    jag.lengths.assign(batch, rowlen);
    jag.values.resize(batch * rowlen);
    if (rowlen == 0 || batch == 0)
        return;
    const OpInstr* f32_ops = out.code.data();
    const OpInstr& bridge = out.code[out.num_f32];
    const FastBucketizer& bz = bucketizer(bridge.table);
    const OpInstr* hash_ops = out.code.data() + out.num_f32 + 1;
    if (out.fused) {
        const BucketTable bt{bz.bounds().data(), bz.halves().data(),
                             bz.halves().size(), bz.bounds().size()};
        dispatchGenerated(f32_ops, out.num_f32, bt, hash_ops, out.num_hash,
                          col.values().data(), batch, jag.values.data());
        return;
    }
    std::vector<float>& scratch = arena.f32(o);
    scratch.assign(col.values().begin(), col.values().end());
    applyF32Passes(f32_ops, out.num_f32, scratch);
    bz.bucketizeInto(scratch, jag.values);
    applyHashPasses(hash_ops, out.num_hash, jag.values);
}

std::string
CompiledProgram::disassemble() const
{
    std::ostringstream os;
    os << "program: " << outputs_.size() << " outputs (" << num_dense_
       << " dense, " << num_sparse_ << " sparse), input schema "
       << input_schema_.numFeatures() << " features, fingerprint 0x"
       << std::hex << schema_fp_ << std::dec << "\n";
    for (size_t o = 0; o < outputs_.size(); ++o) {
        const auto& out = outputs_[o];
        const char* kind = "?";
        switch (out.kind) {
          case PlanOutput::Kind::kLabel:     kind = "label"; break;
          case PlanOutput::Kind::kDense:     kind = "dense"; break;
          case PlanOutput::Kind::kSparse:    kind = "sparse"; break;
          case PlanOutput::Kind::kGenerated: kind = "generated"; break;
        }
        os << "output " << o << ": " << kind << " \"" << out.name
           << "\" <- col " << out.source << ", slot " << out.slot;
        if (!out.fused)
            os << "  ; NOT fused (chain > " << kMaxFusedChainOps << " ops)";
        if (out.num_f32 != out.unsimplified_f32)
            os << "  ; simplified " << out.unsimplified_f32 << " -> "
               << out.num_f32 << " f32 ops";
        os << "\n";
        if (out.prefix_cap != SIZE_MAX)
            os << "    firstx     cap=" << out.prefix_cap
               << "  ; folded from the chain's FirstX ops\n";
        for (size_t k = 0; k < out.code.size(); ++k) {
            const OpInstr& in = out.code[k];
            os << "    " << std::left;
            switch (in.op) {
              case OpCode::kFill:
                os << "fill       a=" << in.a;
                break;
              case OpCode::kLog:
                os << "log";
                break;
              case OpCode::kClamp:
                os << "clamp      lo=" << in.a << " hi=" << in.b;
                break;
              case OpCode::kBucketize:
                os << "bucketize  table=" << in.table << " ("
                   << bucketizer(in.table).size() << " bounds)";
                break;
              case OpCode::kHash:
                os << "hash       seed=0x" << std::hex << in.seed
                   << std::dec << " mod=" << in.max_value;
                break;
            }
            os << "\n";
        }
        switch (out.kind) {
          case PlanOutput::Kind::kLabel:
            os << "    store.f32  labels\n";
            break;
          case PlanOutput::Kind::kDense:
            os << "    store.f32  dense[r * " << num_dense_ << " + "
               << out.slot << "]\n";
            break;
          case PlanOutput::Kind::kSparse:
          case PlanOutput::Kind::kGenerated:
            os << "    store.i64  sparse[" << out.slot << "]\n";
            break;
        }
    }
    return os.str();
}

}  // namespace presto
