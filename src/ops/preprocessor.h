/**
 * @file
 * The end-to-end Transform pipeline: raw RowBatch -> train-ready MiniBatch.
 *
 * Implements the paper's preprocessing plan (Figure 1, steps 1-3):
 *   1. feature generation: FillMissing + Bucketize over a subset of dense
 *      features, producing the generated sparse features;
 *   2. feature normalization: Log over all dense features, SigridHash over
 *      all (raw + generated) sparse features;
 *   3. mini-batch conversion into TorchRec-style tensors.
 *
 * The same functional pipeline backs both the CPU baseline and the ISP
 * units — PreSto changes *where/how fast* it runs, never the results.
 */
#ifndef PRESTO_OPS_PREPROCESSOR_H_
#define PRESTO_OPS_PREPROCESSOR_H_

#include <cstdint>
#include <vector>

#include "common/batch_arena.h"
#include "common/thread_pool.h"
#include "datagen/rm_config.h"
#include "ops/fast_ops.h"
#include "ops/ops.h"
#include "ops/opvm.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"

namespace presto {

/**
 * Bucketize boundary range of the standard plan, covering the central
 * mass of the synthetic dense log-normal (mu 2.0, sigma 1.5).
 * @{
 */
inline constexpr float kStandardBucketLo = 0.02f;
inline constexpr float kStandardBucketHi = 3000.0f;
/** @} */

/**
 * Scalar-operation counts of one Transform invocation; the currency the
 * device cost models price. Derivable either from real data
 * (TransformWork::measure) or analytically from a config
 * (TransformWork::expected).
 */
struct TransformWork {
    double dense_values = 0;      ///< dense entries (FillMissing + Log)
    double bucketize_values = 0;  ///< values digitized by Bucketize
    double bucketize_levels = 0;  ///< binary-search depth, log2(m)+1
    double hash_values = 0;       ///< sparse ids hashed by SigridHash
    double raw_values = 0;        ///< scalars decoded in Extract
    double output_values = 0;     ///< scalars in the train-ready tensors
    size_t num_features = 0;      ///< columns touched (per-feature setup)
    size_t batch_size = 0;

    /** Operation counts expected for one batch of @p config. */
    static TransformWork expected(const RmConfig& config);

    /** Exact operation counts for a concrete raw batch. */
    static TransformWork measure(const RmConfig& config,
                                 const RowBatch& raw);
};

/**
 * Executes the Transform plan of one RmConfig.
 *
 * Construction compiles TransformPlan::standard(config) once into a
 * fused bytecode program (ops/opvm.h); every preprocess call executes
 * that cached program in a single SIMD pass per column. Thread-safe for
 * concurrent preprocess() calls; the optional pool parallelizes across
 * features (inter-feature parallelism).
 */
class Preprocessor
{
  public:
    explicit Preprocessor(const RmConfig& config);

    /**
     * Run the full Transform on one raw partition.
     *
     * @param raw Batch matching Schema::makeRecSys(config) layout.
     * @param pool Optional worker pool for inter-feature parallelism.
     */
    MiniBatch preprocess(const RowBatch& raw, ThreadPool* pool = nullptr) const;

    /**
     * Allocation-free form of preprocess(): writes into @p out (whose
     * buffers are reused across calls) and borrows scratch from
     * @p arena. After a warm-up batch has sized the buffers, the
     * steady-state loop performs zero heap allocations per batch.
     * Output is identical to preprocess(). The arena belongs to the
     * calling worker; the optional pool only splits per-feature tasks,
     * each touching a distinct pre-prepared arena slot.
     */
    void preprocessInto(const RowBatch& raw, MiniBatch& out,
                        BatchArena& arena,
                        ThreadPool* pool = nullptr) const;

    const RmConfig& config() const { return config_; }
    const BucketBoundaries& boundaries() const { return boundaries_; }

    /** Per-table hash seed (stable across runs). */
    uint64_t hashSeed(size_t table_index) const;

    /** Embedding-table size used as SigridHash max value. */
    int64_t tableSize() const { return table_size_; }

    /** The cached compiled program preprocess() executes. */
    const CompiledProgram& program() const { return program_; }

  private:
    RmConfig config_;
    BucketBoundaries boundaries_;
    FastBucketizer fast_bucketizer_;
    int64_t table_size_;
    CompiledProgram program_;
};

}  // namespace presto

#endif  // PRESTO_OPS_PREPROCESSOR_H_
