/**
 * @file
 * Seeded 64-bit hash used by the SigridHash normalization operator
 * (Algorithm 2 of the paper; modeled after TorchArrow's sigrid hash).
 *
 * The exact hash family is an implementation detail of the preprocessing
 * stack; what matters for training is that it is deterministic, seeded,
 * and maps ids uniformly into embedding-table range. We use a
 * Murmur3-style double-mix with seed folding at both ends.
 */
#ifndef PRESTO_OPS_HASH_H_
#define PRESTO_OPS_HASH_H_

#include <cstdint>

namespace presto {

/** Mix multipliers; the vector hash kernels broadcast these per lane. */
inline constexpr uint64_t kHashK1 = 0xff51afd7ed558ccdULL;
inline constexpr uint64_t kHashK2 = 0xc4ceb9fe1a85ec53ULL;
inline constexpr uint64_t kHashK3 = 0x9e3779b97f4a7c15ULL;

/** Compute the seeded 64-bit hash of one categorical id. */
constexpr uint64_t
sigridHash64(uint64_t value, uint64_t seed)
{
    uint64_t h = value ^ (seed * kHashK1);
    h ^= h >> 33;
    h *= kHashK1;
    h ^= h >> 33;
    h *= kHashK2;
    h ^= h >> 33;
    h ^= seed;
    h *= kHashK3;
    h ^= h >> 29;
    return h;
}

/**
 * SigridHash normalization of one id: hash then reduce modulo the
 * embedding-table size @p max_value (d in Algorithm 2).
 */
constexpr int64_t
sigridHashMod(int64_t value, uint64_t seed, int64_t max_value)
{
    const uint64_t h = sigridHash64(static_cast<uint64_t>(value), seed);
    return static_cast<int64_t>(h % static_cast<uint64_t>(max_value));
}

}  // namespace presto

#endif  // PRESTO_OPS_HASH_H_
