/**
 * @file
 * Per-level kernel entry points behind the dispatched fast ops. Internal:
 * include fast_ops.h instead. The AVX2/AVX-512 definitions live in
 * fast_ops_avx2.cc / fast_ops_avx512.cc, compiled with per-file ISA
 * flags; on non-x86 builds they are absent and dispatch never reaches
 * them (detectedSimdLevel() == kScalar).
 */
#ifndef PRESTO_OPS_FAST_OPS_INTERNAL_H_
#define PRESTO_OPS_FAST_OPS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace presto::simd_detail {

// SigridHash + mod into dst (src may alias dst).
void hashIntoScalar(const int64_t* src, int64_t* dst, size_t n,
                    uint64_t seed, int64_t max_value);
void hashIntoAvx2(const int64_t* src, int64_t* dst, size_t n,
                  uint64_t seed, int64_t max_value);
void hashIntoAvx512(const int64_t* src, int64_t* dst, size_t n,
                    uint64_t seed, int64_t max_value);

// Log normalization: v -> fastLog1p(max(v, 0)).
void logAvx2(float* values, size_t n);
void logAvx512(float* values, size_t n);

// FillMissing: NaN -> fill.
void fillScalar(float* values, size_t n, float fill);
void fillAvx2(float* values, size_t n, float fill);
void fillAvx512(float* values, size_t n, float fill);

// Branchless halves-sequence bucketize (upper_bound semantics, NaN -> 0).
// bounds/num_bounds: sorted boundary array; halves/num_halves: the
// value-independent bisection step sizes precomputed by FastBucketizer.
void bucketizeScalar(const float* values, int64_t* out, size_t n,
                     const float* bounds, const int32_t* halves,
                     size_t num_halves);
void bucketizeAvx2(const float* values, int64_t* out, size_t n,
                   const float* bounds, const int32_t* halves,
                   size_t num_halves);

}  // namespace presto::simd_detail

#endif  // PRESTO_OPS_FAST_OPS_INTERNAL_H_
