// AVX2 kernels of the dispatched fast ops. This file is compiled with
// -mavx2 (and -ffp-contract=off: the Log kernel mirrors the scalar
// fastLog1p operation sequence and must not gain FMAs). Only reached
// when __builtin_cpu_supports("avx2") at runtime.
//
// Every kernel is bit-identical to its scalar counterpart:
//  - hashIntoAvx2 computes the exact 64-bit hash with decomposed 32-bit
//    multiplies and an exact Barrett reduction for the modulo;
//  - logAvx2 replays fastLog1p's IEEE op sequence lane-wise;
//  - bucketizeAvx2 runs the same value-independent bisection schedule as
//    the scalar halves loop, with gathers instead of scalar loads.
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "ops/fast_math.h"
#include "ops/fast_ops_internal.h"
#include "ops/hash.h"

namespace presto::simd_detail {

namespace {

/** Low 64 bits of a*b per lane (b_hi32 = b >> 32 hoisted). */
inline __m256i
mullo64(__m256i a, __m256i b, __m256i b_hi32)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
    __m256i t2 = _mm256_mul_epu32(a, b_hi32);
    return _mm256_add_epi64(
        lo, _mm256_slli_epi64(_mm256_add_epi64(t1, t2), 32));
}

/** High 64 bits of the unsigned 128-bit product a*b. */
inline __m256i
mulhi64u(__m256i a, __m256i b, __m256i b_hi)
{
    const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i p0 = _mm256_mul_epu32(a, b);
    __m256i p1 = _mm256_mul_epu32(a, b_hi);
    __m256i p2 = _mm256_mul_epu32(a_hi, b);
    __m256i p3 = _mm256_mul_epu32(a_hi, b_hi);
    __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(p0, 32),
                         _mm256_and_si256(p1, lo32)),
        _mm256_and_si256(p2, lo32));
    return _mm256_add_epi64(
        _mm256_add_epi64(p3, _mm256_srli_epi64(p1, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(p2, 32),
                         _mm256_srli_epi64(mid, 32)));
}

}  // namespace

void
hashIntoAvx2(const int64_t* src, int64_t* dst, size_t n, uint64_t seed,
             int64_t max_value)
{
    // Callers guarantee max_value >= 2 (d == 1 short-circuits upstream),
    // so magic = floor(2^64 / d) fits in 64 bits.
    const auto ud = static_cast<uint64_t>(max_value);
    const auto magic =
        static_cast<uint64_t>((static_cast<__uint128_t>(1) << 64) / ud);
    const __m256i vk1 = _mm256_set1_epi64x(static_cast<long long>(kHashK1));
    const __m256i vk1h = _mm256_srli_epi64(vk1, 32);
    const __m256i vk2 = _mm256_set1_epi64x(static_cast<long long>(kHashK2));
    const __m256i vk2h = _mm256_srli_epi64(vk2, 32);
    const __m256i vk3 = _mm256_set1_epi64x(static_cast<long long>(kHashK3));
    const __m256i vk3h = _mm256_srli_epi64(vk3, 32);
    const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
    const __m256i vseedk =
        _mm256_set1_epi64x(static_cast<long long>(seed * kHashK1));
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(magic));
    const __m256i vmh = _mm256_srli_epi64(vm, 32);
    const __m256i vd = _mm256_set1_epi64x(static_cast<long long>(ud));
    const __m256i vdh = _mm256_srli_epi64(vd, 32);
    // AVX2 has only signed 64-bit compares; XOR with the sign bit turns
    // an unsigned compare into a signed one.
    const __m256i bias =
        _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
    const __m256i vdm1b = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(ud - 1)), bias);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        h = _mm256_xor_si256(h, vseedk);
        h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
        h = mullo64(h, vk1, vk1h);
        h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
        h = mullo64(h, vk2, vk2h);
        h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
        h = _mm256_xor_si256(h, vseed);
        h = mullo64(h, vk3, vk3h);
        h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
        // Barrett: q = floor(h * magic / 2^64) is h/d or h/d - 1; one
        // conditional subtract lands r in [0, d).
        __m256i q = mulhi64u(h, vm, vmh);
        __m256i r = _mm256_sub_epi64(h, mullo64(q, vd, vdh));
        __m256i ge =
            _mm256_cmpgt_epi64(_mm256_xor_si256(r, bias), vdm1b);
        r = _mm256_sub_epi64(r, _mm256_and_si256(ge, vd));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = sigridHashMod(src[i], seed, max_value);
}

void
logAvx2(float* v, size_t n)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 sqrthf = _mm256_set1_ps(0.707106781186547524f);
    const __m256i mmask = _mm256_set1_epi32(0x807fffff);
    const __m256i mbits = _mm256_set1_epi32(0x3f000000);
    const __m256i e126 = _mm256_set1_epi32(126);
    const __m256 inf = _mm256_set1_ps(INFINITY);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x0 = _mm256_loadu_ps(v + i);
        // Clamp negatives to zero; blendv keeps NaN lanes (cmp is false).
        __m256 ltz = _mm256_cmp_ps(x0, zero, _CMP_LT_OQ);
        __m256 x = _mm256_blendv_ps(x0, zero, ltz);
        __m256 u = _mm256_add_ps(one, x);
        __m256i ui = _mm256_castps_si256(u);
        __m256i e = _mm256_sub_epi32(
            _mm256_and_si256(_mm256_srli_epi32(ui, 23),
                             _mm256_set1_epi32(0xff)),
            e126);
        __m256 m = _mm256_castsi256_ps(
            _mm256_or_si256(_mm256_and_si256(ui, mmask), mbits));
        __m256 lo = _mm256_cmp_ps(m, sqrthf, _CMP_LT_OQ);
        e = _mm256_add_epi32(e, _mm256_castps_si256(lo));  // mask == -1
        m = _mm256_sub_ps(_mm256_add_ps(m, _mm256_and_ps(lo, m)), one);
        __m256 z = _mm256_mul_ps(m, m);
        __m256 y = _mm256_set1_ps(7.0376836292e-2f);
        auto step = [&](float c) {
            y = _mm256_add_ps(_mm256_mul_ps(y, m), _mm256_set1_ps(c));
        };
        step(-1.1514610310e-1f);
        step(1.1676998740e-1f);
        step(-1.2420140846e-1f);
        step(1.4249322787e-1f);
        step(-1.6668057665e-1f);
        step(2.0000714765e-1f);
        step(-2.4999993993e-1f);
        step(3.3333331174e-1f);
        y = _mm256_mul_ps(_mm256_mul_ps(y, m), z);
        __m256 fe = _mm256_cvtepi32_ps(e);
        y = _mm256_add_ps(
            y, _mm256_mul_ps(fe, _mm256_set1_ps(-2.12194440e-4f)));
        y = _mm256_sub_ps(y, _mm256_mul_ps(half, z));
        __m256 r = _mm256_add_ps(m, y);
        r = _mm256_add_ps(
            r, _mm256_mul_ps(fe, _mm256_set1_ps(0.693359375f)));
        // r == logfCore(u); log1p = r * (x / (u - 1)).
        __m256 res =
            _mm256_mul_ps(r, _mm256_div_ps(x, _mm256_sub_ps(u, one)));
        __m256 ueq1 = _mm256_cmp_ps(u, one, _CMP_EQ_OQ);
        res = _mm256_blendv_ps(res, x, ueq1);
        __m256 nan = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
        __m256 isinf = _mm256_cmp_ps(x, inf, _CMP_EQ_OQ);
        res = _mm256_blendv_ps(res, x, _mm256_or_ps(nan, isinf));
        _mm256_storeu_ps(v + i, res);
    }
    for (; i < n; ++i) {
        const float x = v[i] < 0.0f ? 0.0f : v[i];
        v[i] = fastLog1p(x);
    }
}

void
fillAvx2(float* v, size_t n, float fill)
{
    const __m256 vf = _mm256_set1_ps(fill);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x = _mm256_loadu_ps(v + i);
        __m256 nan = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
        _mm256_storeu_ps(v + i, _mm256_blendv_ps(x, vf, nan));
    }
    for (; i < n; ++i) {
        if (std::isnan(v[i]))
            v[i] = fill;
    }
}

void
bucketizeAvx2(const float* values, int64_t* out, size_t n,
              const float* bounds, const int32_t* halves,
              size_t num_halves)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x = _mm256_loadu_ps(values + i);
        __m256i base = _mm256_setzero_si256();
        for (size_t s = 0; s < num_halves; ++s) {
            const int32_t half = halves[s];
            __m256i idx =
                _mm256_add_epi32(base, _mm256_set1_epi32(half - 1));
            __m256 bv = _mm256_i32gather_ps(bounds, idx, 4);
            __m256 le = _mm256_cmp_ps(bv, x, _CMP_LE_OQ);
            base = _mm256_add_epi32(
                base, _mm256_and_si256(_mm256_castps_si256(le),
                                       _mm256_set1_epi32(half)));
        }
        __m256 bv = _mm256_i32gather_ps(bounds, base, 4);
        __m256 le = _mm256_cmp_ps(bv, x, _CMP_LE_OQ);
        base = _mm256_sub_epi32(base, _mm256_castps_si256(le));  // +1 if le
        __m128i lo = _mm256_castsi256_si128(base);
        __m128i hi = _mm256_extracti128_si256(base, 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepi32_epi64(lo));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                            _mm256_cvtepi32_epi64(hi));
    }
    if (i < n)
        bucketizeScalar(values + i, out + i, n - i, bounds, halves,
                        num_halves);
}

}  // namespace presto::simd_detail
