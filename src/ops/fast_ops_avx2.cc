// AVX2 kernels of the dispatched fast ops. This file is compiled with
// -mavx2 (and -ffp-contract=off: the Log kernel mirrors the scalar
// fastLog1p operation sequence and must not gain FMAs). Only reached
// when __builtin_cpu_supports("avx2") at runtime.
//
// The per-register bodies live in fast_ops_avx2_inl.h so the fused
// op-chain VM (opvm_avx2.cc) executes the exact same instruction
// sequences; these whole-column wrappers just add the loop and the
// scalar tails. Every kernel is bit-identical to its scalar
// counterpart:
//  - hashMod4 computes the exact 64-bit hash with decomposed 32-bit
//    multiplies and an exact Barrett reduction for the modulo;
//  - log8 replays fastLog1p's IEEE op sequence lane-wise;
//  - bucketize8 runs the same value-independent bisection schedule as
//    the scalar halves loop, with gathers instead of scalar loads.
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "ops/fast_math.h"
#include "ops/fast_ops_avx2_inl.h"
#include "ops/fast_ops_internal.h"
#include "ops/hash.h"

namespace presto::simd_detail {

void
hashIntoAvx2(const int64_t* src, int64_t* dst, size_t n, uint64_t seed,
             int64_t max_value)
{
    // Callers guarantee max_value >= 2 (d == 1 short-circuits upstream),
    // so magic = floor(2^64 / d) fits in 64 bits.
    const auto c =
        Avx2HashConsts::make(seed, static_cast<uint64_t>(max_value));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            hashMod4(h, c));
    }
    for (; i < n; ++i)
        dst[i] = sigridHashMod(src[i], seed, max_value);
}

void
logAvx2(float* v, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i, log8(_mm256_loadu_ps(v + i)));
    for (; i < n; ++i) {
        const float x = v[i] < 0.0f ? 0.0f : v[i];
        v[i] = fastLog1p(x);
    }
}

void
fillAvx2(float* v, size_t n, float fill)
{
    const __m256 vf = _mm256_set1_ps(fill);
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i, fill8(_mm256_loadu_ps(v + i), vf));
    for (; i < n; ++i) {
        if (std::isnan(v[i]))
            v[i] = fill;
    }
}

void
bucketizeAvx2(const float* values, int64_t* out, size_t n,
              const float* bounds, const int32_t* halves,
              size_t num_halves)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i base = bucketize8(_mm256_loadu_ps(values + i), bounds,
                                  halves, num_halves);
        __m128i lo = _mm256_castsi256_si128(base);
        __m128i hi = _mm256_extracti128_si256(base, 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_cvtepi32_epi64(lo));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                            _mm256_cvtepi32_epi64(hi));
    }
    if (i < n)
        bucketizeScalar(values + i, out + i, n - i, bounds, halves,
                        num_halves);
}

}  // namespace presto::simd_detail
