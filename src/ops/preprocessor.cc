#include "ops/preprocessor.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "ops/hash.h"

namespace presto {

TransformWork
TransformWork::expected(const RmConfig& config)
{
    TransformWork w;
    const auto batch = static_cast<double>(config.batch_size);
    w.batch_size = config.batch_size;
    w.dense_values = static_cast<double>(config.num_dense) * batch;
    w.bucketize_values = static_cast<double>(config.num_generated) * batch;
    w.bucketize_levels =
        std::log2(static_cast<double>(config.bucket_size)) + 1.0;
    const double raw_sparse = static_cast<double>(config.num_sparse) *
                              config.avg_sparse_length * batch;
    w.hash_values = raw_sparse + w.bucketize_values;
    w.raw_values = w.dense_values + raw_sparse + batch;  // + labels
    w.output_values = w.dense_values + w.hash_values + batch;
    w.num_features = 1 + config.num_dense + config.totalSparseFeatures();
    return w;
}

TransformWork
TransformWork::measure(const RmConfig& config, const RowBatch& raw)
{
    TransformWork w;
    w.batch_size = raw.numRows();
    const auto batch = static_cast<double>(raw.numRows());
    w.dense_values = static_cast<double>(config.num_dense) * batch;
    w.bucketize_values = static_cast<double>(config.num_generated) * batch;
    w.bucketize_levels =
        std::log2(static_cast<double>(config.bucket_size)) + 1.0;
    double raw_sparse = 0;
    for (size_t c = 0; c < raw.numColumns(); ++c) {
        if (raw.schema().feature(c).kind == FeatureKind::kSparse)
            raw_sparse += static_cast<double>(raw.sparse(c).numValues());
    }
    w.hash_values = raw_sparse + w.bucketize_values;
    w.raw_values = w.dense_values + raw_sparse + batch;
    w.output_values = w.dense_values + w.hash_values + batch;
    w.num_features = 1 + config.num_dense + config.totalSparseFeatures();
    return w;
}

Preprocessor::Preprocessor(const RmConfig& config)
    : config_(config),
      boundaries_(BucketBoundaries::makeLogSpaced(config.bucket_size,
                                                  kStandardBucketLo,
                                                  kStandardBucketHi)),
      fast_bucketizer_(boundaries_),
      table_size_(static_cast<int64_t>(config.avg_embeddings))
{
    PRESTO_CHECK(config_.num_generated <= config_.num_dense,
                 "cannot generate more sparse features than dense inputs");
}

uint64_t
Preprocessor::hashSeed(size_t table_index) const
{
    return mix64(0x516ffd4005ULL ^ table_index);
}

MiniBatch
Preprocessor::preprocess(const RowBatch& raw, ThreadPool* pool) const
{
    MiniBatch mb;
    BatchArena arena;
    preprocessInto(raw, mb, arena, pool);
    return mb;
}

void
Preprocessor::preprocessInto(const RowBatch& raw, MiniBatch& mb,
                             BatchArena& arena, ThreadPool* pool) const
{
    PRESTO_CHECK(raw.complete(), "raw batch is incomplete");
    const auto& schema = raw.schema();
    const size_t batch = raw.numRows();

    const auto label_idx = schema.indexOf("label");
    PRESTO_CHECK(label_idx.has_value(), "raw batch lacks a label column");
    const auto& dense_idx = schema.indicesOfKind(FeatureKind::kDense);
    const auto& sparse_idx = schema.indicesOfKind(FeatureKind::kSparse);
    PRESTO_CHECK(dense_idx.size() == config_.num_dense,
                 "dense feature count mismatch");
    PRESTO_CHECK(sparse_idx.size() == config_.num_sparse,
                 "sparse feature count mismatch");

    mb.batch_size = batch;
    mb.num_dense = config_.num_dense;
    mb.dense.resize(batch * config_.num_dense);
    mb.labels.assign(raw.dense(*label_idx).values().begin(),
                     raw.dense(*label_idx).values().end());
    mb.sparse.resize(config_.totalSparseFeatures());

    // One scratch slot per dense feature, created before the fan-out so
    // parallel tasks only do (thread-safe) distinct-slot lookups.
    arena.prepareF32(config_.num_dense);

    // Dense path: FillMissing -> (maybe Bucketize into a generated table)
    // -> Log, one task per feature (inter-feature parallelism).
    auto denseTask = [&](size_t f) {
        const auto& col = raw.dense(dense_idx[f]);
        std::vector<float>& values = arena.f32(f);
        values.assign(col.values().begin(), col.values().end());
        fillMissingInPlaceFast(values, 0.0f);

        if (f < config_.num_generated) {
            auto& jag = mb.sparse[config_.num_sparse + f];
            jag.feature_name = "generated_" + std::to_string(f);
            jag.values.resize(batch);
            fast_bucketizer_.bucketizeInto(values, jag.values);
            sigridHashInPlaceFast(
                jag.values, hashSeed(config_.num_sparse + f), table_size_);
            jag.lengths.assign(batch, 1);
        }

        logTransformInPlaceFast(values);
        // Column-major gather into the row-major dense matrix.
        for (size_t r = 0; r < batch; ++r)
            mb.dense[r * config_.num_dense + f] = values[r];
    };

    // Sparse path: SigridHash per table, straight from the raw column
    // into the output tensor (no intermediate copy).
    auto sparseTask = [&](size_t f) {
        const auto& col = raw.sparse(sparse_idx[f]);
        auto& jag = mb.sparse[f];
        jag.feature_name = schema.feature(sparse_idx[f]).name;
        jag.values.resize(col.values().size());
        sigridHashInto(col.values(), jag.values, hashSeed(f), table_size_);
        jag.lengths.resize(batch);
        for (size_t r = 0; r < batch; ++r)
            jag.lengths[r] = static_cast<uint32_t>(col.rowLength(r));
    };

    const size_t total_tasks = config_.num_dense + config_.num_sparse;
    auto runTask = [&](size_t t) {
        if (t < config_.num_dense)
            denseTask(t);
        else
            sparseTask(t - config_.num_dense);
    };

    if (pool != nullptr) {
        pool->parallelFor(total_tasks, runTask);
    } else {
        for (size_t t = 0; t < total_tasks; ++t)
            runTask(t);
    }

    arena.noteBatch();
    PRESTO_CHECK(mb.consistent(), "produced inconsistent minibatch");
}

}  // namespace presto
