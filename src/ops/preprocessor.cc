#include "ops/preprocessor.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace presto {

TransformWork
TransformWork::expected(const RmConfig& config)
{
    TransformWork w;
    const auto batch = static_cast<double>(config.batch_size);
    w.batch_size = config.batch_size;
    w.dense_values = static_cast<double>(config.num_dense) * batch;
    w.bucketize_values = static_cast<double>(config.num_generated) * batch;
    w.bucketize_levels =
        std::log2(static_cast<double>(config.bucket_size)) + 1.0;
    const double raw_sparse = static_cast<double>(config.num_sparse) *
                              config.avg_sparse_length * batch;
    w.hash_values = raw_sparse + w.bucketize_values;
    w.raw_values = w.dense_values + raw_sparse + batch;  // + labels
    w.output_values = w.dense_values + w.hash_values + batch;
    w.num_features = 1 + config.num_dense + config.totalSparseFeatures();
    return w;
}

TransformWork
TransformWork::measure(const RmConfig& config, const RowBatch& raw)
{
    TransformWork w;
    w.batch_size = raw.numRows();
    const auto batch = static_cast<double>(raw.numRows());
    w.dense_values = static_cast<double>(config.num_dense) * batch;
    w.bucketize_values = static_cast<double>(config.num_generated) * batch;
    w.bucketize_levels =
        std::log2(static_cast<double>(config.bucket_size)) + 1.0;
    double raw_sparse = 0;
    for (size_t c = 0; c < raw.numColumns(); ++c) {
        if (raw.schema().feature(c).kind == FeatureKind::kSparse)
            raw_sparse += static_cast<double>(raw.sparse(c).numValues());
    }
    w.hash_values = raw_sparse + w.bucketize_values;
    w.raw_values = w.dense_values + raw_sparse + batch;
    w.output_values = w.dense_values + w.hash_values + batch;
    w.num_features = 1 + config.num_dense + config.totalSparseFeatures();
    return w;
}

Preprocessor::Preprocessor(const RmConfig& config)
    : config_(config),
      boundaries_(BucketBoundaries::makeLogSpaced(config.bucket_size,
                                                  kStandardBucketLo,
                                                  kStandardBucketHi)),
      fast_bucketizer_(boundaries_),
      table_size_(static_cast<int64_t>(config.avg_embeddings))
{
    PRESTO_CHECK(config_.num_generated <= config_.num_dense,
                 "cannot generate more sparse features than dense inputs");
    program_ = CompiledProgram::compile(
        TransformPlan::standard(config_),
        Schema::makeRecSys(config_.num_dense, config_.num_sparse));
}

uint64_t
Preprocessor::hashSeed(size_t table_index) const
{
    return mix64(0x516ffd4005ULL ^ table_index);
}

MiniBatch
Preprocessor::preprocess(const RowBatch& raw, ThreadPool* pool) const
{
    MiniBatch mb;
    BatchArena arena;
    preprocessInto(raw, mb, arena, pool);
    return mb;
}

void
Preprocessor::preprocessInto(const RowBatch& raw, MiniBatch& mb,
                             BatchArena& arena, ThreadPool* pool) const
{
    PRESTO_CHECK(raw.complete(), "raw batch is incomplete");
    program_.run(raw, mb, arena, pool);
}

}  // namespace presto
