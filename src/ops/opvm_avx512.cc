// AVX-512 tier of the op-chain VM. Compiled with -mavx512f -mavx512dq
// -ffp-contract=off (which also enables the AVX2 intrinsics used for
// the bucketize bridge); only reached when the CPU reports avx512f +
// avx512dq. Float tiles are 16 lanes wide, hash lane groups 8xi64; the
// bucketize bridge reuses the 8-lane AVX2 gather body on each half of
// the float tile — same instruction semantics per element, so the tier
// stays bit-identical to scalar and AVX2.
#include <immintrin.h>

#include <cstdint>

#include "ops/fast_ops_avx2_inl.h"
#include "ops/fast_ops_avx512_inl.h"
#include "ops/fast_ops_internal.h"
#include "ops/opvm_internal.h"

namespace presto::opvm_detail {

namespace {

using simd_detail::Avx512HashConsts;

struct F32Consts {
    __m512 va[kMaxFusedChainOps];
    __m512 vb[kMaxFusedChainOps];
};

inline void
loadF32Consts(const OpInstr* ops, size_t nops, F32Consts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        c.va[k] = _mm512_set1_ps(ops[k].a);
        c.vb[k] = _mm512_set1_ps(ops[k].b);
    }
}

inline __m512
chain16(__m512 x, const OpInstr* ops, size_t nops, const F32Consts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        switch (ops[k].op) {
          case OpCode::kFill:
            x = simd_detail::fill16(x, c.va[k]);
            break;
          case OpCode::kLog:
            x = simd_detail::log16(x);
            break;
          case OpCode::kClamp:
            x = simd_detail::clamp16(x, c.va[k], c.vb[k]);
            break;
          default:
            break;
        }
    }
    return x;
}

struct HashConsts {
    Avx512HashConsts hc[kMaxFusedChainOps];
    bool one[kMaxFusedChainOps];  // max_value == 1: result is always 0
};

inline void
loadHashConsts(const OpInstr* ops, size_t nops, HashConsts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        c.one[k] = ops[k].max_value == 1;
        if (!c.one[k]) {
            c.hc[k] = Avx512HashConsts::make(
                ops[k].seed, static_cast<uint64_t>(ops[k].max_value));
        }
    }
}

inline __m512i
hashChain8(__m512i h, size_t nops, const HashConsts& c)
{
    for (size_t k = 0; k < nops; ++k) {
        h = c.one[k] ? _mm512_setzero_si512()
                     : simd_detail::hashMod8(h, c.hc[k]);
    }
    return h;
}

}  // namespace

void
runDenseAvx512(const OpInstr* ops, size_t nops, const float* src, size_t n,
               float* dst, size_t stride)
{
    F32Consts c;
    loadF32Consts(ops, nops, c);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 x = chain16(_mm512_loadu_ps(src + i), ops, nops, c);
        alignas(64) float tmp[16];
        _mm512_store_ps(tmp, x);
        for (size_t r = 0; r < 16; ++r)
            dst[(i + r) * stride] = tmp[r];
    }
    for (; i < n; ++i)
        dst[i * stride] = applyF32Scalar(ops, nops, src[i]);
}

void
runSparseAvx512(const OpInstr* ops, size_t nops, const int64_t* src,
                size_t n, int64_t* dst)
{
    HashConsts c;
    loadHashConsts(ops, nops, c);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i h = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, hashChain8(h, nops, c));
    }
    for (; i < n; ++i)
        dst[i] = applyHashScalar(ops, nops, src[i]);
}

void
runGeneratedAvx512(const OpInstr* f32_ops, size_t nf32,
                   const BucketTable& bt, const OpInstr* hash_ops,
                   size_t nhash, const float* src, size_t n, int64_t* out)
{
    F32Consts fc;
    loadF32Consts(f32_ops, nf32, fc);
    HashConsts hc;
    loadHashConsts(hash_ops, nhash, hc);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m512 x = chain16(_mm512_loadu_ps(src + i), f32_ops, nf32, fc);
        __m256 xlo = _mm512_castps512_ps256(x);
        __m256 xhi = _mm512_extractf32x8_ps(x, 1);
        __m256i blo = simd_detail::bucketize8(xlo, bt.bounds, bt.halves,
                                              bt.num_halves);
        __m256i bhi = simd_detail::bucketize8(xhi, bt.bounds, bt.halves,
                                              bt.num_halves);
        __m512i lo64 = _mm512_cvtepi32_epi64(blo);
        __m512i hi64 = _mm512_cvtepi32_epi64(bhi);
        _mm512_storeu_si512(out + i, hashChain8(lo64, nhash, hc));
        _mm512_storeu_si512(out + i + 8, hashChain8(hi64, nhash, hc));
    }
    for (; i < n; ++i) {
        const float v = applyF32Scalar(f32_ops, nf32, src[i]);
        int64_t id = 0;
        simd_detail::bucketizeScalar(&v, &id, 1, bt.bounds, bt.halves,
                                     bt.num_halves);
        out[i] = applyHashScalar(hash_ops, nhash, id);
    }
}

}  // namespace presto::opvm_detail
