/**
 * @file
 * Declarative preprocessing plans.
 *
 * Online preprocessing exists because ML engineers constantly change
 * *which* features a model consumes and *how* they are transformed
 * (Section II-B: "deciding which features to utilize depends on the ML
 * engineer's choice"). A TransformPlan captures that choice as data: a
 * list of output tensors, each naming a source feature and a chain of
 * operators. PlanExecutor runs a validated plan over raw RowBatches.
 *
 * Preprocessor (preprocessor.h) is equivalent to
 * TransformPlan::standard(config) and remains the fast path; plans add
 * the flexibility layer a real deployment needs.
 */
#ifndef PRESTO_OPS_PLAN_H_
#define PRESTO_OPS_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/batch_arena.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/rm_config.h"
#include "ops/ops.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"

namespace presto {

class CompiledProgram;  // ops/opvm.h

/** Dense-chain operator step. */
struct DenseOp {
    enum class Kind { kFillMissing, kLog, kClamp };
    Kind kind = Kind::kLog;
    float a = 0.0f;  ///< FillMissing: fill value; Clamp: lo
    float b = 0.0f;  ///< Clamp: hi

    static DenseOp fillMissing(float value) { return {Kind::kFillMissing, value, 0}; }
    static DenseOp log() { return {Kind::kLog, 0, 0}; }
    static DenseOp clamp(float lo, float hi) { return {Kind::kClamp, lo, hi}; }

    friend bool
    operator==(const DenseOp& x, const DenseOp& y)
    {
        return x.kind == y.kind && x.a == y.a && x.b == y.b;
    }
};

/** Sparse-chain operator step. */
struct SparseOp {
    enum class Kind { kSigridHash, kFirstX };
    Kind kind = Kind::kSigridHash;
    uint64_t seed = 0;      ///< SigridHash
    int64_t max_value = 1;  ///< SigridHash
    size_t max_ids = 1;     ///< FirstX

    static SparseOp
    sigridHash(uint64_t seed, int64_t max_value)
    {
        SparseOp op;
        op.kind = Kind::kSigridHash;
        op.seed = seed;
        op.max_value = max_value;
        return op;
    }

    static SparseOp
    firstX(size_t max_ids)
    {
        SparseOp op;
        op.kind = Kind::kFirstX;
        op.max_ids = max_ids;
        return op;
    }

    friend bool
    operator==(const SparseOp& x, const SparseOp& y)
    {
        return x.kind == y.kind && x.seed == y.seed &&
               x.max_value == y.max_value && x.max_ids == y.max_ids;
    }
};

/** One output tensor of the plan. */
struct PlanOutput {
    /** What the output is. */
    enum class Kind {
        kLabel,      ///< copy the label column
        kDense,      ///< dense feature -> dense ops -> dense matrix slot
        kSparse,     ///< sparse feature -> sparse ops -> jagged tensor
        kGenerated,  ///< dense feature -> dense ops -> Bucketize ->
                     ///< sparse ops -> jagged tensor
    };

    Kind kind = Kind::kDense;
    std::string output_name;
    std::string source_feature;
    std::vector<DenseOp> dense_ops;
    std::vector<SparseOp> sparse_ops;
    size_t bucket_boundaries = 0;  ///< kGenerated: boundary count (m)

    friend bool
    operator==(const PlanOutput& x, const PlanOutput& y)
    {
        return x.kind == y.kind && x.output_name == y.output_name &&
               x.source_feature == y.source_feature &&
               x.dense_ops == y.dense_ops &&
               x.sparse_ops == y.sparse_ops &&
               x.bucket_boundaries == y.bucket_boundaries;
    }
};

/**
 * A validated, executable preprocessing plan.
 */
class TransformPlan
{
  public:
    TransformPlan() = default;

    /** Append an output description (validated later). */
    void add(PlanOutput output) { outputs_.push_back(std::move(output)); }

    const std::vector<PlanOutput>& outputs() const { return outputs_; }

    /** Count of dense-matrix outputs in the plan. */
    size_t numDenseOutputs() const;

    /** Count of jagged (sparse + generated) outputs in the plan. */
    size_t numSparseOutputs() const;

    /**
     * Check the plan against an input schema: sources must exist with
     * the right kind, output names must be unique, at most one label,
     * op parameters must be sane.
     */
    Status validate(const Schema& schema) const;

    /**
     * The paper's standard plan for a Table I workload: FillMissing(0) +
     * Log on every dense feature, Bucketize + SigridHash generating
     * sparse features from the first num_generated dense features,
     * SigridHash on every raw sparse feature, label passthrough.
     * Matches Preprocessor bit for bit.
     */
    static TransformPlan standard(const RmConfig& config);

    friend bool
    operator==(const TransformPlan& x, const TransformPlan& y)
    {
        return x.outputs_ == y.outputs_;
    }

  private:
    std::vector<PlanOutput> outputs_;
};

/**
 * Executes a TransformPlan over raw batches.
 *
 * Construction compiles the plan once into a fused bytecode program
 * (ops/opvm.h): validation and lowering happen here, never per batch.
 * run()/runInto() execute the compiled program in a single SIMD pass
 * per column; runUnfused() keeps the original one-pass-per-operator
 * reference path for differential testing and benchmarking.
 */
class PlanExecutor
{
  public:
    /**
     * Compiles @p plan against @p input_schema; panics on invalid plans
     * (use TransformPlan::validate first for recoverable handling).
     */
    PlanExecutor(TransformPlan plan, const Schema& input_schema);

    /** Run the compiled (fused) plan on one raw batch. */
    MiniBatch run(const RowBatch& raw) const;

    /**
     * Allocation-free form of run(): writes into @p out (buffers reused
     * across calls), borrows fallback scratch from @p arena, optionally
     * fans one task per output onto @p pool. Zero steady-state heap
     * allocations after a warm-up batch.
     */
    void runInto(const RowBatch& raw, MiniBatch& out, BatchArena& arena,
                 ThreadPool* pool = nullptr) const;

    /**
     * Reference executor: one whole-column pass per operator with a
     * materialized intermediate between steps. Bit-identical to run();
     * kept as the differential-test oracle and the bench baseline.
     */
    MiniBatch runUnfused(const RowBatch& raw) const;

    const TransformPlan& plan() const;

    /** The cached compiled program run() executes. */
    const CompiledProgram& program() const { return *program_; }

  private:
    std::shared_ptr<const CompiledProgram> program_;
    std::vector<size_t> source_index_;  ///< per output, input column
    std::vector<BucketBoundaries> boundaries_;  ///< per generated output
    std::vector<int> boundary_slot_;    ///< per output, index or -1
};

/**
 * Total TransformPlan::validate() calls so far. Test hook for the
 * validate-once contract: compiling a plan validates it exactly once,
 * and running a cached program never validates again.
 */
uint64_t planValidationCount();

}  // namespace presto

#endif  // PRESTO_OPS_PLAN_H_
