/**
 * @file
 * Per-tier execution entry points of the op-chain VM. The scalar tier
 * lives in opvm.cc; the AVX2/AVX-512 tiers live in opvm_avx2.cc /
 * opvm_avx512.cc, compiled with the matching per-file ISA flags (and
 * -ffp-contract=off) and reusing the per-register bodies from
 * fast_ops_avx2_inl.h / fast_ops_avx512_inl.h. Every tier applies the
 * same elementwise operation sequence, so all are bit-identical; the
 * vector tiers hand their sub-tile tails to the scalar appliers below.
 */
#ifndef PRESTO_OPS_OPVM_INTERNAL_H_
#define PRESTO_OPS_OPVM_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "ops/fast_math.h"
#include "ops/hash.h"
#include "ops/opvm.h"

namespace presto::opvm_detail {

/** Bucketize operand view (bounds are never empty for kGenerated). */
struct BucketTable {
    const float* bounds = nullptr;
    const int32_t* halves = nullptr;
    size_t num_halves = 0;
    size_t num_bounds = 0;
};

/** One value through the f32 stage (reference semantics, see ops.h). */
inline float
applyF32Scalar(const OpInstr* ops, size_t nops, float v)
{
    for (size_t k = 0; k < nops; ++k) {
        switch (ops[k].op) {
          case OpCode::kFill:
            if (std::isnan(v))
                v = ops[k].a;
            break;
          case OpCode::kLog:
            v = fastLog1p(v < 0.0f ? 0.0f : v);
            break;
          case OpCode::kClamp:
            v = std::min(std::max(v, ops[k].a), ops[k].b);
            break;
          default:
            break;
        }
    }
    return v;
}

/** One id through the hash stage. */
inline int64_t
applyHashScalar(const OpInstr* ops, size_t nops, int64_t v)
{
    for (size_t k = 0; k < nops; ++k)
        v = sigridHashMod(v, ops[k].seed, ops[k].max_value);
    return v;
}

// --- Fused column executors, one per tier ---------------------------------
//
// runDenseT:     src[n] -> f32 chain -> dst[r * stride] (strided scatter
//                into the row-major dense matrix).
// runSparseT:    src[n] -> hash chain -> dst[n] (src may alias dst).
// runGeneratedT: src[n] -> f32 chain -> bucketize -> hash chain -> out[n].

void runDenseScalar(const OpInstr* ops, size_t nops, const float* src,
                    size_t n, float* dst, size_t stride);
void runSparseScalar(const OpInstr* ops, size_t nops, const int64_t* src,
                     size_t n, int64_t* dst);
void runGeneratedScalar(const OpInstr* f32_ops, size_t nf32,
                        const BucketTable& bt, const OpInstr* hash_ops,
                        size_t nhash, const float* src, size_t n,
                        int64_t* out);

#if defined(PRESTO_HAVE_X86_SIMD)
void runDenseAvx2(const OpInstr* ops, size_t nops, const float* src,
                  size_t n, float* dst, size_t stride);
void runSparseAvx2(const OpInstr* ops, size_t nops, const int64_t* src,
                   size_t n, int64_t* dst);
void runGeneratedAvx2(const OpInstr* f32_ops, size_t nf32,
                      const BucketTable& bt, const OpInstr* hash_ops,
                      size_t nhash, const float* src, size_t n,
                      int64_t* out);

void runDenseAvx512(const OpInstr* ops, size_t nops, const float* src,
                    size_t n, float* dst, size_t stride);
void runSparseAvx512(const OpInstr* ops, size_t nops, const int64_t* src,
                     size_t n, int64_t* dst);
void runGeneratedAvx512(const OpInstr* f32_ops, size_t nf32,
                        const BucketTable& bt, const OpInstr* hash_ops,
                        size_t nhash, const float* src, size_t n,
                        int64_t* out);
#endif  // PRESTO_HAVE_X86_SIMD

}  // namespace presto::opvm_detail

#endif  // PRESTO_OPS_OPVM_INTERNAL_H_
