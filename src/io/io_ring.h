/**
 * @file
 * IoRing: an io_uring-style asynchronous storage I/O engine.
 *
 * The paper's SmartSSD hides flash latency by keeping many page reads
 * in flight while earlier pages are decoded. This module emulates that
 * device interface in software: callers enqueue read requests on a
 * bounded submission queue (SQ), a pool of device workers — one per
 * modeled flash channel by default — services them with NVMe-style
 * timing derived from SsdParams, and finished requests surface on a
 * completion queue (CQ) tagged with the caller's cookie.
 *
 * Each request walks an explicit state machine:
 *
 *   submitted (SQ) -> in-flight (device worker) -> completed | failed
 *
 * With a FaultInjector installed, individual in-flight requests can
 * fail transiently, time out, or deliver bit-flipped bytes; transient
 * errors and timeouts are retried *inside the ring* with the spec's
 * exponential backoff until its retry budget runs out (then the request
 * fails with kUnavailable). Bit flips are delivered silently — exactly
 * like real silent data corruption — and are meant to be caught by the
 * per-page CRC at decode time. All fault draws are keyed on the stable
 * (stream_id, offset, attempt) identity, so a run's fault timeline is
 * reproducible regardless of worker interleaving.
 *
 * One ring may be shared by many concurrent consumers (e.g. one per
 * pipeline fetcher thread): registerConsumer() hands out a routing id,
 * and each consumer reaps only its own completions. The CQ never drops
 * a completion; growth past cq_depth is tallied as an overflow, the way
 * io_uring accounts CQ overruns.
 */
#ifndef PRESTO_IO_IO_RING_H_
#define PRESTO_IO_IO_RING_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/stats.h"
#include "common/status.h"
#include "models/ssd_model.h"

namespace presto {

/** Lifecycle states of one IoRing request. */
enum class IoRequestState : uint8_t {
    kSubmitted,  ///< waiting on the submission queue
    kInFlight,   ///< owned by a device worker
    kCompleted,  ///< bytes delivered (possibly silently corrupted)
    kFailed,     ///< retry budget exhausted (kUnavailable)
};

/** Human-readable state name. */
const char* ioRequestStateName(IoRequestState state);

/**
 * One submission-queue entry: deliver a device-resident byte range into
 * caller-owned @p dest. Two backends share the queue:
 *
 *  - memory-backed (@p fd < 0): copy @p src into @p dest. The source
 *    span stays valid until the completion is reaped.
 *  - file-backed (@p fd >= 0): pread() @p length bytes at @p offset of
 *    the (caller-owned, kept-open) descriptor into @p dest; @p src is
 *    ignored. A short or failing pread completes the request as kFailed
 *    with the pread's status — it is a real I/O error, not an injected
 *    one, so the in-ring retry budget does not apply.
 *
 * Either way the destination must hold the full request, and injected
 * faults (transients, timeouts, silent bit flips) act identically on
 * both backends.
 */
struct IoRequest {
    std::span<const uint8_t> src;  ///< device-resident bytes (fd < 0)
    uint8_t* dest = nullptr;       ///< caller-owned destination buffer
    int fd = -1;             ///< file-backed source descriptor (-1 = none)
    uint32_t length = 0;     ///< bytes to pread when fd >= 0
    uint64_t stream_id = 0;  ///< fault-draw stream (e.g. partition id)
    uint64_t offset = 0;     ///< device byte offset (fault/timing identity)
    uint32_t attempt = 0;    ///< caller-level re-read ordinal (fault identity)
    uint64_t user_data = 0;  ///< opaque cookie echoed in the completion
    /**
     * Flash-channel affinity: -1 (default) lets any device worker pick
     * the request up (legacy behavior); >= 0 pins it to the worker
     * serving channel (channel % workers), which is how frequency-aware
     * placement turns hot-page striping into real channel parallelism.
     * Pinned requests keep FIFO order per channel.
     */
    int32_t channel = -1;
};

/** One completion-queue entry. */
struct IoCompletion {
    uint64_t user_data = 0;
    Status status;  ///< ok, or kUnavailable once the retry budget is gone
    IoRequestState state = IoRequestState::kCompleted;
    uint32_t retries = 0;      ///< device-level retries this request spent
    double latency_sec = 0;    ///< modeled service time incl. retries
    uint64_t bytes = 0;        ///< bytes delivered (0 on failure)
};

/** Ring configuration. */
struct IoRingOptions {
    size_t sq_depth = 64;   ///< bounded SQ; submit() blocks when full
    size_t cq_depth = 128;  ///< soft CQ bound; growth past it = overflow
    /** Device workers servicing requests; 0 = one per flash channel. */
    int workers = 0;
    /**
     * When true, workers sleep for each request's modeled service time,
     * so wall-clock overlap of storage latency with decode is real.
     * When false (simulation mode) latencies are only accounted.
     */
    bool emulate_latency = false;
    double latency_scale = 1.0;  ///< scales modeled latency (and sleeps)
    /** Modeled lost-command window charged when a timeout fault fires. */
    double timeout_sec = 1e-3;
    /** Upper bound of the latency histogram used for percentiles. */
    double latency_hist_max_sec = 5e-3;
    SsdParams ssd;  ///< flash geometry/timing behind serviceSeconds()
    /** Optional fault oracle (not owned; must outlive the ring). */
    const FaultInjector* faults = nullptr;
};

/** Counters and distributions exposed by IoRing::statsSnapshot(). */
struct IoRingStats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t transient_errors = 0;  ///< injected transient read errors
    uint64_t timeouts = 0;          ///< injected command timeouts
    uint64_t retries = 0;           ///< device-level retry attempts
    uint64_t corruptions_injected = 0;
    uint64_t bytes_read = 0;
    uint64_t cq_overflows = 0;
    uint64_t max_in_flight = 0;
    uint64_t max_queue_depth = 0;  ///< max SQ + in-flight
    /** SQ + in-flight sampled at every submit. */
    Accumulator queue_depth;
    /** Modeled per-request service time (incl. retries/backoff). */
    Accumulator latency;
    Histogram latency_hist{0.0, 5e-3, 1000};

    /** Total modeled storage seconds across completed requests. */
    double modeledStorageSec() const { return latency.sum(); }
    /** Latency percentile from the histogram (q in [0, 1]). */
    double latencyQuantile(double q) const
    {
        return latency_hist.quantile(q);
    }
};

/**
 * The ring. Thread-safe: any thread may submit or reap; device workers
 * run internally. Destruction drains queued requests, then joins.
 */
class IoRing
{
  public:
    explicit IoRing(IoRingOptions options = {});
    ~IoRing();

    IoRing(const IoRing&) = delete;
    IoRing& operator=(const IoRing&) = delete;

    /**
     * Allocate a completion-routing id. Every submit must carry a
     * registered consumer id, and each consumer must eventually reap
     * its own completions.
     */
    uint32_t registerConsumer();

    /** Enqueue @p req, blocking while the SQ is full. */
    void submit(uint32_t consumer, const IoRequest& req);

    /** Non-blocking submit. @return false when the SQ is full. */
    bool trySubmit(uint32_t consumer, const IoRequest& req);

    /** Block until a completion for @p consumer arrives, and pop it. */
    IoCompletion waitCompletion(uint32_t consumer);

    /**
     * Pop every available completion for @p consumer (non-blocking).
     * @return the number of completions appended to @p out.
     */
    size_t reapCompletions(uint32_t consumer,
                           std::vector<IoCompletion>& out);

    /** Block until no request is queued or in flight. */
    void drain();

    size_t sqSize() const;
    size_t cqSize() const;
    size_t inFlight() const;
    IoRingStats statsSnapshot() const;
    const IoRingOptions& options() const { return options_; }

    /**
     * Modeled service time of one @p bytes read request (before
     * latency_scale): controller overhead + the first flash page's tR +
     * channel transfer of the full request; further flash-page reads
     * pipeline behind the transfer. Cross-request parallelism comes
     * from the device workers (one per channel).
     */
    double serviceSeconds(uint64_t bytes) const;

  private:
    struct Sqe {
        IoRequest req;
        uint32_t consumer = 0;
    };
    struct Cqe {
        IoCompletion completion;
        uint32_t consumer = 0;
    };

    void deviceLoop(int worker);
    void processRequest(const Sqe& sqe);

    IoRingOptions options_;
    std::vector<std::thread> workers_;

    mutable std::mutex mu_;
    std::condition_variable sq_space_;    ///< SQ below sq_depth
    std::condition_variable sq_nonempty_; ///< work for device workers
    std::condition_variable cq_nonempty_; ///< completions to reap
    std::condition_variable idle_;        ///< SQ empty and nothing in flight
    std::deque<Sqe> sq_;
    std::deque<Cqe> cq_;
    size_t in_flight_ = 0;
    uint32_t next_consumer_ = 0;
    bool stop_ = false;
    IoRingStats stats_;
};

}  // namespace presto

#endif  // PRESTO_IO_IO_RING_H_
