#include "io/async_reader.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace presto {

AsyncPartitionReader::AsyncPartitionReader(IoRing& ring,
                                           AsyncReadOptions options)
    : ring_(ring), consumer_(ring.registerConsumer()), options_(options)
{
    PRESTO_CHECK(options_.queue_depth > 0, "queue depth must be positive");
    PRESTO_CHECK(options_.max_page_attempts > 0,
                 "page attempt budget must be positive");
    // queue_depth frames in flight on the device plus queue_depth - 1
    // completed frames waiting for decode, so reaping a completion
    // never has to stall on a decode before the window can refill.
    slots_.resize(2 * options_.queue_depth - 1);
}

Status
AsyncPartitionReader::submitPage(std::span<const uint8_t> file, int fd,
                                 uint64_t partition_id, size_t plan_index,
                                 uint32_t attempt)
{
    size_t slot_index;
    {
        std::lock_guard<std::mutex> lock(mu_);
        PRESTO_CHECK(!free_slots_.empty(), "no free prefetch slot");
        slot_index = free_slots_.back();
        free_slots_.pop_back();
    }
    Slot& slot = slots_[slot_index];
    const PageReadPlan& plan = plans_[plan_index];
    slot.plan = plan_index;
    slot.attempt = attempt;
    slot.buf.resize(plan.frame_bytes);

    IoRequest req;
    if (fd >= 0) {
        req.fd = fd;
        req.length = plan.frame_bytes;
    } else {
        req.src = file.subspan(plan.offset, plan.frame_bytes);
    }
    req.dest = slot.buf.data();
    req.stream_id = partition_id;
    req.offset = plan.offset;
    req.attempt = attempt;
    req.user_data = slot_index;
    switch (options_.placement) {
      case ChannelPlacement::kNone:
        break;
      case ChannelPlacement::kAddress:
        req.channel = static_cast<int32_t>(
            (plan.offset / std::max<uint64_t>(1, options_.address_stripe_bytes)) %
            static_cast<uint64_t>(ring_.options().workers));
        break;
      case ChannelPlacement::kHeat:
        req.channel = plan.channel;
        break;
    }
    ring_.submit(consumer_, req);
    return Status::okStatus();
}

void
AsyncPartitionReader::decodeSlot(size_t slot_index, RowBatch* out)
{
    Slot& slot = slots_[slot_index];
    const PageReadPlan& plan = plans_[slot.plan];
    Status st = reader_.completePage(
        plan, {slot.buf.data(), plan.frame_bytes}, *out);

    std::lock_guard<std::mutex> lock(mu_);
    free_slots_.push_back(slot_index);
    if (decodes_pending_ > 0)
        --decodes_pending_;
    if (st.ok()) {
        --remaining_;
    } else if (st.code() == StatusCode::kCorruption &&
               slot.attempt + 1 < options_.max_page_attempts) {
        // A damaged frame (e.g. bit flip acquired in flight) is re-read
        // with a fresh attempt ordinal so its fault draws differ.
        retries_.emplace_back(slot.plan, slot.attempt + 1);
        ++stats_.corrupt_page_rereads;
    } else if (error_.ok()) {
        error_ = std::move(st);
    }
    cv_.notify_all();
}

Status
AsyncPartitionReader::read(std::span<const uint8_t> file,
                           uint64_t partition_id, RowBatch& out)
{
    PRESTO_RETURN_IF_ERROR(reader_.open(file));
    PRESTO_RETURN_IF_ERROR(reader_.planPageReads(plans_));
    if (options_.placement == ChannelPlacement::kHeat)
        assignChannelPlacement(reader_.footer(), ring_.options().workers,
                               plans_);
    PRESTO_RETURN_IF_ERROR(reader_.beginReadInto(out));
    return runRead(file, /*fd=*/-1, partition_id, out);
}

Status
AsyncPartitionReader::readFile(const FileReadSource& src,
                               uint64_t partition_id, RowBatch& out)
{
    PRESTO_RETURN_IF_ERROR(reader_.openTail(src.tail, src.file_size));
    // Plans come from outside the file (a journal); prove they are
    // consistent with the footer before any of them sizes a buffer or
    // lands a decode, so a stale or corrupt plan set cannot write out
    // of bounds — it is rejected here as corruption instead.
    PRESTO_RETURN_IF_ERROR(reader_.validatePlans(src.plans));
    plans_.assign(src.plans.begin(), src.plans.end());
    // Journal plans never carry placement; re-derive it from the
    // footer's heat metadata at read time.
    if (options_.placement == ChannelPlacement::kHeat)
        assignChannelPlacement(reader_.footer(), ring_.options().workers,
                               plans_);
    PRESTO_RETURN_IF_ERROR(reader_.beginReadInto(out));
    return runRead({}, src.fd, partition_id, out);
}

Status
AsyncPartitionReader::runRead(std::span<const uint8_t> file, int fd,
                              uint64_t partition_id, RowBatch& out)
{
    stats_ = AsyncReadStats{};
    stats_.pages = plans_.size();
    {
        std::lock_guard<std::mutex> lock(mu_);
        free_slots_.clear();
        for (size_t s = 0; s < slots_.size(); ++s)
            free_slots_.push_back(s);
        retries_.clear();
        remaining_ = plans_.size();
        decodes_pending_ = 0;
        error_ = Status::okStatus();
    }

    // Submission order. With channel hints (kHeat placement), submit
    // channel-interleaved — the channel with the least service cost
    // submitted so far goes next — instead of in file order, so the
    // in-flight window spans distinct channels even where consecutive
    // pages of one cold stream share one. completePage() is
    // order-independent, so only the schedule changes, not the result.
    std::vector<size_t> order(plans_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (std::any_of(plans_.begin(), plans_.end(),
                    [](const PageReadPlan& p) { return p.channel >= 0; })) {
        std::vector<std::vector<size_t>> queues;  // bucket 0 = unpinned
        for (size_t i = 0; i < plans_.size(); ++i) {
            const int32_t ch = plans_[i].channel;
            const size_t b = ch >= 0 ? static_cast<size_t>(ch) + 1 : 0;
            if (queues.size() <= b)
                queues.resize(b + 1);
            queues[b].push_back(i);
        }
        std::vector<uint64_t> cost(queues.size(), 0);
        std::vector<size_t> head(queues.size(), 0);
        order.clear();
        while (order.size() < plans_.size()) {
            size_t best = queues.size();
            for (size_t b = 0; b < queues.size(); ++b) {
                if (head[b] >= queues[b].size())
                    continue;
                if (best == queues.size() || cost[b] < cost[best])
                    best = b;
            }
            const size_t i = queues[best][head[best]++];
            order.push_back(i);
            cost[best] += placementPageCost(plans_[i].frame_bytes);
        }
    }

    size_t next_plan = 0;
    size_t ring_outstanding = 0;
    std::vector<size_t> ready;  ///< completed frames awaiting decode
    std::vector<IoCompletion> reaped;

    // Account one reaped completion, then route its slot to the decode
    // backlog (or the decode pool).
    auto handleCompletion = [&](IoCompletion& c) {
        stats_.device_retries += c.retries;
        stats_.modeled_storage_sec += c.latency_sec;
        const auto slot_index = static_cast<size_t>(c.user_data);
        if (!c.status.ok()) {
            std::lock_guard<std::mutex> lock(mu_);
            free_slots_.push_back(slot_index);
            if (error_.ok())
                error_ = std::move(c.status);
            return;
        }
        stats_.bytes_read += c.bytes;
        if (pool_ != nullptr) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++decodes_pending_;
            }
            pool_->submit([this, slot_index, out_ptr = &out] {
                decodeSlot(slot_index, out_ptr);
            });
        } else {
            ready.push_back(slot_index);
        }
    };

    // Top up the device window: corrupt-page re-reads first, then
    // fresh pages, while slots are free and fewer than queue_depth
    // requests are in flight.
    auto topUp = [&]() -> Status {
        while (ring_outstanding < options_.queue_depth) {
            size_t plan_index;
            uint32_t attempt = 0;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!error_.ok() || free_slots_.empty())
                    break;
                if (!retries_.empty()) {
                    plan_index = retries_.back().first;
                    attempt = retries_.back().second;
                    retries_.pop_back();
                } else if (next_plan < order.size()) {
                    plan_index = order[next_plan++];
                } else {
                    break;
                }
            }
            PRESTO_RETURN_IF_ERROR(
                submitPage(file, fd, partition_id, plan_index, attempt));
            ++ring_outstanding;
        }
        return Status::okStatus();
    };

    Status loop_status = Status::okStatus();
    for (;;) {
        loop_status = topUp();
        if (!loop_status.ok())
            break;

        // Reap whatever is already complete before the CPU sinks into
        // a decode, so the device window refills first and the flash
        // channels keep working underneath the decode.
        if (ring_outstanding > 0) {
            reaped.clear();
            ring_outstanding -= ring_.reapCompletions(consumer_, reaped);
            if (!reaped.empty()) {
                for (IoCompletion& c : reaped)
                    handleCompletion(c);
                continue;  // refill the window before decoding
            }
        }

        if (!ready.empty()) {
            const size_t slot_index = ready.front();
            ready.erase(ready.begin());
            decodeSlot(slot_index, &out);
            continue;
        }

        {
            std::unique_lock<std::mutex> lock(mu_);
            if (!error_.ok())
                break;
            if (remaining_ == 0 && ring_outstanding == 0 &&
                decodes_pending_ == 0) {
                break;
            }
            if (ring_outstanding == 0) {
                // Every missing page is either decoding on the pool or
                // sitting in the retry queue; wait for movement.
                cv_.wait(lock, [this] {
                    return decodes_pending_ == 0 || !retries_.empty() ||
                           !error_.ok();
                });
                continue;
            }
        }

        IoCompletion c = ring_.waitCompletion(consumer_);
        --ring_outstanding;
        handleCompletion(c);
    }

    // Unwind before returning on failure: in-flight requests still
    // target slot buffers, and pool tasks still touch this reader.
    while (ring_outstanding > 0) {
        IoCompletion c = ring_.waitCompletion(consumer_);
        --ring_outstanding;
        stats_.device_retries += c.retries;
        stats_.modeled_storage_sec += c.latency_sec;
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return decodes_pending_ == 0; });
        if (!error_.ok())
            return error_;
    }
    if (!loop_status.ok())
        return loop_status;
    return reader_.finishReadInto(out);
}

}  // namespace presto
