#include "io/io_ring.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/durable_file.h"
#include "common/logging.h"
#include "common/rng.h"

namespace presto {

namespace {

void
sleepSec(double seconds)
{
    if (seconds > 0)
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/** Bytes a request delivers: pread length (file) or src size (memory). */
uint64_t
requestBytes(const IoRequest& req)
{
    return req.fd >= 0 ? req.length : req.src.size();
}

}  // namespace

const char*
ioRequestStateName(IoRequestState state)
{
    switch (state) {
      case IoRequestState::kSubmitted: return "submitted";
      case IoRequestState::kInFlight:  return "in-flight";
      case IoRequestState::kCompleted: return "completed";
      case IoRequestState::kFailed:    return "failed";
    }
    return "unknown";
}

IoRing::IoRing(IoRingOptions options) : options_(options)
{
    PRESTO_CHECK(options_.sq_depth > 0, "sq_depth must be positive");
    PRESTO_CHECK(options_.cq_depth > 0, "cq_depth must be positive");
    PRESTO_CHECK(options_.latency_scale >= 0, "negative latency scale");
    if (options_.workers <= 0)
        options_.workers = options_.ssd.channels;
    PRESTO_CHECK(options_.workers > 0, "ring needs at least one worker");
    stats_.latency_hist =
        Histogram(0.0, options_.latency_hist_max_sec, 1000);
    workers_.reserve(static_cast<size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { deviceLoop(w); });
}

IoRing::~IoRing()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    sq_nonempty_.notify_all();
    for (auto& t : workers_)
        t.join();
}

uint32_t
IoRing::registerConsumer()
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_consumer_++;
}

void
IoRing::submit(uint32_t consumer, const IoRequest& req)
{
    PRESTO_CHECK(req.dest != nullptr || requestBytes(req) == 0,
                 "submit without a destination buffer");
    std::unique_lock<std::mutex> lock(mu_);
    PRESTO_CHECK(consumer < next_consumer_, "unregistered consumer");
    sq_space_.wait(lock, [this] { return sq_.size() < options_.sq_depth; });
    sq_.push_back(Sqe{req, consumer});
    ++stats_.submitted;
    const uint64_t depth = sq_.size() + in_flight_;
    stats_.queue_depth.add(static_cast<double>(depth));
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
    lock.unlock();
    sq_nonempty_.notify_all();
}

bool
IoRing::trySubmit(uint32_t consumer, const IoRequest& req)
{
    PRESTO_CHECK(req.dest != nullptr || requestBytes(req) == 0,
                 "submit without a destination buffer");
    {
        std::lock_guard<std::mutex> lock(mu_);
        PRESTO_CHECK(consumer < next_consumer_, "unregistered consumer");
        if (sq_.size() >= options_.sq_depth)
            return false;
        sq_.push_back(Sqe{req, consumer});
        ++stats_.submitted;
        const uint64_t depth = sq_.size() + in_flight_;
        stats_.queue_depth.add(static_cast<double>(depth));
        stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
    }
    sq_nonempty_.notify_all();
    return true;
}

IoCompletion
IoRing::waitCompletion(uint32_t consumer)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        for (auto it = cq_.begin(); it != cq_.end(); ++it) {
            if (it->consumer == consumer) {
                IoCompletion c = std::move(it->completion);
                cq_.erase(it);
                return c;
            }
        }
        cq_nonempty_.wait(lock);
    }
}

size_t
IoRing::reapCompletions(uint32_t consumer, std::vector<IoCompletion>& out)
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t reaped = 0;
    for (auto it = cq_.begin(); it != cq_.end();) {
        if (it->consumer == consumer) {
            out.push_back(std::move(it->completion));
            it = cq_.erase(it);
            ++reaped;
        } else {
            ++it;
        }
    }
    return reaped;
}

void
IoRing::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return sq_.empty() && in_flight_ == 0; });
}

size_t
IoRing::sqSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sq_.size();
}

size_t
IoRing::cqSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cq_.size();
}

size_t
IoRing::inFlight() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
}

IoRingStats
IoRing::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

double
IoRing::serviceSeconds(uint64_t bytes) const
{
    const SsdParams& ssd = options_.ssd;
    return ssd.controller_overhead_sec + ssd.page_read_sec +
           static_cast<double>(bytes) / ssd.channel_bytes_per_sec;
}

void
IoRing::deviceLoop(int worker)
{
    // Channel-pinned entries (req.channel >= 0) are served only by the
    // worker owning that channel, in per-channel FIFO order; unpinned
    // entries go to whichever worker reaches them first. During
    // shutdown every worker drains any remaining entry so pinned
    // requests cannot be stranded behind a stopped peer.
    const auto eligible = [this, worker](const Sqe& sqe) {
        return stop_ || sqe.req.channel < 0 ||
               sqe.req.channel % options_.workers == worker;
    };
    for (;;) {
        Sqe sqe;
        {
            std::unique_lock<std::mutex> lock(mu_);
            auto it = sq_.end();
            sq_nonempty_.wait(lock, [this, &eligible, &it] {
                it = std::find_if(sq_.begin(), sq_.end(), eligible);
                return stop_ || it != sq_.end();
            });
            if (it == sq_.end())
                return;  // stop requested and nothing left to service
            sqe = std::move(*it);
            sq_.erase(it);
            ++in_flight_;
            stats_.max_in_flight =
                std::max(stats_.max_in_flight,
                         static_cast<uint64_t>(in_flight_));
        }
        sq_space_.notify_one();
        processRequest(sqe);
    }
}

void
IoRing::processRequest(const Sqe& sqe)
{
    const IoRequest& req = sqe.req;
    const FaultInjector* faults = options_.faults;
    // Fault draws key on the page's stable identity; the caller-level
    // attempt shifts the event window so a re-read of the same page
    // draws fresh outcomes, and each device-level retry advances it.
    const uint64_t base_event =
        mix64(req.offset + 1) +
        0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(req.attempt) + 1);

    IoCompletion c;
    c.user_data = req.user_data;
    c.state = IoRequestState::kCompleted;

    const uint64_t req_bytes = requestBytes(req);
    const double service =
        serviceSeconds(req_bytes) * options_.latency_scale;
    const int max_retries =
        faults != nullptr ? faults->spec().max_read_retries : 0;
    uint32_t tries = 0;
    uint64_t injected_transients = 0;
    uint64_t injected_timeouts = 0;
    for (;;) {
        const uint64_t event = base_event + tries;
        const bool timeout =
            faults != nullptr && faults->readTimeout(req.stream_id, event);
        const bool transient =
            faults != nullptr &&
            faults->transientReadError(req.stream_id, event);
        // A timed-out command is charged the full lost-command window
        // instead of its service time.
        const double attempt_sec =
            timeout ? options_.timeout_sec * options_.latency_scale
                    : service;
        if (options_.emulate_latency)
            sleepSec(attempt_sec);
        c.latency_sec += attempt_sec;
        injected_timeouts += timeout ? 1 : 0;
        injected_transients += transient && !timeout ? 1 : 0;
        if (!timeout && !transient)
            break;
        if (static_cast<int>(tries) >= max_retries) {
            c.status = Status::unavailable(
                timeout ? "storage request timed out"
                        : "transient storage read error");
            c.state = IoRequestState::kFailed;
            break;
        }
        const double backoff = faults->retryBackoffSec(
                                   static_cast<int>(tries)) *
                               options_.latency_scale;
        if (options_.emulate_latency)
            sleepSec(backoff);
        c.latency_sec += backoff;
        ++tries;
    }
    c.retries = tries;

    bool corrupted = false;
    if (c.status.ok()) {
        if (req.fd >= 0) {
            // Real storage: pread the range off the (kept-open) file. A
            // failure here is a genuine I/O error, surfaced as-is.
            Status st = req.length == 0
                            ? Status::okStatus()
                            : preadExact(req.fd, req.dest, req.length,
                                         req.offset, "io-ring fd");
            if (!st.ok()) {
                c.status = std::move(st);
                c.state = IoRequestState::kFailed;
            }
        } else if (!req.src.empty()) {
            std::memcpy(req.dest, req.src.data(), req.src.size());
        }
    }
    if (c.status.ok()) {
        c.bytes = req_bytes;
        // Silent in-flight corruption: flip one bit of the delivered
        // copy. The device reports success; only the page CRC can tell.
        if (faults != nullptr && req_bytes != 0 &&
            faults->corruptionOccurs(req.stream_id, base_event + tries)) {
            faults->corruptBytes({req.dest, req_bytes}, req.stream_id,
                                 base_event + tries);
            corrupted = true;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        --in_flight_;
        if (c.status.ok())
            ++stats_.completed;
        else
            ++stats_.failed;
        stats_.retries += tries;
        stats_.transient_errors += injected_transients;
        stats_.timeouts += injected_timeouts;
        stats_.corruptions_injected += corrupted ? 1 : 0;
        stats_.bytes_read += c.bytes;
        stats_.latency.add(c.latency_sec);
        stats_.latency_hist.add(c.latency_sec);
        if (cq_.size() >= options_.cq_depth)
            ++stats_.cq_overflows;
        cq_.push_back(Cqe{std::move(c), sqe.consumer});
    }
    cq_nonempty_.notify_all();
    idle_.notify_all();
}

}  // namespace presto
