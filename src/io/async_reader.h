/**
 * @file
 * AsyncPartitionReader: page-granular partition reads over an IoRing.
 *
 * The blocking Extract path fetches a whole PSF file, then decodes it.
 * This reader instead keeps a window of page frames in flight on a
 * (possibly shared) IoRing and decodes each page the moment its bytes
 * arrive — decode of page k overlaps the storage latency of pages
 * k+1..k+depth, which is the paper's in-storage prefetch pattern.
 *
 * Fault handling mirrors the blocking path end to end:
 *  - transient errors / timeouts retry inside the ring with backoff;
 *  - a bit flip acquired in flight fails the page's CRC check in
 *    completePage(), and just that page is re-read (fresh fault draws
 *    via the attempt ordinal) up to max_page_attempts;
 *  - anything unrecoverable surfaces as the read's Status.
 *
 * With setDecodePool(), completed pages decode on a ThreadPool instead
 * of the calling thread. The pool may be shared by several readers, so
 * completed pages of *different* partitions keep one pool busy even
 * when each file's pages alone would not.
 */
#ifndef PRESTO_IO_ASYNC_READER_H_
#define PRESTO_IO_ASYNC_READER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/status.h"
#include "io/io_ring.h"

namespace presto {

class ThreadPool;

/** How page requests are mapped to the ring's flash channels. */
enum class ChannelPlacement : uint8_t {
    kNone = 0,     ///< no affinity: any device worker (legacy behavior)
    kAddress = 1,  ///< address-striped: channel = (offset / stripe) % C
    kHeat = 2,     ///< frequency-aware: assignChannelPlacement() hints
};

/** Per-read knobs. */
struct AsyncReadOptions {
    /**
     * Page requests in flight on the device at once. Up to
     * queue_depth - 1 completed frames additionally wait in a decode
     * backlog so the device window refills before the CPU sinks into a
     * decode; queue_depth = 1 therefore stays the strictly-alternating
     * blocking schedule (one page's storage wait, then its decode).
     */
    size_t queue_depth = 8;
    /** Whole-page re-reads before a CRC failure becomes fatal. */
    uint32_t max_page_attempts = 16;
    /**
     * Channel placement of page requests. kHeat stripes pages of hot
     * streams (footer heat metadata) round-robin across distinct
     * channels and keeps cold streams channel-contiguous, so channel
     * parallelism and entropy packing compound; with no heat metadata
     * it degrades to kNone. kAddress models a conventional
     * address-interleaved SSD mapping (the striping baseline).
     */
    ChannelPlacement placement = ChannelPlacement::kNone;
    /** Stripe size of kAddress placement, in bytes. */
    uint64_t address_stripe_bytes = 64 * 1024;
};

/** Counters for the most recent read(). */
struct AsyncReadStats {
    uint64_t pages = 0;
    uint64_t bytes_read = 0;          ///< bytes delivered by the ring
    uint64_t device_retries = 0;      ///< ring-level transient/timeout retries
    uint64_t corrupt_page_rereads = 0;  ///< pages re-read after CRC failure
    double modeled_storage_sec = 0;   ///< sum of per-request latencies
};

/**
 * One reader = one in-progress partition read. Not thread-safe itself
 * (one read() at a time), but many readers may share one IoRing and
 * one decode ThreadPool.
 */
class AsyncPartitionReader
{
  public:
    explicit AsyncPartitionReader(IoRing& ring,
                                  AsyncReadOptions options = {});

    /** Decode completed pages on @p pool (nullptr = calling thread). */
    void setDecodePool(ThreadPool* pool) { pool_ = pool; }

    /**
     * Read and decode the partition in @p file into @p out, page
     * frames flowing through the ring. Buffer-reuse semantics and the
     * decoded batch are bit-identical to ColumnarFileReader::
     * readAllInto() on the same bytes.
     * @param partition_id Fault-draw stream identity of this file.
     */
    Status read(std::span<const uint8_t> file, uint64_t partition_id,
                RowBatch& out);

    /**
     * File-backed source for readFile(): the PSF body stays on storage
     * and every page frame arrives via pread through the ring. The
     * descriptor is caller-owned and must stay open for the read; the
     * tail must cover the footer + trailer; the plans come from outside
     * (e.g. a segment store's journal) and are re-validated against the
     * footer before any page is fetched.
     */
    struct FileReadSource {
        int fd = -1;
        uint64_t file_size = 0;
        std::span<const uint8_t> tail;
        std::span<const PageReadPlan> plans;
    };

    /**
     * Same decode pipeline as read(), but page frames are pread() from
     * @p src.fd by the ring's device workers instead of copied from a
     * memory span — the cold-read path of the persistent segment store.
     * Retry/backoff, CRC re-read, and fault semantics are identical.
     */
    Status readFile(const FileReadSource& src, uint64_t partition_id,
                    RowBatch& out);

    const AsyncReadStats& lastReadStats() const { return stats_; }

    /** Footer / byte-touch access for the file of the last read(). */
    const ColumnarFileReader& reader() const { return reader_; }

  private:
    struct Slot {
        std::vector<uint8_t> buf;
        size_t plan = 0;
        uint32_t attempt = 0;
    };

    /** Shared submit/reap/decode loop of read()/readFile(); @p fd < 0
        means memory-backed (@p file), else file-backed via pread. */
    Status runRead(std::span<const uint8_t> file, int fd,
                   uint64_t partition_id, RowBatch& out);
    Status submitPage(std::span<const uint8_t> file, int fd,
                      uint64_t partition_id, size_t plan_index,
                      uint32_t attempt);
    void decodeSlot(size_t slot_index, RowBatch* out);

    IoRing& ring_;
    uint32_t consumer_;
    AsyncReadOptions options_;
    ThreadPool* pool_ = nullptr;
    ColumnarFileReader reader_;
    std::vector<PageReadPlan> plans_;
    std::vector<Slot> slots_;
    AsyncReadStats stats_;

    // Shared with pool decode tasks (guarded by mu_).
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<size_t> free_slots_;
    std::vector<std::pair<size_t, uint32_t>> retries_;  ///< (plan, attempt)
    size_t remaining_ = 0;        ///< pages not yet decoded successfully
    size_t decodes_pending_ = 0;  ///< pool tasks not yet finished
    Status error_;                ///< first unrecoverable failure
};

}  // namespace presto

#endif  // PRESTO_IO_ASYNC_READER_H_
