#include "tabular/minibatch.h"

#include <numeric>

namespace presto {

size_t
MiniBatch::byteSize() const
{
    size_t bytes = dense.size() * sizeof(float) +
                   labels.size() * sizeof(float);
    for (const auto& j : sparse) {
        bytes += j.values.size() * sizeof(int64_t) +
                 j.lengths.size() * sizeof(uint32_t);
    }
    return bytes;
}

size_t
MiniBatch::totalSparseValues() const
{
    size_t total = 0;
    for (const auto& j : sparse)
        total += j.values.size();
    return total;
}

bool
MiniBatch::consistent() const
{
    if (dense.size() != batch_size * num_dense)
        return false;
    if (!labels.empty() && labels.size() != batch_size)
        return false;
    for (const auto& j : sparse) {
        if (j.lengths.size() != batch_size)
            return false;
        const uint64_t sum = std::accumulate(j.lengths.begin(),
                                             j.lengths.end(), uint64_t{0});
        if (sum != j.values.size())
            return false;
    }
    return true;
}

}  // namespace presto
