/**
 * @file
 * Column containers for tabular feature data.
 *
 * DenseColumn stores one float per row. SparseColumn stores a jagged array
 * of int64 ids in CSR form (values + row offsets), matching the
 * variable-length sparse features of RecSys datasets.
 */
#ifndef PRESTO_TABULAR_COLUMN_H_
#define PRESTO_TABULAR_COLUMN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace presto {

/** Dense float column; one value per row. */
class DenseColumn
{
  public:
    DenseColumn() = default;
    explicit DenseColumn(std::vector<float> values)
        : values_(std::move(values))
    {}

    size_t numRows() const { return values_.size(); }

    float
    value(size_t row) const
    {
        PRESTO_CHECK(row < values_.size(), "row out of range");
        return values_[row];
    }

    std::span<const float> values() const { return values_; }
    std::vector<float>& mutableValues() { return values_; }

    void append(float v) { values_.push_back(v); }

    /** Total bytes the payload occupies in memory. */
    size_t byteSize() const { return values_.size() * sizeof(float); }

    /** Bitwise equality: NaN payloads (missing values) compare equal. */
    bool operator==(const DenseColumn& other) const;

  private:
    std::vector<float> values_;
};

/**
 * Sparse id-list column in CSR layout.
 *
 * offsets_ has numRows()+1 entries; row r's ids are
 * values_[offsets_[r] .. offsets_[r+1]).
 */
class SparseColumn
{
  public:
    SparseColumn() { offsets_.push_back(0); }

    /** Construct from CSR arrays; validates monotonic offsets. */
    SparseColumn(std::vector<int64_t> values, std::vector<uint32_t> offsets);

    size_t numRows() const { return offsets_.size() - 1; }
    size_t numValues() const { return values_.size(); }

    /** Ids of one row. */
    std::span<const int64_t>
    row(size_t r) const
    {
        PRESTO_CHECK(r + 1 < offsets_.size(), "row out of range");
        return {values_.data() + offsets_[r],
                values_.data() + offsets_[r + 1]};
    }

    size_t
    rowLength(size_t r) const
    {
        PRESTO_CHECK(r + 1 < offsets_.size(), "row out of range");
        return offsets_[r + 1] - offsets_[r];
    }

    std::span<const int64_t> values() const { return values_; }
    std::span<const uint32_t> offsets() const { return offsets_; }
    std::vector<int64_t>& mutableValues() { return values_; }

    /**
     * Direct access to the CSR offsets for buffer-reusing decoders.
     * Callers must restore the invariant (monotone, starts at 0, last
     * entry == values size) before the column is read again.
     */
    std::vector<uint32_t>& mutableOffsets() { return offsets_; }

    /** Append one row of ids. */
    void appendRow(std::span<const int64_t> ids);

    /** Average ids per row (0 for empty columns). */
    double averageLength() const;

    /** Total bytes the payload occupies in memory. */
    size_t
    byteSize() const
    {
        return values_.size() * sizeof(int64_t) +
               offsets_.size() * sizeof(uint32_t);
    }

    bool
    operator==(const SparseColumn& other) const
    {
        return values_ == other.values_ && offsets_ == other.offsets_;
    }

  private:
    std::vector<int64_t> values_;
    std::vector<uint32_t> offsets_;
};

}  // namespace presto

#endif  // PRESTO_TABULAR_COLUMN_H_
