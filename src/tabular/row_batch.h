/**
 * @file
 * RowBatch: a horizontal slice of a table (all features for a contiguous
 * group of rows). One RowBatch corresponds to one mini-batch partition in
 * the paper's data layout (Figure 1).
 */
#ifndef PRESTO_TABULAR_ROW_BATCH_H_
#define PRESTO_TABULAR_ROW_BATCH_H_

#include <variant>
#include <vector>

#include "tabular/column.h"
#include "tabular/schema.h"

namespace presto {

/** A column is either dense (incl. labels) or sparse. */
using ColumnData = std::variant<DenseColumn, SparseColumn>;

/**
 * Columnar batch of rows sharing one schema.
 *
 * All columns have the same row count. Dense and label features map to
 * DenseColumn; sparse features map to SparseColumn.
 */
class RowBatch
{
  public:
    RowBatch() = default;
    explicit RowBatch(Schema schema) : schema_(std::move(schema)) {}

    const Schema& schema() const { return schema_; }
    size_t numRows() const { return num_rows_; }
    size_t numColumns() const { return columns_.size(); }

    /** Append the column for the next feature in schema order. */
    void addColumn(ColumnData column);

    const ColumnData& column(size_t idx) const;

    /** Typed accessors; panic if the column has the other kind. */
    const DenseColumn& dense(size_t idx) const;
    const SparseColumn& sparse(size_t idx) const;
    DenseColumn& mutableDense(size_t idx);
    SparseColumn& mutableSparse(size_t idx);

    /** True once every schema feature has its column. */
    bool
    complete() const
    {
        return columns_.size() == schema_.numFeatures();
    }

    /**
     * Re-derive and validate num_rows after columns were refilled in
     * place through the mutable accessors (buffer-reusing decoders).
     * Panics if columns disagree on the row count.
     */
    void resetRowCountFromColumns();

    /** Total in-memory payload bytes across all columns. */
    size_t byteSize() const;

    /** Total number of scalar values (dense values + sparse ids). */
    size_t totalValues() const;

    bool operator==(const RowBatch& other) const;

  private:
    Schema schema_;
    std::vector<ColumnData> columns_;
    size_t num_rows_ = 0;
};

}  // namespace presto

#endif  // PRESTO_TABULAR_ROW_BATCH_H_
