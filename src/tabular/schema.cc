#include "tabular/schema.h"

#include "common/logging.h"

namespace presto {

const char*
featureKindName(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::kDense:  return "dense";
      case FeatureKind::kSparse: return "sparse";
      case FeatureKind::kLabel:  return "label";
    }
    return "?";
}

Schema::Schema(std::vector<FeatureSpec> features)
{
    for (auto& f : features)
        add(std::move(f));
}

void
Schema::add(FeatureSpec spec)
{
    PRESTO_CHECK(!indexOf(spec.name).has_value(),
                 "duplicate feature name: ", spec.name);
    switch (spec.kind) {
      case FeatureKind::kDense:  ++num_dense_; break;
      case FeatureKind::kSparse: ++num_sparse_; break;
      case FeatureKind::kLabel:  ++num_labels_; break;
    }
    kind_indices_[static_cast<size_t>(spec.kind)].push_back(
        features_.size());
    // FNV-1a over (kind, name bytes, terminator); the terminator keeps
    // ("ab","c") and ("a","bc") sequences distinct.
    auto fold = [this](uint8_t byte) {
        fingerprint_ = (fingerprint_ ^ byte) * 0x100000001b3ULL;
    };
    fold(static_cast<uint8_t>(spec.kind));
    for (const char ch : spec.name)
        fold(static_cast<uint8_t>(ch));
    fold(0xff);
    features_.push_back(std::move(spec));
}

const FeatureSpec&
Schema::feature(size_t idx) const
{
    PRESTO_CHECK(idx < features_.size(), "feature index out of range");
    return features_[idx];
}

std::optional<size_t>
Schema::indexOf(const std::string& name) const
{
    for (size_t i = 0; i < features_.size(); ++i) {
        if (features_[i].name == name)
            return i;
    }
    return std::nullopt;
}

const std::vector<size_t>&
Schema::indicesOfKind(FeatureKind kind) const
{
    return kind_indices_[static_cast<size_t>(kind)];
}

bool
Schema::operator==(const Schema& other) const
{
    return features_ == other.features_;
}

Schema
Schema::makeRecSys(size_t num_dense, size_t num_sparse, bool with_label)
{
    Schema schema;
    if (with_label)
        schema.add({"label", FeatureKind::kLabel});
    for (size_t i = 0; i < num_dense; ++i)
        schema.add({"dense_" + std::to_string(i), FeatureKind::kDense});
    for (size_t i = 0; i < num_sparse; ++i)
        schema.add({"sparse_" + std::to_string(i), FeatureKind::kSparse});
    return schema;
}

}  // namespace presto
