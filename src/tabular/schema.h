/**
 * @file
 * Feature schema for tabular RecSys data.
 *
 * Each row of a table is a user interaction record; each column is a
 * feature. Dense features hold one continuous value per row; sparse
 * features hold a variable-length list of categorical ids per row
 * (Section II-B of the paper).
 */
#ifndef PRESTO_TABULAR_SCHEMA_H_
#define PRESTO_TABULAR_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace presto {

/** Kind of a feature column. */
enum class FeatureKind : uint8_t {
    kDense = 0,   ///< one float per row (e.g. view timestamp)
    kSparse = 1,  ///< variable-length list of int64 ids per row
    kLabel = 2,   ///< binary click label (one float per row)
};

/** Human-readable name of a FeatureKind. */
const char* featureKindName(FeatureKind kind);

/** Static description of one feature column. */
struct FeatureSpec {
    std::string name;
    FeatureKind kind = FeatureKind::kDense;

    bool
    operator==(const FeatureSpec& other) const
    {
        return name == other.name && kind == other.kind;
    }
};

/**
 * Ordered collection of feature specs with name lookup.
 */
class Schema
{
  public:
    Schema() = default;
    explicit Schema(std::vector<FeatureSpec> features);

    /** Append a feature; panics on duplicate names. */
    void add(FeatureSpec spec);

    size_t numFeatures() const { return features_.size(); }
    size_t numDense() const { return num_dense_; }
    size_t numSparse() const { return num_sparse_; }
    size_t numLabels() const { return num_labels_; }

    const FeatureSpec& feature(size_t idx) const;
    const std::vector<FeatureSpec>& features() const { return features_; }

    /** Index of a feature by name, or nullopt. */
    std::optional<size_t> indexOf(const std::string& name) const;

    /**
     * Order-sensitive 64-bit digest of the feature list (names + kinds),
     * maintained incrementally by add(). Lets per-batch schema checks be
     * O(1) instead of comparing every feature spec; equal schemas always
     * have equal fingerprints (callers fall back to operator== only to
     * diagnose a mismatch).
     */
    uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Indices of all features of a given kind, in schema order.
     * Maintained incrementally by add(), so the hot path can call this
     * per batch without allocating.
     */
    const std::vector<size_t>& indicesOfKind(FeatureKind kind) const;

    bool operator==(const Schema& other) const;

    /**
     * Build a conventional RecSys schema: `label`, dense features
     * `dense_0..`, sparse features `sparse_0..`.
     */
    static Schema makeRecSys(size_t num_dense, size_t num_sparse,
                             bool with_label = true);

  private:
    std::vector<FeatureSpec> features_;
    std::vector<size_t> kind_indices_[3];  ///< per-FeatureKind positions
    size_t num_dense_ = 0;
    size_t num_sparse_ = 0;
    size_t num_labels_ = 0;
    uint64_t fingerprint_ = 0xcbf29ce484222325ULL;  ///< FNV-1a state
};

}  // namespace presto

#endif  // PRESTO_TABULAR_SCHEMA_H_
