#include "tabular/column.h"

#include <cstring>

namespace presto {

bool
DenseColumn::operator==(const DenseColumn& other) const
{
    if (values_.size() != other.values_.size())
        return false;
    if (values_.empty())
        return true;
    // Bitwise comparison so NaN entries (missing values) compare equal.
    return std::memcmp(values_.data(), other.values_.data(),
                       values_.size() * sizeof(float)) == 0;
}

SparseColumn::SparseColumn(std::vector<int64_t> values,
                           std::vector<uint32_t> offsets)
    : values_(std::move(values)), offsets_(std::move(offsets))
{
    PRESTO_CHECK(!offsets_.empty(), "offsets must have at least one entry");
    PRESTO_CHECK(offsets_.front() == 0, "offsets must start at 0");
    PRESTO_CHECK(offsets_.back() == values_.size(),
                 "last offset must equal the value count");
    for (size_t i = 1; i < offsets_.size(); ++i) {
        PRESTO_CHECK(offsets_[i] >= offsets_[i - 1],
                     "offsets must be non-decreasing");
    }
}

void
SparseColumn::appendRow(std::span<const int64_t> ids)
{
    values_.insert(values_.end(), ids.begin(), ids.end());
    offsets_.push_back(static_cast<uint32_t>(values_.size()));
}

double
SparseColumn::averageLength() const
{
    const size_t rows = numRows();
    if (rows == 0)
        return 0.0;
    return static_cast<double>(values_.size()) / static_cast<double>(rows);
}

}  // namespace presto
