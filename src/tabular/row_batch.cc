#include "tabular/row_batch.h"

namespace presto {

void
RowBatch::addColumn(ColumnData column)
{
    PRESTO_CHECK(columns_.size() < schema_.numFeatures(),
                 "more columns than schema features");
    const auto& spec = schema_.feature(columns_.size());
    const bool is_sparse = std::holds_alternative<SparseColumn>(column);
    PRESTO_CHECK(is_sparse == (spec.kind == FeatureKind::kSparse),
                 "column kind mismatch for feature ", spec.name);

    const size_t rows = is_sparse
                            ? std::get<SparseColumn>(column).numRows()
                            : std::get<DenseColumn>(column).numRows();
    if (columns_.empty()) {
        num_rows_ = rows;
    } else {
        PRESTO_CHECK(rows == num_rows_, "column row-count mismatch: got ",
                     rows, ", expected ", num_rows_);
    }
    columns_.push_back(std::move(column));
}

const ColumnData&
RowBatch::column(size_t idx) const
{
    PRESTO_CHECK(idx < columns_.size(), "column index out of range");
    return columns_[idx];
}

const DenseColumn&
RowBatch::dense(size_t idx) const
{
    const auto& col = column(idx);
    PRESTO_CHECK(std::holds_alternative<DenseColumn>(col),
                 "column ", idx, " is not dense");
    return std::get<DenseColumn>(col);
}

const SparseColumn&
RowBatch::sparse(size_t idx) const
{
    const auto& col = column(idx);
    PRESTO_CHECK(std::holds_alternative<SparseColumn>(col),
                 "column ", idx, " is not sparse");
    return std::get<SparseColumn>(col);
}

DenseColumn&
RowBatch::mutableDense(size_t idx)
{
    PRESTO_CHECK(idx < columns_.size(), "column index out of range");
    PRESTO_CHECK(std::holds_alternative<DenseColumn>(columns_[idx]),
                 "column ", idx, " is not dense");
    return std::get<DenseColumn>(columns_[idx]);
}

SparseColumn&
RowBatch::mutableSparse(size_t idx)
{
    PRESTO_CHECK(idx < columns_.size(), "column index out of range");
    PRESTO_CHECK(std::holds_alternative<SparseColumn>(columns_[idx]),
                 "column ", idx, " is not sparse");
    return std::get<SparseColumn>(columns_[idx]);
}

void
RowBatch::resetRowCountFromColumns()
{
    num_rows_ = 0;
    for (size_t c = 0; c < columns_.size(); ++c) {
        const auto& col = columns_[c];
        const size_t rows =
            std::holds_alternative<SparseColumn>(col)
                ? std::get<SparseColumn>(col).numRows()
                : std::get<DenseColumn>(col).numRows();
        if (c == 0) {
            num_rows_ = rows;
        } else {
            PRESTO_CHECK(rows == num_rows_,
                         "column row-count mismatch after in-place refill: "
                         "got ",
                         rows, ", expected ", num_rows_);
        }
    }
}

size_t
RowBatch::byteSize() const
{
    size_t total = 0;
    for (const auto& col : columns_) {
        if (std::holds_alternative<DenseColumn>(col))
            total += std::get<DenseColumn>(col).byteSize();
        else
            total += std::get<SparseColumn>(col).byteSize();
    }
    return total;
}

size_t
RowBatch::totalValues() const
{
    size_t total = 0;
    for (const auto& col : columns_) {
        if (std::holds_alternative<DenseColumn>(col))
            total += std::get<DenseColumn>(col).numRows();
        else
            total += std::get<SparseColumn>(col).numValues();
    }
    return total;
}

bool
RowBatch::operator==(const RowBatch& other) const
{
    return schema_ == other.schema_ && columns_ == other.columns_;
}

}  // namespace presto
