/**
 * @file
 * MiniBatch: the train-ready tensor bundle produced by preprocessing and
 * consumed by the GPU training stage (step 3 in Figure 1).
 *
 * Layout mirrors TorchRec's input: a dense feature matrix, per-table sparse
 * embedding indices in jagged (values + lengths) form, and labels.
 */
#ifndef PRESTO_TABULAR_MINIBATCH_H_
#define PRESTO_TABULAR_MINIBATCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace presto {

/** Jagged embedding-index tensor for one sparse feature / embedding table. */
struct JaggedIndices {
    std::string feature_name;
    std::vector<int64_t> values;    ///< embedding indices, row-major
    std::vector<uint32_t> lengths;  ///< ids per row; sums to values.size()
};

/**
 * Train-ready tensors for one training step.
 */
struct MiniBatch {
    size_t batch_size = 0;
    size_t num_dense = 0;

    /** Row-major [batch_size x num_dense] normalized dense features. */
    std::vector<float> dense;

    /** One entry per embedding table (original + generated sparse feats). */
    std::vector<JaggedIndices> sparse;

    /** [batch_size] binary click labels. */
    std::vector<float> labels;

    /** Total payload bytes (what gets shipped to GPU memory). */
    size_t byteSize() const;

    /** Total number of sparse embedding indices across all tables. */
    size_t totalSparseValues() const;

    /**
     * Validate structural invariants: tensor extents match batch_size and
     * each jagged tensor's lengths sum to its value count.
     * @return true when consistent.
     */
    bool consistent() const;
};

}  // namespace presto

#endif  // PRESTO_TABULAR_MINIBATCH_H_
