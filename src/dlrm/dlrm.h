/**
 * @file
 * Reference DLRM trainer: bottom MLP over dense features, sum-pooled
 * embedding bags over every sparse table, pairwise-dot interaction,
 * top MLP to a click logit, BCE loss, SGD — the model-training stage of
 * Figure 1 consuming the MiniBatch tensors the preprocessing stage
 * produces.
 */
#ifndef PRESTO_DLRM_DLRM_H_
#define PRESTO_DLRM_DLRM_H_

#include <cstdint>
#include <vector>

#include "datagen/rm_config.h"
#include "dlrm/layers.h"
#include "tabular/minibatch.h"

namespace presto {

/** Model hyperparameters (a scaled-down Table I architecture). */
struct DlrmParams {
    size_t num_dense = 13;
    size_t num_tables = 39;
    size_t embedding_rows = 1000;
    size_t embedding_dim = 16;
    std::vector<size_t> bottom_mlp = {64, 32, 16};  ///< ends at dim
    std::vector<size_t> top_mlp = {64, 32, 1};      ///< ends at 1 logit
    float learning_rate = 0.05f;
    uint64_t seed = 0xd1a0;

    /**
     * Derive a trainable (shrunk) architecture from a Table I workload:
     * same feature/table structure, small embedding dim and tables so it
     * runs on one host.
     */
    static DlrmParams fromRmConfig(const RmConfig& config,
                                   size_t embedding_dim = 16,
                                   size_t embedding_rows = 1000);
};

/** DLRM model + SGD trainer. */
class DlrmModel
{
  public:
    explicit DlrmModel(DlrmParams params);

    /**
     * Forward pass: click logits [batch x 1].
     * @param mb Must have num_dense dense features and num_tables sparse
     *        tensors with indices < embedding_rows.
     */
    Matrix forward(const MiniBatch& mb);

    /**
     * One training step (forward + backward + SGD).
     * @return mean BCE loss of the batch before the update.
     */
    float trainStep(const MiniBatch& mb);

    /** Mean BCE loss without updating parameters. */
    float evaluate(const MiniBatch& mb);

    const DlrmParams& params() const { return params_; }

    /** Number of trainable parameters. */
    size_t parameterCount() const;

  private:
    /** Re-range indices into [0, embedding_rows) for shrunk tables. */
    static JaggedIndices clampIndices(const JaggedIndices& in,
                                      size_t rows);

    DlrmParams params_;
    Mlp bottom_;
    std::vector<EmbeddingBag> tables_;
    InteractionLayer interaction_;
    Mlp top_;
};

}  // namespace presto

#endif  // PRESTO_DLRM_DLRM_H_
