#include "dlrm/dlrm.h"

namespace presto {

namespace {

Rng
makeRng(uint64_t seed)
{
    return Rng(seed);
}

}  // namespace

DlrmParams
DlrmParams::fromRmConfig(const RmConfig& config, size_t embedding_dim,
                         size_t embedding_rows)
{
    DlrmParams p;
    p.num_dense = config.num_dense;
    p.num_tables = config.totalSparseFeatures();
    p.embedding_rows = embedding_rows;
    p.embedding_dim = embedding_dim;
    p.bottom_mlp = {64, 32, embedding_dim};
    p.top_mlp = {64, 32, 1};
    return p;
}

DlrmModel::DlrmModel(DlrmParams params)
    : params_(std::move(params)),
      bottom_([&] {
          PRESTO_CHECK(params_.bottom_mlp.back() == params_.embedding_dim,
                       "bottom MLP must end at the embedding dim");
          Rng rng = makeRng(params_.seed);
          return Mlp(params_.num_dense, params_.bottom_mlp,
                     /*final_relu=*/true, rng);
      }()),
      interaction_(params_.num_tables + 1, params_.embedding_dim),
      top_([&] {
          PRESTO_CHECK(params_.top_mlp.back() == 1,
                       "top MLP must end at one logit");
          Rng rng = makeRng(mix64(params_.seed + 1));
          return Mlp(interaction_.outputWidth(), params_.top_mlp,
                     /*final_relu=*/false, rng);
      }())
{
    Rng rng = makeRng(mix64(params_.seed + 2));
    tables_.reserve(params_.num_tables);
    for (size_t t = 0; t < params_.num_tables; ++t) {
        tables_.emplace_back(params_.embedding_rows, params_.embedding_dim,
                             rng);
    }
}

JaggedIndices
DlrmModel::clampIndices(const JaggedIndices& in, size_t rows)
{
    JaggedIndices out;
    out.feature_name = in.feature_name;
    out.lengths = in.lengths;
    out.values.reserve(in.values.size());
    for (int64_t v : in.values) {
        out.values.push_back(
            static_cast<int64_t>(static_cast<uint64_t>(v) % rows));
    }
    return out;
}

Matrix
DlrmModel::forward(const MiniBatch& mb)
{
    PRESTO_CHECK(mb.num_dense == params_.num_dense,
                 "dense feature count mismatch");
    PRESTO_CHECK(mb.sparse.size() == params_.num_tables,
                 "table count mismatch");

    // Dense path.
    Matrix dense(mb.batch_size, mb.num_dense);
    dense.data() = mb.dense;
    const Matrix& bottom_out = bottom_.forward(dense);

    // Sparse path.
    std::vector<const Matrix*> vectors;
    vectors.reserve(params_.num_tables + 1);
    vectors.push_back(&bottom_out);
    for (size_t t = 0; t < params_.num_tables; ++t) {
        const JaggedIndices clamped =
            clampIndices(mb.sparse[t], params_.embedding_rows);
        vectors.push_back(&tables_[t].forward(clamped));
    }

    const Matrix& interacted = interaction_.forward(vectors);
    return top_.forward(interacted);
}

float
DlrmModel::trainStep(const MiniBatch& mb)
{
    const Matrix logits = forward(mb);

    Matrix grad_logits;
    const float loss = bceWithLogits(logits, mb.labels, grad_logits);

    // Backward through the top MLP and the interaction.
    const Matrix grad_interacted = top_.backward(grad_logits);
    std::vector<Matrix> grad_vectors =
        interaction_.backward(grad_interacted);

    // Dense path backward.
    (void)bottom_.backward(grad_vectors[0]);

    // Updates.
    top_.step(params_.learning_rate);
    bottom_.step(params_.learning_rate);
    for (size_t t = 0; t < params_.num_tables; ++t) {
        tables_[t].backwardAndStep(grad_vectors[t + 1],
                                   params_.learning_rate);
    }
    return loss;
}

float
DlrmModel::evaluate(const MiniBatch& mb)
{
    const Matrix logits = forward(mb);
    Matrix grad_unused;
    return bceWithLogits(logits, mb.labels, grad_unused);
}

size_t
DlrmModel::parameterCount() const
{
    size_t count = params_.num_tables * params_.embedding_rows *
                   params_.embedding_dim;
    size_t in = params_.num_dense;
    for (size_t w : params_.bottom_mlp) {
        count += in * w + w;
        in = w;
    }
    in = interaction_.outputWidth();
    for (size_t w : params_.top_mlp) {
        count += in * w + w;
        in = w;
    }
    return count;
}

}  // namespace presto
