/**
 * @file
 * Minimal dense-tensor helpers for the DLRM reference trainer: a
 * row-major float matrix plus the handful of kernels DLRM needs
 * (GEMM, bias, ReLU). Written for clarity, not peak FLOPs — the
 * performance of training is modeled by models/gpu_model; this code
 * exists so the end-to-end pipeline can *really* train.
 */
#ifndef PRESTO_DLRM_TENSOR_H_
#define PRESTO_DLRM_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace presto {

/** Row-major [rows x cols] float matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    float&
    at(size_t r, size_t c)
    {
        PRESTO_CHECK(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    float
    at(size_t r, size_t c) const
    {
        PRESTO_CHECK(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    float* row(size_t r) { return data_.data() + r * cols_; }
    const float* row(size_t r) const { return data_.data() + r * cols_; }

    std::vector<float>& data() { return data_; }
    const std::vector<float>& data() const { return data_; }

    /** Fill with scaled uniform noise (He-style init). */
    void randomize(Rng& rng, float scale);

    void
    zero()
    {
        std::fill(data_.begin(), data_.end(), 0.0f);
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/** out = a[m x k] * b[k x n]. */
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/** out = a[m x k] * b^T where b is [n x k]. */
void matmulBT(const Matrix& a, const Matrix& b, Matrix& out);

/** out = a^T[k x m] * b[m(k?) x n] with a as [m x k]: out[k x n]. */
void matmulAT(const Matrix& a, const Matrix& b, Matrix& out);

/** Add a row vector of biases to every row in place. */
void addBiasRows(Matrix& m, const std::vector<float>& bias);

/** In-place ReLU; returns nothing (mask recoverable from output). */
void reluInPlace(Matrix& m);

/** Zero gradient entries where the activation was clipped (out <= 0). */
void reluBackward(const Matrix& activated, Matrix& grad);

/** SGD step: w -= lr * g, element-wise. */
void sgdStep(Matrix& w, const Matrix& g, float lr);

}  // namespace presto

#endif  // PRESTO_DLRM_TENSOR_H_
