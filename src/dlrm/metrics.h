/**
 * @file
 * Evaluation metrics for click prediction: ROC-AUC (the standard RecSys
 * offline metric) and prediction accuracy.
 */
#ifndef PRESTO_DLRM_METRICS_H_
#define PRESTO_DLRM_METRICS_H_

#include <span>

namespace presto {

/**
 * Area under the ROC curve via the rank-sum (Mann-Whitney) estimator,
 * with ties handled by midranks.
 *
 * @param scores Model scores or logits (any monotone transform works).
 * @param labels Binary labels (0/1), same length.
 * @return AUC in [0, 1]; 0.5 when either class is absent.
 */
double rocAuc(std::span<const float> scores, std::span<const float> labels);

/** Fraction of correct predictions at a 0.5 probability threshold
 *  (logit threshold 0). */
double accuracyAtZeroLogit(std::span<const float> logits,
                           std::span<const float> labels);

}  // namespace presto

#endif  // PRESTO_DLRM_METRICS_H_
