#include "dlrm/tensor.h"

namespace presto {

void
Matrix::randomize(Rng& rng, float scale)
{
    for (auto& v : data_)
        v = static_cast<float>(rng.uniform(-1.0, 1.0)) * scale;
}

void
matmul(const Matrix& a, const Matrix& b, Matrix& out)
{
    PRESTO_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
    out = Matrix(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            const float av = arow[k];
            if (av == 0.0f)
                continue;
            const float* brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
matmulBT(const Matrix& a, const Matrix& b, Matrix& out)
{
    PRESTO_CHECK(a.cols() == b.cols(), "matmulBT shape mismatch");
    out = Matrix(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float* arow = a.row(i);
        for (size_t j = 0; j < b.rows(); ++j) {
            const float* brow = b.row(j);
            float acc = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += arow[k] * brow[k];
            out.at(i, j) = acc;
        }
    }
}

void
matmulAT(const Matrix& a, const Matrix& b, Matrix& out)
{
    PRESTO_CHECK(a.rows() == b.rows(), "matmulAT shape mismatch");
    out = Matrix(a.cols(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float* arow = a.row(i);
        const float* brow = b.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            const float av = arow[k];
            if (av == 0.0f)
                continue;
            float* orow = out.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
addBiasRows(Matrix& m, const std::vector<float>& bias)
{
    PRESTO_CHECK(bias.size() == m.cols(), "bias width mismatch");
    for (size_t r = 0; r < m.rows(); ++r) {
        float* row = m.row(r);
        for (size_t c = 0; c < m.cols(); ++c)
            row[c] += bias[c];
    }
}

void
reluInPlace(Matrix& m)
{
    for (auto& v : m.data()) {
        if (v < 0.0f)
            v = 0.0f;
    }
}

void
reluBackward(const Matrix& activated, Matrix& grad)
{
    PRESTO_CHECK(activated.rows() == grad.rows() &&
                     activated.cols() == grad.cols(),
                 "relu backward shape mismatch");
    for (size_t i = 0; i < grad.data().size(); ++i) {
        if (activated.data()[i] <= 0.0f)
            grad.data()[i] = 0.0f;
    }
}

void
sgdStep(Matrix& w, const Matrix& g, float lr)
{
    PRESTO_CHECK(w.rows() == g.rows() && w.cols() == g.cols(),
                 "sgd shape mismatch");
    for (size_t i = 0; i < w.data().size(); ++i)
        w.data()[i] -= lr * g.data()[i];
}

}  // namespace presto
