#include "dlrm/metrics.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace presto {

double
rocAuc(std::span<const float> scores, std::span<const float> labels)
{
    PRESTO_CHECK(scores.size() == labels.size(),
                 "scores/labels length mismatch");
    const size_t n = scores.size();

    // Sort indices by score; assign midranks to tie groups.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] < scores[b];
    });

    double positive_rank_sum = 0;
    size_t positives = 0;
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j < n && scores[order[j]] == scores[order[i]])
            ++j;
        // Midrank of the tie group [i, j), 1-based ranks.
        const double midrank = (static_cast<double>(i) +
                                static_cast<double>(j) + 1.0) / 2.0;
        for (size_t k = i; k < j; ++k) {
            if (labels[order[k]] > 0.5f) {
                positive_rank_sum += midrank;
                ++positives;
            }
        }
        i = j;
    }

    const size_t negatives = n - positives;
    if (positives == 0 || negatives == 0)
        return 0.5;
    const double p = static_cast<double>(positives);
    const double u = positive_rank_sum - p * (p + 1.0) / 2.0;
    return u / (p * static_cast<double>(negatives));
}

double
accuracyAtZeroLogit(std::span<const float> logits,
                    std::span<const float> labels)
{
    PRESTO_CHECK(logits.size() == labels.size(),
                 "logits/labels length mismatch");
    if (logits.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < logits.size(); ++i) {
        const bool predicted = logits[i] > 0.0f;
        const bool actual = labels[i] > 0.5f;
        correct += (predicted == actual);
    }
    return static_cast<double>(correct) / static_cast<double>(logits.size());
}

}  // namespace presto
