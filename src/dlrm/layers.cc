#include "dlrm/layers.h"

#include <cmath>

namespace presto {

// --- LinearLayer ------------------------------------------------------------

LinearLayer::LinearLayer(size_t in_features, size_t out_features, bool relu,
                         Rng& rng)
    : weights_(out_features, in_features), bias_(out_features, 0.0f),
      relu_(relu)
{
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in_features + out_features));
    weights_.randomize(rng, scale);
}

const Matrix&
LinearLayer::forward(const Matrix& input)
{
    input_ = input;
    matmulBT(input, weights_, output_);  // [batch x out]
    addBiasRows(output_, bias_);
    if (relu_)
        reluInPlace(output_);
    return output_;
}

Matrix
LinearLayer::backward(const Matrix& grad_out)
{
    Matrix grad = grad_out;
    if (relu_)
        reluBackward(output_, grad);

    // dW = grad^T * input  -> [out x in]
    matmulAT(grad, input_, grad_weights_);
    grad_bias_.assign(bias_.size(), 0.0f);
    for (size_t r = 0; r < grad.rows(); ++r) {
        const float* row = grad.row(r);
        for (size_t c = 0; c < grad.cols(); ++c)
            grad_bias_[c] += row[c];
    }

    // dX = grad * W -> [batch x in]
    Matrix grad_in;
    matmul(grad, weights_, grad_in);
    return grad_in;
}

void
LinearLayer::step(float lr)
{
    PRESTO_CHECK(grad_weights_.rows() == weights_.rows(),
                 "step before backward");
    sgdStep(weights_, grad_weights_, lr);
    for (size_t c = 0; c < bias_.size(); ++c)
        bias_[c] -= lr * grad_bias_[c];
}

// --- Mlp ----------------------------------------------------------------------

Mlp::Mlp(size_t input_width, const std::vector<size_t>& layer_widths,
         bool final_relu, Rng& rng)
{
    PRESTO_CHECK(!layer_widths.empty(), "MLP needs at least one layer");
    size_t in = input_width;
    for (size_t i = 0; i < layer_widths.size(); ++i) {
        const bool relu = final_relu || i + 1 < layer_widths.size();
        layers_.emplace_back(in, layer_widths[i], relu, rng);
        in = layer_widths[i];
    }
}

const Matrix&
Mlp::forward(const Matrix& input)
{
    const Matrix* x = &input;
    for (auto& layer : layers_)
        x = &layer.forward(*x);
    return *x;
}

Matrix
Mlp::backward(const Matrix& grad_out)
{
    Matrix grad = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = it->backward(grad);
    return grad;
}

void
Mlp::step(float lr)
{
    for (auto& layer : layers_)
        layer.step(lr);
}

size_t
Mlp::outputWidth() const
{
    return layers_.back().outFeatures();
}

// --- EmbeddingBag ----------------------------------------------------------------

EmbeddingBag::EmbeddingBag(size_t num_embeddings, size_t dim, Rng& rng)
    : table_(num_embeddings, dim)
{
    table_.randomize(rng, 1.0f / std::sqrt(static_cast<float>(dim)));
}

const Matrix&
EmbeddingBag::forward(const JaggedIndices& indices)
{
    last_indices_ = indices;
    has_forward_ = true;
    const size_t batch = indices.lengths.size();
    pooled_ = Matrix(batch, table_.cols());
    size_t cursor = 0;
    for (size_t r = 0; r < batch; ++r) {
        float* out = pooled_.row(r);
        for (uint32_t k = 0; k < indices.lengths[r]; ++k) {
            const auto id = static_cast<size_t>(indices.values[cursor++]);
            PRESTO_CHECK(id < table_.rows(), "embedding index out of range");
            const float* row = table_.row(id);
            for (size_t c = 0; c < table_.cols(); ++c)
                out[c] += row[c];
        }
    }
    return pooled_;
}

void
EmbeddingBag::backwardAndStep(const Matrix& grad_pooled, float lr)
{
    PRESTO_CHECK(has_forward_, "backward before forward");
    PRESTO_CHECK(grad_pooled.rows() == last_indices_.lengths.size(),
                 "embedding grad batch mismatch");
    // Sparse SGD: each gathered row receives the pooled gradient.
    size_t cursor = 0;
    for (size_t r = 0; r < grad_pooled.rows(); ++r) {
        const float* grad = grad_pooled.row(r);
        for (uint32_t k = 0; k < last_indices_.lengths[r]; ++k) {
            const auto id =
                static_cast<size_t>(last_indices_.values[cursor++]);
            float* row = table_.row(id);
            for (size_t c = 0; c < table_.cols(); ++c)
                row[c] -= lr * grad[c];
        }
    }
}

// --- InteractionLayer ---------------------------------------------------------------

InteractionLayer::InteractionLayer(size_t num_vectors, size_t dim)
    : num_vectors_(num_vectors), dim_(dim)
{
    PRESTO_CHECK(num_vectors_ >= 2, "interaction needs >= 2 vectors");
}

const Matrix&
InteractionLayer::forward(const std::vector<const Matrix*>& vectors)
{
    PRESTO_CHECK(vectors.size() == num_vectors_, "vector count mismatch");
    const size_t batch = vectors[0]->rows();
    for (const auto* v : vectors) {
        PRESTO_CHECK(v->rows() == batch && v->cols() == dim_,
                     "interaction input shape mismatch");
    }
    last_vectors_ = vectors;

    output_ = Matrix(batch, outputWidth());
    for (size_t r = 0; r < batch; ++r) {
        float* out = output_.row(r);
        // Dense passthrough.
        const float* dense = vectors[0]->row(r);
        for (size_t c = 0; c < dim_; ++c)
            out[c] = dense[c];
        // Pairwise dots, i < j.
        size_t slot = dim_;
        for (size_t i = 0; i < num_vectors_; ++i) {
            const float* vi = vectors[i]->row(r);
            for (size_t j = i + 1; j < num_vectors_; ++j) {
                const float* vj = vectors[j]->row(r);
                float acc = 0.0f;
                for (size_t c = 0; c < dim_; ++c)
                    acc += vi[c] * vj[c];
                out[slot++] = acc;
            }
        }
    }
    return output_;
}

std::vector<Matrix>
InteractionLayer::backward(const Matrix& grad_out)
{
    PRESTO_CHECK(!last_vectors_.empty(), "backward before forward");
    const size_t batch = grad_out.rows();
    PRESTO_CHECK(grad_out.cols() == outputWidth(),
                 "interaction grad shape mismatch");

    std::vector<Matrix> grads(num_vectors_, Matrix(batch, dim_));
    for (size_t r = 0; r < batch; ++r) {
        const float* gout = grad_out.row(r);
        // Dense passthrough gradient.
        for (size_t c = 0; c < dim_; ++c)
            grads[0].row(r)[c] += gout[c];
        // d dot(vi, vj)/dvi = vj (and vice versa).
        size_t slot = dim_;
        for (size_t i = 0; i < num_vectors_; ++i) {
            const float* vi = last_vectors_[i]->row(r);
            for (size_t j = i + 1; j < num_vectors_; ++j) {
                const float* vj = last_vectors_[j]->row(r);
                const float g = gout[slot++];
                float* gi = grads[i].row(r);
                float* gj = grads[j].row(r);
                for (size_t c = 0; c < dim_; ++c) {
                    gi[c] += g * vj[c];
                    gj[c] += g * vi[c];
                }
            }
        }
    }
    return grads;
}

// --- loss ---------------------------------------------------------------------------

float
stableSigmoid(float logit)
{
    if (logit >= 0.0f) {
        const float z = std::exp(-logit);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(logit);
    return z / (1.0f + z);
}

float
bceWithLogits(const Matrix& logits, std::span<const float> labels,
              Matrix& grad_logits)
{
    PRESTO_CHECK(logits.cols() == 1, "logits must be [batch x 1]");
    PRESTO_CHECK(logits.rows() == labels.size(),
                 "label count mismatch");
    const auto batch = static_cast<float>(logits.rows());
    grad_logits = Matrix(logits.rows(), 1);
    double loss = 0.0;
    for (size_t r = 0; r < logits.rows(); ++r) {
        const float x = logits.at(r, 0);
        const float y = labels[r];
        // log(1 + exp(-|x|)) formulation for stability.
        loss += std::max(x, 0.0f) - x * y +
                std::log1p(std::exp(-std::fabs(x)));
        grad_logits.at(r, 0) = (stableSigmoid(x) - y) / batch;
    }
    return static_cast<float>(loss / batch);
}

}  // namespace presto
