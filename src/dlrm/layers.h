/**
 * @file
 * DLRM building blocks: fully-connected layers with ReLU, sum-pooled
 * embedding bags, and the pairwise-dot feature-interaction layer — the
 * three computations the paper lists for the training stage (embedding
 * lookups + pooling, batched-GEMM interactions, MLP GEMMs).
 */
#ifndef PRESTO_DLRM_LAYERS_H_
#define PRESTO_DLRM_LAYERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dlrm/tensor.h"
#include "tabular/minibatch.h"

namespace presto {

/** One fully-connected layer: y = relu?(x W^T + b). */
class LinearLayer
{
  public:
    /** @param relu Apply ReLU after the affine map. */
    LinearLayer(size_t in_features, size_t out_features, bool relu,
                Rng& rng);

    /** Forward for a batch; caches activations for backward. */
    const Matrix& forward(const Matrix& input);

    /**
     * Backward: given dL/dy, accumulates weight gradients and returns
     * dL/dx. Must follow a forward() with the same batch.
     */
    Matrix backward(const Matrix& grad_out);

    /** Apply SGD to weights and biases with the cached gradients. */
    void step(float lr);

    size_t inFeatures() const { return weights_.cols(); }
    size_t outFeatures() const { return weights_.rows(); }
    Matrix& weights() { return weights_; }
    std::vector<float>& bias() { return bias_; }

  private:
    Matrix weights_;  ///< [out x in]
    std::vector<float> bias_;
    bool relu_;

    Matrix input_;       ///< cached forward input
    Matrix output_;      ///< cached forward output (post-activation)
    Matrix grad_weights_;
    std::vector<float> grad_bias_;
};

/** Multi-layer perceptron of LinearLayers (ReLU between, none at end). */
class Mlp
{
  public:
    /**
     * @param layer_widths Output width of each layer.
     * @param final_relu Apply ReLU after the last layer too (bottom MLP
     *        does; the top MLP ends in a logit).
     */
    Mlp(size_t input_width, const std::vector<size_t>& layer_widths,
        bool final_relu, Rng& rng);

    const Matrix& forward(const Matrix& input);
    Matrix backward(const Matrix& grad_out);
    void step(float lr);

    size_t outputWidth() const;

  private:
    std::vector<LinearLayer> layers_;
};

/**
 * Sum-pooled embedding table (one per sparse feature).
 *
 * forward() gathers and sum-pools the rows selected by a jagged index
 * tensor; backward() scatter-adds gradients into the touched rows only
 * (sparse update), mirroring real RecSys trainers.
 */
class EmbeddingBag
{
  public:
    EmbeddingBag(size_t num_embeddings, size_t dim, Rng& rng);

    /** Pooled output [batch x dim] for one jagged index tensor. */
    const Matrix& forward(const JaggedIndices& indices);

    /** Scatter-add dL/dpooled into per-row gradients; apply SGD. */
    void backwardAndStep(const Matrix& grad_pooled, float lr);

    size_t numEmbeddings() const { return table_.rows(); }
    size_t dim() const { return table_.cols(); }
    const Matrix& table() const { return table_; }
    Matrix& mutableTable() { return table_; }

  private:
    Matrix table_;  ///< [num_embeddings x dim]
    JaggedIndices last_indices_;  ///< cached for the sparse backward
    bool has_forward_ = false;
    Matrix pooled_;
};

/**
 * DLRM pairwise-dot feature interaction: given the bottom-MLP output and
 * the pooled embedding of each table (all width dim), emits
 * [dense_out, dot(v_i, v_j) for i < j] per row.
 */
class InteractionLayer
{
  public:
    /** @param num_vectors Tables + 1 (the bottom-MLP vector). */
    InteractionLayer(size_t num_vectors, size_t dim);

    size_t
    outputWidth() const
    {
        return dim_ + num_vectors_ * (num_vectors_ - 1) / 2;
    }

    /**
     * @param vectors num_vectors matrices of shape [batch x dim]
     *        (vectors[0] is the dense path).
     */
    const Matrix& forward(const std::vector<const Matrix*>& vectors);

    /**
     * @param grad_out [batch x outputWidth()]
     * @return per-vector gradients, aligned with the forward input.
     */
    std::vector<Matrix> backward(const Matrix& grad_out);

  private:
    size_t num_vectors_;
    size_t dim_;
    std::vector<const Matrix*> last_vectors_;
    Matrix output_;
};

/** Numerically-stable sigmoid. */
float stableSigmoid(float logit);

/**
 * Binary cross-entropy with logits; fills dL/dlogit (mean reduction).
 * @return mean loss over the batch.
 */
float bceWithLogits(const Matrix& logits, std::span<const float> labels,
                    Matrix& grad_logits);

}  // namespace presto

#endif  // PRESTO_DLRM_LAYERS_H_
