/**
 * @file
 * Power, energy, and TCO models (Section V-C):
 *
 *   cost-efficiency = Throughput x Duration / (CapEx + OpEx)
 *   OpEx            = sum(Power x Duration x Electricity)
 *
 * Throughput x Duration is identical across systems that all sustain the
 * GPU's training demand, so relative cost-efficiency reduces to the
 * inverse ratio of (CapEx + OpEx).
 */
#ifndef PRESTO_MODELS_COST_MODEL_H_
#define PRESTO_MODELS_COST_MODEL_H_

namespace presto {

/** A provisioned preprocessing deployment for one training job. */
struct Deployment {
    double capex_dollars = 0;
    double power_watts = 0;
    double duration_sec = 0;

    /** Electricity cost over the deployment duration. */
    double opexDollars(double dollars_per_kwh) const;

    /** CapEx + OpEx at the calibrated electricity price. */
    double totalCostDollars() const;

    /** Energy consumed over the duration, in joules. */
    double
    energyJoules() const
    {
        return power_watts * duration_sec;
    }
};

/** Disagg deployment: @p cores CPU cores (CapEx in whole nodes). */
Deployment makeCpuDeployment(int cores);

/** PreSto deployment: @p units accelerator devices. */
Deployment makeIspDeployment(int units, double watts_per_unit,
                             double dollars_per_unit);

/**
 * Cost-efficiency of @p d for a job of fixed throughput x duration work.
 * Units: (batches over the deployment) per dollar.
 */
double costEfficiency(const Deployment& d, double throughput_batches_per_sec);

/**
 * Energy-efficiency: batches per joule for a job of fixed throughput.
 */
double energyEfficiency(const Deployment& d,
                        double throughput_batches_per_sec);

}  // namespace presto

#endif  // PRESTO_MODELS_COST_MODEL_H_
