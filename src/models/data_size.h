/**
 * @file
 * Analytic byte-size model of one mini-batch partition: encoded columnar
 * bytes on storage (what Extract moves) and train-ready tensor bytes
 * (what Load ships to the GPU).
 */
#ifndef PRESTO_MODELS_DATA_SIZE_H_
#define PRESTO_MODELS_DATA_SIZE_H_

#include "datagen/rm_config.h"

namespace presto {

/** Expected encoded PSF bytes of one raw partition of @p config. */
double rawEncodedBytes(const RmConfig& config);

/** Expected train-ready tensor bytes of one mini-batch of @p config. */
double miniBatchBytes(const RmConfig& config);

}  // namespace presto

#endif  // PRESTO_MODELS_DATA_SIZE_H_
