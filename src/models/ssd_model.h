/**
 * @file
 * NVMe SSD device model: channel-level parallelism and flash page
 * latencies behind the sequential-read bandwidth the rest of the stack
 * consumes (the SmartSSD's P2P path reads the same flash array).
 */
#ifndef PRESTO_MODELS_SSD_MODEL_H_
#define PRESTO_MODELS_SSD_MODEL_H_

#include <cstdint>

namespace presto {

/** Flash-array geometry and timings of one SSD. */
struct SsdParams {
    int channels = 8;
    int dies_per_channel = 4;
    double channel_bytes_per_sec = 500e6;  ///< ONFI-class channel rate
    double page_bytes = 16384;
    double page_read_sec = 60e-6;   ///< tR of a TLC read
    double controller_overhead_sec = 8e-6;  ///< per request (FTL, ECC)

    /** Samsung SmartSSD-class drive. */
    static SsdParams smartSsdClass();
};

/** Analytic SSD read-performance model. */
class SsdModel
{
  public:
    explicit SsdModel(SsdParams params = SsdParams::smartSsdClass());

    /** Peak sequential-read bandwidth (all channels streaming). */
    double sequentialBandwidth() const;

    /**
     * Time to read @p bytes laid out contiguously (partition files are
     * stored contiguously on one device — Section IV-B): page reads
     * pipeline across dies, transfer saturates the channels.
     */
    double sequentialReadSeconds(double bytes) const;

    /**
     * Time to read @p bytes as random @p request_bytes chunks: each
     * request pays a page read + controller overhead, with die-level
     * parallelism across outstanding requests.
     * @param queue_depth Outstanding NVMe commands.
     */
    double randomReadSeconds(double bytes, double request_bytes,
                             int queue_depth = 32) const;

    const SsdParams& params() const { return params_; }

  private:
    SsdParams params_;
};

}  // namespace presto

#endif  // PRESTO_MODELS_SSD_MODEL_H_
