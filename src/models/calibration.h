/**
 * @file
 * Calibration constants for every device/cost model, each tied to a paper
 * statement or a public spec.
 *
 * The PoC hardware (Xeon Gold 6242 nodes, A100, Samsung SmartSSD) is not
 * available here, so — exactly like the paper's own large-scale analytical
 * model (Section V-B) — performance is derived from per-unit throughput
 * constants. The constants below are chosen so the *shapes* the paper
 * reports hold (see DESIGN.md Section 5 for the target bands); they are
 * locked by tests/calibration_test.cc.
 */
#ifndef PRESTO_MODELS_CALIBRATION_H_
#define PRESTO_MODELS_CALIBRATION_H_

#include "common/units.h"

namespace presto::cal {

// =========================================================================
// Baseline CPU preprocessing worker (one disaggregated Xeon core running
// the TorchArrow operator stack).
//
// Anchors: Fig 5 (RM5 = 14x RM1 single-worker latency; feature gen+norm =
// 79% of preprocessing time on average; Extract(Read) small), Fig 4
// (367 cores feed 8 A100s on RM5).
// =========================================================================

/** Seconds per raw value for columnar page decode on a CPU core. */
inline constexpr double kCpuDecodeSecPerValue = 13e-9;

/** Seconds per (value x binary-search level) for Bucketize. The branchy
 *  search through a float boundary array costs ~a branch miss per level
 *  at TorchArrow abstraction overheads. */
inline constexpr double kCpuBucketizeSecPerValueLevel = 40e-9;

/** Seconds per id for SigridHash (hash + modulo + column plumbing). */
inline constexpr double kCpuHashSecPerValue = 55e-9;

/** Seconds per dense value for Log normalization (libm log1p + copies). */
inline constexpr double kCpuLogSecPerValue = 80e-9;

/** Seconds per output scalar for mini-batch conversion (gather into
 *  train-ready tensors). */
inline constexpr double kCpuConvertSecPerValue = 8e-9;

/** Fixed per-batch framework overhead (dataloader dispatch, RPC setup). */
inline constexpr double kCpuFixedSecPerBatch = 3e-3;

/** Per-feature setup cost (column metadata, allocator churn). */
inline constexpr double kCpuSecPerFeature = 10e-6;

// --- Measured decode rates (BENCH_decode.json on the dev host) -----------
//
// bench_decode measures the real columnar decoders in this repo; the
// committed BENCH_decode.json is the provenance for the constants below
// (65536-value pages, best dispatched SIMD level vs the scalar
// reference). They parameterize the "measured decode" variants of the
// Fig 11/12 models so the analytical curves can be re-anchored to this
// host instead of the calibrated Xeon constant.

/** Reference (scalar, TorchArrow-like) varint decode: 7.45e7 values/s
 *  => 13.4 ns/value, which independently corroborates the calibrated
 *  kCpuDecodeSecPerValue = 13 ns anchor above. */
inline constexpr double kMeasuredDecodeRefValuesPerSec = 7.45e7;

/** Vectorized varint decode (the dominant sparse-page encoding):
 *  2.68e8 values/s. */
inline constexpr double kMeasuredDecodeSimdValuesPerSec = 2.68e8;

/** Vectorized dictionary-page decode: 7.43e8 values/s. */
inline constexpr double kMeasuredDictDecodeValuesPerSec = 7.43e8;

/** Vectorized bit-packed decode (incl. the FOR-over-deltas mode):
 *  1.24e9 values/s — ~3.9x the delta-varint reference it replaces for
 *  monotone offset streams. */
inline constexpr double kMeasuredBitPackedValuesPerSec = 1.24e9;

/** Sec/value of the measured scalar reference decoder. */
inline constexpr double kMeasuredCpuDecodeSecPerValue =
    1.0 / kMeasuredDecodeRefValuesPerSec;

/** Sec/value of the measured vectorized decode path. */
inline constexpr double kMeasuredSimdDecodeSecPerValue =
    1.0 / kMeasuredDecodeSimdValuesPerSec;

// --- Measured fused-transform rate (BENCH_fused.json on the dev host) ----
//
// bench_fused measures the compiled op-chain VM (src/ops/opvm.h): the
// whole standard Transform — feature generation, normalization, and
// conversion — executed in one SIMD pass per column. One rate covers the
// pipeline because fusion collapses the per-op costs into a single
// value-granular walk.

/** Fused Transform: output values retired per second on one core
 *  (RM1 end-to-end, best dispatched SIMD level). */
inline constexpr double kMeasuredFusedValuesPerSec = 1.36e8;

/** Sec/output-value of the measured fused Transform path. */
inline constexpr double kMeasuredFusedSecPerValue =
    1.0 / kMeasuredFusedValuesPerSec;

// --- Page compression (PSF LZ codec) -------------------------------------
//
// PSF pages may carry an LZ-compressed payload (src/columnar/compress.h).
// Compression shrinks the Extract(Read)/delivery stage by the stored
// ratio and adds a decompress term to Extract(Decode); the constants
// below parameterize the "compressed PSF" variants of the Fig 11/12
// models. Measured values come from the committed BENCH_decode.json
// (compressed_pages section on this host).

/** Measured LZ decompress rate of the in-repo codec on compressible
 *  plain-i64 pages, in raw (decompressed) output bytes per second. */
inline constexpr double kMeasuredLzDecompressBytesPerSec = 1.4e9;

/** Measured stored/raw ratio of an LZ-compressed RM2 PSF partition
 *  (hashed-id pages stay uncompressed because the writer only keeps
 *  strictly-smaller pages, so the file-level ratio is well above the
 *  per-page ratio of its compressible pages). */
inline constexpr double kMeasuredLzStoredRatio = 0.81;

/** Measured decode rate of the in-repo canonical-Huffman entropy
 *  decoder (columnar/entropy.h) on the skewed pages the writer's
 *  strictly-smallest rule actually entropy-codes, in raw output bytes
 *  per second (BENCH_decode.json entropy_pages, best corpus on this
 *  host; near-incompressible payloads never reach this decoder because
 *  the menu keeps them plain or LZ-only). */
inline constexpr double kMeasuredHuffDecodeBytesPerSec = 1.9e9;

/** Measured stored/raw ratio of an RM1 PSF partition written with the
 *  full per-page codec menu (plain / LZ / entropy / LZ+entropy,
 *  strictly-smallest wins), from BENCH_decode.json entropy_pages. */
inline constexpr double kMeasuredEntropyStoredRatio = 0.77;

/** Co-located workers (Fig 3) share the host with the training-side
 *  input pipeline; effective throughput per core drops by this factor
 *  relative to a dedicated disaggregated core. Reconciles Fig 3's <20%
 *  GPU utilization at 16 cores with Fig 4's ~42 dedicated cores/GPU. */
inline constexpr double kColocatedInterference = 0.48;

/** Peak DRAM bandwidth of the two-socket Xeon Gold 6242 node (Section
 *  III-C quotes 281.6 GB/s); Figure 6 normalizes against this. */
inline constexpr double kCpuMemBandwidthBytesPerSec = 281.6e9;

/** Average DRAM miss-stall exposed per LLC miss after overlap (used to
 *  estimate the compute vs memory split of op time in Figure 6). */
inline constexpr double kLlcMissStallSec = 35e-9;

// =========================================================================
// Raw data encoding (PSF/Parquet) and train-ready tensor sizes.
// =========================================================================

/** Encoded bytes per dense value (plain float pages). */
inline constexpr double kEncodedBytesPerDenseValue = 4.0;

/** Encoded bytes per raw sparse id. Ids are near-uniform 63-bit hashes;
 *  dictionary/varint pages average ~9 bytes each. */
inline constexpr double kEncodedBytesPerSparseValue = 9.0;

/** Encoded bytes per row for lengths/labels bookkeeping. */
inline constexpr double kEncodedBytesPerRow = 3.0;

/** Train-ready bytes: fp32 dense values. */
inline constexpr double kTensorBytesPerDenseValue = 4.0;

/** Train-ready bytes: int32 embedding indices (tables < 2^31 rows). */
inline constexpr double kTensorBytesPerSparseValue = 4.0;

/** Train-ready bytes per (row x sparse table) for the lengths tensor. */
inline constexpr double kTensorBytesPerLength = 4.0;

// =========================================================================
// Storage and network.
// =========================================================================

/** 10 GbE payload bandwidth (Section V-B: nodes talk over 10 Gbps). */
inline constexpr double kNetworkBytesPerSec = presto::kTenGbEBytesPerSec;

/** Fixed latency per RPC call (PyTorch RPC + kernel network stack). */
inline constexpr double kRpcFixedSec = 120e-6;

/** Chunk size for storage reads; each chunk is one RPC. */
inline constexpr double kRpcChunkBytes = 1.0 * presto::kMiB;

/** SSD sequential read bandwidth (local reads by co-located workers). */
inline constexpr double kSsdReadBytesPerSec = 3.0e9;

/** SmartSSD SSD->FPGA peer-to-peer bandwidth (slightly below the raw SSD
 *  stream rate due to the FPGA DMA engine). */
inline constexpr double kSmartSsdP2pBytesPerSec = 2.9e9;

// =========================================================================
// SmartSSD ISP accelerator (Table II: units synthesized at 223 MHz inside
// a U.2 SmartSSD with a 25 W envelope).
//
// Anchors: Fig 12 (avg 9.6x / max 11.6x single-worker latency reduction;
// Extract = 40.8% of PreSto's latency), Fig 11 (one SmartSSD between
// Disagg(32) and Disagg(64); Disagg(64) wins by ~27%), Fig 14 (<= 9 ISP
// units for 8 A100s).
// =========================================================================

/** Accelerator clock (Table II). */
inline constexpr double kFpgaClockHz = 223.0 * presto::kMHz;

/** Decoder unit: effective values/second. Page decode serializes on
 *  varint boundaries, so it is the least parallel unit (the paper notes
 *  decoding is "less parallelizable", keeping Extract at ~40% of the
 *  PreSto batch latency). ~1.1 values/cycle across lanes. */
inline constexpr double kIspDecodeValuesPerSec = 0.25e9;

/** Bucketize unit: one binary-search level per cycle per PE; a value
 *  costs log2(m)+1 levels. PE count from Table II's unit budget. */
inline constexpr int kIspBucketizePes = 4;

/** SigridHash unit: pipelined hash, 1 id/cycle/PE. */
inline constexpr int kIspHashPes = 2;

/** Log unit: pipelined log1p, 1 value/cycle/PE. */
inline constexpr int kIspLogPes = 2;

/** Mini-batch conversion rate (gather + DMA-out formatting). */
inline constexpr double kIspConvertValuesPerSec = 0.32e9;

/** Fixed per-batch overhead (XRT kernel invocation + RPC to the train
 *  manager). */
inline constexpr double kIspFixedSecPerBatch = 3.5e-3;

/** Modeled FPGA LZ-decompressor unit: a sequence-reconstruction stage
 *  retiring ~4 output bytes/cycle at the Table II clock (not a paper
 *  unit — parameterizes the compressed-PSF what-if in bench_fig11/12;
 *  IspParams leaves it off by default). */
inline constexpr double kIspDecompressBytesPerSec = kFpgaClockHz * 4.0;

/** Modeled FPGA canonical-Huffman unit in front of the decompressor:
 *  a flat-table code lookup retiring ~2 output bytes/cycle at the
 *  Table II clock (half the LZ unit's rate — each output byte costs a
 *  serial table probe, pipelined two-wide across the format's
 *  independent bitstream lanes). Parameterizes the entropy-PSF what-if
 *  in bench_fig11/12; IspParams leaves it off by default. */
inline constexpr double kIspEntropyDecodeBytesPerSec = kFpgaClockHz * 2.0;

/** Concurrent mini-batch streams per SmartSSD. Feature-unit groups work
 *  on independent partitions, so device throughput exceeds 1/latency
 *  (reconciles Fig 11's ~50x throughput with Fig 12's ~10x latency). */
inline constexpr int kIspBatchConcurrency = 2;

// --- U280 variant (Fig 16): 2x units, discrete PCIe card -----------------

/** U280 compute units are doubled vs the SmartSSD build. */
inline constexpr double kU280UnitScale = 2.0;

/** U280 decode scales less than 2x (serialization-bound). */
inline constexpr double kU280DecodeScale = 1.35;

/** Host-mediated SSD->U280 delivery bandwidth (PCIe staging). */
inline constexpr double kU280DeliverBytesPerSec = 3.0e9;

/** The U280 build runs one monolithic stream (no batch interleaving). */
inline constexpr int kU280BatchConcurrency = 1;

// =========================================================================
// GPU models.
// =========================================================================

/** A100 peak dense fp16 FLOPs and the fraction DLRM GEMMs achieve. */
inline constexpr double kA100PeakFlops = 312e12;
inline constexpr double kA100GemmEfficiency = 0.35;

/** A100 HBM bandwidth and the fraction random embedding gathers achieve. */
inline constexpr double kA100HbmBytesPerSec = 1555e9;
inline constexpr double kA100GatherEfficiency = 0.34;

/** Backward pass cost relative to forward (GEMMs ~2x, + optimizer). */
inline constexpr double kTrainBackwardFactor = 2.0;

/** Embedding backward/optimizer traffic relative to forward gathers. */
inline constexpr double kEmbeddingUpdateFactor = 1.5;

/** Fixed per-step overhead: kernel launches across tables, all-to-all,
 *  host logic. */
inline constexpr double kTrainFixedSecPerStep = 9.0e-3;

/** Embedding vector width (Table I models use dim 128). */
inline constexpr int kEmbeddingDim = 128;

// --- NVTabular-on-A100 preprocessing (Fig 16) -----------------------------

/** Per-(feature x op) dispatch overhead of the GPU dataframe pipeline:
 *  kernel launches plus host-side column handling. Each launch touches a
 *  small working set, so launches cannot amortize (the paper's stated
 *  reason GPUs underperform on this workload). */
inline constexpr double kGpuPerFeatureOpSec = 120e-6;

/** Element-wise ops applied per feature (generate/normalize/convert). */
inline constexpr double kGpuOpsPerFeature = 3.0;

/** Effective GPU throughput on preprocessing element ops. */
inline constexpr double kGpuPreprocValuesPerSec = 8.0e9;

/** Fixed per-batch driver/dataframe overhead of the GPU pipeline. */
inline constexpr double kGpuPreprocFixedSec = 4.0e-3;

// =========================================================================
// Power (measured-style active powers, not TDPs).
//
// Anchors: Fig 15(a) (avg 11.3x / max 15.1x energy-efficiency gain),
// Fig 16 (PreSto(SmartSSD) perf/W = 2.9x PreSto(U280)).
// =========================================================================

/** Per-core share of a loaded 2-socket Xeon 6242 node (PCM-style:
 *  node idle + per-core active, amortized). 367 cores x this = ~2.7 kW,
 *  the 15.1x max anchor. */
inline constexpr double kCpuWattsPerCore = 7.4;

/** Full preprocessing node (32 cores busy) for node-count costing. */
inline constexpr double kCpuWattsPerNode = 400.0;

/** SmartSSD active power (TDP 25 W; Vivado-reported activity ~20 W). */
inline constexpr double kSmartSsdWatts = 20.0;

/** U280 active power (TDP 225 W; measured activity much lower). */
inline constexpr double kU280Watts = 75.0;

/** A100 active power while running the (underutilizing) preproc. */
inline constexpr double kA100PreprocWatts = 120.0;

// =========================================================================
// Cost (Section V-C: cost-efficiency = Thr x Dur / (CapEx + OpEx)).
//
// Anchors: Fig 15(b) (avg 4.3x / max 5.6x cost-efficiency gain).
// =========================================================================

/** Dell R640-class 2-socket Xeon Gold 6242 node, 32 cores. */
inline constexpr double kCpuNodeDollars = 8500.0;
inline constexpr int kCpuCoresPerNode = 32;

/** Samsung SmartSSD street price. */
inline constexpr double kSmartSsdDollars = 2200.0;

/** Xilinx U280 card price. */
inline constexpr double kU280Dollars = 7500.0;

/** A100 PCIe card price. */
inline constexpr double kA100Dollars = 12000.0;

/** Deployment duration (3 years, per Barroso et al. / the paper). */
inline constexpr double kDurationSec = 3.0 * presto::kYear;

/** Electricity price used by the paper ($/kWh). */
inline constexpr double kElectricityPerKwh = 0.0733;

// =========================================================================
// Training-node composition.
// =========================================================================

/** GPUs per training node (DGX A100, Section III). */
inline constexpr int kGpusPerTrainingNode = 8;

/** CPU cores available per GPU in the co-located setup (128/8). */
inline constexpr int kColocatedCoresPerGpu = 16;

}  // namespace presto::cal

#endif  // PRESTO_MODELS_CALIBRATION_H_
