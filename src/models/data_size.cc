#include "models/data_size.h"

#include "models/calibration.h"

namespace presto {

double
rawEncodedBytes(const RmConfig& config)
{
    const auto batch = static_cast<double>(config.batch_size);
    const double dense = static_cast<double>(config.num_dense) * batch *
                         cal::kEncodedBytesPerDenseValue;
    const double sparse = static_cast<double>(config.num_sparse) *
                          config.avg_sparse_length * batch *
                          cal::kEncodedBytesPerSparseValue;
    const double bookkeeping =
        batch * cal::kEncodedBytesPerRow *
        (1.0 + static_cast<double>(config.num_sparse) * 0.25);
    return dense + sparse + bookkeeping;
}

double
miniBatchBytes(const RmConfig& config)
{
    const auto batch = static_cast<double>(config.batch_size);
    const double dense = static_cast<double>(config.num_dense) * batch *
                         cal::kTensorBytesPerDenseValue;
    const double sparse_ids =
        (static_cast<double>(config.num_sparse) * config.avg_sparse_length +
         static_cast<double>(config.num_generated)) *
        batch * cal::kTensorBytesPerSparseValue;
    const double lengths = static_cast<double>(config.totalSparseFeatures()) *
                           batch * cal::kTensorBytesPerLength;
    const double labels = batch * 4.0;
    return dense + sparse_ids + lengths + labels;
}

}  // namespace presto
