#include "models/isp_model.h"

#include <algorithm>

#include "common/logging.h"
#include "models/calibration.h"
#include "models/data_size.h"

namespace presto {

IspParams
IspParams::smartSsd()
{
    IspParams p;
    p.name = "PreSto (SmartSSD)";
    p.placement = AcceleratorPlacement::kInStorage;
    p.clock_hz = cal::kFpgaClockHz;
    p.decode_values_per_sec = cal::kIspDecodeValuesPerSec;
    p.bucketize_pes = cal::kIspBucketizePes;
    p.hash_pes = cal::kIspHashPes;
    p.log_pes = cal::kIspLogPes;
    p.convert_values_per_sec = cal::kIspConvertValuesPerSec;
    p.deliver_bytes_per_sec = cal::kSmartSsdP2pBytesPerSec;
    p.fixed_sec_per_batch = cal::kIspFixedSecPerBatch;
    p.batch_concurrency = cal::kIspBatchConcurrency;
    p.watts = cal::kSmartSsdWatts;
    p.dollars = cal::kSmartSsdDollars;
    return p;
}

IspParams
IspParams::smartSsdCompressed()
{
    IspParams p = smartSsd();
    p.name = "PreSto (SmartSSD, LZ pages)";
    p.compression.stored_ratio = cal::kMeasuredLzStoredRatio;
    p.compression.decompress_bytes_per_sec = cal::kIspDecompressBytesPerSec;
    return p;
}

IspParams
IspParams::smartSsdEntropy()
{
    IspParams p = smartSsdCompressed();
    p.name = "PreSto (SmartSSD, entropy pages)";
    p.compression.stored_ratio = cal::kMeasuredEntropyStoredRatio;
    p.compression.entropy_decode_bytes_per_sec =
        cal::kIspEntropyDecodeBytesPerSec;
    return p;
}

IspParams
IspParams::prestoU280()
{
    IspParams p = smartSsd();
    p.name = "PreSto (U280)";
    p.decode_values_per_sec *= cal::kU280DecodeScale;
    p.bucketize_pes = static_cast<int>(p.bucketize_pes * cal::kU280UnitScale);
    p.hash_pes = static_cast<int>(p.hash_pes * cal::kU280UnitScale);
    p.log_pes = static_cast<int>(p.log_pes * cal::kU280UnitScale);
    p.convert_values_per_sec *= cal::kU280UnitScale;
    p.deliver_bytes_per_sec = cal::kU280DeliverBytesPerSec;
    p.batch_concurrency = cal::kU280BatchConcurrency;
    p.watts = cal::kU280Watts;
    p.dollars = cal::kU280Dollars;
    return p;
}

IspParams
IspParams::disaggU280()
{
    IspParams p = prestoU280();
    p.name = "U280 (disaggregated)";
    p.placement = AcceleratorPlacement::kDisaggregated;
    return p;
}

IspDeviceModel::IspDeviceModel(IspParams params, const RmConfig& config)
    : params_(std::move(params)), config_(config),
      work_(TransformWork::expected(config))
{
    PRESTO_CHECK(params_.batch_concurrency >= 1, "need >= 1 batch stream");
}

double
IspDeviceModel::deliverSeconds() const
{
    // Compressed pages move fewer bytes over the delivery path.
    const double bytes =
        rawEncodedBytes(config_) * params_.compression.stored_ratio;
    if (params_.placement == AcceleratorPlacement::kDisaggregated) {
        const double rpcs = bytes / cal::kRpcChunkBytes + 1.0;
        return bytes / cal::kNetworkBytesPerSec + rpcs * cal::kRpcFixedSec;
    }
    return bytes / params_.deliver_bytes_per_sec;
}

double
IspDeviceModel::decodeSeconds() const
{
    double sec = work_.raw_values / params_.decode_values_per_sec;
    // The decompressor sits in front of the Decoder unit and streams the
    // raw payload into it, so the two serialize within a page.
    if (params_.compression.decompress_bytes_per_sec > 0)
        sec += rawEncodedBytes(config_) /
               params_.compression.decompress_bytes_per_sec;
    if (params_.compression.entropy_decode_bytes_per_sec > 0)
        sec += rawEncodedBytes(config_) /
               params_.compression.entropy_decode_bytes_per_sec;
    return sec;
}

double
IspDeviceModel::bucketizeSeconds() const
{
    // A PE retires one search level per cycle; a value needs
    // bucketize_levels sequential levels.
    const double values_per_sec = params_.clock_hz /
                                  work_.bucketize_levels *
                                  params_.bucketize_pes;
    return work_.bucketize_values / values_per_sec;
}

double
IspDeviceModel::hashSeconds() const
{
    return work_.hash_values / (params_.clock_hz * params_.hash_pes);
}

double
IspDeviceModel::logSeconds() const
{
    return work_.dense_values / (params_.clock_hz * params_.log_pes);
}

double
IspDeviceModel::convertSeconds() const
{
    return work_.output_values / params_.convert_values_per_sec;
}

LatencyBreakdown
IspDeviceModel::batchLatency() const
{
    LatencyBreakdown b;
    // Double buffering overlaps the data delivery with decode; the
    // visible Extract latency is the max of the two plus a pipeline
    // fill term for the first buffer.
    const double deliver = deliverSeconds();
    const double decode = decodeSeconds();
    b.extract_read = std::max(0.0, deliver - decode) + 0.05 * deliver;
    b.extract_decode = decode;
    b.bucketize = bucketizeSeconds();
    b.sigrid_hash = hashSeconds();
    b.log = logSeconds();
    b.other = convertSeconds() + params_.fixed_sec_per_batch;
    return b;
}

double
IspDeviceModel::bottleneckStageSeconds() const
{
    const double stages[] = {
        deliverSeconds(),
        decodeSeconds(),
        bucketizeSeconds() + hashSeconds() + logSeconds(),
        convertSeconds(),
        params_.fixed_sec_per_batch,
    };
    return *std::max_element(std::begin(stages), std::end(stages));
}

double
IspDeviceModel::throughput() const
{
    const double per_stream = 1.0 / bottleneckStageSeconds();
    double device = per_stream * params_.batch_concurrency;
    // Concurrent streams still share the single delivery path.
    const double delivery_cap = 1.0 / deliverSeconds();
    device = std::min(device, delivery_cap);
    return device;
}

}  // namespace presto
