/**
 * @file
 * Performance model of the baseline CPU-centric preprocessing worker
 * (one core of a disaggregated Xeon node running the TorchArrow stack).
 *
 * Follows the paper's own scale-out methodology (Section V-B): a worker
 * is a throughput unit whose single-batch latency is decomposed into the
 * Figure 5 stages; aggregate throughput scales linearly with cores.
 */
#ifndef PRESTO_MODELS_CPU_MODEL_H_
#define PRESTO_MODELS_CPU_MODEL_H_

#include "datagen/rm_config.h"
#include "models/breakdown.h"
#include "models/calibration.h"
#include "ops/preprocessor.h"

namespace presto {

/** Baseline CPU preprocessing worker model. */
class CpuWorkerModel
{
  public:
    /**
     * @param decode_sec_per_value Extract(Decode) cost. Defaults to the
     *        calibrated Xeon constant; pass one of the measured
     *        cal::kMeasured*DecodeSecPerValue rates (provenance:
     *        BENCH_decode.json) to re-anchor the model to this host's
     *        real decoders.
     * @param compression Page-compression effect: scales Extract(Read)
     *        bytes by the stored ratio and charges a decompress term in
     *        Extract(Decode). Defaults to uncompressed (no effect).
     * @param transform_sec_per_value Optional fused-Transform cost.
     *        <= 0 (default) keeps the calibrated per-operator TorchArrow
     *        stage costs; pass cal::kMeasuredFusedSecPerValue
     *        (provenance: BENCH_fused.json) to model a worker running
     *        the compiled op-chain VM, where feature generation,
     *        normalization and conversion collapse into one
     *        value-granular pass.
     */
    explicit CpuWorkerModel(
        const RmConfig& config,
        double decode_sec_per_value = cal::kCpuDecodeSecPerValue,
        PageCompressionModel compression = {},
        double transform_sec_per_value = 0);

    /**
     * Latency to preprocess one mini-batch on one dedicated core,
     * including the remote Extract over the datacenter network
     * (the Figure 5 / Figure 12 "Disagg" bars).
     */
    LatencyBreakdown batchLatency() const;

    /** Same work with the Extract(Read) stage served from local storage
     *  (used by the co-located configuration). */
    LatencyBreakdown batchLatencyLocalRead() const;

    /** Mini-batches per second of one dedicated disaggregated core. */
    double throughputPerCore() const;

    /** Effective per-core throughput when co-located with training
     *  (Figure 3), reduced by host interference. */
    double colocatedThroughputPerCore() const;

    /** Aggregate throughput of @p cores disaggregated cores. */
    double throughput(int cores) const;

    const RmConfig& config() const { return config_; }
    const TransformWork& work() const { return work_; }

  private:
    RmConfig config_;
    TransformWork work_;
    double decode_sec_per_value_;
    PageCompressionModel compression_;
    double transform_sec_per_value_;
};

}  // namespace presto

#endif  // PRESTO_MODELS_CPU_MODEL_H_
