/**
 * @file
 * Performance model of the FPGA preprocessing accelerator (Figure 10
 * microarchitecture): Decoder, Bucketize, SigridHash, and Log units fed
 * by P2P transfers from the local SSD (SmartSSD) or by PCIe/network
 * delivery (U280 variants).
 */
#ifndef PRESTO_MODELS_ISP_MODEL_H_
#define PRESTO_MODELS_ISP_MODEL_H_

#include <string>

#include "datagen/rm_config.h"
#include "models/breakdown.h"
#include "ops/preprocessor.h"

namespace presto {

/** Where the accelerator sits relative to the raw data. */
enum class AcceleratorPlacement {
    kInStorage,       ///< local SSD -> FPGA P2P (PreSto)
    kDisaggregated,   ///< storage node -> remote accelerator over 10 GbE
};

/** Hardware parameters of one FPGA accelerator build. */
struct IspParams {
    std::string name;
    AcceleratorPlacement placement = AcceleratorPlacement::kInStorage;
    double clock_hz = 0;
    double decode_values_per_sec = 0;
    int bucketize_pes = 0;         ///< each finishes one search level/cycle
    int hash_pes = 0;              ///< 1 id/cycle/PE
    int log_pes = 0;               ///< 1 value/cycle/PE
    double convert_values_per_sec = 0;
    double deliver_bytes_per_sec = 0;  ///< SSD P2P or PCIe staging path
    double fixed_sec_per_batch = 0;    ///< kernel invocation + RPC
    int batch_concurrency = 1;         ///< independent mini-batch streams
    double watts = 0;                  ///< measured active power
    double dollars = 0;                ///< CapEx per device
    /** Page-compression effect: stored_ratio scales the delivery bytes,
     *  decompress_bytes_per_sec adds a front-end decompressor stage
     *  ahead of the Decoder unit. Off by default (paper build). */
    PageCompressionModel compression;

    /** The SmartSSD build (Table II, 223 MHz, 25 W envelope). */
    static IspParams smartSsd();

    /** The SmartSSD build reading LZ-compressed PSF pages through a
     *  modeled decompressor unit (cal::kIspDecompressBytesPerSec). */
    static IspParams smartSsdCompressed();

    /** The SmartSSD build reading full-codec-menu (entropy) pages: the
     *  LZ decompressor plus a modeled Huffman unit in front of it
     *  (cal::kIspEntropyDecodeBytesPerSec), at the tighter stored
     *  ratio the entropy menu measures (BENCH_decode.json). */
    static IspParams smartSsdEntropy();

    /** PreSto on a discrete U280 in the storage node (Fig 16). */
    static IspParams prestoU280();

    /** U280 in a disaggregated accelerator pool (Fig 16). */
    static IspParams disaggU280();
};

/**
 * Latency/throughput model of one accelerator device preprocessing one
 * workload.
 */
class IspDeviceModel
{
  public:
    IspDeviceModel(IspParams params, const RmConfig& config);

    /** Single mini-batch latency, Figure 12 stages. */
    LatencyBreakdown batchLatency() const;

    /**
     * Sustained mini-batches per second of one device. Stages pipeline
     * across consecutive mini-batches and `batch_concurrency` streams run
     * independently, so throughput = concurrency / bottleneck-stage time
     * (bounded by the data-delivery path).
     */
    double throughput() const;

    /** Slowest pipeline stage in seconds (the throughput bottleneck). */
    double bottleneckStageSeconds() const;

    /** Raw-data delivery time per batch (P2P or network, pre-overlap). */
    double deliverSeconds() const;

    const IspParams& params() const { return params_; }
    const RmConfig& config() const { return config_; }

  private:
    double decodeSeconds() const;
    double bucketizeSeconds() const;
    double hashSeconds() const;
    double logSeconds() const;
    double convertSeconds() const;

    IspParams params_;
    RmConfig config_;
    TransformWork work_;
};

}  // namespace presto

#endif  // PRESTO_MODELS_ISP_MODEL_H_
