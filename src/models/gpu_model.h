/**
 * @file
 * A100 GPU models:
 *  - DLRM training-step model, giving the maximum training throughput T
 *    that preprocessing must sustain (the dotted line in Figure 3 and the
 *    numerator of the T/P provisioning rule);
 *  - NVTabular-style GPU preprocessing model for the Figure 16 comparison
 *    (per-feature-op dispatch dominated).
 */
#ifndef PRESTO_MODELS_GPU_MODEL_H_
#define PRESTO_MODELS_GPU_MODEL_H_

#include "datagen/rm_config.h"
#include "models/breakdown.h"

namespace presto {

/** Components of one DLRM training step on a single A100. */
struct TrainStepBreakdown {
    double mlp_seconds = 0;        ///< bottom/top MLP GEMMs (fwd+bwd)
    double interaction_seconds = 0;///< pairwise feature interaction
    double embedding_seconds = 0;  ///< table gathers + gradient updates
    double fixed_seconds = 0;      ///< launches, all-to-all, host logic

    double
    total() const
    {
        return mlp_seconds + interaction_seconds + embedding_seconds +
               fixed_seconds;
    }
};

/** Single-A100 DLRM training model. */
class GpuTrainModel
{
  public:
    explicit GpuTrainModel(const RmConfig& config);

    /** Per-step cost breakdown for one mini-batch. */
    TrainStepBreakdown stepBreakdown() const;

    /** Maximum mini-batches per second one GPU can train. */
    double maxThroughput() const;

    /** Forward-pass FLOPs of one mini-batch (MLPs + interaction). */
    double forwardFlops() const;

    /** Bytes gathered from embedding tables per mini-batch (forward). */
    double embeddingGatherBytes() const;

  private:
    RmConfig config_;
};

/**
 * GPU-as-preprocessor model (NVTabular-style, Figure 16): a
 * disaggregated A100 receiving raw data over the network and running
 * many small per-feature kernels.
 */
class GpuPreprocModel
{
  public:
    explicit GpuPreprocModel(const RmConfig& config);

    /** Single mini-batch preprocessing latency breakdown. */
    LatencyBreakdown batchLatency() const;

    /** Sustained throughput (network-in pipelined with compute). */
    double throughput() const;

    /** Active power while preprocessing (underutilized A100). */
    double watts() const;

  private:
    double dispatchSeconds() const;

    RmConfig config_;
};

}  // namespace presto

#endif  // PRESTO_MODELS_GPU_MODEL_H_
