#include "models/fpga_resources.h"

#include "models/calibration.h"

namespace presto {

FpgaResources
FpgaResources::operator+(const FpgaResources& o) const
{
    return {lut + o.lut, reg + o.reg, bram + o.bram, uram + o.uram,
            dsp + o.dsp};
}

FpgaResources
FpgaResources::operator*(double k) const
{
    return {lut * k, reg * k, bram * k, uram * k, dsp * k};
}

FpgaResources
FpgaResources::percentOf(const FpgaResources& capacity) const
{
    auto pct = [](double v, double cap) {
        return cap > 0 ? v / cap * 100.0 : 0.0;
    };
    return {pct(lut, capacity.lut), pct(reg, capacity.reg),
            pct(bram, capacity.bram), pct(uram, capacity.uram),
            pct(dsp, capacity.dsp)};
}

FpgaResources
smartSsdFabric()
{
    // Kintex UltraScale+ KU15P: 523k LUTs, 1045k registers, 984 BRAM36,
    // 128 URAM, 1968 DSP slices.
    return {523000, 1045000, 984, 128, 1968};
}

std::vector<UnitUtilization>
prestoAcceleratorUtilization()
{
    const FpgaResources fabric = smartSsdFabric();

    // Per-unit budgets reproducing Table II's utilization percentages:
    //   Decode:     wide varint/dictionary parse datapath, page buffers.
    //   Bucketize:  boundary arrays resident in URAM, search pipelines.
    //   SigridHash: 64-bit multipliers (DSP heavy) + id buffers.
    //   Log:        log1p CORDIC/poly pipelines (DSP) + small buffers.
    const std::vector<std::pair<std::string, FpgaResources>> units = {
        {"Decode",     {98533,  88721,  246.8, 0.0,   0.0}},
        {"Bucketize",  {41212,  44726,  60.9,  35.3,  0.0}},
        {"SigridHash", {120866, 130311, 117.0, 0.0,   377.7}},
        {"Log",        {21861,  29156,  48.1,  0.0,   209.0}},
    };

    std::vector<UnitUtilization> out;
    FpgaResources total;
    for (const auto& [name, abs] : units) {
        UnitUtilization u;
        u.name = name;
        u.absolute = abs;
        u.percent = abs.percentOf(fabric);
        total = total + abs;
        out.push_back(std::move(u));
    }
    UnitUtilization total_row;
    total_row.name = "Total";
    total_row.absolute = total;
    total_row.percent = total.percentOf(fabric);
    out.push_back(std::move(total_row));
    return out;
}

double
prestoAcceleratorClockHz()
{
    return cal::kFpgaClockHz;
}

}  // namespace presto
