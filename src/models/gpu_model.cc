#include "models/gpu_model.h"

#include <algorithm>

#include "models/calibration.h"
#include "models/data_size.h"
#include "ops/preprocessor.h"

namespace presto {

namespace {

/** FLOPs of a dense MLP over one batch: 2 * B * sum(in_i * out_i). */
double
mlpFlops(size_t input_width, const std::vector<size_t>& layers, size_t batch)
{
    double flops = 0;
    size_t in = input_width;
    for (size_t out : layers) {
        flops += 2.0 * static_cast<double>(batch) * static_cast<double>(in) *
                 static_cast<double>(out);
        in = out;
    }
    return flops;
}

}  // namespace

GpuTrainModel::GpuTrainModel(const RmConfig& config) : config_(config) {}

double
GpuTrainModel::forwardFlops() const
{
    const size_t batch = config_.batch_size;
    const double bottom =
        mlpFlops(config_.num_dense, config_.bottom_mlp, batch);

    // DLRM feature interaction: pairwise dots among (num_tables + 1)
    // pooled embedding vectors of width kEmbeddingDim.
    const double vectors = static_cast<double>(config_.num_tables) + 1.0;
    const double pairs = vectors * (vectors - 1.0) / 2.0;
    const double interaction = 2.0 * static_cast<double>(batch) * pairs *
                               cal::kEmbeddingDim;

    const auto top_input =
        static_cast<size_t>(pairs) + static_cast<size_t>(cal::kEmbeddingDim);
    const double top = mlpFlops(top_input, config_.top_mlp, batch);
    return bottom + interaction + top;
}

double
GpuTrainModel::embeddingGatherBytes() const
{
    // Every sparse id gathers one kEmbeddingDim fp32 vector.
    const double ids =
        (static_cast<double>(config_.num_sparse) *
             config_.avg_sparse_length +
         static_cast<double>(config_.num_generated)) *
        static_cast<double>(config_.batch_size);
    return ids * cal::kEmbeddingDim * 4.0;
}

TrainStepBreakdown
GpuTrainModel::stepBreakdown() const
{
    TrainStepBreakdown b;
    const double flop_rate = cal::kA100PeakFlops * cal::kA100GemmEfficiency;
    const double gather_rate =
        cal::kA100HbmBytesPerSec * cal::kA100GatherEfficiency;

    const double fwd = forwardFlops() / flop_rate;
    // Split the GEMM time between MLPs and interaction by FLOP share.
    const double vectors = static_cast<double>(config_.num_tables) + 1.0;
    const double pairs = vectors * (vectors - 1.0) / 2.0;
    const double inter_flops = 2.0 * static_cast<double>(config_.batch_size) *
                               pairs * cal::kEmbeddingDim;
    const double inter_share = inter_flops / forwardFlops();

    const double fwd_bwd = fwd * (1.0 + cal::kTrainBackwardFactor);
    b.interaction_seconds = fwd_bwd * inter_share;
    b.mlp_seconds = fwd_bwd - b.interaction_seconds;
    b.embedding_seconds = embeddingGatherBytes() / gather_rate *
                          (1.0 + cal::kEmbeddingUpdateFactor);
    b.fixed_seconds = cal::kTrainFixedSecPerStep;
    return b;
}

double
GpuTrainModel::maxThroughput() const
{
    return 1.0 / stepBreakdown().total();
}

GpuPreprocModel::GpuPreprocModel(const RmConfig& config) : config_(config) {}

double
GpuPreprocModel::dispatchSeconds() const
{
    const double features =
        static_cast<double>(config_.num_dense) +
        static_cast<double>(config_.totalSparseFeatures());
    return features * cal::kGpuOpsPerFeature * cal::kGpuPerFeatureOpSec;
}

LatencyBreakdown
GpuPreprocModel::batchLatency() const
{
    const TransformWork work = TransformWork::expected(config_);
    const double bytes = rawEncodedBytes(config_);
    const double rpcs = bytes / cal::kRpcChunkBytes + 1.0;

    LatencyBreakdown b;
    b.extract_read =
        bytes / cal::kNetworkBytesPerSec + rpcs * cal::kRpcFixedSec;
    // Bulk element throughput is huge on the GPU; dispatch dominates.
    const double dispatch = dispatchSeconds();
    const double elements =
        (work.raw_values + work.output_values) / cal::kGpuPreprocValuesPerSec;
    b.extract_decode = work.raw_values / cal::kGpuPreprocValuesPerSec;
    const double compute = dispatch + elements;
    b.bucketize = compute * 0.15;
    b.sigrid_hash = compute * 0.35;
    b.log = compute * 0.30;
    b.other = compute * 0.20 + cal::kGpuPreprocFixedSec;
    return b;
}

double
GpuPreprocModel::throughput() const
{
    const LatencyBreakdown b = batchLatency();
    const double compute = b.total() - b.extract_read;
    const double bottleneck = std::max(b.extract_read, compute);
    return 1.0 / bottleneck;
}

double
GpuPreprocModel::watts() const
{
    return cal::kA100PreprocWatts;
}

}  // namespace presto
