#include "models/ssd_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace presto {

SsdParams
SsdParams::smartSsdClass()
{
    return SsdParams{};
}

SsdModel::SsdModel(SsdParams params) : params_(params)
{
    PRESTO_CHECK(params_.channels > 0 && params_.dies_per_channel > 0,
                 "SSD geometry must be positive");
    PRESTO_CHECK(params_.page_bytes > 0 && params_.page_read_sec > 0,
                 "SSD timings must be positive");
}

double
SsdModel::sequentialBandwidth() const
{
    // Each channel streams at its transfer rate as long as enough dies
    // per channel can hide tR: dies_needed = tR / tTransfer(page).
    const double t_transfer =
        params_.page_bytes / params_.channel_bytes_per_sec;
    const double dies_to_hide = params_.page_read_sec / t_transfer;
    const double utilization =
        std::min(1.0, params_.dies_per_channel / dies_to_hide);
    return params_.channels * params_.channel_bytes_per_sec * utilization;
}

double
SsdModel::sequentialReadSeconds(double bytes) const
{
    PRESTO_CHECK(bytes >= 0, "negative byte count");
    if (bytes == 0)
        return 0;
    // Pipeline fill (first page) + streaming at the array bandwidth.
    return params_.page_read_sec + bytes / sequentialBandwidth();
}

double
SsdModel::randomReadSeconds(double bytes, double request_bytes,
                            int queue_depth) const
{
    PRESTO_CHECK(bytes >= 0 && request_bytes > 0, "bad request sizing");
    PRESTO_CHECK(queue_depth >= 1, "queue depth must be positive");
    if (bytes == 0)
        return 0;
    const double requests = std::ceil(bytes / request_bytes);
    const double pages_per_request =
        std::ceil(request_bytes / params_.page_bytes);
    // Service time of one request on one die.
    const double service = pages_per_request * params_.page_read_sec +
                           params_.controller_overhead_sec +
                           request_bytes / params_.channel_bytes_per_sec;
    // Effective parallel servers: limited by dies and by queue depth.
    const double servers = std::min<double>(
        queue_depth,
        static_cast<double>(params_.channels) * params_.dies_per_channel);
    const double parallel_time = requests * service / servers;
    // Cannot beat the array's aggregate bandwidth.
    const double bandwidth_floor = bytes / sequentialBandwidth();
    return std::max(parallel_time, bandwidth_floor);
}

}  // namespace presto
