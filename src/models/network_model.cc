#include "models/network_model.h"

#include <cmath>

#include "common/logging.h"
#include "models/calibration.h"
#include "models/data_size.h"

namespace presto {

NetworkModel::NetworkModel(double bytes_per_sec, double rpc_fixed_sec,
                           double chunk_bytes)
    : bytes_per_sec_(bytes_per_sec), rpc_fixed_sec_(rpc_fixed_sec),
      chunk_bytes_(chunk_bytes)
{
    PRESTO_CHECK(bytes_per_sec_ > 0 && chunk_bytes_ > 0,
                 "network parameters must be positive");
}

NetworkModel
NetworkModel::datacenter()
{
    return NetworkModel(cal::kNetworkBytesPerSec, cal::kRpcFixedSec,
                        cal::kRpcChunkBytes);
}

double
NetworkModel::transferSeconds(double bytes) const
{
    const double rpcs = std::ceil(bytes / chunk_bytes_);
    return bytes / bytes_per_sec_ + rpcs * rpc_fixed_sec_;
}

RpcBreakdown
NetworkModel::disaggRpc(const RmConfig& config) const
{
    RpcBreakdown b;
    b.raw_in_seconds = transferSeconds(rawEncodedBytes(config));
    b.tensors_out_seconds = transferSeconds(miniBatchBytes(config));
    // Batch request to storage + batch handoff ack to the trainer.
    b.control_seconds = 2.0 * rpc_fixed_sec_;
    return b;
}

RpcBreakdown
NetworkModel::prestoRpc(const RmConfig& config) const
{
    RpcBreakdown b;
    b.raw_in_seconds = 0.0;  // raw data never leaves the storage node
    b.tensors_out_seconds = transferSeconds(miniBatchBytes(config));
    b.control_seconds = rpc_fixed_sec_;
    return b;
}

}  // namespace presto
