/**
 * @file
 * FPGA resource model reproducing Table II: per-unit LUT/REG/BRAM/URAM/DSP
 * utilization of the PreSto accelerator synthesized at 223 MHz on the
 * SmartSSD's KU15P-class fabric.
 */
#ifndef PRESTO_MODELS_FPGA_RESOURCES_H_
#define PRESTO_MODELS_FPGA_RESOURCES_H_

#include <string>
#include <vector>

namespace presto {

/** Absolute resource counts of a unit instance or a device fabric. */
struct FpgaResources {
    double lut = 0;
    double reg = 0;
    double bram = 0;  ///< 36Kb block RAMs
    double uram = 0;  ///< UltraRAM blocks
    double dsp = 0;

    FpgaResources operator+(const FpgaResources& o) const;
    FpgaResources operator*(double k) const;

    /** Element-wise percentage of @p capacity. */
    FpgaResources percentOf(const FpgaResources& capacity) const;
};

/** One accelerator unit's name and resource budget. */
struct UnitUtilization {
    std::string name;
    FpgaResources absolute;
    FpgaResources percent;  ///< of the device fabric
};

/** SmartSSD (Kintex UltraScale+ KU15P-class) fabric capacity. */
FpgaResources smartSsdFabric();

/**
 * Per-unit and total utilization of the PreSto accelerator build,
 * matching Table II's rows (Decode, Bucketize, SigridHash, Log, Total).
 */
std::vector<UnitUtilization> prestoAcceleratorUtilization();

/** Synthesized clock in Hz (223 MHz, Table II caption). */
double prestoAcceleratorClockHz();

}  // namespace presto

#endif  // PRESTO_MODELS_FPGA_RESOURCES_H_
