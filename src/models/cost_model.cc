#include "models/cost_model.h"

#include <cmath>

#include "common/logging.h"
#include "common/units.h"
#include "models/calibration.h"

namespace presto {

double
Deployment::opexDollars(double dollars_per_kwh) const
{
    const double kwh = power_watts / 1000.0 * (duration_sec / kHour);
    return kwh * dollars_per_kwh;
}

double
Deployment::totalCostDollars() const
{
    return capex_dollars + opexDollars(cal::kElectricityPerKwh);
}

Deployment
makeCpuDeployment(int cores)
{
    PRESTO_CHECK(cores >= 0, "negative core count");
    Deployment d;
    const int nodes = static_cast<int>(
        std::ceil(static_cast<double>(cores) / cal::kCpuCoresPerNode));
    d.capex_dollars = nodes * cal::kCpuNodeDollars;
    d.power_watts = cores * cal::kCpuWattsPerCore;
    d.duration_sec = cal::kDurationSec;
    return d;
}

Deployment
makeIspDeployment(int units, double watts_per_unit, double dollars_per_unit)
{
    PRESTO_CHECK(units >= 0, "negative unit count");
    Deployment d;
    d.capex_dollars = units * dollars_per_unit;
    d.power_watts = units * watts_per_unit;
    d.duration_sec = cal::kDurationSec;
    return d;
}

double
costEfficiency(const Deployment& d, double throughput_batches_per_sec)
{
    const double work = throughput_batches_per_sec * d.duration_sec;
    return work / d.totalCostDollars();
}

double
energyEfficiency(const Deployment& d, double throughput_batches_per_sec)
{
    const double work = throughput_batches_per_sec * d.duration_sec;
    return work / d.energyJoules();
}

}  // namespace presto
