/**
 * @file
 * Per-stage latency breakdown of preprocessing one mini-batch — the rows
 * plotted in Figures 5 and 12.
 */
#ifndef PRESTO_MODELS_BREAKDOWN_H_
#define PRESTO_MODELS_BREAKDOWN_H_

namespace presto {

/** Seconds spent in each preprocessing step for one mini-batch. */
struct LatencyBreakdown {
    double extract_read = 0;    ///< fetch encoded bytes (network or P2P)
    double extract_decode = 0;  ///< columnar page decode
    double bucketize = 0;       ///< feature generation
    double sigrid_hash = 0;     ///< sparse feature normalization
    double log = 0;             ///< dense feature normalization
    double other = 0;           ///< mini-batch conversion + fixed overheads

    double
    total() const
    {
        return extract_read + extract_decode + bucketize + sigrid_hash +
               log + other;
    }

    /** Feature generation + normalization share of the total. */
    double
    transformShare() const
    {
        const double t = total();
        return t > 0 ? (bucketize + sigrid_hash + log) / t : 0.0;
    }

    /** Extract (read + decode) share of the total. */
    double
    extractShare() const
    {
        const double t = total();
        return t > 0 ? (extract_read + extract_decode) / t : 0.0;
    }
};

}  // namespace presto

#endif  // PRESTO_MODELS_BREAKDOWN_H_
