/**
 * @file
 * Per-stage latency breakdown of preprocessing one mini-batch — the rows
 * plotted in Figures 5 and 12.
 */
#ifndef PRESTO_MODELS_BREAKDOWN_H_
#define PRESTO_MODELS_BREAKDOWN_H_

namespace presto {

/**
 * Effect of optional PSF page compression on a worker model. Defaults
 * model an uncompressed dataset, so every existing anchor is unchanged
 * unless a variant opts in.
 */
struct PageCompressionModel {
    /** Stored bytes / raw encoded bytes after per-page compression
     *  (1.0 = uncompressed; < 1 shrinks the read/delivery stage). */
    double stored_ratio = 1.0;
    /** Decompressor output rate in raw bytes/second; 0 disables the
     *  Extract(Decode)-side decompress term. */
    double decompress_bytes_per_sec = 0;
    /** Entropy (canonical-Huffman) stage output rate in raw
     *  bytes/second; 0 disables the term. A kLzEntropy page decodes
     *  Huffman first, then LZ, so the stage serializes with the
     *  decompress term above. */
    double entropy_decode_bytes_per_sec = 0;
};

/** Seconds spent in each preprocessing step for one mini-batch. */
struct LatencyBreakdown {
    double extract_read = 0;    ///< fetch encoded bytes (network or P2P)
    double extract_decode = 0;  ///< columnar page decode
    double bucketize = 0;       ///< feature generation
    double sigrid_hash = 0;     ///< sparse feature normalization
    double log = 0;             ///< dense feature normalization
    double other = 0;           ///< mini-batch conversion + fixed overheads

    double
    total() const
    {
        return extract_read + extract_decode + bucketize + sigrid_hash +
               log + other;
    }

    /** Feature generation + normalization share of the total. */
    double
    transformShare() const
    {
        const double t = total();
        return t > 0 ? (bucketize + sigrid_hash + log) / t : 0.0;
    }

    /** Extract (read + decode) share of the total. */
    double
    extractShare() const
    {
        const double t = total();
        return t > 0 ? (extract_read + extract_decode) / t : 0.0;
    }
};

}  // namespace presto

#endif  // PRESTO_MODELS_BREAKDOWN_H_
