#include "models/cpu_model.h"

#include "common/logging.h"
#include "models/calibration.h"
#include "models/data_size.h"

namespace presto {

CpuWorkerModel::CpuWorkerModel(const RmConfig& config,
                               double decode_sec_per_value,
                               PageCompressionModel compression,
                               double transform_sec_per_value)
    : config_(config), work_(TransformWork::expected(config)),
      decode_sec_per_value_(decode_sec_per_value),
      compression_(compression),
      transform_sec_per_value_(transform_sec_per_value)
{
    PRESTO_CHECK(decode_sec_per_value_ > 0, "non-positive decode cost");
    PRESTO_CHECK(compression_.stored_ratio > 0 &&
                     compression_.stored_ratio <= 1.0,
                 "stored ratio outside (0, 1]");
    PRESTO_CHECK(compression_.decompress_bytes_per_sec >= 0,
                 "negative decompress rate");
    PRESTO_CHECK(compression_.entropy_decode_bytes_per_sec >= 0,
                 "negative entropy decode rate");
}

LatencyBreakdown
CpuWorkerModel::batchLatency() const
{
    LatencyBreakdown b = batchLatencyLocalRead();
    // Remote Extract: encoded bytes over the 10 GbE link, chunked RPCs.
    // Compression shrinks the wire bytes by the stored ratio.
    const double bytes =
        rawEncodedBytes(config_) * compression_.stored_ratio;
    const double rpcs = bytes / cal::kRpcChunkBytes + 1.0;
    b.extract_read =
        bytes / cal::kNetworkBytesPerSec + rpcs * cal::kRpcFixedSec;
    return b;
}

LatencyBreakdown
CpuWorkerModel::batchLatencyLocalRead() const
{
    LatencyBreakdown b;
    const double raw_bytes = rawEncodedBytes(config_);
    b.extract_read = raw_bytes * compression_.stored_ratio /
                     cal::kSsdReadBytesPerSec;
    b.extract_decode = work_.raw_values * decode_sec_per_value_;
    if (compression_.decompress_bytes_per_sec > 0)
        b.extract_decode +=
            raw_bytes / compression_.decompress_bytes_per_sec;
    if (compression_.entropy_decode_bytes_per_sec > 0)
        b.extract_decode +=
            raw_bytes / compression_.entropy_decode_bytes_per_sec;
    if (transform_sec_per_value_ > 0) {
        // Fused op-chain VM: generation, normalization and conversion
        // run as one value-granular pass (BENCH_fused.json), so the
        // Transform costs one measured rate over the output values.
        // The pass time is attributed to the classic stage buckets in
        // proportion to the values each stage touches, keeping the
        // Figure 5/12 breakdown shapes inspectable.
        const double fused =
            work_.output_values * transform_sec_per_value_;
        const double parts = work_.bucketize_values + work_.hash_values +
                             work_.dense_values;
        b.bucketize =
            parts > 0 ? fused * work_.bucketize_values / parts : 0.0;
        b.sigrid_hash =
            parts > 0 ? fused * work_.hash_values / parts : 0.0;
        b.log = parts > 0 ? fused * work_.dense_values / parts : fused;
        b.other = cal::kCpuFixedSecPerBatch +
                  static_cast<double>(work_.num_features) *
                      cal::kCpuSecPerFeature;
        return b;
    }
    b.bucketize = work_.bucketize_values * work_.bucketize_levels *
                  cal::kCpuBucketizeSecPerValueLevel;
    b.sigrid_hash = work_.hash_values * cal::kCpuHashSecPerValue;
    b.log = work_.dense_values * cal::kCpuLogSecPerValue;
    b.other = work_.output_values * cal::kCpuConvertSecPerValue +
              cal::kCpuFixedSecPerBatch +
              static_cast<double>(work_.num_features) * cal::kCpuSecPerFeature;
    return b;
}

double
CpuWorkerModel::throughputPerCore() const
{
    return 1.0 / batchLatency().total();
}

double
CpuWorkerModel::colocatedThroughputPerCore() const
{
    return cal::kColocatedInterference / batchLatencyLocalRead().total();
}

double
CpuWorkerModel::throughput(int cores) const
{
    PRESTO_CHECK(cores >= 0, "negative core count");
    // Embarrassingly parallel across workers (Section III): linear scaling.
    return static_cast<double>(cores) * throughputPerCore();
}

}  // namespace presto
