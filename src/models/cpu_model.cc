#include "models/cpu_model.h"

#include "common/logging.h"
#include "models/calibration.h"
#include "models/data_size.h"

namespace presto {

CpuWorkerModel::CpuWorkerModel(const RmConfig& config,
                               double decode_sec_per_value)
    : config_(config), work_(TransformWork::expected(config)),
      decode_sec_per_value_(decode_sec_per_value)
{
    PRESTO_CHECK(decode_sec_per_value_ > 0, "non-positive decode cost");
}

LatencyBreakdown
CpuWorkerModel::batchLatency() const
{
    LatencyBreakdown b = batchLatencyLocalRead();
    // Remote Extract: encoded bytes over the 10 GbE link, chunked RPCs.
    const double bytes = rawEncodedBytes(config_);
    const double rpcs = bytes / cal::kRpcChunkBytes + 1.0;
    b.extract_read =
        bytes / cal::kNetworkBytesPerSec + rpcs * cal::kRpcFixedSec;
    return b;
}

LatencyBreakdown
CpuWorkerModel::batchLatencyLocalRead() const
{
    LatencyBreakdown b;
    b.extract_read = rawEncodedBytes(config_) / cal::kSsdReadBytesPerSec;
    b.extract_decode = work_.raw_values * decode_sec_per_value_;
    b.bucketize = work_.bucketize_values * work_.bucketize_levels *
                  cal::kCpuBucketizeSecPerValueLevel;
    b.sigrid_hash = work_.hash_values * cal::kCpuHashSecPerValue;
    b.log = work_.dense_values * cal::kCpuLogSecPerValue;
    b.other = work_.output_values * cal::kCpuConvertSecPerValue +
              cal::kCpuFixedSecPerBatch +
              static_cast<double>(work_.num_features) * cal::kCpuSecPerFeature;
    return b;
}

double
CpuWorkerModel::throughputPerCore() const
{
    return 1.0 / batchLatency().total();
}

double
CpuWorkerModel::colocatedThroughputPerCore() const
{
    return cal::kColocatedInterference / batchLatencyLocalRead().total();
}

double
CpuWorkerModel::throughput(int cores) const
{
    PRESTO_CHECK(cores >= 0, "negative core count");
    // Embarrassingly parallel across workers (Section III): linear scaling.
    return static_cast<double>(cores) * throughputPerCore();
}

}  // namespace presto
