/**
 * @file
 * Datacenter network / RPC accounting (Figure 13).
 *
 * Disagg moves raw feature data storage->preprocessing-pool and
 * train-ready tensors pool->trainer; PreSto eliminates the first hop
 * entirely because preprocessing happens inside the storage node.
 */
#ifndef PRESTO_MODELS_NETWORK_MODEL_H_
#define PRESTO_MODELS_NETWORK_MODEL_H_

#include "datagen/rm_config.h"

namespace presto {

/** Aggregate RPC time per mini-batch, split by hop. */
struct RpcBreakdown {
    double raw_in_seconds = 0;    ///< storage -> preprocessing workers
    double tensors_out_seconds = 0;  ///< preprocessing -> train manager
    double control_seconds = 0;   ///< request/ack control RPCs

    double
    total() const
    {
        return raw_in_seconds + tensors_out_seconds + control_seconds;
    }
};

/** Point-to-point link with per-RPC overhead. */
class NetworkModel
{
  public:
    NetworkModel(double bytes_per_sec, double rpc_fixed_sec,
                 double chunk_bytes);

    /** Default 10 GbE datacenter link from the calibration constants. */
    static NetworkModel datacenter();

    /** Seconds to move @p bytes as chunked RPCs. */
    double transferSeconds(double bytes) const;

    /** Per-batch RPC time of the Disagg preprocessing path. */
    RpcBreakdown disaggRpc(const RmConfig& config) const;

    /** Per-batch RPC time of the PreSto path (no raw-in hop). */
    RpcBreakdown prestoRpc(const RmConfig& config) const;

    double bytesPerSec() const { return bytes_per_sec_; }

  private:
    double bytes_per_sec_;
    double rpc_fixed_sec_;
    double chunk_bytes_;
};

}  // namespace presto

#endif  // PRESTO_MODELS_NETWORK_MODEL_H_
