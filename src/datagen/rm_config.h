/**
 * @file
 * RecSys model/dataset configurations (Table I of the paper).
 *
 * RM1 follows the public Criteo click-logs dataset; RM2-RM5 are synthetic
 * production-scale configurations patterned after Meta's published dataset
 * characteristics (Zhao et al., ISCA 2022).
 */
#ifndef PRESTO_DATAGEN_RM_CONFIG_H_
#define PRESTO_DATAGEN_RM_CONFIG_H_

#include <cstddef>
#include <string>
#include <vector>

namespace presto {

/**
 * Data preprocessing configuration parameters plus the trained RecSys
 * model architecture for one workload (one column group of Table I).
 */
struct RmConfig {
    std::string name;

    // --- data preprocessing configuration parameters ---
    size_t num_dense = 0;          ///< # raw dense features
    size_t num_sparse = 0;         ///< # raw sparse features
    double avg_sparse_length = 1;  ///< mean ids per row per sparse feature
    bool fixed_sparse_length = false;  ///< Criteo has exactly 1 id per row
    size_t num_generated = 0;      ///< # sparse features made by Bucketize
    size_t bucket_size = 1024;     ///< # bucket boundaries (m in Alg. 1)

    // --- RecSys model architecture ---
    std::vector<size_t> bottom_mlp;  ///< dense-path MLP layer widths
    std::vector<size_t> top_mlp;     ///< prediction MLP layer widths
    size_t num_tables = 0;           ///< # embedding tables
    size_t avg_embeddings = 0;       ///< rows per embedding table
    size_t embedding_dim = 128;      ///< embedding vector width

    /** Training batch size used throughout the paper's evaluation. */
    size_t batch_size = 8192;

    /** Sparse features after generation (raw + Bucketize outputs). */
    size_t
    totalSparseFeatures() const
    {
        return num_sparse + num_generated;
    }

    /** Expected scalar values per row before preprocessing. */
    double
    rawValuesPerRow() const
    {
        return static_cast<double>(num_dense) +
               static_cast<double>(num_sparse) * avg_sparse_length + 1.0;
    }

    /** Expected scalar values in one raw mini-batch partition. */
    double
    rawValuesPerBatch() const
    {
        return rawValuesPerRow() * static_cast<double>(batch_size);
    }
};

/** The five Table I workloads, indexed 0..4 for RM1..RM5. */
const std::vector<RmConfig>& allRmConfigs();

/** Lookup by 1-based paper id (1..5). Panics when out of range. */
const RmConfig& rmConfig(int rm_id);

/** Number of paper workloads (5). */
size_t numRmConfigs();

}  // namespace presto

#endif  // PRESTO_DATAGEN_RM_CONFIG_H_
