#include "datagen/distributions.h"

#include <cmath>

#include "common/logging.h"

namespace presto {

// --- ZipfSampler ---------------------------------------------------------
//
// Rejection-inversion sampling for the Zipf distribution
// ("Rejection-inversion to generate variates from monotone discrete
// distributions", Hormann & Derflinger, 1996). Item k (1-based) has
// probability proportional to 1 / k^s.

ZipfSampler::ZipfSampler(uint64_t num_items, double exponent)
    : num_items_(num_items), exponent_(exponent)
{
    PRESTO_CHECK(num_items_ > 0, "Zipf needs at least one item");
    PRESTO_CHECK(exponent_ > 0.0, "Zipf exponent must be positive");
    s_ = exponent_;
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(num_items_) + 0.5);
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s: x^(1-s)/(1-s), or log(x) when s == 1.
    if (std::fabs(s_ - 1.0) < 1e-12)
        return std::log(x);
    return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double
ZipfSampler::hInv(double x) const
{
    if (std::fabs(s_ - 1.0) < 1e-12)
        return std::exp(x);
    return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

uint64_t
ZipfSampler::sample(Rng& rng) const
{
    if (num_items_ == 1)
        return 0;
    for (;;) {
        const double u = h_x1_ + rng.uniform() * (h_n_ - h_x1_);
        const double x = hInv(u);
        auto k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > num_items_)
            k = num_items_;
        const double kd = static_cast<double>(k);
        // Accept when u falls under the histogram bar of item k.
        if (u >= h(kd + 0.5) - std::pow(kd, -s_))
            return k - 1;
    }
}

// --- PoissonSampler ------------------------------------------------------

PoissonSampler::PoissonSampler(double lambda)
    : lambda_(lambda), exp_neg_lambda_(std::exp(-lambda))
{
    PRESTO_CHECK(lambda_ >= 0.0, "Poisson lambda must be non-negative");
}

uint64_t
PoissonSampler::sample(Rng& rng) const
{
    if (lambda_ == 0.0)
        return 0;
    if (lambda_ < 30.0) {
        // Knuth's product-of-uniforms method.
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= rng.uniform();
        } while (p > exp_neg_lambda_);
        return k - 1;
    }
    // Normal approximation with continuity correction for large lambda.
    const double x = rng.normal(lambda_, std::sqrt(lambda_)) + 0.5;
    if (x < 0.0)
        return 0;
    return static_cast<uint64_t>(x);
}

}  // namespace presto
