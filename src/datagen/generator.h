/**
 * @file
 * Synthetic raw-feature generator.
 *
 * Produces the *raw* tabular data that the preprocessing stage consumes:
 * log-normal dense values with occasional missing entries (as in Criteo),
 * Zipf-distributed categorical ids scattered over a large 64-bit space
 * (as produced by upstream logging before SigridHash normalization), and
 * Bernoulli click labels. Fully deterministic per (seed, partition).
 */
#ifndef PRESTO_DATAGEN_GENERATOR_H_
#define PRESTO_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "datagen/distributions.h"
#include "datagen/rm_config.h"
#include "tabular/row_batch.h"

namespace presto {

/** Tunable knobs of the raw-data synthesizer. */
struct GeneratorOptions {
    uint64_t seed = 0x9e3779b9;
    double missing_dense_prob = 0.04;  ///< dense entries emitted as NaN
    double dense_log_mu = 2.0;         ///< log-normal location of dense vals
    double dense_log_sigma = 1.5;      ///< log-normal scale of dense vals
    double zipf_exponent = 1.05;       ///< skew of categorical popularity
    uint64_t id_space = 50'000'000;    ///< distinct raw categorical ids
    double click_through_rate = 0.03;  ///< P(label == 1)
};

/**
 * Generates raw RowBatch partitions for one RmConfig.
 *
 * Partition p is independent of all others (mirroring the paper's
 * mutually-exclusive row shards); generating partition 7 yields identical
 * bytes whether or not partitions 0-6 were generated first.
 */
class RawDataGenerator
{
  public:
    RawDataGenerator(const RmConfig& config, GeneratorOptions options = {});

    /** Schema of the generated batches: label, dense_*, sparse_*. */
    const Schema& schema() const { return schema_; }

    /**
     * Generate one partition of raw feature data.
     *
     * @param partition_index Shard number; seeds an independent RNG stream.
     * @param num_rows Rows to generate; defaults to the config batch size.
     */
    RowBatch generatePartition(uint64_t partition_index,
                               size_t num_rows = 0) const;

    const RmConfig& config() const { return config_; }
    const GeneratorOptions& options() const { return options_; }

  private:
    RmConfig config_;
    GeneratorOptions options_;
    Schema schema_;
    ZipfSampler id_sampler_;
    PoissonSampler length_sampler_;
};

}  // namespace presto

#endif  // PRESTO_DATAGEN_GENERATOR_H_
