#include "datagen/rm_config.h"

#include "common/logging.h"

namespace presto {

namespace {

RmConfig
makeConfig(std::string name, size_t num_dense, size_t num_sparse,
           double avg_len, bool fixed_len, size_t num_generated,
           size_t bucket_size, size_t num_tables)
{
    RmConfig cfg;
    cfg.name = std::move(name);
    cfg.num_dense = num_dense;
    cfg.num_sparse = num_sparse;
    cfg.avg_sparse_length = avg_len;
    cfg.fixed_sparse_length = fixed_len;
    cfg.num_generated = num_generated;
    cfg.bucket_size = bucket_size;
    cfg.bottom_mlp = {512, 256, 128};
    cfg.top_mlp = {1024, 1024, 512, 256, 1};
    cfg.num_tables = num_tables;
    cfg.avg_embeddings = 500000;
    return cfg;
}

}  // namespace

const std::vector<RmConfig>&
allRmConfigs()
{
    // Table I. num_tables = raw sparse + generated sparse features.
    static const std::vector<RmConfig> configs = {
        makeConfig("RM1", 13, 26, 1.0, /*fixed_len=*/true, 13, 1024, 39),
        makeConfig("RM2", 504, 42, 20.0, false, 21, 1024, 63),
        makeConfig("RM3", 504, 42, 20.0, false, 42, 1024, 84),
        makeConfig("RM4", 504, 42, 20.0, false, 42, 2048, 84),
        makeConfig("RM5", 504, 42, 20.0, false, 42, 4096, 84),
    };
    return configs;
}

const RmConfig&
rmConfig(int rm_id)
{
    PRESTO_CHECK(rm_id >= 1 && rm_id <= 5, "RM id must be 1..5, got ", rm_id);
    return allRmConfigs()[static_cast<size_t>(rm_id - 1)];
}

size_t
numRmConfigs()
{
    return allRmConfigs().size();
}

}  // namespace presto
