#include "datagen/generator.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace presto {

RawDataGenerator::RawDataGenerator(const RmConfig& config,
                                   GeneratorOptions options)
    : config_(config), options_(options),
      schema_(Schema::makeRecSys(config.num_dense, config.num_sparse)),
      id_sampler_(options_.id_space, options_.zipf_exponent),
      length_sampler_(config.avg_sparse_length)
{
    PRESTO_CHECK(config_.batch_size > 0, "batch size must be positive");
}

RowBatch
RawDataGenerator::generatePartition(uint64_t partition_index,
                                    size_t num_rows) const
{
    if (num_rows == 0)
        num_rows = config_.batch_size;

    Rng base(options_.seed);
    Rng rng = base.fork(partition_index);

    RowBatch batch(schema_);

    // Label column.
    {
        std::vector<float> labels(num_rows);
        for (auto& v : labels)
            v = rng.bernoulli(options_.click_through_rate) ? 1.0f : 0.0f;
        batch.addColumn(DenseColumn(std::move(labels)));
    }

    // Dense features: log-normal magnitudes with occasional missing (NaN)
    // entries, like the count-valued Criteo integer features.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (size_t f = 0; f < config_.num_dense; ++f) {
        std::vector<float> values(num_rows);
        for (auto& v : values) {
            if (rng.bernoulli(options_.missing_dense_prob)) {
                v = nan;
            } else {
                v = static_cast<float>(rng.logNormal(
                    options_.dense_log_mu, options_.dense_log_sigma));
            }
        }
        batch.addColumn(DenseColumn(std::move(values)));
    }

    // Sparse features: Zipf-popular ids scattered across a 64-bit space by
    // a mixing hash, as logged categorical values are upstream of
    // SigridHash range reduction.
    for (size_t f = 0; f < config_.num_sparse; ++f) {
        SparseColumn col;
        std::vector<int64_t> row_ids;
        for (size_t r = 0; r < num_rows; ++r) {
            size_t len;
            if (config_.fixed_sparse_length) {
                len = static_cast<size_t>(config_.avg_sparse_length);
            } else {
                len = static_cast<size_t>(length_sampler_.sample(rng));
            }
            row_ids.clear();
            row_ids.reserve(len);
            for (size_t k = 0; k < len; ++k) {
                const uint64_t item = id_sampler_.sample(rng);
                // Scatter: distinct per feature, looks like a raw hash.
                const uint64_t raw = mix64(item * 0x100000001b3ULL + f);
                row_ids.push_back(static_cast<int64_t>(raw >> 1));
            }
            col.appendRow(row_ids);
        }
        batch.addColumn(std::move(col));
    }

    PRESTO_CHECK(batch.complete(), "generated batch missing columns");
    return batch;
}

}  // namespace presto
