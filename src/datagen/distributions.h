/**
 * @file
 * Samplers for the value distributions observed in RecSys datasets:
 * Zipfian categorical ids, log-normal dense magnitudes, and Poisson-like
 * sparse feature lengths.
 */
#ifndef PRESTO_DATAGEN_DISTRIBUTIONS_H_
#define PRESTO_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>

#include "common/rng.h"

namespace presto {

/**
 * Zipf(s, N) sampler over {0, ..., N-1} using rejection-inversion
 * (W. Hormann / Jason Crease formulation). O(1) per sample for any N,
 * deterministic given the Rng stream.
 */
class ZipfSampler
{
  public:
    /**
     * @param num_items N > 0.
     * @param exponent s > 0 (s != 1 handled; s == 1 uses the log form).
     */
    ZipfSampler(uint64_t num_items, double exponent);

    /** Draw one item index in [0, num_items). */
    uint64_t sample(Rng& rng) const;

    uint64_t numItems() const { return num_items_; }
    double exponent() const { return exponent_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    uint64_t num_items_;
    double exponent_;
    double h_x1_;
    double h_n_;
    double s_;
};

/**
 * Poisson(lambda) sampler; used for sparse-feature lengths around the
 * configured average. Uses Knuth's method for small lambda and a
 * normal approximation above 30.
 */
class PoissonSampler
{
  public:
    explicit PoissonSampler(double lambda);

    uint64_t sample(Rng& rng) const;

    double lambda() const { return lambda_; }

  private:
    double lambda_;
    double exp_neg_lambda_;
};

}  // namespace presto

#endif  // PRESTO_DATAGEN_DISTRIBUTIONS_H_
