#include "datagen/criteo_tsv.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <vector>

namespace presto {

namespace {

/** Split a line on tabs; empty fields are preserved. */
std::vector<std::string_view>
splitTabs(std::string_view line)
{
    std::vector<std::string_view> fields;
    size_t start = 0;
    for (;;) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

Status
parseIntField(std::string_view field, long& out)
{
    const auto* begin = field.data();
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr != end)
        return Status::invalidArgument("bad integer field: " +
                                       std::string(field));
    return Status::okStatus();
}

Status
parseHexField(std::string_view field, uint64_t& out)
{
    const auto* begin = field.data();
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out, 16);
    if (ec != std::errc() || ptr != end)
        return Status::invalidArgument("bad hex id field: " +
                                       std::string(field));
    return Status::okStatus();
}

}  // namespace

CriteoTsvParser::CriteoTsvParser()
    : schema_(Schema::makeRecSys(kCriteoDenseFeatures,
                                 kCriteoSparseFeatures)),
      dense_(kCriteoDenseFeatures), sparse_(kCriteoSparseFeatures)
{
}

Status
CriteoTsvParser::addLine(std::string_view line)
{
    // Trim a trailing carriage return (Windows-styled dumps).
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);

    const auto fields = splitTabs(line);
    const size_t expected =
        1 + kCriteoDenseFeatures + kCriteoSparseFeatures;
    if (fields.size() != expected) {
        return Status::invalidArgument(
            "expected " + std::to_string(expected) + " fields, got " +
            std::to_string(fields.size()));
    }

    // Label.
    long label = 0;
    PRESTO_RETURN_IF_ERROR(parseIntField(fields[0], label));
    if (label != 0 && label != 1)
        return Status::invalidArgument("label must be 0 or 1");

    // Dense counts (empty -> missing).
    float dense_row[kCriteoDenseFeatures];
    for (size_t f = 0; f < kCriteoDenseFeatures; ++f) {
        const auto field = fields[1 + f];
        if (field.empty()) {
            dense_row[f] = std::numeric_limits<float>::quiet_NaN();
        } else {
            long v = 0;
            PRESTO_RETURN_IF_ERROR(parseIntField(field, v));
            dense_row[f] = static_cast<float>(v);
        }
    }

    // Categorical hex ids (empty -> empty id list).
    int64_t sparse_row[kCriteoSparseFeatures];
    bool sparse_present[kCriteoSparseFeatures];
    for (size_t f = 0; f < kCriteoSparseFeatures; ++f) {
        const auto field = fields[1 + kCriteoDenseFeatures + f];
        if (field.empty()) {
            sparse_present[f] = false;
            continue;
        }
        uint64_t id = 0;
        PRESTO_RETURN_IF_ERROR(parseHexField(field, id));
        sparse_row[f] = static_cast<int64_t>(id);
        sparse_present[f] = true;
    }

    // All fields validated; commit the row.
    labels_.push_back(static_cast<float>(label));
    for (size_t f = 0; f < kCriteoDenseFeatures; ++f)
        dense_[f].push_back(dense_row[f]);
    for (size_t f = 0; f < kCriteoSparseFeatures; ++f) {
        if (sparse_present[f])
            sparse_[f].appendRow({&sparse_row[f], 1});
        else
            sparse_[f].appendRow({});
    }
    ++num_rows_;
    return Status::okStatus();
}

RowBatch
CriteoTsvParser::takeBatch()
{
    RowBatch batch(schema_);
    batch.addColumn(DenseColumn(std::move(labels_)));
    for (auto& col : dense_)
        batch.addColumn(DenseColumn(std::move(col)));
    for (auto& col : sparse_)
        batch.addColumn(std::move(col));

    // Reset for the next batch.
    labels_ = {};
    dense_.assign(kCriteoDenseFeatures, {});
    sparse_.assign(kCriteoSparseFeatures, SparseColumn());
    num_rows_ = 0;
    return batch;
}

StatusOr<RowBatch>
parseCriteoTsv(std::string_view text)
{
    CriteoTsvParser parser;
    size_t line_no = 0;
    size_t start = 0;
    while (start < text.size()) {
        ++line_no;
        size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos)
            nl = text.size();
        const auto line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;
        if (Status st = parser.addLine(line); !st.ok()) {
            return Status::invalidArgument(
                "line " + std::to_string(line_no) + ": " + st.message());
        }
    }
    return parser.takeBatch();
}

}  // namespace presto
