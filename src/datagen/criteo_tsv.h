/**
 * @file
 * Criteo click-logs TSV ingestion.
 *
 * The public Criteo dataset (the paper's RM1) ships as tab-separated
 * lines: a binary label, 13 integer count features (possibly empty),
 * and 26 categorical features as 8-hex-digit ids (possibly empty). This
 * parser turns such lines into the library's RowBatch so real Criteo
 * data can drive the pipeline in place of the synthetic generator.
 */
#ifndef PRESTO_DATAGEN_CRITEO_TSV_H_
#define PRESTO_DATAGEN_CRITEO_TSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "tabular/row_batch.h"

namespace presto {

/** Criteo layout constants. */
inline constexpr size_t kCriteoDenseFeatures = 13;
inline constexpr size_t kCriteoSparseFeatures = 26;

/**
 * Streaming parser: feed lines, take the accumulated batch.
 */
class CriteoTsvParser
{
  public:
    CriteoTsvParser();

    /**
     * Parse one TSV line and append it as a row.
     * Empty dense fields become NaN (missing); empty categorical fields
     * become an empty id list for that feature.
     * @return kInvalidArgument on malformed lines (field count, bad
     *         number, bad hex id); the row is not appended.
     */
    Status addLine(std::string_view line);

    /** Rows successfully parsed so far. */
    size_t numRows() const { return num_rows_; }

    /**
     * Move the accumulated rows out as a RowBatch with the standard
     * RecSys schema (label, dense_0..12, sparse_0..25); resets the
     * parser.
     */
    RowBatch takeBatch();

  private:
    Schema schema_;
    std::vector<float> labels_;
    std::vector<std::vector<float>> dense_;
    std::vector<SparseColumn> sparse_;
    size_t num_rows_ = 0;
};

/**
 * Parse a whole TSV buffer (newline separated).
 * @return the batch, or the first line's error annotated with its
 *         1-based line number.
 */
StatusOr<RowBatch> parseCriteoTsv(std::string_view text);

}  // namespace presto

#endif  // PRESTO_DATAGEN_CRITEO_TSV_H_
