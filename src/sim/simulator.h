/**
 * @file
 * Minimal discrete-event simulation engine.
 *
 * Time is a double in seconds. Events fire in (time, insertion-sequence)
 * order, so simultaneous events run in the order they were scheduled and
 * every run is deterministic.
 */
#ifndef PRESTO_SIM_SIMULATOR_H_
#define PRESTO_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace presto {

/** Discrete-event scheduler and clock. */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in seconds. */
    double now() const { return now_; }

    /** Number of events executed so far. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Schedule @p fn to run @p delay seconds from now (delay >= 0). */
    void
    schedule(double delay, Callback fn)
    {
        PRESTO_CHECK(delay >= 0.0, "cannot schedule into the past");
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when (>= now). */
    void
    scheduleAt(double when, Callback fn)
    {
        PRESTO_CHECK(when >= now_, "cannot schedule into the past");
        queue_.push(Event{when, next_seq_++, std::move(fn)});
    }

    /** Execute the next event; returns false when the queue is empty. */
    bool
    step()
    {
        if (queue_.empty())
            return false;
        // std::priority_queue::top() is const; move via const_cast is the
        // standard workaround (the element is popped immediately after).
        Event ev = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ++processed_;
        ev.fn();
        return true;
    }

    /** Run until the queue drains or the clock passes @p until seconds. */
    void
    run(double until = -1.0)
    {
        while (!queue_.empty()) {
            if (until >= 0.0 && queue_.top().when > until) {
                now_ = until;
                return;
            }
            step();
        }
    }

    bool empty() const { return queue_.empty(); }

  private:
    struct Event {
        double when;
        uint64_t seq;
        Callback fn;

        bool
        operator>(const Event& other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    double now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t processed_ = 0;
};

}  // namespace presto

#endif  // PRESTO_SIM_SIMULATOR_H_
