/**
 * @file
 * Busy-time bookkeeping for simulated devices (GPU utilization in
 * Figure 3 is busy_time / wall_time measured this way).
 */
#ifndef PRESTO_SIM_UTILIZATION_H_
#define PRESTO_SIM_UTILIZATION_H_

#include "common/logging.h"

namespace presto {

/** Accumulates busy seconds of one device across a simulation. */
class UtilizationTracker
{
  public:
    /** Record a busy interval of @p duration seconds ending at any time. */
    void
    addBusy(double duration)
    {
        PRESTO_CHECK(duration >= 0.0, "negative busy interval");
        busy_ += duration;
    }

    double busySeconds() const { return busy_; }

    /** Busy fraction of [0, total_seconds]. */
    double
    utilization(double total_seconds) const
    {
        if (total_seconds <= 0.0)
            return 0.0;
        const double u = busy_ / total_seconds;
        return u > 1.0 ? 1.0 : u;
    }

    void reset() { busy_ = 0.0; }

  private:
    double busy_ = 0.0;
};

}  // namespace presto

#endif  // PRESTO_SIM_UTILIZATION_H_
