/**
 * @file
 * Bounded producer-consumer queue for discrete-event simulations.
 *
 * Models the train manager's input queue (Figure 9): preprocessing
 * workers push mini-batches, the GPU training worker pops them. When the
 * queue is full, producers stall (backpressure); when empty, the consumer
 * stalls (GPU idle time — exactly what Figure 3 measures).
 */
#ifndef PRESTO_SIM_SIM_QUEUE_H_
#define PRESTO_SIM_SIM_QUEUE_H_

#include <deque>
#include <functional>
#include <utility>

#include "common/logging.h"

namespace presto {

/**
 * Bounded FIFO whose push/pop complete via callbacks, allowing DES
 * processes to block without threads.
 */
template <typename T>
class SimQueue
{
  public:
    using PushCallback = std::function<void()>;
    using PopCallback = std::function<void(T)>;

    explicit SimQueue(size_t capacity) : capacity_(capacity)
    {
        PRESTO_CHECK(capacity_ > 0, "queue capacity must be positive");
    }

    /**
     * Deliver @p item to the queue; @p on_accepted fires once space exists
     * (immediately when not full). Items are handed to waiting consumers
     * directly, preserving FIFO order.
     */
    void
    push(T item, PushCallback on_accepted)
    {
        if (!waiting_consumers_.empty()) {
            PRESTO_CHECK(items_.empty(), "consumers waiting on non-empty queue");
            auto consumer = std::move(waiting_consumers_.front());
            waiting_consumers_.pop_front();
            ++total_pushed_;
            ++total_popped_;
            if (on_accepted)
                on_accepted();
            consumer(std::move(item));
            return;
        }
        if (items_.size() < capacity_) {
            items_.push_back(std::move(item));
            ++total_pushed_;
            if (on_accepted)
                on_accepted();
            return;
        }
        waiting_producers_.emplace_back(std::move(item),
                                        std::move(on_accepted));
        max_waiting_producers_ =
            std::max(max_waiting_producers_, waiting_producers_.size());
    }

    /**
     * Request one item; @p on_item fires immediately when available,
     * otherwise when the next producer pushes.
     */
    void
    pop(PopCallback on_item)
    {
        if (!items_.empty()) {
            T item = std::move(items_.front());
            items_.pop_front();
            ++total_popped_;
            admitWaitingProducer();
            on_item(std::move(item));
            return;
        }
        waiting_consumers_.push_back(std::move(on_item));
    }

    size_t size() const { return items_.size(); }
    size_t capacity() const { return capacity_; }
    uint64_t totalPushed() const { return total_pushed_; }
    uint64_t totalPopped() const { return total_popped_; }
    size_t waitingConsumers() const { return waiting_consumers_.size(); }
    size_t waitingProducers() const { return waiting_producers_.size(); }
    size_t maxWaitingProducers() const { return max_waiting_producers_; }

  private:
    void
    admitWaitingProducer()
    {
        if (waiting_producers_.empty())
            return;
        auto [item, cb] = std::move(waiting_producers_.front());
        waiting_producers_.pop_front();
        items_.push_back(std::move(item));
        ++total_pushed_;
        if (cb)
            cb();
    }

    size_t capacity_;
    std::deque<T> items_;
    std::deque<PopCallback> waiting_consumers_;
    std::deque<std::pair<T, PushCallback>> waiting_producers_;
    uint64_t total_pushed_ = 0;
    uint64_t total_popped_ = 0;
    size_t max_waiting_producers_ = 0;
};

}  // namespace presto

#endif  // PRESTO_SIM_SIM_QUEUE_H_
