/**
 * @file
 * Discrete-event replay of the multi-tenant ingestion service under
 * diurnal traffic from millions of simulated users.
 *
 * The threaded IngestService cannot be run for a simulated day inside a
 * test, so this scenario replays the same policies — admission control
 * (admission.h), weighted-fair device scheduling, and bounded
 * per-tenant output queues — on the DES engine (sim/simulator.h) at
 * full fleet scale: a pool of ISP devices serves batch requests from
 * tenants whose offered load follows diurnal curves with load spikes
 * (diurnal.h), while FaultInjector fail-stops remove devices mid-day.
 *
 * The scenario is the evidence generator for docs/SERVICE.md and
 * bench_service: identical seeds and options produce bit-identical
 * reports, so its two headline claims are enforceable in CI —
 *
 *  1. with admission control on, every *admitted* tenant's p99 batch
 *     latency stays within its SLO through the diurnal peak, the load
 *     spike, and the injected device failures, while the uncontrolled
 *     baseline (same traffic, admission off) violates it; and
 *  2. a tenant whose trainer stalls fills its bounded output queue and
 *     throttles — max occupancy never exceeds the configured capacity —
 *     instead of buffering without bound.
 */
#ifndef PRESTO_SERVICE_SERVICE_SCENARIO_H_
#define PRESTO_SERVICE_SERVICE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "service/diurnal.h"

namespace presto {

/** One simulated tenant (training job) of the scenario. */
struct ScenarioTenant {
    std::string name;
    /**
     * User population behind this tenant's traffic. When > 0, the
     * diurnal mean rate is derived as
     * users * requests_per_user_per_day / samples_per_batch / period,
     * overriding traffic.diurnal.mean_batches_per_sec: each user
     * request contributes one training sample, and samples are
     * aggregated into fixed-size batches before preprocessing.
     */
    double users = 0;
    double requests_per_user_per_day = 0;
    double samples_per_batch = 1;
    TrafficModel traffic;
    double weight = 1.0;       ///< weighted-fair share
    double slo_p99_sec = 0;    ///< p99 batch-latency budget (0 = none)
    size_t queue_capacity = 8; ///< bounded output queue toward the trainer
    /** Admission request time; tenants may join mid-day. */
    double join_sec = 0;
    /** Trainer stall window [start, end): output queue is not drained. */
    double stall_start_sec = 0;
    double stall_end_sec = 0;
    /**
     * Epoch-lifecycle behavior (only with lifecycle.publish_period_sec
     * set): pin this many epochs behind the head at join — 0 streams
     * the hot head epoch, >= 1 replays a historical (cold) epoch. When
     * the lagged epoch is already retired, the oldest live one at or
     * after it is pinned instead.
     */
    uint64_t pin_lag_epochs = 0;
    /**
     * Keep the join-time pin until this simulated time; afterwards the
     * tenant re-pins the head at each publish (a trainer finishing a
     * historical replay and catching up). 0 = follow the head from the
     * first publish after join.
     */
    double hold_pin_until_sec = 0;
};

/**
 * Dataset epoch lifecycle driving retention and tiering in the DES
 * replay — the scenario-level model of DatasetCatalog::applyRetention
 * plus head-epoch hot-tier promotion.
 */
struct EpochLifecycleModel {
    /** Seconds between epoch publishes (0 disables the lifecycle —
        the pre-retention scenario shape). The first publish fires at
        t = 0, before any same-time tenant join. */
    double publish_period_sec = 0;
    /** Retention: keep the newest this-many epochs (plus pinned). */
    size_t retain_epochs = 2;
    /** Modeled disk footprint of one epoch across the shards. */
    uint64_t epoch_bytes = 0;
    /** Extra per-batch service time when a tenant streams a cold
        (non-head) epoch from disk instead of the hot memory tier. */
    double cold_extra_sec = 0;
};

/** Fleet and policy knobs of one scenario run. */
struct ScenarioOptions {
    int devices = 24;            ///< ISP fleet size
    double service_sec = 0.25;   ///< per-batch preprocessing time
    double duration_sec = 86400; ///< simulated span (one day)
    uint64_t seed = 0x5e21f1ce;
    bool admission_control = true;
    FaultSpec faults;  ///< fail_stops remove devices at their times
    EpochLifecycleModel lifecycle;  ///< epoch publish/retention model
};

/** Per-tenant outcome of a scenario run. */
struct TenantReport {
    std::string name;
    bool admitted = false;
    std::string reject_reason;  ///< admission reason when rejected
    double projected_p99_sec = 0;  ///< admission-time projection
    uint64_t arrivals = 0;  ///< batch requests offered while admitted
    uint64_t served = 0;    ///< batches produced by the fleet
    double mean_latency_sec = 0;
    double p99_latency_sec = 0;
    double max_latency_sec = 0;
    size_t queue_capacity = 0;
    size_t max_queue_occupancy = 0;  ///< includes in-flight reservations
    uint64_t backlog_peak = 0;       ///< max requests waiting for a device
    bool slo_met = true;  ///< p99 <= slo (true when no SLO declared)
    uint64_t hot_served = 0;   ///< batches served from the hot head epoch
    uint64_t cold_served = 0;  ///< batches streamed from a cold epoch
    uint64_t pinned_epoch = 0; ///< epoch pinned at scenario end
};

/** Lifecycle outcome of a scenario run (zeros when disabled). */
struct LifecycleReport {
    uint64_t epochs_published = 0;
    uint64_t epochs_retired = 0;
    /** Retention passes that spared an otherwise-eligible epoch
        because a tenant still pinned it (one count per epoch per
        pass). */
    uint64_t epochs_kept_pinned = 0;
    uint64_t peak_live_epochs = 0;
    uint64_t peak_live_bytes = 0;
    uint64_t final_live_bytes = 0;  ///< steady-state disk footprint
    /**
     * The footprint gate: true iff after every retention pass the
     * modeled live bytes stayed within (retain_epochs + independently
     * counted pinned-old epochs) * epoch_bytes — i.e. retention kept
     * the multi-day replay's disk footprint bounded.
     */
    bool footprint_bounded = true;
    uint64_t hot_served = 0;
    uint64_t cold_served = 0;
    double hot_hit_rate = 0;  ///< hot / (hot + cold)
    double mean_hot_latency_sec = 0;
    double mean_cold_latency_sec = 0;  ///< cold-epoch pin latency
    double p99_cold_latency_sec = 0;
};

/** Whole-fleet outcome of a scenario run. */
struct ScenarioReport {
    std::vector<TenantReport> tenants;  ///< in input order
    double duration_sec = 0;
    int devices = 0;
    uint64_t devices_failed = 0;
    double capacity_device_sec = 0;  ///< surviving device-seconds
    double busy_device_sec = 0;
    double fleet_utilization = 0;  ///< busy / surviving capacity
    uint64_t total_arrivals = 0;
    uint64_t total_served = 0;
    LifecycleReport lifecycle;  ///< epoch retention/tiering outcome
};

/**
 * Run the scenario to completion. Deterministic: the report is a pure
 * function of (options, tenants).
 */
ScenarioReport runServiceScenario(const ScenarioOptions& options,
                                  const std::vector<ScenarioTenant>& tenants);

}  // namespace presto

#endif  // PRESTO_SERVICE_SERVICE_SCENARIO_H_
