/**
 * @file
 * Diurnal traffic model for the service-tier DES scenario.
 *
 * Recommendation inference — and therefore the training-data ingestion
 * that feeds on its logs — follows the day/night cycle of the user
 * population: demand swings sinusoidally around a mean with occasional
 * short spikes (product launches, retraining storms). The scenario
 * models a tenant's offered batch rate as
 *
 *     rate(t) = mean * (1 + amplitude * sin(2*pi*(t - phase)/period))
 *
 * multiplied by the factor of any spike window containing t.
 *
 * Arrivals are drawn *per one-second slot* with a counter-based key
 * (seed, tenant, slot), not from a shared stream: the number and
 * placement of arrivals in a slot is a pure function of those three
 * values, so the generated traffic is bit-identical regardless of how
 * many tenants exist or in what order the simulator fires events.
 */
#ifndef PRESTO_SERVICE_DIURNAL_H_
#define PRESTO_SERVICE_DIURNAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/distributions.h"

namespace presto {

inline constexpr double kTwoPi = 6.283185307179586;

/** Sinusoidal day/night demand curve. */
struct DiurnalModel {
    double mean_batches_per_sec = 1.0;
    double amplitude = 0.0;      ///< peak swing as a fraction of mean [0,1)
    double period_sec = 86400;   ///< one simulated day
    double phase_sec = 0;        ///< shifts the peak within the day

    double
    rate(double t) const
    {
        const double angle = kTwoPi * (t - phase_sec) / period_sec;
        return mean_batches_per_sec * (1.0 + amplitude * std::sin(angle));
    }
};

/** Temporary demand multiplier over [start_sec, end_sec). */
struct SpikeWindow {
    double start_sec = 0;
    double end_sec = 0;
    double factor = 1.0;
};

/** One tenant's full offered-load model. */
struct TrafficModel {
    DiurnalModel diurnal;
    std::vector<SpikeWindow> spikes;

    /** Offered batch rate at time @p t (diurnal x active spikes). */
    double
    rate(double t) const
    {
        double r = diurnal.rate(t);
        for (const SpikeWindow& s : spikes) {
            if (t >= s.start_sec && t < s.end_sec)
                r *= s.factor;
        }
        return r > 0.0 ? r : 0.0;
    }

    /** Worst-case rate over the cycle: diurnal peak x largest spike. */
    double
    peakRate() const
    {
        double peak = diurnal.mean_batches_per_sec *
                      (1.0 + diurnal.amplitude);
        double worst_spike = 1.0;
        for (const SpikeWindow& s : spikes)
            worst_spike = std::max(worst_spike, s.factor);
        return peak * worst_spike;
    }
};

/**
 * Arrival offsets (seconds past the slot start, ascending) of one
 * tenant's one-second slot starting at @p slot seconds. Poisson count at
 * the slot-midpoint rate, offsets uniform in the slot; everything is
 * keyed on (seed, tenant, slot) alone.
 */
inline std::vector<double>
slotArrivals(const TrafficModel& traffic, uint64_t seed, uint64_t tenant,
             uint64_t slot)
{
    const double rate =
        traffic.rate(static_cast<double>(slot) + 0.5);
    if (rate <= 0.0)
        return {};
    Rng rng(mix64(seed ^ mix64(tenant + 1) ^ mix64(slot * 0x51ab5) ^
                  0xd1a2d1a2d1a2d1a2ULL));
    const uint64_t count = PoissonSampler(rate).sample(rng);
    std::vector<double> offsets(count);
    for (double& offset : offsets)
        offset = rng.uniform();
    std::sort(offsets.begin(), offsets.end());
    return offsets;
}

}  // namespace presto

#endif  // PRESTO_SERVICE_DIURNAL_H_
