/**
 * @file
 * DatasetCatalog: epoch-versioned datasets over sharded partition
 * storage — the data-plane substrate of the multi-tenant ingestion
 * service (docs/SERVICE.md).
 *
 * Production recommendation training continuously re-snapshots its
 * training tables: a new *epoch* of a dataset appears every few hours
 * while trainers are still streaming the previous one (Meta's data
 * storage & ingestion paper, PAPERS.md). The catalog models exactly
 * that lifecycle:
 *
 *  - A *dataset* is registered once: a name, an RmConfig, a generator
 *    seed, a partition count per epoch, and a shard count. Shards model
 *    independent storage nodes; partition i of an epoch lives on shard
 *    i % S.
 *  - publishEpoch() materializes (and, with segment-store shards,
 *    durably commits) every partition of the next epoch and then
 *    atomically bumps the dataset head. Readers never observe a
 *    partially published epoch: the head moves only after the last
 *    partition's commit record is sealed.
 *  - pin() hands out an EpochReader pinned to one epoch. A pinned
 *    reader replays its epoch bit-identically — regardless of
 *    concurrent publishes, cache evictions, or (in persistent mode) a
 *    crash that aborts a later publish — because partition content is a
 *    pure function of (dataset seed, partition id) and partition ids
 *    embed the epoch.
 *  - applyRetention() bounds the steady-state footprint: old epochs
 *    beyond the newest retain_epochs are retired through the segment
 *    stores' journaled retire path — except epochs trainers still
 *    pin, which survive until their last reader drops. The head epoch
 *    is promoted into each shard's hot memory tier on publish, so hot
 *    reads skip the device while cold pins stream from disk, and the
 *    shards' scrub cursors prioritize pinned epochs' segments.
 *
 * Crash safety (persistent mode): every partition commit goes through
 * SegmentStore's crash-atomic intent->publish->seal protocol, so a
 * crash mid-publish (FaultSpec::crash_at_durable_op) leaves a strict
 * subset of the new epoch's partitions committed and the head
 * unmoved. Re-registering the dataset over the recovered shards
 * re-derives the head from the journals: an epoch is published iff
 * every one of its partitions is live. Re-publishing after a crash is
 * idempotent — already-committed partitions are reused, not rewritten.
 */
#ifndef PRESTO_SERVICE_DATASET_CATALOG_H_
#define PRESTO_SERVICE_DATASET_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "datagen/rm_config.h"
#include "store/segment_store.h"
#include "tabular/row_batch.h"

namespace presto {

/** Static description of one catalog dataset. */
struct DatasetSpec {
    std::string name;
    RmConfig config;
    GeneratorOptions generator;  ///< seed defines all epoch content
    size_t partitions_per_epoch = 4;
    /** Storage shards (ignored when segment-store shards are attached —
        the shard count is then the number of attached stores). */
    size_t shards = 1;
    /**
     * Per-shard encoded-partition cache budget in bytes (0 =
     * unlimited). A long-running service sets this so old epochs'
     * cached encodings are evicted instead of growing without bound;
     * evicted partitions re-materialize deterministically on demand.
     */
    uint64_t cache_budget_bytes = 0;
    /**
     * Retention policy: keep the newest @c retain_epochs published
     * epochs plus any older epoch with live pins; applyRetention()
     * retires the rest. 0 (the default) disables retention — every
     * epoch stays live forever, PR 9 behavior.
     */
    size_t retain_epochs = 0;
    /**
     * Per-shard hot memory tier budget in bytes. The head epoch is
     * promoted into the hot tier on publish so trainers streaming it
     * skip the device path entirely (PartitionStore hot-tier hits);
     * older pinned epochs stream cold from disk. 0 sizes the tier
     * against the cache budget (cache_budget_bytes / 2); the tier is
     * disabled when both are 0.
     */
    uint64_t hot_tier_bytes = 0;
};

/** What one applyRetention() pass did. */
struct RetentionReport {
    uint64_t epochs_retired = 0;       ///< epochs fully retired this pass
    uint64_t epochs_kept_pinned = 0;   ///< eligible but pinned, spared
    uint64_t partitions_retired = 0;
    uint64_t bytes_reclaimed = 0;      ///< encoded bytes freed (disk in
                                       ///< persistent mode)
    uint64_t live_epochs = 0;          ///< epochs still live after pass
};

struct CatalogDataset;  // internal state, defined in dataset_catalog.cc

/**
 * A reader pinned to one published epoch of one dataset.
 *
 * Copyable; copies stay pinned to the same epoch. The reader keeps the
 * dataset state alive via shared ownership, so it remains valid after
 * the catalog itself is destroyed. Thread-safe (the underlying
 * partition stores lock internally).
 *
 * Pinning is visible to retention: while any reader (or copy) of an
 * epoch is alive, applyRetention() will not retire that epoch, so the
 * reader keeps replaying it bit-identically no matter how many newer
 * epochs are published and retired around it. The pin releases when
 * the last copy is destroyed.
 */
class EpochReader
{
  public:
    EpochReader() = default;

    /** The pinned epoch (1-based). */
    uint64_t epoch() const { return epoch_; }

    /** Logical partitions in this epoch. */
    size_t numPartitions() const { return partitions_; }

    const RmConfig& config() const;
    const Schema& schema() const;

    /** Storage partition id of logical partition @p index. */
    uint64_t partitionId(size_t index) const;

    /** Shard holding logical partition @p index. */
    size_t shardOf(size_t index) const;

    /**
     * Encoded PSF bytes of logical partition @p index, fetched the way
     * a preprocessing worker reads them off the shard (subject to the
     * shard's fault injector, like PartitionStore::fetchPartition).
     * @param hot_tier_hit Optional: whether the shard served this
     *        fetch from its hot memory tier.
     */
    StatusOr<std::vector<uint8_t>> fetchEncoded(
        size_t index, uint64_t attempt = 0,
        bool* hot_tier_hit = nullptr) const;

    /** Fetch + decode logical partition @p index into @p out.
        @param hot_tier_hit Optional: as in fetchEncoded. */
    Status readPartition(size_t index, RowBatch& out,
                         bool* hot_tier_hit = nullptr) const;

    bool valid() const { return state_ != nullptr; }

  private:
    friend class DatasetCatalog;
    EpochReader(std::shared_ptr<CatalogDataset> state, uint64_t epoch,
                size_t partitions, std::shared_ptr<void> pin_token);

    std::shared_ptr<CatalogDataset> state_;
    uint64_t epoch_ = 0;
    size_t partitions_ = 0;
    /** RAII pin: keeps the epoch's catalog pin count positive for the
        life of this reader and every copy of it. */
    std::shared_ptr<void> pin_token_;
};

/**
 * Registry of epoch-versioned datasets. Thread-safe: registration,
 * publishes, and pins may race arbitrarily; pinned readers are
 * unaffected by any of them.
 */
class DatasetCatalog
{
  public:
    DatasetCatalog() = default;
    DatasetCatalog(const DatasetCatalog&) = delete;
    DatasetCatalog& operator=(const DatasetCatalog&) = delete;

    /**
     * Register a dataset. With @p segment_shards non-empty, the dataset
     * is persistence-backed: partitions commit durably into the given
     * stores (not owned; must outlive the catalog and any readers) and
     * the published head is recovered from their journals — which is
     * how a restart after a mid-publish crash resumes at the last
     * fully-published epoch.
     */
    Status registerDataset(DatasetSpec spec,
                           std::vector<SegmentStore*> segment_shards = {});

    /**
     * Publish the next epoch of @p dataset: materialize (and durably
     * commit, when persistent) all of its partitions, then atomically
     * advance the head. On any error (including an injected crash) the
     * head is untouched and no reader can observe the partial epoch.
     * Publishes of one dataset are serialized; concurrent pins and
     * reads proceed untouched.
     * @return the new epoch number.
     */
    StatusOr<uint64_t> publishEpoch(const std::string& dataset);

    /** Pin the newest published epoch (error when none exists yet). */
    StatusOr<EpochReader> pin(const std::string& dataset) const;

    /** Pin a specific published epoch for historical replay. */
    StatusOr<EpochReader> pin(const std::string& dataset,
                              uint64_t epoch) const;

    /** Newest published epoch of @p dataset (0 = none yet). */
    StatusOr<uint64_t> headEpoch(const std::string& dataset) const;

    /**
     * Apply the dataset's retention policy now: retire every epoch
     * older than the newest spec.retain_epochs ones, except epochs
     * with live pins (spared this pass, reported as kept_pinned) —
     * they become eligible again once their last reader drops. A
     * no-op when retain_epochs is 0.
     *
     * Retirement goes through the segment stores' journaled retire
     * path (persistent mode), so a crash mid-pass leaves each epoch
     * recoverable as either fully live or fully retired — recovery at
     * the next registerDataset() finishes any half-retired epoch.
     * Racing pin() calls are linearized against the pass: a pin
     * either lands before the epoch is claimed (sparing it) or fails.
     */
    StatusOr<RetentionReport> applyRetention(const std::string& dataset);

    /** Live pins on one epoch (0 when unpinned or retired). */
    StatusOr<uint64_t> pinCount(const std::string& dataset,
                                uint64_t epoch) const;

    /** True when @p epoch has been retired by retention. */
    StatusOr<bool> epochRetired(const std::string& dataset,
                                uint64_t epoch) const;

    /** Published epochs still live (head minus retired). */
    StatusOr<uint64_t> liveEpochs(const std::string& dataset) const;

    /** Live segment bytes across the dataset's persistent shards —
        the steady-state disk footprint retention bounds. 0 in
        memory-only mode. */
    StatusOr<uint64_t> liveBytes(const std::string& dataset) const;

    /** Registered dataset names, sorted. */
    std::vector<std::string> datasets() const;

  private:
    StatusOr<std::shared_ptr<CatalogDataset>> find(
        const std::string& dataset) const;

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<CatalogDataset>> datasets_;
};

/**
 * Maximum partitions per epoch: partition ids embed (epoch, index) as
 * epoch << 20 | index, so index must fit in 20 bits.
 */
inline constexpr size_t kMaxPartitionsPerEpoch = 1u << 20;

/** Storage partition id of (epoch, logical index). */
inline constexpr uint64_t
epochPartitionId(uint64_t epoch, uint64_t index)
{
    return (epoch << 20) | index;
}

}  // namespace presto

#endif  // PRESTO_SERVICE_DATASET_CATALOG_H_
