#include "service/ingest_service.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "models/calibration.h"

namespace presto {

/**
 * All mutable fields are guarded by the service mutex except the
 * production step itself (fetch + decode + transform), which runs
 * unlocked on whatever worker claimed the session; `in_flight` keeps
 * claims exclusive, so per-session delivery order is partition order.
 */
struct IngestService::Session {
    uint64_t id = 0;
    TenantSpec spec;
    EpochReader reader;
    std::unique_ptr<PlanExecutor> executor;
    double service_sec_estimate = 0;

    std::deque<DeliveredBatch> queue;
    std::condition_variable queue_cv;  ///< consumers: batch or closure
    bool in_flight = false;            ///< a worker is producing for us
    bool closing = false;
    Status error;  ///< first production failure (delivered after drain)

    double vtime = 0;  ///< weighted-fair virtual time
    uint64_t next_index = 0;
    uint64_t produced = 0;
    uint64_t delivered = 0;
    size_t max_queue_occupancy = 0;
    uint64_t hot_tier_hits = 0;
    uint64_t cold_fetches = 0;

    bool
    eligible() const
    {
        return !closing && error.ok() && !in_flight &&
               queue.size() < spec.queue_capacity;
    }
};

IngestService::IngestService(DatasetCatalog& catalog,
                             ServiceOptions options)
    : catalog_(catalog), options_(options)
{
    PRESTO_CHECK(options_.workers >= 1,
                 "service needs at least one worker");
    workers_.reserve(static_cast<size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

IngestService::~IngestService()
{
    {
        std::scoped_lock lock(mu_);
        stopping_ = true;
        for (auto& [id, session] : sessions_)
            session->queue_cv.notify_all();
        work_cv_.notify_all();
    }
    for (std::thread& worker : workers_)
        worker.join();
}

double
IngestService::estimateServiceSec(const RmConfig& config) const
{
    if (options_.service_sec_override > 0)
        return options_.service_sec_override;
    // Decode + fused transform at the measured calibration rates; the
    // admission projection only needs the right order of magnitude.
    const double values = config.rawValuesPerBatch();
    return values * (cal::kMeasuredSimdDecodeSecPerValue +
                     cal::kMeasuredFusedSecPerValue);
}

std::vector<AdmissionInput>
IngestService::admittedInputsLocked() const
{
    std::vector<AdmissionInput> admitted;
    admitted.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
        if (session->closing)
            continue;
        AdmissionInput input;
        input.tenant = session->spec.name;
        input.peak_batches_per_sec = session->spec.peak_batches_per_sec;
        input.service_sec = session->service_sec_estimate;
        input.slo_p99_sec = session->spec.slo_p99_sec;
        admitted.push_back(std::move(input));
    }
    return admitted;
}

AdmissionDecision
IngestService::admissionProbe(const TenantSpec& spec) const
{
    AdmissionInput candidate;
    candidate.tenant = spec.name;
    candidate.peak_batches_per_sec = spec.peak_batches_per_sec;
    candidate.slo_p99_sec = spec.slo_p99_sec;
    // Pin exactly what openSession() would pin, so the probe never
    // reports admitted for a spec openSession() would fail.
    auto reader = spec.epoch == 0
                      ? catalog_.pin(spec.dataset)
                      : catalog_.pin(spec.dataset, spec.epoch);
    if (!reader.ok()) {
        AdmissionDecision decision;
        decision.admitted = false;
        decision.reason = reader.status().toString();
        return decision;
    }
    candidate.service_sec = estimateServiceSec(reader->config());

    std::scoped_lock lock(mu_);
    return evaluateAdmission(admittedInputsLocked(), candidate,
                             static_cast<double>(options_.workers));
}

StatusOr<uint64_t>
IngestService::openSession(const TenantSpec& spec)
{
    if (spec.queue_capacity == 0)
        return Status::invalidArgument("queue_capacity must be >= 1");
    // A non-positive (or non-finite) weight corrupts the virtual-time
    // bookkeeping: 1/0 starves the session forever, a negative weight
    // monopolizes every worker.
    if (!std::isfinite(spec.weight) || spec.weight <= 0)
        return Status::invalidArgument("weight must be positive");
    auto reader = spec.epoch == 0
                      ? catalog_.pin(spec.dataset)
                      : catalog_.pin(spec.dataset, spec.epoch);
    if (!reader.ok())
        return reader.status();

    auto session = std::make_shared<Session>();
    session->spec = spec;
    session->reader = *reader;
    session->service_sec_estimate =
        estimateServiceSec(reader->config());
    TransformPlan plan = spec.plan.has_value()
                             ? *spec.plan
                             : TransformPlan::standard(reader->config());
    if (Status st = plan.validate(reader->schema()); !st.ok())
        return st;
    session->executor = std::make_unique<PlanExecutor>(
        std::move(plan), reader->schema());

    std::scoped_lock lock(mu_);
    if (stopping_)
        return Status::aborted("service is shutting down");
    if (options_.admission_control) {
        AdmissionInput candidate;
        candidate.tenant = spec.name;
        candidate.peak_batches_per_sec = spec.peak_batches_per_sec;
        candidate.service_sec = session->service_sec_estimate;
        candidate.slo_p99_sec = spec.slo_p99_sec;
        const AdmissionDecision decision =
            evaluateAdmission(admittedInputsLocked(), candidate,
                              static_cast<double>(options_.workers));
        if (!decision.admitted) {
            return Status::failedPrecondition(
                "tenant " + spec.name + " rejected: " + decision.reason);
        }
    }
    // A joining tenant starts at the minimum live virtual time so it
    // neither starves others nor replays the backlog it never had.
    double min_vtime = std::numeric_limits<double>::infinity();
    for (const auto& [id, other] : sessions_) {
        if (!other->closing)
            min_vtime = std::min(min_vtime, other->vtime);
    }
    session->vtime = std::isfinite(min_vtime) ? min_vtime : 0.0;
    session->id = next_session_id_++;
    sessions_.emplace(session->id, session);
    work_cv_.notify_all();
    return session->id;
}

std::shared_ptr<IngestService::Session>
IngestService::findSession(uint64_t session_id) const
{
    std::scoped_lock lock(mu_);
    auto it = sessions_.find(session_id);
    return it == sessions_.end() ? nullptr : it->second;
}

void
IngestService::workerLoop()
{
    std::unique_lock lock(mu_);
    for (;;) {
        if (stopping_)
            return;
        // Weighted-fair pick: eligible session with the smallest
        // virtual time (ties: lowest id, keeping runs deterministic).
        std::shared_ptr<Session> pick;
        for (const auto& [id, session] : sessions_) {
            if (!session->eligible())
                continue;
            if (pick == nullptr || session->vtime < pick->vtime)
                pick = session;
        }
        if (pick == nullptr) {
            work_cv_.wait(lock);
            continue;
        }
        pick->in_flight = true;
        pick->vtime += 1.0 / pick->spec.weight;
        const uint64_t index =
            pick->next_index % pick->reader.numPartitions();
        ++pick->next_index;
        lock.unlock();

        // Fetch + decode + transform outside the lock.
        DeliveredBatch out;
        out.epoch = pick->reader.epoch();
        out.partition_index = index;
        RowBatch raw;
        bool hot_tier_hit = false;
        Status st = pick->reader.readPartition(index, raw, &hot_tier_hit);
        if (st.ok()) {
            out.batch = std::make_unique<MiniBatch>(
                pick->executor->run(raw));
        }

        lock.lock();
        pick->in_flight = false;
        if (st.ok()) {
            if (hot_tier_hit)
                ++pick->hot_tier_hits;
            else
                ++pick->cold_fetches;
        }
        if (!st.ok()) {
            pick->error = st;
        } else if (!pick->closing) {
            out.sequence = pick->produced++;
            pick->queue.push_back(std::move(out));
            pick->max_queue_occupancy =
                std::max(pick->max_queue_occupancy, pick->queue.size());
        }
        pick->queue_cv.notify_all();
        // The session may still be eligible (queue not full) and other
        // sessions may have gained eligibility; loop re-evaluates.
    }
}

StatusOr<DeliveredBatch>
IngestService::nextBatch(uint64_t session_id)
{
    std::shared_ptr<Session> session = findSession(session_id);
    if (session == nullptr) {
        return Status::notFound("unknown session " +
                                std::to_string(session_id));
    }
    std::unique_lock lock(mu_);
    session->queue_cv.wait(lock, [&] {
        return !session->queue.empty() || session->closing || stopping_ ||
               !session->error.ok();
    });
    if (!session->queue.empty()) {
        DeliveredBatch batch = std::move(session->queue.front());
        session->queue.pop_front();
        ++session->delivered;
        work_cv_.notify_all();  // queue space: session eligible again
        return batch;
    }
    if (!session->error.ok())
        return session->error;
    return Status::aborted("session " + std::to_string(session_id) +
                           " closed");
}

Status
IngestService::closeSession(uint64_t session_id)
{
    std::unique_lock lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
        return Status::notFound("unknown session " +
                                std::to_string(session_id));
    }
    std::shared_ptr<Session> session = it->second;
    session->closing = true;
    session->queue_cv.notify_all();
    // Wait out an in-flight production so the worker never touches a
    // session the map no longer owns. (The shared_ptr would keep it
    // alive regardless; this keeps shutdown deterministic.)
    session->queue_cv.wait(lock, [&] { return !session->in_flight; });
    sessions_.erase(session_id);
    work_cv_.notify_all();
    return Status::okStatus();
}

StatusOr<SessionStats>
IngestService::sessionStats(uint64_t session_id) const
{
    std::scoped_lock lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
        return Status::notFound("unknown session " +
                                std::to_string(session_id));
    }
    const Session& s = *it->second;
    SessionStats stats;
    stats.tenant = s.spec.name;
    stats.epoch = s.reader.epoch();
    stats.produced = s.produced;
    stats.delivered = s.delivered;
    stats.queue_capacity = s.spec.queue_capacity;
    stats.max_queue_occupancy = s.max_queue_occupancy;
    stats.service_sec_estimate = s.service_sec_estimate;
    stats.hot_tier_hits = s.hot_tier_hits;
    stats.cold_fetches = s.cold_fetches;
    return stats;
}

std::vector<SessionStats>
IngestService::allSessionStats() const
{
    std::scoped_lock lock(mu_);
    std::vector<SessionStats> all;
    all.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
        const Session& s = *session;
        SessionStats stats;
        stats.tenant = s.spec.name;
        stats.epoch = s.reader.epoch();
        stats.produced = s.produced;
        stats.delivered = s.delivered;
        stats.queue_capacity = s.spec.queue_capacity;
        stats.max_queue_occupancy = s.max_queue_occupancy;
        stats.service_sec_estimate = s.service_sec_estimate;
        stats.hot_tier_hits = s.hot_tier_hits;
        stats.cold_fetches = s.cold_fetches;
        all.push_back(std::move(stats));
    }
    return all;
}

}  // namespace presto
