#include "service/admission.h"

#include <cstdio>

#include "common/logging.h"

namespace presto {

namespace {

std::string
formatSec(double sec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fs", sec);
    return buf;
}

std::string
formatRho(double rho)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", rho);
    return buf;
}

}  // namespace

double
projectedP99Sec(double service_sec, double rho)
{
    if (rho >= 1.0)
        return 1e9;  // saturated: latency grows without bound
    return service_sec * (1.0 + kP99WaitFactor * rho / (1.0 - rho));
}

AdmissionDecision
evaluateAdmission(const std::vector<AdmissionInput>& admitted,
                  const AdmissionInput& candidate, double servers)
{
    PRESTO_CHECK(servers > 0, "admission needs a positive fleet size");
    AdmissionDecision decision;

    double demand = candidate.peak_batches_per_sec * candidate.service_sec;
    for (const AdmissionInput& t : admitted)
        demand += t.peak_batches_per_sec * t.service_sec;
    const double rho = demand / servers;
    decision.projected_utilization = rho;
    decision.projected_p99_sec = projectedP99Sec(candidate.service_sec, rho);

    if (rho >= kMaxStableUtilization) {
        decision.reason =
            "projected peak utilization " + formatRho(rho) +
            " exceeds stable limit " + formatRho(kMaxStableUtilization);
        return decision;
    }
    if (candidate.slo_p99_sec > 0 &&
        decision.projected_p99_sec > candidate.slo_p99_sec) {
        decision.reason = "projected p99 " +
                          formatSec(decision.projected_p99_sec) +
                          " exceeds SLO budget " +
                          formatSec(candidate.slo_p99_sec);
        return decision;
    }
    // Admitting the candidate raises everyone's queueing delay: an
    // already-admitted tenant's budget also vetoes the admission.
    for (const AdmissionInput& t : admitted) {
        if (t.slo_p99_sec <= 0)
            continue;
        const double p99 = projectedP99Sec(t.service_sec, rho);
        if (p99 > t.slo_p99_sec) {
            decision.reason = "would push tenant " + t.tenant +
                              " to projected p99 " + formatSec(p99) +
                              " past its SLO budget " +
                              formatSec(t.slo_p99_sec);
            return decision;
        }
    }
    decision.admitted = true;
    return decision;
}

}  // namespace presto
