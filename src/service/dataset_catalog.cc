#include "service/dataset_catalog.h"

#include <algorithm>
#include <set>

#include "columnar/columnar_file.h"
#include "common/logging.h"

namespace presto {

/**
 * Shared state of one registered dataset. Immutable after registration
 * except for the published head (atomic) and the shard stores' internal
 * caches (internally locked). Pinned readers share ownership, so a
 * reader outlives both the catalog and any later re-registration.
 */
struct CatalogDataset {
    DatasetSpec spec;
    std::unique_ptr<RawDataGenerator> generator;
    /** One PartitionStore per shard, all over the same generator. */
    std::vector<std::unique_ptr<PartitionStore>> shards;
    /** Durable backing per shard (empty in memory-only mode). */
    std::vector<SegmentStore*> segment_shards;

    /** Serializes publishes of this dataset. */
    std::mutex publish_mu;
    /** Newest fully-published epoch (0 = none). The release store in
        publishEpoch() is the single atomic-publish point. */
    std::atomic<uint64_t> head{0};

    bool persistent() const { return !segment_shards.empty(); }
    size_t numShards() const { return shards.size(); }
};

EpochReader::EpochReader(std::shared_ptr<CatalogDataset> state,
                         uint64_t epoch, size_t partitions)
    : state_(std::move(state)), epoch_(epoch), partitions_(partitions)
{
}

const RmConfig&
EpochReader::config() const
{
    PRESTO_CHECK(valid(), "reading through an unpinned EpochReader");
    return state_->spec.config;
}

const Schema&
EpochReader::schema() const
{
    PRESTO_CHECK(valid(), "reading through an unpinned EpochReader");
    return state_->generator->schema();
}

uint64_t
EpochReader::partitionId(size_t index) const
{
    PRESTO_CHECK(valid() && index < partitions_,
                 "epoch partition index out of range");
    return epochPartitionId(epoch_, index);
}

size_t
EpochReader::shardOf(size_t index) const
{
    PRESTO_CHECK(valid() && index < partitions_,
                 "epoch partition index out of range");
    return index % state_->numShards();
}

StatusOr<std::vector<uint8_t>>
EpochReader::fetchEncoded(size_t index, uint64_t attempt) const
{
    if (!valid())
        return Status::failedPrecondition("EpochReader is not pinned");
    if (index >= partitions_) {
        return Status::outOfRange(
            "partition " + std::to_string(index) + " >= epoch size " +
            std::to_string(partitions_));
    }
    return state_->shards[index % state_->numShards()]->fetchPartition(
        partitionId(index), attempt);
}

Status
EpochReader::readPartition(size_t index, RowBatch& out) const
{
    auto encoded = fetchEncoded(index);
    if (!encoded.ok())
        return encoded.status();
    ColumnarFileReader reader;
    if (Status st = reader.open(*encoded); !st.ok())
        return st;
    return reader.readAllInto(out);
}

namespace {

/**
 * Head recovery over persistent shards: epoch e is published iff every
 * one of its partitions has a live segment on its shard. Epochs are
 * published sequentially, so the head is the longest prefix of complete
 * epochs — a crash mid-publish of e leaves e incomplete and the head at
 * e - 1.
 */
uint64_t
recoverHead(const DatasetSpec& spec,
            const std::vector<SegmentStore*>& segment_shards)
{
    std::set<uint64_t> live;
    for (SegmentStore* store : segment_shards) {
        for (const SegmentInfo& info : store->listSegments()) {
            if (info.state == SegmentState::kSealed ||
                info.state == SegmentState::kCompacted)
                live.insert(info.meta.partition_id);
        }
    }
    uint64_t head = 0;
    for (uint64_t epoch = 1;; ++epoch) {
        bool complete = true;
        for (uint64_t i = 0; i < spec.partitions_per_epoch; ++i) {
            if (live.count(epochPartitionId(epoch, i)) == 0) {
                complete = false;
                break;
            }
        }
        if (!complete)
            break;
        head = epoch;
    }
    return head;
}

}  // namespace

Status
DatasetCatalog::registerDataset(DatasetSpec spec,
                                std::vector<SegmentStore*> segment_shards)
{
    if (spec.name.empty())
        return Status::invalidArgument("dataset name must not be empty");
    if (spec.partitions_per_epoch == 0 ||
        spec.partitions_per_epoch > kMaxPartitionsPerEpoch) {
        return Status::invalidArgument(
            "partitions_per_epoch must be in [1, " +
            std::to_string(kMaxPartitionsPerEpoch) + "]");
    }
    const size_t num_shards =
        segment_shards.empty() ? spec.shards : segment_shards.size();
    if (num_shards == 0)
        return Status::invalidArgument("dataset needs at least one shard");

    auto state = std::make_shared<CatalogDataset>();
    state->spec = std::move(spec);
    state->spec.shards = num_shards;
    state->generator = std::make_unique<RawDataGenerator>(
        state->spec.config, state->spec.generator);
    state->segment_shards = std::move(segment_shards);
    for (size_t s = 0; s < num_shards; ++s) {
        auto shard = std::make_unique<PartitionStore>(*state->generator);
        if (state->spec.cache_budget_bytes > 0)
            shard->setCacheBudget(state->spec.cache_budget_bytes);
        if (state->persistent())
            shard->enablePersistence(state->segment_shards[s]);
        state->shards.push_back(std::move(shard));
    }
    if (state->persistent()) {
        state->head.store(recoverHead(state->spec, state->segment_shards),
                          std::memory_order_release);
    }

    std::scoped_lock lock(mu_);
    if (datasets_.count(state->spec.name) != 0) {
        return Status::failedPrecondition("dataset already registered: " +
                                          state->spec.name);
    }
    datasets_.emplace(state->spec.name, std::move(state));
    return Status::okStatus();
}

StatusOr<std::shared_ptr<CatalogDataset>>
DatasetCatalog::find(const std::string& dataset) const
{
    std::scoped_lock lock(mu_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end())
        return Status::notFound("unknown dataset: " + dataset);
    return it->second;
}

StatusOr<uint64_t>
DatasetCatalog::publishEpoch(const std::string& dataset)
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    CatalogDataset& ds = **state;

    std::scoped_lock publish_lock(ds.publish_mu);
    const uint64_t epoch = ds.head.load(std::memory_order_acquire) + 1;
    for (uint64_t i = 0; i < ds.spec.partitions_per_epoch; ++i) {
        const uint64_t pid = epochPartitionId(epoch, i);
        PartitionStore& shard = *ds.shards[i % ds.numShards()];
        if (ds.persistent()) {
            // Crash-atomic durable commit; idempotent across a
            // crash-and-republish (recovered segments are reused). The
            // final partition's seal record completes the epoch.
            if (auto seg = shard.persistPartition(pid); !seg.ok()) {
                return Status(
                    seg.status().code(),
                    "publish of epoch " + std::to_string(epoch) +
                        " aborted at partition " + std::to_string(i) +
                        ": " + seg.status().message());
            }
        } else {
            shard.partition(pid);  // materialize
        }
    }
    // Atomic publish: the head moves only once every partition of the
    // epoch is committed; concurrent pins see either epoch-1 or epoch,
    // never a partial epoch.
    ds.head.store(epoch, std::memory_order_release);
    return epoch;
}

StatusOr<EpochReader>
DatasetCatalog::pin(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    const uint64_t head = (*state)->head.load(std::memory_order_acquire);
    if (head == 0) {
        return Status::failedPrecondition(
            "dataset has no published epoch: " + dataset);
    }
    return EpochReader(*state, head,
                       (*state)->spec.partitions_per_epoch);
}

StatusOr<EpochReader>
DatasetCatalog::pin(const std::string& dataset, uint64_t epoch) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    const uint64_t head = (*state)->head.load(std::memory_order_acquire);
    if (epoch == 0 || epoch > head) {
        return Status::outOfRange(
            "epoch " + std::to_string(epoch) + " of " + dataset +
            " is not published (head " + std::to_string(head) + ")");
    }
    return EpochReader(*state, epoch,
                       (*state)->spec.partitions_per_epoch);
}

StatusOr<uint64_t>
DatasetCatalog::headEpoch(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    return (*state)->head.load(std::memory_order_acquire);
}

std::vector<std::string>
DatasetCatalog::datasets() const
{
    std::scoped_lock lock(mu_);
    std::vector<std::string> names;
    names.reserve(datasets_.size());
    for (const auto& [name, state] : datasets_)
        names.push_back(name);
    return names;
}

}  // namespace presto
