#include "service/dataset_catalog.h"

#include <algorithm>
#include <set>

#include "columnar/columnar_file.h"
#include "common/logging.h"

namespace presto {

/**
 * Shared state of one registered dataset. Immutable after registration
 * except for the published head (atomic) and the shard stores' internal
 * caches (internally locked). Pinned readers share ownership, so a
 * reader outlives both the catalog and any later re-registration.
 */
struct CatalogDataset {
    DatasetSpec spec;
    std::unique_ptr<RawDataGenerator> generator;
    /** One PartitionStore per shard, all over the same generator. */
    std::vector<std::unique_ptr<PartitionStore>> shards;
    /** Durable backing per shard (empty in memory-only mode). */
    std::vector<SegmentStore*> segment_shards;

    /** Serializes publishes (and retention passes) of this dataset. */
    std::mutex publish_mu;
    /** Newest fully-published epoch (0 = none). The release store in
        publishEpoch() is the single atomic-publish point. */
    std::atomic<uint64_t> head{0};

    /**
     * Linearizes pin() against retention. An epoch transitions to
     * retired under this mutex only while its pin count is zero, and
     * pin() checks retired_epochs under the same mutex — so a racing
     * pin either lands first (sparing the epoch this pass) or fails.
     */
    std::mutex pins_mu;
    std::map<uint64_t, uint64_t> pin_counts;  ///< epoch -> live pins
    std::set<uint64_t> retired_epochs;

    bool persistent() const { return !segment_shards.empty(); }
    size_t numShards() const { return shards.size(); }

    /** Effective per-shard hot tier budget (see DatasetSpec). */
    uint64_t
    hotTierBudget() const
    {
        return spec.hot_tier_bytes != 0 ? spec.hot_tier_bytes
                                        : spec.cache_budget_bytes / 2;
    }
};

namespace {

/** Epoch a storage partition id belongs to. */
constexpr uint64_t
epochOfPartition(uint64_t partition_id)
{
    return partition_id >> 20;
}

/**
 * Take a pin on @p epoch; the returned token releases it when the
 * last copy dies. Fails when retention already retired the epoch.
 */
StatusOr<std::shared_ptr<void>>
acquirePin(const std::shared_ptr<CatalogDataset>& state, uint64_t epoch)
{
    std::scoped_lock lock(state->pins_mu);
    if (state->retired_epochs.count(epoch) != 0) {
        return Status::notFound(
            "epoch " + std::to_string(epoch) + " of " +
            state->spec.name + " has been retired");
    }
    ++state->pin_counts[epoch];
    return std::shared_ptr<void>(
        static_cast<void*>(nullptr),
        [state, epoch](void*) {
            std::scoped_lock release(state->pins_mu);
            auto it = state->pin_counts.find(epoch);
            if (it != state->pin_counts.end() && --it->second == 0)
                state->pin_counts.erase(it);
        });
}

/**
 * Move the hot tier to @p new_head: demote the previous head's
 * partitions, then promote the new head's until a shard's budget runs
 * out (partial residency — promotion failures are not errors).
 */
void
promoteHeadEpoch(CatalogDataset& ds, uint64_t new_head, uint64_t old_head)
{
    if (ds.hotTierBudget() == 0 || new_head == old_head)
        return;
    const size_t num_shards = ds.numShards();
    if (old_head != 0) {
        for (uint64_t i = 0; i < ds.spec.partitions_per_epoch; ++i) {
            ds.shards[i % num_shards]->demotePartition(
                epochPartitionId(old_head, i));
        }
    }
    if (new_head == 0)
        return;
    std::vector<bool> full(num_shards, false);
    for (uint64_t i = 0; i < ds.spec.partitions_per_epoch; ++i) {
        const size_t s = i % num_shards;
        if (full[s])
            continue;
        Status st = ds.shards[s]->promotePartition(
            epochPartitionId(new_head, i));
        if (st.code() == StatusCode::kResourceExhausted)
            full[s] = true;  // stop materializing for this shard
    }
}

/**
 * Retire every partition of @p epoch across the shards. Idempotent:
 * already-retired partitions contribute nothing.
 */
StatusOr<std::pair<uint64_t, uint64_t>>  // (partitions, bytes)
retireEpochPartitions(CatalogDataset& ds, uint64_t epoch)
{
    uint64_t partitions = 0;
    uint64_t bytes = 0;
    for (uint64_t i = 0; i < ds.spec.partitions_per_epoch; ++i) {
        auto reclaimed = ds.shards[i % ds.numShards()]->retirePartition(
            epochPartitionId(epoch, i));
        if (!reclaimed.ok())
            return reclaimed.status();
        ++partitions;
        bytes += *reclaimed;
    }
    return std::make_pair(partitions, bytes);
}

}  // namespace

EpochReader::EpochReader(std::shared_ptr<CatalogDataset> state,
                         uint64_t epoch, size_t partitions,
                         std::shared_ptr<void> pin_token)
    : state_(std::move(state)),
      epoch_(epoch),
      partitions_(partitions),
      pin_token_(std::move(pin_token))
{
}

const RmConfig&
EpochReader::config() const
{
    PRESTO_CHECK(valid(), "reading through an unpinned EpochReader");
    return state_->spec.config;
}

const Schema&
EpochReader::schema() const
{
    PRESTO_CHECK(valid(), "reading through an unpinned EpochReader");
    return state_->generator->schema();
}

uint64_t
EpochReader::partitionId(size_t index) const
{
    PRESTO_CHECK(valid() && index < partitions_,
                 "epoch partition index out of range");
    return epochPartitionId(epoch_, index);
}

size_t
EpochReader::shardOf(size_t index) const
{
    PRESTO_CHECK(valid() && index < partitions_,
                 "epoch partition index out of range");
    return index % state_->numShards();
}

StatusOr<std::vector<uint8_t>>
EpochReader::fetchEncoded(size_t index, uint64_t attempt,
                          bool* hot_tier_hit) const
{
    if (!valid())
        return Status::failedPrecondition("EpochReader is not pinned");
    if (index >= partitions_) {
        return Status::outOfRange(
            "partition " + std::to_string(index) + " >= epoch size " +
            std::to_string(partitions_));
    }
    return state_->shards[index % state_->numShards()]->fetchPartition(
        partitionId(index), attempt, hot_tier_hit);
}

Status
EpochReader::readPartition(size_t index, RowBatch& out,
                           bool* hot_tier_hit) const
{
    auto encoded = fetchEncoded(index, 0, hot_tier_hit);
    if (!encoded.ok())
        return encoded.status();
    ColumnarFileReader reader;
    if (Status st = reader.open(*encoded); !st.ok())
        return st;
    return reader.readAllInto(out);
}

namespace {

/** What persistent-shard recovery derived from the journals. */
struct RecoveredLifecycle {
    uint64_t head = 0;  ///< newest fully-live epoch
    /** Epochs below head that are not fully live: fully-retired ones
        plus half-retired crash leftovers recovery must finish. */
    std::set<uint64_t> retired;
};

/**
 * Head recovery over persistent shards: epoch e is fully live iff
 * every one of its partitions has a live segment on its shard. With
 * retention in play the live epochs are no longer a prefix, so the
 * head is the NEWEST fully-live epoch; a partial epoch above it is a
 * crash-mid-publish leftover (harmless — republish reuses its
 * segments), while any non-fully-live epoch below it was (at least
 * partly) retired — recovery completes those retires so every epoch
 * ends fully live or fully retired.
 */
RecoveredLifecycle
recoverLifecycle(const DatasetSpec& spec,
                 const std::vector<SegmentStore*>& segment_shards)
{
    std::set<uint64_t> live;
    for (SegmentStore* store : segment_shards) {
        for (const SegmentInfo& info : store->listSegments()) {
            if (info.state == SegmentState::kSealed ||
                info.state == SegmentState::kCompacted)
                live.insert(info.meta.partition_id);
        }
    }
    RecoveredLifecycle out;
    if (live.empty())
        return out;
    const uint64_t max_epoch = epochOfPartition(*live.rbegin());
    for (uint64_t epoch = 1; epoch <= max_epoch; ++epoch) {
        bool complete = true;
        for (uint64_t i = 0; i < spec.partitions_per_epoch; ++i) {
            if (live.count(epochPartitionId(epoch, i)) == 0) {
                complete = false;
                break;
            }
        }
        if (complete)
            out.head = epoch;
    }
    for (uint64_t epoch = 1; epoch < out.head; ++epoch) {
        bool complete = true;
        for (uint64_t i = 0; i < spec.partitions_per_epoch; ++i) {
            if (live.count(epochPartitionId(epoch, i)) == 0) {
                complete = false;
                break;
            }
        }
        if (!complete)
            out.retired.insert(epoch);
    }
    return out;
}

}  // namespace

Status
DatasetCatalog::registerDataset(DatasetSpec spec,
                                std::vector<SegmentStore*> segment_shards)
{
    if (spec.name.empty())
        return Status::invalidArgument("dataset name must not be empty");
    if (spec.partitions_per_epoch == 0 ||
        spec.partitions_per_epoch > kMaxPartitionsPerEpoch) {
        return Status::invalidArgument(
            "partitions_per_epoch must be in [1, " +
            std::to_string(kMaxPartitionsPerEpoch) + "]");
    }
    const size_t num_shards =
        segment_shards.empty() ? spec.shards : segment_shards.size();
    if (num_shards == 0)
        return Status::invalidArgument("dataset needs at least one shard");

    auto state = std::make_shared<CatalogDataset>();
    state->spec = std::move(spec);
    state->spec.shards = num_shards;
    state->generator = std::make_unique<RawDataGenerator>(
        state->spec.config, state->spec.generator);
    state->segment_shards = std::move(segment_shards);
    for (size_t s = 0; s < num_shards; ++s) {
        auto shard = std::make_unique<PartitionStore>(*state->generator);
        if (state->spec.cache_budget_bytes > 0)
            shard->setCacheBudget(state->spec.cache_budget_bytes);
        if (state->hotTierBudget() > 0)
            shard->setHotTierBudget(state->hotTierBudget());
        if (state->persistent())
            shard->enablePersistence(state->segment_shards[s]);
        state->shards.push_back(std::move(shard));
    }
    if (state->persistent()) {
        const RecoveredLifecycle recovered =
            recoverLifecycle(state->spec, state->segment_shards);
        state->head.store(recovered.head, std::memory_order_release);
        // Finish any retire a crash interrupted: re-driving the
        // journaled retires is idempotent, and marking the epoch
        // retired up front keeps half-dead epochs unpinnable.
        for (uint64_t epoch : recovered.retired) {
            state->retired_epochs.insert(epoch);
            if (auto done = retireEpochPartitions(*state, epoch);
                !done.ok()) {
                return done.status();
            }
        }
        if (recovered.head != 0)
            promoteHeadEpoch(*state, recovered.head, 0);
        // Pin-aware scrub: pinned epochs' segments get verified first.
        // (A store shared across datasets keeps the last hook wired.)
        std::weak_ptr<CatalogDataset> weak = state;
        for (SegmentStore* store : state->segment_shards) {
            store->setScrubPriority([weak](uint64_t partition_id) {
                auto ds = weak.lock();
                if (ds == nullptr)
                    return uint64_t{0};
                std::scoped_lock pins(ds->pins_mu);
                auto it =
                    ds->pin_counts.find(epochOfPartition(partition_id));
                return it == ds->pin_counts.end() ? uint64_t{0}
                                                  : it->second;
            });
        }
    }

    std::scoped_lock lock(mu_);
    if (datasets_.count(state->spec.name) != 0) {
        return Status::failedPrecondition("dataset already registered: " +
                                          state->spec.name);
    }
    datasets_.emplace(state->spec.name, std::move(state));
    return Status::okStatus();
}

StatusOr<std::shared_ptr<CatalogDataset>>
DatasetCatalog::find(const std::string& dataset) const
{
    std::scoped_lock lock(mu_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end())
        return Status::notFound("unknown dataset: " + dataset);
    return it->second;
}

StatusOr<uint64_t>
DatasetCatalog::publishEpoch(const std::string& dataset)
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    CatalogDataset& ds = **state;

    std::scoped_lock publish_lock(ds.publish_mu);
    const uint64_t epoch = ds.head.load(std::memory_order_acquire) + 1;
    for (uint64_t i = 0; i < ds.spec.partitions_per_epoch; ++i) {
        const uint64_t pid = epochPartitionId(epoch, i);
        PartitionStore& shard = *ds.shards[i % ds.numShards()];
        if (ds.persistent()) {
            // Crash-atomic durable commit; idempotent across a
            // crash-and-republish (recovered segments are reused). The
            // final partition's seal record completes the epoch.
            if (auto seg = shard.persistPartition(pid); !seg.ok()) {
                return Status(
                    seg.status().code(),
                    "publish of epoch " + std::to_string(epoch) +
                        " aborted at partition " + std::to_string(i) +
                        ": " + seg.status().message());
            }
        } else {
            shard.partition(pid);  // materialize
        }
    }
    // Atomic publish: the head moves only once every partition of the
    // epoch is committed; concurrent pins see either epoch-1 or epoch,
    // never a partial epoch.
    ds.head.store(epoch, std::memory_order_release);
    // The new head is the hot epoch now; yesterday's moves to cold.
    promoteHeadEpoch(ds, epoch, epoch - 1);
    return epoch;
}

StatusOr<EpochReader>
DatasetCatalog::pin(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    const uint64_t head = (*state)->head.load(std::memory_order_acquire);
    if (head == 0) {
        return Status::failedPrecondition(
            "dataset has no published epoch: " + dataset);
    }
    auto token = acquirePin(*state, head);
    if (!token.ok())
        return token.status();
    return EpochReader(*state, head, (*state)->spec.partitions_per_epoch,
                       *std::move(token));
}

StatusOr<EpochReader>
DatasetCatalog::pin(const std::string& dataset, uint64_t epoch) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    const uint64_t head = (*state)->head.load(std::memory_order_acquire);
    if (epoch == 0 || epoch > head) {
        return Status::outOfRange(
            "epoch " + std::to_string(epoch) + " of " + dataset +
            " is not published (head " + std::to_string(head) + ")");
    }
    auto token = acquirePin(*state, epoch);
    if (!token.ok())
        return token.status();
    return EpochReader(*state, epoch,
                       (*state)->spec.partitions_per_epoch,
                       *std::move(token));
}

StatusOr<RetentionReport>
DatasetCatalog::applyRetention(const std::string& dataset)
{
    auto found = find(dataset);
    if (!found.ok())
        return found.status();
    const std::shared_ptr<CatalogDataset>& state = *found;
    CatalogDataset& ds = *state;

    RetentionReport report;
    // Serialized with publishes so the pass sees a stable head and a
    // half-finished publish is never misread as a retirable epoch.
    std::scoped_lock publish_lock(ds.publish_mu);
    const uint64_t head = ds.head.load(std::memory_order_acquire);
    if (ds.spec.retain_epochs == 0 || head <= ds.spec.retain_epochs) {
        std::scoped_lock pins(ds.pins_mu);
        report.live_epochs = head - ds.retired_epochs.size();
        return report;
    }
    const uint64_t retire_below = head - ds.spec.retain_epochs + 1;
    for (uint64_t epoch = 1; epoch < retire_below; ++epoch) {
        // Claim the epoch under pins_mu: only pin-free epochs flip to
        // retired, and a pin that lost the race fails (acquirePin
        // checks retired_epochs under the same mutex).
        {
            std::scoped_lock pins(ds.pins_mu);
            if (ds.retired_epochs.count(epoch) != 0)
                continue;
            auto pinned = ds.pin_counts.find(epoch);
            if (pinned != ds.pin_counts.end() && pinned->second > 0) {
                ++report.epochs_kept_pinned;
                continue;
            }
            ds.retired_epochs.insert(epoch);
        }
        auto done = retireEpochPartitions(ds, epoch);
        if (!done.ok())
            return done.status();
        ++report.epochs_retired;
        report.partitions_retired += done->first;
        report.bytes_reclaimed += done->second;
    }
    std::scoped_lock pins(ds.pins_mu);
    report.live_epochs = head - ds.retired_epochs.size();
    return report;
}

StatusOr<uint64_t>
DatasetCatalog::pinCount(const std::string& dataset, uint64_t epoch) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    std::scoped_lock pins((*state)->pins_mu);
    auto it = (*state)->pin_counts.find(epoch);
    return it == (*state)->pin_counts.end() ? uint64_t{0} : it->second;
}

StatusOr<bool>
DatasetCatalog::epochRetired(const std::string& dataset,
                             uint64_t epoch) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    std::scoped_lock pins((*state)->pins_mu);
    return (*state)->retired_epochs.count(epoch) != 0;
}

StatusOr<uint64_t>
DatasetCatalog::liveEpochs(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    const uint64_t head = (*state)->head.load(std::memory_order_acquire);
    std::scoped_lock pins((*state)->pins_mu);
    return head - (*state)->retired_epochs.size();
}

StatusOr<uint64_t>
DatasetCatalog::liveBytes(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    uint64_t total = 0;
    for (SegmentStore* store : (*state)->segment_shards)
        total += store->liveBytes();
    return total;
}

StatusOr<uint64_t>
DatasetCatalog::headEpoch(const std::string& dataset) const
{
    auto state = find(dataset);
    if (!state.ok())
        return state.status();
    return (*state)->head.load(std::memory_order_acquire);
}

std::vector<std::string>
DatasetCatalog::datasets() const
{
    std::scoped_lock lock(mu_);
    std::vector<std::string> names;
    names.reserve(datasets_.size());
    for (const auto& [name, state] : datasets_)
        names.push_back(name);
    return names;
}

}  // namespace presto
