/**
 * @file
 * Admission control for the multi-tenant ingestion service.
 *
 * A tenant asks to stream preprocessed batches at some peak rate with a
 * p99 batch-latency SLO. The controller decides — *before* any work is
 * queued — whether the fleet can absorb the tenant without pushing any
 * admitted tenant (including the candidate) past its SLO budget, and
 * rejects with an explicit reason otherwise. Rejecting at admission
 * time is the service-tier analogue of PoolScheduler's reject-with-
 * reason plumbing: overload surfaces as a named decision, never as
 * silent queue growth.
 *
 * The projection is an intentionally simple, documented heuristic (see
 * docs/SERVICE.md): with aggregate peak utilization
 *
 *     rho = sum_i(peak_rate_i * service_sec_i) / servers
 *
 * a tenant's projected p99 batch latency is
 *
 *     p99 ~= service_sec * (1 + kP99WaitFactor * rho / (1 - rho))
 *
 * i.e. service time plus an M/M/c-flavored queueing term that blows up
 * as rho -> 1. Utilization at or beyond kMaxStableUtilization is
 * rejected outright: no latency promise survives a saturated fleet.
 * The same projection drives both the threaded IngestService and the
 * DES service scenario, so bench_service exercises exactly the policy
 * the service ships.
 */
#ifndef PRESTO_SERVICE_ADMISSION_H_
#define PRESTO_SERVICE_ADMISSION_H_

#include <string>
#include <vector>

namespace presto {

/** Queue-delay multiplier of the p99 projection. */
inline constexpr double kP99WaitFactor = 3.0;

/** Peak utilization beyond which no admission is accepted. */
inline constexpr double kMaxStableUtilization = 0.95;

/** One tenant's declared load, as seen by the admission controller. */
struct AdmissionInput {
    std::string tenant;
    double peak_batches_per_sec = 0;  ///< worst-case demand (diurnal peak
                                      ///< x spike factor)
    double service_sec = 0;           ///< per-batch preprocessing time
    double slo_p99_sec = 0;           ///< 0 = best effort (no budget)
};

/** Outcome of one admission evaluation. */
struct AdmissionDecision {
    bool admitted = false;
    std::string reason;  ///< empty when admitted
    /** Peak fleet utilization with the candidate admitted. */
    double projected_utilization = 0;
    /** Candidate's projected p99 batch latency with it admitted. */
    double projected_p99_sec = 0;
};

/** Projected p99 batch latency at utilization @p rho (heuristic). */
double projectedP99Sec(double service_sec, double rho);

/**
 * Evaluate admitting @p candidate on a fleet of @p servers parallel
 * workers already serving @p admitted. Pure function of its inputs.
 */
AdmissionDecision evaluateAdmission(
    const std::vector<AdmissionInput>& admitted,
    const AdmissionInput& candidate, double servers);

}  // namespace presto

#endif  // PRESTO_SERVICE_ADMISSION_H_
