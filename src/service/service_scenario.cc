#include "service/service_scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "common/logging.h"
#include "service/admission.h"
#include "sim/simulator.h"

namespace presto {

namespace {

/** Live DES state of one tenant. */
struct TenantState {
    const ScenarioTenant* spec = nullptr;
    size_t index = 0;  ///< input order; WFQ tie-break
    bool admitted = false;

    std::deque<double> backlog;  ///< arrival times awaiting a device
    size_t in_flight = 0;        ///< batches being produced
    size_t queue_occupancy = 0;  ///< produced, not yet consumed (stall)
    double vtime = 0;
    uint64_t pinned_epoch = 0;   ///< 0 = lifecycle off / not joined

    TenantReport report;
    std::vector<double> latencies;

    bool
    eligible() const
    {
        return admitted && !backlog.empty() &&
               queue_occupancy + in_flight < spec->queue_capacity;
    }

    bool
    stalledAt(double t) const
    {
        return t >= spec->stall_start_sec && t < spec->stall_end_sec;
    }
};

/** Whole-scenario DES state. */
struct ScenarioState {
    const ScenarioOptions* options = nullptr;
    Simulator sim;
    std::vector<ScenarioTenant> specs;  ///< private copy (rate derivation)
    std::vector<TenantState> tenants;
    int capacity = 0;  ///< surviving devices
    int busy = 0;
    double global_vtime = 0;
    double busy_device_sec = 0;
    uint64_t devices_failed = 0;
    double lost_device_sec = 0;

    // Epoch lifecycle (lifecycle.publish_period_sec > 0).
    uint64_t head_epoch = 0;
    std::set<uint64_t> live_epoch_set;  ///< published, not retired
    uint64_t live_bytes = 0;
    LifecycleReport lifecycle;
    std::vector<double> hot_latencies;
    std::vector<double> cold_latencies;

    void dispatch();
    void arrive(TenantState& tenant);
    void startSlotGenerator(TenantState& tenant, uint64_t slot);
    std::vector<AdmissionInput> admittedInputs() const;

    bool lifecycleOn() const
    {
        return options->lifecycle.publish_period_sec > 0;
    }
    /** Hot iff the tenant streams the promoted head epoch. */
    bool tenantHot(const TenantState& t) const
    {
        return !lifecycleOn() || t.pinned_epoch == head_epoch;
    }
    void schedulePublish(double when);
    void publishEpochEvent();
    void pinAtJoin(TenantState& tenant);
};

AdmissionInput
inputFor(const ScenarioTenant& spec, double service_sec)
{
    AdmissionInput input;
    input.tenant = spec.name;
    input.peak_batches_per_sec = spec.traffic.peakRate();
    input.service_sec = service_sec;
    input.slo_p99_sec = spec.slo_p99_sec;
    return input;
}

std::vector<AdmissionInput>
ScenarioState::admittedInputs() const
{
    std::vector<AdmissionInput> admitted;
    for (const TenantState& t : tenants) {
        if (t.admitted)
            admitted.push_back(inputFor(*t.spec, options->service_sec));
    }
    return admitted;
}

void
ScenarioState::dispatch()
{
    while (busy < capacity) {
        TenantState* pick = nullptr;
        for (TenantState& tenant : tenants) {
            if (!tenant.eligible())
                continue;
            if (pick == nullptr || tenant.vtime < pick->vtime)
                pick = &tenant;
        }
        if (pick == nullptr)
            return;
        global_vtime = pick->vtime;
        pick->vtime += 1.0 / pick->spec->weight;
        const double arrival_time = pick->backlog.front();
        pick->backlog.pop_front();
        ++pick->in_flight;
        pick->report.max_queue_occupancy =
            std::max(pick->report.max_queue_occupancy,
                     pick->queue_occupancy + pick->in_flight);
        ++busy;
        // Tiering classification happens at dispatch: a head-epoch
        // stream is a hot-tier read, a lagged pin streams its cold
        // epoch off disk and pays the extra device time.
        const bool hot = tenantHot(*pick);
        const double service =
            options->service_sec +
            (hot ? 0.0 : options->lifecycle.cold_extra_sec);
        TenantState* tenant = pick;
        sim.schedule(service, [this, tenant, arrival_time, hot, service] {
            --busy;
            --tenant->in_flight;
            busy_device_sec += service;
            ++tenant->report.served;
            const double latency = sim.now() - arrival_time;
            tenant->latencies.push_back(latency);
            if (lifecycleOn()) {
                if (hot) {
                    ++tenant->report.hot_served;
                    hot_latencies.push_back(latency);
                } else {
                    ++tenant->report.cold_served;
                    cold_latencies.push_back(latency);
                }
            }
            if (tenant->stalledAt(sim.now())) {
                ++tenant->queue_occupancy;
                tenant->report.max_queue_occupancy =
                    std::max(tenant->report.max_queue_occupancy,
                             tenant->queue_occupancy + tenant->in_flight);
            }
            dispatch();
        });
    }
}

void
ScenarioState::arrive(TenantState& tenant)
{
    // A tenant returning from idle rejoins at the current system virtual
    // time: its stale (small) vtime must not buy it a catch-up burst.
    if (tenant.backlog.empty() && tenant.in_flight == 0)
        tenant.vtime = std::max(tenant.vtime, global_vtime);
    ++tenant.report.arrivals;
    tenant.backlog.push_back(sim.now());
    tenant.report.backlog_peak =
        std::max(tenant.report.backlog_peak,
                 static_cast<uint64_t>(tenant.backlog.size()));
    dispatch();
}

void
ScenarioState::schedulePublish(double when)
{
    if (when >= options->duration_sec)
        return;
    sim.scheduleAt(when, [this, when] {
        publishEpochEvent();
        schedulePublish(when + options->lifecycle.publish_period_sec);
    });
}

void
ScenarioState::publishEpochEvent()
{
    const EpochLifecycleModel& model = options->lifecycle;
    ++head_epoch;
    live_epoch_set.insert(head_epoch);
    live_bytes += model.epoch_bytes;
    ++lifecycle.epochs_published;

    // Head-following tenants re-pin the freshly promoted epoch; a
    // tenant holding a historical pin keeps it until its hold expires.
    for (TenantState& tenant : tenants) {
        if (tenant.admitted && tenant.pinned_epoch != 0 &&
            sim.now() >= tenant.spec->hold_pin_until_sec) {
            tenant.pinned_epoch = head_epoch;
        }
    }

    // Retention: retire epochs older than the newest retain_epochs,
    // sparing any epoch a tenant still pins.
    if (model.retain_epochs > 0 && head_epoch > model.retain_epochs) {
        const uint64_t retire_below =
            head_epoch - model.retain_epochs + 1;
        std::set<uint64_t> pinned;
        for (const TenantState& tenant : tenants) {
            if (tenant.admitted && tenant.pinned_epoch != 0)
                pinned.insert(tenant.pinned_epoch);
        }
        for (auto it = live_epoch_set.begin();
             it != live_epoch_set.end() && *it < retire_below;) {
            if (pinned.count(*it) != 0) {
                ++lifecycle.epochs_kept_pinned;
                ++it;
                continue;
            }
            live_bytes -= model.epoch_bytes;
            ++lifecycle.epochs_retired;
            it = live_epoch_set.erase(it);
        }
        // The footprint gate, computed from an independent count of
        // old pinned epochs — a retention bug that leaks epochs shows
        // up as a violation instead of inflating its own bound.
        uint64_t pinned_old = 0;
        for (uint64_t epoch : pinned) {
            if (epoch < retire_below)
                ++pinned_old;
        }
        const uint64_t bound =
            (model.retain_epochs + pinned_old) * model.epoch_bytes;
        if (live_bytes > bound)
            lifecycle.footprint_bounded = false;
    }
    lifecycle.peak_live_epochs =
        std::max(lifecycle.peak_live_epochs,
                 static_cast<uint64_t>(live_epoch_set.size()));
    lifecycle.peak_live_bytes =
        std::max(lifecycle.peak_live_bytes, live_bytes);
}

void
ScenarioState::pinAtJoin(TenantState& tenant)
{
    if (!lifecycleOn() || head_epoch == 0)
        return;
    const uint64_t lag = tenant.spec->pin_lag_epochs;
    const uint64_t desired = head_epoch > lag ? head_epoch - lag : 1;
    // The lagged epoch may already be retired; pin the oldest live
    // epoch at or after it (there is always one: the head is live).
    auto it = live_epoch_set.lower_bound(desired);
    PRESTO_CHECK(it != live_epoch_set.end(),
                 "head epoch must be live at join");
    tenant.pinned_epoch = *it;
}

void
ScenarioState::startSlotGenerator(TenantState& tenant, uint64_t slot)
{
    if (static_cast<double>(slot) >= options->duration_sec)
        return;
    const double slot_start = static_cast<double>(slot);
    for (double offset : slotArrivals(tenant.spec->traffic, options->seed,
                                      tenant.index, slot)) {
        const double when = slot_start + offset;
        if (when < tenant.spec->join_sec || when >= options->duration_sec)
            continue;
        sim.scheduleAt(when, [this, &tenant] { arrive(tenant); });
    }
    sim.scheduleAt(slot_start + 1.0, [this, &tenant, slot] {
        startSlotGenerator(tenant, slot + 1);
    });
}

}  // namespace

ScenarioReport
runServiceScenario(const ScenarioOptions& options,
                   const std::vector<ScenarioTenant>& tenants)
{
    PRESTO_CHECK(options.devices > 0, "scenario needs a fleet");
    PRESTO_CHECK(options.service_sec > 0, "service time must be positive");

    ScenarioState state;
    state.options = &options;
    state.capacity = options.devices;
    state.specs = tenants;
    state.tenants.resize(tenants.size());
    for (size_t i = 0; i < state.specs.size(); ++i) {
        ScenarioTenant& spec = state.specs[i];
        PRESTO_CHECK(spec.queue_capacity > 0,
                     "tenant queue capacity must be >= 1");
        // Derive the diurnal mean from the user population when given.
        if (spec.users > 0) {
            PRESTO_CHECK(spec.samples_per_batch > 0,
                         "samples per batch must be positive");
            const double batches_per_day =
                spec.users * spec.requests_per_user_per_day /
                spec.samples_per_batch;
            spec.traffic.diurnal.mean_batches_per_sec =
                batches_per_day / spec.traffic.diurnal.period_sec;
        }
        TenantState& tenant = state.tenants[i];
        tenant.spec = &spec;
        tenant.index = i;
        tenant.report.name = spec.name;
        tenant.report.queue_capacity = spec.queue_capacity;
    }

    // Epoch publishes run first: at equal times (insertion order) the
    // t = 0 publish precedes every t = 0 join, so a joining tenant
    // always finds a published head to pin.
    if (state.lifecycleOn())
        state.schedulePublish(0.0);

    // Trainer-stall drains: at stall end the trainer catches up and the
    // output queue empties. Scheduled first so a completion landing
    // exactly at stall end is consumed, not queued.
    for (TenantState& tenant : state.tenants) {
        if (tenant.spec->stall_end_sec > tenant.spec->stall_start_sec &&
            tenant.spec->stall_end_sec <= options.duration_sec) {
            state.sim.scheduleAt(tenant.spec->stall_end_sec, [&] {
                tenant.queue_occupancy = 0;
                state.dispatch();
            });
        }
    }

    // Device fail-stops shrink the surviving fleet permanently.
    FaultInjector faults(options.faults);
    for (const FailStop& fail : faults.failStopsByTime()) {
        if (fail.time_sec >= options.duration_sec ||
            fail.device >= options.devices) {
            continue;
        }
        state.sim.scheduleAt(fail.time_sec, [&state, &options, fail] {
            if (state.capacity == 0)
                return;
            --state.capacity;
            ++state.devices_failed;
            state.lost_device_sec +=
                options.duration_sec - fail.time_sec;
        });
    }

    // Tenant joins: admission decision, then traffic. Same-time joins
    // resolve in input order (insertion sequence).
    for (TenantState& tenant : state.tenants) {
        state.sim.scheduleAt(tenant.spec->join_sec, [&state, &tenant] {
            const AdmissionDecision decision = evaluateAdmission(
                state.admittedInputs(),
                inputFor(*tenant.spec, state.options->service_sec),
                static_cast<double>(state.options->devices));
            tenant.report.projected_p99_sec = decision.projected_p99_sec;
            if (!decision.admitted && state.options->admission_control) {
                tenant.report.reject_reason = decision.reason;
                return;
            }
            tenant.admitted = true;
            tenant.report.admitted = true;
            tenant.report.reject_reason.clear();
            state.pinAtJoin(tenant);
            state.startSlotGenerator(
                tenant,
                static_cast<uint64_t>(tenant.spec->join_sec));
        });
    }

    // Run to completion: arrivals stop at duration, then the backlog
    // drains (overload tails show up as latency, never as lost work).
    state.sim.run();

    ScenarioReport report;
    report.duration_sec = options.duration_sec;
    report.devices = options.devices;
    report.devices_failed = state.devices_failed;
    report.capacity_device_sec =
        static_cast<double>(options.devices) * options.duration_sec -
        state.lost_device_sec;
    report.busy_device_sec = state.busy_device_sec;
    report.fleet_utilization =
        report.capacity_device_sec > 0
            ? state.busy_device_sec / report.capacity_device_sec
            : 0.0;
    for (TenantState& tenant : state.tenants) {
        TenantReport& tr = tenant.report;
        if (!tenant.latencies.empty()) {
            std::sort(tenant.latencies.begin(), tenant.latencies.end());
            double sum = 0;
            for (double latency : tenant.latencies)
                sum += latency;
            tr.mean_latency_sec =
                sum / static_cast<double>(tenant.latencies.size());
            tr.max_latency_sec = tenant.latencies.back();
            const size_t p99_index = static_cast<size_t>(
                0.99 * static_cast<double>(tenant.latencies.size() - 1));
            tr.p99_latency_sec = tenant.latencies[p99_index];
        }
        tr.slo_met = tenant.spec->slo_p99_sec <= 0 ||
                     tr.p99_latency_sec <= tenant.spec->slo_p99_sec;
        tr.pinned_epoch = tenant.pinned_epoch;
        report.total_arrivals += tr.arrivals;
        report.total_served += tr.served;
        report.tenants.push_back(std::move(tr));
    }
    if (state.lifecycleOn()) {
        LifecycleReport& lc = state.lifecycle;
        lc.final_live_bytes = state.live_bytes;
        lc.hot_served = state.hot_latencies.size();
        lc.cold_served = state.cold_latencies.size();
        const uint64_t total = lc.hot_served + lc.cold_served;
        lc.hot_hit_rate =
            total > 0 ? static_cast<double>(lc.hot_served) /
                            static_cast<double>(total)
                      : 0.0;
        auto meanOf = [](const std::vector<double>& xs) {
            if (xs.empty())
                return 0.0;
            double sum = 0;
            for (double x : xs)
                sum += x;
            return sum / static_cast<double>(xs.size());
        };
        lc.mean_hot_latency_sec = meanOf(state.hot_latencies);
        lc.mean_cold_latency_sec = meanOf(state.cold_latencies);
        if (!state.cold_latencies.empty()) {
            std::sort(state.cold_latencies.begin(),
                      state.cold_latencies.end());
            const size_t p99_index = static_cast<size_t>(
                0.99 *
                static_cast<double>(state.cold_latencies.size() - 1));
            lc.p99_cold_latency_sec = state.cold_latencies[p99_index];
        }
        report.lifecycle = lc;
    }
    return report;
}

}  // namespace presto
