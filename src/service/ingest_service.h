/**
 * @file
 * IngestService: multi-tenant streaming preprocessing sessions.
 *
 * The batch pipeline (core/managers.h) runs one dataset for one
 * consumer and exits. A production ingestion tier instead runs
 * continuously: many tenants (training jobs) each open a *session*
 * against a catalog dataset and stream train-ready mini-batches at
 * whatever rate their trainer consumes them. This module provides that
 * layer on top of DatasetCatalog + the opvm transform stack:
 *
 *  - Sessions pin an epoch at open (or a caller-chosen one) — a
 *    tenant's stream replays bit-identically even while newer epochs
 *    are being published under it.
 *  - An admission controller (admission.h) gates openSession(): a
 *    tenant whose declared demand would push any admitted tenant past
 *    its p99 SLO budget is rejected with an explicit reason.
 *  - A shared pool of preprocessing workers serves all admitted
 *    sessions under weighted-fair queueing: each produced batch
 *    advances the session's virtual time by 1/weight, and workers
 *    always serve the eligible session with the smallest virtual time,
 *    so a tenant with weight 2 gets twice the throughput of a weight-1
 *    tenant under contention.
 *  - Trainer-demand backpressure: each session's output queue is
 *    bounded at its configured capacity, and a session is only
 *    *eligible* for production while it has queue space. A stalled
 *    trainer therefore throttles its own fetch/transform work to a
 *    full queue — never unbounded buffering — while other tenants keep
 *    the workers busy.
 *
 * Batches within one session are delivered strictly in partition order
 * (the service keeps at most one production in flight per session);
 * parallelism comes from serving many sessions at once.
 */
#ifndef PRESTO_SERVICE_INGEST_SERVICE_H_
#define PRESTO_SERVICE_INGEST_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ops/plan.h"
#include "service/admission.h"
#include "service/dataset_catalog.h"
#include "tabular/minibatch.h"

namespace presto {

/** One tenant's session request. */
struct TenantSpec {
    std::string name;
    std::string dataset;  ///< catalog dataset to stream
    double weight = 1.0;  ///< weighted-fair share under contention
    /** p99 batch-latency SLO budget; 0 = best effort (no admission
        veto on this tenant's behalf). */
    double slo_p99_sec = 0;
    /** Declared peak demand, used by admission control. 0 = declare
        nothing (admitted unless the fleet is already saturated). */
    double peak_batches_per_sec = 0;
    /** Output queue bound: maximum batches buffered ahead of the
        trainer (must be >= 1). */
    size_t queue_capacity = 4;
    /** Epoch to pin (0 = newest published at open). */
    uint64_t epoch = 0;
    /** Transform plan; unset runs TransformPlan::standard(config). */
    std::optional<TransformPlan> plan;
};

/** Service-wide knobs. */
struct ServiceOptions {
    int workers = 2;  ///< shared preprocessing worker threads
    bool admission_control = true;
    /** Per-batch service-time estimate fed to admission control;
        0 derives one from the dataset config and the measured decode +
        fused-transform calibration rates. */
    double service_sec_override = 0;
};

/** One delivered train-ready batch plus its provenance. */
struct DeliveredBatch {
    std::unique_ptr<MiniBatch> batch;
    uint64_t epoch = 0;
    uint64_t partition_index = 0;  ///< logical index within the epoch
    uint64_t sequence = 0;         ///< 0-based delivery ordinal
};

/** Point-in-time counters of one session. */
struct SessionStats {
    std::string tenant;
    uint64_t epoch = 0;
    uint64_t produced = 0;   ///< batches transformed into the queue
    uint64_t delivered = 0;  ///< batches handed to the trainer
    size_t queue_capacity = 0;
    size_t max_queue_occupancy = 0;  ///< high-water mark (bounded proof)
    double service_sec_estimate = 0;
    /** Fetches served from the shard's hot memory tier (the session
        streams the promoted head epoch). */
    uint64_t hot_tier_hits = 0;
    /** Fetches served cold: cache, disk, or re-materialization. */
    uint64_t cold_fetches = 0;
};

/**
 * Continuously running multi-tenant preprocessing service. Thread-safe;
 * the catalog must outlive the service.
 */
class IngestService
{
  public:
    explicit IngestService(DatasetCatalog& catalog,
                           ServiceOptions options = {});
    ~IngestService();

    IngestService(const IngestService&) = delete;
    IngestService& operator=(const IngestService&) = delete;

    /**
     * Admit a tenant and start streaming. On rejection the status is
     * kFailedPrecondition carrying the admission reason (see
     * admissionProbe() for the full decision).
     * @return session id for nextBatch()/closeSession().
     */
    StatusOr<uint64_t> openSession(const TenantSpec& spec);

    /**
     * Dry-run the admission decision for @p spec against the currently
     * admitted set, without opening anything.
     */
    AdmissionDecision admissionProbe(const TenantSpec& spec) const;

    /**
     * Blocking fetch of the session's next batch (strict partition
     * order, wrapping at the epoch end). Unblocks with kAborted when
     * the session (or service) is closed, or with the production error
     * once the queue drains after a failed fetch/transform.
     */
    StatusOr<DeliveredBatch> nextBatch(uint64_t session_id);

    /** Stop production, unblock consumers, and drop the session. */
    Status closeSession(uint64_t session_id);

    /** Snapshot of one session's counters. */
    StatusOr<SessionStats> sessionStats(uint64_t session_id) const;

    /** Snapshots of all open sessions, by session id. */
    std::vector<SessionStats> allSessionStats() const;

    const ServiceOptions& options() const { return options_; }

  private:
    struct Session;

    void workerLoop();
    /** Per-batch service-time estimate for a dataset config. */
    double estimateServiceSec(const RmConfig& config) const;
    std::vector<AdmissionInput> admittedInputsLocked() const;
    std::shared_ptr<Session> findSession(uint64_t session_id) const;

    DatasetCatalog& catalog_;
    ServiceOptions options_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: eligibility changed
    std::map<uint64_t, std::shared_ptr<Session>> sessions_;
    uint64_t next_session_id_ = 1;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace presto

#endif  // PRESTO_SERVICE_INGEST_SERVICE_H_
