/**
 * @file
 * Memory-access trace generators for the three key preprocessing operators,
 * replayed through CacheSim to characterize their locality (Figure 6).
 *
 * Address maps place each operator's input, output, and lookup structures
 * in disjoint regions. The traces reflect the access pattern of the real
 * kernels in ops/: streaming reads/writes plus, for Bucketize, the binary
 * search probe sequence into the boundary array.
 */
#ifndef PRESTO_CACHESIM_OP_TRACES_H_
#define PRESTO_CACHESIM_OP_TRACES_H_

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "common/rng.h"
#include "datagen/rm_config.h"

namespace presto {

/** Result of replaying one operator's trace. */
struct OpTraceResult {
    CacheStats stats;
    uint64_t total_access_bytes = 0;  ///< bytes touched by instructions
    uint64_t dram_bytes = 0;          ///< bytes moved to/from memory
};

/**
 * Replays op access traces for a given workload configuration.
 *
 * One instance owns one cache; run*() methods accumulate into it unless
 * reset() is called between runs.
 */
class OpTraceRunner
{
  public:
    explicit OpTraceRunner(CacheConfig cache_config = {},
                           uint64_t seed = 0xcac4e5eedULL);

    /**
     * Bucketize over all generated features of @p config: per value,
     * sequential 4-byte input read, log2(m) boundary probes (binary
     * search midpoints), sequential 8-byte output write.
     */
    OpTraceResult runBucketize(const RmConfig& config);

    /** SigridHash over all sparse ids: 8-byte read + 8-byte write. */
    OpTraceResult runSigridHash(const RmConfig& config);

    /** Log over all dense values: 4-byte read + 4-byte write in place. */
    OpTraceResult runLog(const RmConfig& config);

    CacheSim& cache() { return cache_; }
    void reset() { cache_.reset(); }

  private:
    CacheSim cache_;
    Rng rng_;
};

/**
 * Per-column access heat of @p config's raw batch layout (label, then
 * dense, then sparse — Schema::makeRecSys order), derived analytically
 * from the same per-value access patterns the trace generators replay:
 *
 *   label     4 B/value   (conversion read)
 *   dense     8 B/value   Log read+write, plus — for the first
 *             num_generated dense features — Bucketize's 4 B input
 *             read, log2(bucket_size) boundary probes and 8 B output
 *             write
 *   sparse    16 B/id * avg ids/row   SigridHash read+write per id
 *
 * Heat is per *row* downstream access bytes, quantized so the hottest
 * column maps to kMaxStreamHeat (columnar_file.h); feed the result to
 * WriterOptions::column_heat so the async reader can stripe hot pages
 * across flash channels.
 */
std::vector<uint32_t> columnAccessHeat(const RmConfig& config);

}  // namespace presto

#endif  // PRESTO_CACHESIM_OP_TRACES_H_
