/**
 * @file
 * Trace-driven set-associative cache simulator.
 *
 * Used to reproduce the characterization in Figure 6: the key preprocessing
 * operators stream over large inputs but keep a small active working set
 * (bucket boundaries fit on-chip), so the last-level cache absorbs most
 * accesses and memory bandwidth stays far below the machine peak.
 */
#ifndef PRESTO_CACHESIM_CACHE_H_
#define PRESTO_CACHESIM_CACHE_H_

#include <cstdint>
#include <vector>

namespace presto {

/** Geometry of a simulated cache level. */
struct CacheConfig {
    /** Xeon Gold 6242-class two-socket LLC (rounded to a power-of-two
     *  set count). */
    uint64_t size_bytes = 32ULL << 20;
    uint32_t line_bytes = 64;
    uint32_t ways = 16;

    uint64_t
    numSets() const
    {
        return size_bytes / (static_cast<uint64_t>(line_bytes) * ways);
    }
};

/** Hit/miss counters of one simulation run. */
struct CacheStats {
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    /** DRAM traffic implied by misses and writebacks. */
    uint64_t
    dramBytes(uint32_t line_bytes) const
    {
        return (misses + writebacks) * line_bytes;
    }
};

/**
 * Set-associative cache with true-LRU replacement and write-back,
 * write-allocate policy.
 */
class CacheSim
{
  public:
    explicit CacheSim(CacheConfig config = {});

    /**
     * Simulate one access.
     * @param addr Byte address.
     * @param is_write True for stores (marks the line dirty).
     * @return true on hit.
     */
    bool access(uint64_t addr, bool is_write);

    /** Convenience: touch a [addr, addr+bytes) range line by line. */
    void accessRange(uint64_t addr, uint64_t bytes, bool is_write);

    const CacheStats& stats() const { return stats_; }
    const CacheConfig& config() const { return config_; }

    /** Clear contents and counters. */
    void reset();

  private:
    struct Line {
        uint64_t tag = 0;
        uint64_t lru = 0;  ///< last-touch timestamp
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    uint64_t num_sets_;
    uint64_t line_shift_;
    std::vector<Line> lines_;  ///< num_sets * ways, set-major
    uint64_t tick_ = 0;
    CacheStats stats_;
};

}  // namespace presto

#endif  // PRESTO_CACHESIM_CACHE_H_
