#include "cachesim/cache.h"

#include <bit>

#include "common/logging.h"

namespace presto {

CacheSim::CacheSim(CacheConfig config)
    : config_(config), num_sets_(config.numSets()),
      line_shift_(std::countr_zero(
          static_cast<uint64_t>(config.line_bytes)))
{
    PRESTO_CHECK(std::has_single_bit(
                     static_cast<uint64_t>(config_.line_bytes)),
                 "line size must be a power of two");
    PRESTO_CHECK(num_sets_ > 0, "cache too small for its associativity");
    PRESTO_CHECK(std::has_single_bit(num_sets_),
                 "set count must be a power of two");
    lines_.resize(num_sets_ * config_.ways);
}

bool
CacheSim::access(uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    ++tick_;
    const uint64_t line_addr = addr >> line_shift_;
    const uint64_t set = line_addr & (num_sets_ - 1);
    const uint64_t tag = line_addr >> std::countr_zero(num_sets_);
    Line* begin = &lines_[set * config_.ways];

    Line* victim = begin;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        Line& line = begin[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty |= is_write;
            ++stats_.hits;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++stats_.misses;
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    victim->dirty = is_write;
    return false;
}

void
CacheSim::accessRange(uint64_t addr, uint64_t bytes, bool is_write)
{
    const uint64_t line = config_.line_bytes;
    const uint64_t first = addr & ~(line - 1);
    const uint64_t last = (addr + (bytes ? bytes - 1 : 0)) & ~(line - 1);
    for (uint64_t a = first; a <= last; a += line)
        access(a, is_write);
}

void
CacheSim::reset()
{
    for (auto& line : lines_)
        line = Line();
    tick_ = 0;
    stats_ = CacheStats();
}

}  // namespace presto
