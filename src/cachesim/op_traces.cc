#include "cachesim/op_traces.h"

#include <algorithm>
#include <cmath>

namespace presto {

namespace {

// Disjoint virtual regions for the operator's data structures.
constexpr uint64_t kInputBase = 0x1'0000'0000ULL;
constexpr uint64_t kOutputBase = 0x2'0000'0000ULL;
constexpr uint64_t kBoundaryBase = 0x3'0000'0000ULL;

}  // namespace

OpTraceRunner::OpTraceRunner(CacheConfig cache_config, uint64_t seed)
    : cache_(cache_config), rng_(seed)
{
}

OpTraceResult
OpTraceRunner::runBucketize(const RmConfig& config)
{
    const CacheStats before = cache_.stats();
    uint64_t touched = 0;

    const uint64_t batch = config.batch_size;
    const uint64_t m = config.bucket_size;
    for (uint64_t f = 0; f < config.num_generated; ++f) {
        const uint64_t in_base = kInputBase + f * batch * 4;
        const uint64_t out_base = kOutputBase + f * batch * 8;
        for (uint64_t r = 0; r < batch; ++r) {
            cache_.access(in_base + r * 4, false);
            touched += 4;
            // Binary search over m float boundaries: probe the midpoint
            // of a halving interval. The searched value's bucket is
            // uniform over the boundary array.
            uint64_t lo = 0;
            uint64_t hi = m;
            const uint64_t target = rng_.uniformInt(m + 1);
            while (lo < hi) {
                const uint64_t mid = (lo + hi) / 2;
                cache_.access(kBoundaryBase + mid * 4, false);
                touched += 4;
                if (mid < target)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            cache_.access(out_base + r * 8, true);
            touched += 8;
        }
    }

    OpTraceResult result;
    result.stats.accesses = cache_.stats().accesses - before.accesses;
    result.stats.hits = cache_.stats().hits - before.hits;
    result.stats.misses = cache_.stats().misses - before.misses;
    result.stats.evictions = cache_.stats().evictions - before.evictions;
    result.stats.writebacks = cache_.stats().writebacks - before.writebacks;
    result.total_access_bytes = touched;
    result.dram_bytes = result.stats.dramBytes(cache_.config().line_bytes);
    return result;
}

OpTraceResult
OpTraceRunner::runSigridHash(const RmConfig& config)
{
    const CacheStats before = cache_.stats();
    uint64_t touched = 0;

    const auto total_ids = static_cast<uint64_t>(
        static_cast<double>(config.num_sparse) * config.avg_sparse_length *
            static_cast<double>(config.batch_size) +
        static_cast<double>(config.num_generated * config.batch_size));
    // Hash is read-modify-write over a contiguous id buffer.
    for (uint64_t i = 0; i < total_ids; ++i) {
        cache_.access(kInputBase + i * 8, false);
        cache_.access(kInputBase + i * 8, true);
        touched += 16;
    }

    OpTraceResult result;
    result.stats.accesses = cache_.stats().accesses - before.accesses;
    result.stats.hits = cache_.stats().hits - before.hits;
    result.stats.misses = cache_.stats().misses - before.misses;
    result.stats.evictions = cache_.stats().evictions - before.evictions;
    result.stats.writebacks = cache_.stats().writebacks - before.writebacks;
    result.total_access_bytes = touched;
    result.dram_bytes = result.stats.dramBytes(cache_.config().line_bytes);
    return result;
}

OpTraceResult
OpTraceRunner::runLog(const RmConfig& config)
{
    const CacheStats before = cache_.stats();
    uint64_t touched = 0;

    const uint64_t total =
        static_cast<uint64_t>(config.num_dense) * config.batch_size;
    for (uint64_t i = 0; i < total; ++i) {
        cache_.access(kInputBase + i * 4, false);
        cache_.access(kInputBase + i * 4, true);
        touched += 8;
    }

    OpTraceResult result;
    result.stats.accesses = cache_.stats().accesses - before.accesses;
    result.stats.hits = cache_.stats().hits - before.hits;
    result.stats.misses = cache_.stats().misses - before.misses;
    result.stats.evictions = cache_.stats().evictions - before.evictions;
    result.stats.writebacks = cache_.stats().writebacks - before.writebacks;
    result.total_access_bytes = touched;
    result.dram_bytes = result.stats.dramBytes(cache_.config().line_bytes);
    return result;
}

std::vector<uint32_t>
columnAccessHeat(const RmConfig& config)
{
    // Quantization full scale; matches kMaxStreamHeat (columnar_file.h)
    // without a cachesim -> columnar dependency (the writer clamps).
    constexpr double kHeatScale = 1000.0;

    // Per-row downstream access bytes, mirroring the trace generators'
    // per-value patterns (runLog / runBucketize / runSigridHash).
    std::vector<double> bytes_per_row;
    bytes_per_row.push_back(4.0);  // label: conversion read
    const double probes =
        std::ceil(std::log2(std::max<double>(2, config.bucket_size)));
    for (size_t d = 0; d < config.num_dense; ++d) {
        double b = 8.0;  // Log: 4 B read + 4 B write in place
        if (d < config.num_generated)
            b += 4.0 + 4.0 * probes + 8.0;  // Bucketize read+probes+write
        bytes_per_row.push_back(b);
    }
    const double per_sparse =
        16.0 * std::max(1.0, config.avg_sparse_length);
    for (size_t s = 0; s < config.num_sparse; ++s)
        bytes_per_row.push_back(per_sparse);

    double max_bytes = 0;
    for (double b : bytes_per_row)
        max_bytes = std::max(max_bytes, b);
    std::vector<uint32_t> heat(bytes_per_row.size(), 0);
    if (max_bytes <= 0)
        return heat;
    for (size_t i = 0; i < heat.size(); ++i)
        heat[i] = static_cast<uint32_t>(
            std::lround(bytes_per_row[i] / max_bytes * kHeatScale));
    return heat;
}

}  // namespace presto
