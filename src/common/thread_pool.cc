#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace presto {

ThreadPool::ThreadPool(size_t num_threads)
{
    PRESTO_CHECK(num_threads >= 1, "ThreadPool needs at least one thread");
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mu_);
        shutting_down_ = true;
    }
    task_available_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mu_);
        PRESTO_CHECK(!shutting_down_, "submit after shutdown");
        tasks_.push_back(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)>& fn)
{
    if (n == 0)
        return;
    const size_t workers = std::min(n, threads_.size());
    // Small chunks (several per worker) let fast workers steal the slack
    // behind a skewed index without paying one atomic op per index.
    const size_t chunk = std::max(size_t{1}, n / (workers * 8));
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < workers; ++w) {
        submit([&fn, &next, n, chunk] {
            for (;;) {
                const size_t lo =
                    next.fetch_add(chunk, std::memory_order_relaxed);
                if (lo >= n)
                    return;
                const size_t hi = std::min(n, lo + chunk);
                for (size_t i = lo; i < hi; ++i)
                    fn(i);
            }
        });
    }
    // wait() keeps `next` (and fn) alive until every claimed chunk runs.
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            task_available_.wait(
                lock, [this] { return shutting_down_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // Only reachable when shutting down with an empty queue.
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::unique_lock lock(mu_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

}  // namespace presto
