/**
 * @file
 * Unit helpers for bytes, time, bandwidth, power, and money.
 *
 * Model math uses plain doubles in SI base units (bytes, seconds, watts,
 * dollars); this header centralizes the conversion constants and the
 * human-readable formatting used by benches and examples.
 */
#ifndef PRESTO_COMMON_UNITS_H_
#define PRESTO_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace presto {

// --- byte sizes --------------------------------------------------------

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// --- time ---------------------------------------------------------------

inline constexpr double kNanoSec = 1e-9;
inline constexpr double kMicroSec = 1e-6;
inline constexpr double kMilliSec = 1e-3;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24.0 * kHour;
inline constexpr double kYear = 365.0 * kDay;

// --- frequency / bandwidth ---------------------------------------------

inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

/** 10 Gbit Ethernet payload bandwidth in bytes/second. */
inline constexpr double kTenGbEBytesPerSec = 10e9 / 8.0;

// --- formatting ----------------------------------------------------------

/** Format a byte count, e.g. "1.25 MiB". */
std::string formatBytes(double bytes);

/** Format a duration in seconds, e.g. "3.42 ms". */
std::string formatTime(double seconds);

/** Format a bandwidth in bytes/sec, e.g. "1.25 GB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Format a rate, e.g. "12.3 Kitems/s". */
std::string formatRate(double per_sec, const std::string& unit);

/** Format a double with the given number of significant decimals. */
std::string formatDouble(double value, int decimals = 2);

}  // namespace presto

#endif  // PRESTO_COMMON_UNITS_H_
