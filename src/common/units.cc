#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace presto {

namespace {

std::string
formatScaled(double value, const char* const* suffixes, int n_suffixes,
             double base)
{
    int idx = 0;
    double v = value;
    while (std::fabs(v) >= base && idx < n_suffixes - 1) {
        v /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
    return buf;
}

}  // namespace

std::string
formatBytes(double bytes)
{
    static const char* const suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB",
                                           "PiB"};
    return formatScaled(bytes, suffixes, 6, 1024.0);
}

std::string
formatTime(double seconds)
{
    char buf[64];
    double abs = std::fabs(seconds);
    if (abs < kMicroSec) {
        std::snprintf(buf, sizeof(buf), "%.2f ns", seconds / kNanoSec);
    } else if (abs < kMilliSec) {
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds / kMicroSec);
    } else if (abs < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds / kMilliSec);
    } else if (abs < kMinute) {
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    } else if (abs < kHour) {
        std::snprintf(buf, sizeof(buf), "%.2f min", seconds / kMinute);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f h", seconds / kHour);
    }
    return buf;
}

std::string
formatBandwidth(double bytes_per_sec)
{
    static const char* const suffixes[] = {"B/s", "KB/s", "MB/s", "GB/s",
                                           "TB/s"};
    return formatScaled(bytes_per_sec, suffixes, 5, 1000.0);
}

std::string
formatRate(double per_sec, const std::string& unit)
{
    static const char* const prefixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    double v = per_sec;
    while (std::fabs(v) >= 1000.0 && idx < 4) {
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s%s/s", v, prefixes[idx],
                  unit.c_str());
    return buf;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

}  // namespace presto
