/**
 * @file
 * Lightweight Status / StatusOr error propagation.
 *
 * Used on paths where failure is a *data* problem (corrupt file, bad
 * projection) rather than a programming bug; bugs use PRESTO_PANIC.
 */
#ifndef PRESTO_COMMON_STATUS_H_
#define PRESTO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace presto {

/** Machine-readable error category. */
enum class StatusCode {
    kOk,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kOutOfRange,
    kUnimplemented,
    kFailedPrecondition,
    kUnavailable,  ///< transient failure; retrying may succeed
    kAborted,      ///< operation cut short (e.g. injected crash point)
    kResourceExhausted,  ///< a budget or quota cannot fit the request
};

/** Human-readable name for a StatusCode. */
const char* statusCodeName(StatusCode code);

/**
 * Success-or-error result of an operation.
 *
 * A default-constructed Status is OK. Error statuses carry a code and a
 * message describing what went wrong.
 */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
        PRESTO_CHECK(code != StatusCode::kOk,
                     "error Status must not use kOk");
    }

    static Status okStatus() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }

    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }

    static Status
    corruption(std::string msg)
    {
        return Status(StatusCode::kCorruption, std::move(msg));
    }

    static Status
    outOfRange(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }

    static Status
    unimplemented(std::string msg)
    {
        return Status(StatusCode::kUnimplemented, std::move(msg));
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }

    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::kUnavailable, std::move(msg));
    }

    static Status
    aborted(std::string msg)
    {
        return Status(StatusCode::kAborted, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "OK" or "<code>: <message>". */
    std::string toString() const;

    bool
    operator==(const Status& other) const
    {
        return code_ == other.code_ && message_ == other.message_;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Either a value of type T or an error Status.
 *
 * Access to value() on an error StatusOr panics; callers must check ok().
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from a value (implicit, like absl::StatusOr). */
    StatusOr(T value) : data_(std::move(value)) {}

    /** Construct from an error status. */
    StatusOr(Status status) : data_(std::move(status))
    {
        PRESTO_CHECK(!std::get<Status>(data_).ok(),
                     "StatusOr must not hold an OK status");
    }

    bool ok() const { return std::holds_alternative<T>(data_); }

    /** Error status, or OK when a value is held. */
    Status
    status() const
    {
        if (ok())
            return Status::okStatus();
        return std::get<Status>(data_);
    }

    const T&
    value() const&
    {
        PRESTO_CHECK(ok(), "value() on error StatusOr: ", status().toString());
        return std::get<T>(data_);
    }

    T&
    value() &
    {
        PRESTO_CHECK(ok(), "value() on error StatusOr: ", status().toString());
        return std::get<T>(data_);
    }

    T&&
    value() &&
    {
        PRESTO_CHECK(ok(), "value() on error StatusOr: ", status().toString());
        return std::get<T>(std::move(data_));
    }

    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

  private:
    std::variant<T, Status> data_;
};

/** Propagate an error status out of the current function. */
#define PRESTO_RETURN_IF_ERROR(expr)                                          \
    do {                                                                      \
        ::presto::Status _st = (expr);                                        \
        if (!_st.ok())                                                        \
            return _st;                                                       \
    } while (false)

}  // namespace presto

#endif  // PRESTO_COMMON_STATUS_H_
