/**
 * @file
 * CRC32C (Castagnoli) checksum used to validate columnar file pages.
 */
#ifndef PRESTO_COMMON_CRC32_H_
#define PRESTO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace presto {

/**
 * Compute the CRC32C checksum of a byte buffer.
 *
 * @param data Pointer to the bytes to checksum (may be null iff size == 0).
 * @param size Number of bytes.
 * @param seed Initial CRC value; chain calls by passing a previous result.
 * @return The CRC32C checksum.
 */
uint32_t crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace presto

#endif  // PRESTO_COMMON_CRC32_H_
