/**
 * @file
 * CRC32C (Castagnoli) checksum used to validate columnar file pages.
 *
 * crc32c() is runtime-dispatched: on x86 CPUs with SSE 4.2 it uses the
 * hardware `crc32` instruction over three interleaved streams (the
 * instruction has a 3-cycle latency but 1/cycle throughput, so three
 * independent accumulators saturate the unit); everywhere else it falls
 * back to the portable byte-wise table implementation. Both paths produce
 * identical checksums for every (data, seed) pair — on-disk files and the
 * fault-injection tests are unaffected by which path runs.
 *
 * The PRESTO_CRC32 environment variable ("table") disables the hardware
 * path at startup for ad-hoc comparisons; tests and benchmarks toggle it
 * explicitly with setCrc32cHardwareEnabled().
 */
#ifndef PRESTO_COMMON_CRC32_H_
#define PRESTO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace presto {

/**
 * Compute the CRC32C checksum of a byte buffer (dispatched).
 *
 * @param data Pointer to the bytes to checksum (may be null iff size == 0).
 * @param size Number of bytes.
 * @param seed Initial CRC value; chain calls by passing a previous result.
 * @return The CRC32C checksum.
 */
uint32_t crc32c(const void* data, size_t size, uint32_t seed = 0);

/** Portable byte-wise table implementation (the dispatch reference). */
uint32_t crc32cTable(const void* data, size_t size, uint32_t seed = 0);

/** True when this build + CPU can run the SSE 4.2 hardware path. */
bool crc32cHardwareAvailable();

/** True when crc32c() currently routes to the hardware path. */
bool crc32cHardwareActive();

/**
 * Enable/disable the hardware path (clamped to crc32cHardwareAvailable()).
 * @return the resulting active state.
 */
bool setCrc32cHardwareEnabled(bool enabled);

}  // namespace presto

#endif  // PRESTO_COMMON_CRC32_H_
