/**
 * @file
 * Fixed-size worker thread pool used by the functional preprocessing path
 * to exploit inter-feature parallelism on the host CPU.
 */
#ifndef PRESTO_COMMON_THREAD_POOL_H_
#define PRESTO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace presto {

/**
 * A simple FIFO thread pool.
 *
 * Tasks are std::function<void()>; exceptions escaping a task terminate the
 * process (tasks are expected to handle their own errors).
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (>= 1). */
    explicit ThreadPool(size_t num_threads);

    /** Drains outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Run fn(i) for i in [0, n) across the pool and wait for completion.
     * Workers claim small contiguous chunks from a shared atomic cursor,
     * so skewed per-index costs rebalance instead of serializing on the
     * worker that drew the expensive shard.
     */
    void parallelFor(size_t n, const std::function<void(size_t)>& fn);

    size_t numThreads() const { return threads_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mu_;
    std::condition_variable task_available_;
    std::condition_variable all_done_;
    size_t in_flight_ = 0;
    bool shutting_down_ = false;
};

}  // namespace presto

#endif  // PRESTO_COMMON_THREAD_POOL_H_
