#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/units.h"

namespace presto {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PRESTO_CHECK(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    PRESTO_CHECK(cells.size() == headers_.size(),
                 "row has ", cells.size(), " cells, expected ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addRow(const std::string& label,
                     const std::vector<double>& values, int decimals)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, decimals));
    addRow(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back();
}

std::string
TablePrinter::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string>& cells) {
        std::string line;
        for (size_t c = 0; c < cells.size(); ++c) {
            line += "| ";
            line += cells[c];
            line.append(widths[c] - cells[c].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    auto renderRule = [&]() {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            line += "+";
            line.append(widths[c] + 2, '-');
        }
        line += "+\n";
        return line;
    };

    std::string out = renderRule() + renderRow(headers_) + renderRule();
    for (const auto& row : rows_) {
        out += row.empty() ? renderRule() : renderRow(row);
    }
    out += renderRule();
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(toString().c_str(), stdout);
}

void
printSection(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace presto
