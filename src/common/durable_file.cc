#include "common/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace presto {

namespace {

std::string
errnoMessage(const std::string& what, const std::string& path)
{
    return what + " " + path + ": " + std::strerror(errno);
}

/** Write all of @p bytes to @p fd (handles partial write() returns). */
Status
writeAll(int fd, std::span<const uint8_t> bytes, const std::string& path)
{
    size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + done,
                                  bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(errnoMessage("write to", path));
        }
        done += static_cast<size_t>(n);
    }
    return Status::okStatus();
}

}  // namespace

std::string
dirnameOf(const std::string& path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

Status
fsyncDirOf(const std::string& path)
{
    const std::string dir = dirnameOf(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return Status::unavailable(errnoMessage("open directory", dir));
    Status st = fsyncFd(fd, dir);
    ::close(fd);
    return st;
}

Status
fsyncFd(int fd, const std::string& path)
{
    if (::fsync(fd) != 0)
        return Status::unavailable(errnoMessage("fsync", path));
    return Status::okStatus();
}

Status
writeFileDurable(const std::string& path, std::span<const uint8_t> bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return Status::unavailable(errnoMessage("open for writing", tmp));
    Status st = writeAll(fd, bytes, tmp);
    if (st.ok())
        st = fsyncFd(fd, tmp);
    ::close(fd);
    if (!st.ok()) {
        ::unlink(tmp.c_str());
        return st;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return Status::unavailable(errnoMessage("rename to", path));
    }
    return fsyncDirOf(path);
}

StatusOr<uint64_t>
fileSizeOf(const std::string& path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return Status::notFound(errnoMessage("stat", path));
    return static_cast<uint64_t>(st.st_size);
}

StatusOr<int>
openReadOnly(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status::notFound(errnoMessage("open for reading", path));
    return fd;
}

Status
preadExact(int fd, uint8_t* dst, size_t len, uint64_t offset,
           const std::string& path)
{
    size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pread(fd, dst + done, len - done,
                    static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(errnoMessage("pread", path));
        }
        if (n == 0)
            return Status::corruption("short pread (file truncated?): " +
                                      path);
        done += static_cast<size_t>(n);
    }
    return Status::okStatus();
}

Status
readFileRange(const std::string& path, uint64_t offset, size_t len,
              std::vector<uint8_t>& out)
{
    auto fd = openReadOnly(path);
    if (!fd.ok())
        return fd.status();
    out.resize(len);
    Status st = preadExact(*fd, out.data(), len, offset, path);
    ::close(*fd);
    return st;
}

}  // namespace presto
