#include "common/fault_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace presto {

namespace {

/** Domain-separation tags so fault classes draw independent streams. */
enum : uint64_t {
    kDrawReadError = 0x1ead,
    kDrawCorruption = 0xc0de,
    kDrawBitIndex = 0xb17,
    kDrawTimeout = 0x7173,
    kDrawTornLength = 0x70a2,
};

}  // namespace

bool
FaultSpec::anyFaults() const
{
    return !fail_stops.empty() || !stragglers.empty() ||
           transient_read_error_prob > 0.0 || corruption_prob > 0.0 ||
           read_timeout_prob > 0.0 || crash_at_durable_op >= 0;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec))
{
    PRESTO_CHECK(spec_.transient_read_error_prob >= 0.0 &&
                     spec_.transient_read_error_prob < 1.0,
                 "transient read error probability must be in [0, 1)");
    PRESTO_CHECK(spec_.corruption_prob >= 0.0 && spec_.corruption_prob <= 1.0,
                 "corruption probability must be in [0, 1]");
    PRESTO_CHECK(spec_.read_timeout_prob >= 0.0 &&
                     spec_.read_timeout_prob < 1.0,
                 "read timeout probability must be in [0, 1)");
    PRESTO_CHECK(spec_.retry_backoff_base_sec >= 0.0,
                 "retry backoff must be non-negative");
    PRESTO_CHECK(spec_.max_read_retries >= 0, "negative retry budget");
    for (const auto& fs : spec_.fail_stops)
        PRESTO_CHECK(fs.time_sec >= 0.0, "fail-stop time must be >= 0");
    for (const auto& s : spec_.stragglers)
        PRESTO_CHECK(s.slowdown_factor >= 1.0,
                     "straggler slowdown factor must be >= 1");
    enabled_ = spec_.anyFaults();
}

std::optional<double>
FaultInjector::failStopTime(int device) const
{
    std::optional<double> earliest;
    for (const auto& fs : spec_.fail_stops) {
        if (fs.device != device)
            continue;
        if (!earliest || fs.time_sec < *earliest)
            earliest = fs.time_sec;
    }
    return earliest;
}

std::vector<FailStop>
FaultInjector::failStopsByTime() const
{
    std::vector<FailStop> ordered = spec_.fail_stops;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const FailStop& a, const FailStop& b) {
                         if (a.time_sec != b.time_sec)
                             return a.time_sec < b.time_sec;
                         return a.device < b.device;
                     });
    return ordered;
}

double
FaultInjector::slowdownFactor(int device) const
{
    double factor = 1.0;
    for (const auto& s : spec_.stragglers) {
        if (s.device == device)
            factor = std::max(factor, s.slowdown_factor);
    }
    return factor;
}

double
FaultInjector::unitDraw(uint64_t kind, uint64_t stream, uint64_t event) const
{
    // Counter-based: hash the (seed, kind, stream, event) tuple through
    // two SplitMix64 finalizer rounds; no shared mutable state, so draw
    // order across components cannot perturb outcomes.
    const uint64_t h =
        mix64(mix64(spec_.seed ^ mix64(kind)) ^
              (mix64(stream) + 0x9e3779b97f4a7c15ULL * event));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultInjector::transientReadError(uint64_t stream, uint64_t event) const
{
    if (spec_.transient_read_error_prob <= 0.0)
        return false;
    return unitDraw(kDrawReadError, stream, event) <
           spec_.transient_read_error_prob;
}

bool
FaultInjector::corruptionOccurs(uint64_t stream, uint64_t event) const
{
    if (spec_.corruption_prob <= 0.0)
        return false;
    return unitDraw(kDrawCorruption, stream, event) < spec_.corruption_prob;
}

bool
FaultInjector::readTimeout(uint64_t stream, uint64_t event) const
{
    if (spec_.read_timeout_prob <= 0.0)
        return false;
    return unitDraw(kDrawTimeout, stream, event) < spec_.read_timeout_prob;
}

bool
FaultInjector::crashAtDurableOp(uint64_t op_index) const
{
    return spec_.crash_at_durable_op >= 0 &&
           op_index ==
               static_cast<uint64_t>(spec_.crash_at_durable_op);
}

uint64_t
FaultInjector::tornWriteLength(uint64_t stream, uint64_t event,
                               uint64_t full_len) const
{
    const uint64_t h =
        mix64(mix64(spec_.seed ^ mix64(kDrawTornLength)) ^
              (mix64(stream) + 0x9e3779b97f4a7c15ULL * event));
    return h % (full_len + 1);
}

double
FaultInjector::retryBackoffSec(int retry) const
{
    PRESTO_CHECK(retry >= 0, "negative retry index");
    return spec_.retry_backoff_base_sec *
           static_cast<double>(uint64_t{1} << std::min(retry, 30));
}

std::optional<uint64_t>
FaultInjector::corruptBytes(std::span<uint8_t> bytes, uint64_t stream,
                            uint64_t event) const
{
    if (bytes.empty())
        return std::nullopt;
    const uint64_t total_bits = static_cast<uint64_t>(bytes.size()) * 8;
    const uint64_t h =
        mix64(mix64(spec_.seed ^ mix64(kDrawBitIndex)) ^
              (mix64(stream) + 0x9e3779b97f4a7c15ULL * event));
    const uint64_t bit = h % total_bits;
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    return bit;
}

}  // namespace presto
