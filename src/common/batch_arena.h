/**
 * @file
 * Per-worker reusable scratch buffers for the preprocessing hot path.
 *
 * A BatchArena owns a set of slot-indexed vectors that survive across
 * batches: the first batch through a worker sizes them, every later
 * batch reuses the same capacity, so the steady-state Transform loop
 * performs zero heap allocations per batch. Slots have stable addresses
 * (each buffer is a separately heap-allocated vector), so references
 * handed to parallel tasks stay valid while other slots are created.
 *
 * Thread safety: an arena belongs to one worker. The only concurrent
 * use allowed is lookups of *distinct, already-prepared* slots from
 * parallel tasks (prepareF32/prepareI64 must run before the fan-out).
 */
#ifndef PRESTO_COMMON_BATCH_ARENA_H_
#define PRESTO_COMMON_BATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace presto {

class BatchArena
{
  public:
    BatchArena() = default;
    BatchArena(const BatchArena&) = delete;
    BatchArena& operator=(const BatchArena&) = delete;

    /** Ensure float slots [0, count) exist (serial; call before fan-out). */
    void prepareF32(size_t count);
    /** Ensure int64 slots [0, count) exist (serial; call before fan-out). */
    void prepareI64(size_t count);

    /**
     * Scratch buffer for @p slot. Creates missing slots serially;
     * lookups of prepared slots are safe from parallel tasks as long as
     * no two tasks share a slot. Contents are whatever the previous
     * batch left — callers resize/assign before use.
     */
    std::vector<float>& f32(size_t slot);
    std::vector<int64_t>& i64(size_t slot);

    /** Account one batch completed (stats only; buffers keep capacity). */
    void noteBatch() { ++batches_; }

    // --- stats (used by the zero-allocation test hook and bench) ----------
    /** Number of slot vectors created since construction. */
    size_t slotAllocations() const { return f32_.size() + i64_.size(); }
    /** Batches served (noteBatch calls). */
    size_t batches() const { return batches_; }
    /** Total capacity currently held across slots, in bytes. */
    size_t bytesReserved() const;

  private:
    std::vector<std::unique_ptr<std::vector<float>>> f32_;
    std::vector<std::unique_ptr<std::vector<int64_t>>> i64_;
    size_t batches_ = 0;
};

}  // namespace presto

#endif  // PRESTO_COMMON_BATCH_ARENA_H_
