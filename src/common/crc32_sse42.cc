/**
 * @file
 * SSE 4.2 hardware CRC32C.
 *
 * The `crc32` instruction folds 8 bytes per issue but has 3-cycle
 * latency, so a single dependency chain runs at 1/3 of peak. This
 * implementation therefore splits large inputs into three equal blocks
 * checksummed by three independent accumulators and then merges them.
 *
 * Merging uses the linearity of CRC over GF(2): appending N zero bytes
 * to a message multiplies its CRC register state by a fixed 32x32 bit
 * matrix. We precompute that operator (by repeated matrix squaring,
 * starting from the one-zero-bit operator) for the two block lengths we
 * use, expand it into four 256-entry byte tables, and apply it with four
 * table lookups per merge. crc32c(A||B) = shiftZeros(crc(A), len(B)) ^
 * crc_raw(B) where crc_raw starts from an all-zero register.
 *
 * Compiled with -msse4.2 only in this translation unit; callers reach it
 * solely through the runtime CPU check in common/crc32.cc.
 */
#if defined(PRESTO_HAVE_SSE42_CRC)

#include <nmmintrin.h>

#include <cstdint>
#include <cstring>

namespace presto::crc_detail {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC32C, reflected

// Bytes per accumulator block. Large inputs (columnar pages are tens of
// KB) use kLongBlock; mid-size inputs use kShortBlock.
constexpr size_t kLongBlock = 4096;
constexpr size_t kShortBlock = 256;

/** result = mat * vec over GF(2) (mat is 32 column vectors). */
uint32_t
matTimesVec(const uint32_t mat[32], uint32_t vec)
{
    uint32_t sum = 0;
    for (int bit = 0; vec != 0; ++bit, vec >>= 1) {
        if (vec & 1)
            sum ^= mat[bit];
    }
    return sum;
}

/** dst = a * b over GF(2) (apply b, then a). */
void
matMul(uint32_t dst[32], const uint32_t a[32], const uint32_t b[32])
{
    for (int n = 0; n < 32; ++n)
        dst[n] = matTimesVec(a, b[n]);
}

/**
 * Compute the GF(2) operator that advances a raw CRC register past
 * @p len zero bytes, as a 32x32 bit matrix in @p op.
 */
void
zeroOperator(uint32_t op[32], size_t len)
{
    // Operator for a single zero *bit* (reflected polynomial: register
    // shifts right, feedback taps from bit 0).
    uint32_t power[32];
    power[0] = kPoly;
    for (int n = 1; n < 32; ++n)
        power[n] = 1u << (n - 1);
    // Square up to one zero byte: 1 -> 2 -> 4 -> 8 zero bits.
    uint32_t tmp[32];
    for (int i = 0; i < 3; ++i) {
        matMul(tmp, power, power);
        std::memcpy(power, tmp, sizeof(tmp));
    }
    // Square-and-multiply over the bits of len (op starts as identity).
    for (int n = 0; n < 32; ++n)
        op[n] = 1u << n;
    while (len != 0) {
        if (len & 1) {
            matMul(tmp, power, op);
            std::memcpy(op, tmp, sizeof(tmp));
        }
        len >>= 1;
        if (len != 0) {
            matMul(tmp, power, power);
            std::memcpy(power, tmp, sizeof(tmp));
        }
    }
}

/** 4x256 lookup form of a zero operator for one-lookup-per-byte apply. */
struct ShiftTable {
    uint32_t t[4][256];

    explicit ShiftTable(size_t len)
    {
        uint32_t op[32];
        zeroOperator(op, len);
        for (uint32_t n = 0; n < 256; ++n) {
            t[0][n] = matTimesVec(op, n);
            t[1][n] = matTimesVec(op, n << 8);
            t[2][n] = matTimesVec(op, n << 16);
            t[3][n] = matTimesVec(op, n << 24);
        }
    }

    uint32_t
    apply(uint32_t crc) const
    {
        return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^
               t[2][(crc >> 16) & 0xff] ^ t[3][crc >> 24];
    }
};

uint64_t
load64(const uint8_t* p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Fold three consecutive @p block-byte chunks with independent
 * accumulators and merge into @p crc (raw register state).
 */
template <size_t kBlock>
const uint8_t*
fold3(uint64_t& crc, const uint8_t* p, const ShiftTable& shift)
{
    uint64_t c0 = crc;
    uint64_t c1 = 0;
    uint64_t c2 = 0;
    for (size_t i = 0; i < kBlock; i += 8) {
        c0 = _mm_crc32_u64(c0, load64(p + i));
        c1 = _mm_crc32_u64(c1, load64(p + kBlock + i));
        c2 = _mm_crc32_u64(c2, load64(p + 2 * kBlock + i));
    }
    uint32_t merged = shift.apply(static_cast<uint32_t>(c0)) ^
                      static_cast<uint32_t>(c1);
    merged = shift.apply(merged) ^ static_cast<uint32_t>(c2);
    crc = merged;
    return p + 3 * kBlock;
}

}  // namespace

bool
sse42CrcSupported()
{
    return __builtin_cpu_supports("sse4.2");
}

uint32_t
crc32cSse42(const void* data, size_t size, uint32_t seed)
{
    static const ShiftTable kShiftLong(kLongBlock);
    static const ShiftTable kShiftShort(kShortBlock);

    const auto* p = static_cast<const uint8_t*>(data);
    uint64_t crc = ~seed;  // raw register state; zero-extended to 64 bits

    // Align to 8 bytes so the wide loads below are aligned-friendly.
    while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = _mm_crc32_u8(static_cast<uint32_t>(crc), *p++);
        --size;
    }
    while (size >= 3 * kLongBlock) {
        p = fold3<kLongBlock>(crc, p, kShiftLong);
        size -= 3 * kLongBlock;
    }
    while (size >= 3 * kShortBlock) {
        p = fold3<kShortBlock>(crc, p, kShiftShort);
        size -= 3 * kShortBlock;
    }
    while (size >= 8) {
        crc = _mm_crc32_u64(crc, load64(p));
        p += 8;
        size -= 8;
    }
    while (size > 0) {
        crc = _mm_crc32_u8(static_cast<uint32_t>(crc), *p++);
        --size;
    }
    return ~static_cast<uint32_t>(crc);
}

}  // namespace presto::crc_detail

#endif  // PRESTO_HAVE_SSE42_CRC
