/**
 * @file
 * Durable POSIX file primitives shared by the dataset writer and the
 * persistent segment store.
 *
 * The crash model these helpers target is the standard one for
 * journaled stores: after a crash, a file write may be torn at any byte
 * offset, but a rename that was followed by an fsync of its directory
 * is atomic and durable. The canonical crash-atomic publish is
 * therefore
 *
 *   write temp -> fsync temp -> rename over target -> fsync directory
 *
 * which writeFileDurable() implements; readers then either see the old
 * complete file or the new complete file, never a torn mix.
 */
#ifndef PRESTO_COMMON_DURABLE_FILE_H_
#define PRESTO_COMMON_DURABLE_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace presto {

/** Directory component of @p path ("." when there is none). */
std::string dirnameOf(const std::string& path);

/** fsync the directory containing @p path (making renames durable). */
Status fsyncDirOf(const std::string& path);

/** fsync one open descriptor. */
Status fsyncFd(int fd, const std::string& path);

/** Crash-atomic whole-file publish: temp + fsync + rename + dir fsync. */
Status writeFileDurable(const std::string& path,
                        std::span<const uint8_t> bytes);

/** Size of the file at @p path (kNotFound when absent). */
StatusOr<uint64_t> fileSizeOf(const std::string& path);

/** Open @p path read-only. */
StatusOr<int> openReadOnly(const std::string& path);

/** Read exactly @p len bytes at @p offset (kCorruption on short read). */
Status preadExact(int fd, uint8_t* dst, size_t len, uint64_t offset,
                  const std::string& path);

/** Read a byte range of a file into @p out (resized to @p len). */
Status readFileRange(const std::string& path, uint64_t offset, size_t len,
                     std::vector<uint8_t>& out);

}  // namespace presto

#endif  // PRESTO_COMMON_DURABLE_FILE_H_
