#include "common/batch_arena.h"

namespace presto {

void
BatchArena::prepareF32(size_t count)
{
    while (f32_.size() < count)
        f32_.push_back(std::make_unique<std::vector<float>>());
}

void
BatchArena::prepareI64(size_t count)
{
    while (i64_.size() < count)
        i64_.push_back(std::make_unique<std::vector<int64_t>>());
}

std::vector<float>&
BatchArena::f32(size_t slot)
{
    if (slot >= f32_.size())
        prepareF32(slot + 1);
    return *f32_[slot];
}

std::vector<int64_t>&
BatchArena::i64(size_t slot)
{
    if (slot >= i64_.size())
        prepareI64(slot + 1);
    return *i64_[slot];
}

size_t
BatchArena::bytesReserved() const
{
    size_t bytes = 0;
    for (const auto& v : f32_)
        bytes += v->capacity() * sizeof(float);
    for (const auto& v : i64_)
        bytes += v->capacity() * sizeof(int64_t);
    return bytes;
}

}  // namespace presto
