/**
 * @file
 * Small statistics toolkit: streaming accumulators and fixed-bin histograms.
 *
 * Used by the simulators to summarize latency/queue-depth samples and by
 * tests to check distribution properties of synthetic data.
 */
#ifndef PRESTO_COMMON_STATS_H_
#define PRESTO_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace presto {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const;

    /** Merge another accumulator into this one. */
    void merge(const Accumulator& other);

    /** Reset to the empty state. */
    void
    reset()
    {
        *this = Accumulator();
    }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound (exclusive); must be > lo.
     * @param bins Number of equal-width bins; must be > 0.
     */
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    size_t numBins() const { return counts_.size(); }
    uint64_t binCount(size_t bin) const { return counts_.at(bin); }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t totalCount() const { return total_; }

    /** Inclusive lower edge of a bin. */
    double binLow(size_t bin) const;

    /**
     * Approximate quantile (0 <= q <= 1) by linear interpolation within the
     * containing bin. Returns lo/hi bounds for empty histograms.
     */
    double quantile(double q) const;

    /** Render a compact multi-line ASCII bar chart. */
    std::string toString(size_t max_width = 40) const;

  private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

}  // namespace presto

#endif  // PRESTO_COMMON_STATS_H_
