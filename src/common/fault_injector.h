/**
 * @file
 * Deterministic, seeded fault injection for the preprocessing tier.
 *
 * Production ingestion systems treat preprocessing failures as routine
 * (device fail-stop, transient read errors, stragglers, bit rot), and a
 * small ISP pool amplifies the capacity impact of every single failure.
 * This module provides the single source of fault randomness for the
 * whole repo: every fault class is drawn by *stateless counter-based
 * hashing* of (seed, fault class, stream, event index), so a draw's
 * outcome does not depend on the order other components query the
 * injector — the same seed and spec always produce the same fault
 * timeline, bit for bit, on any machine.
 *
 * Consumers: PoolScheduler (device fail-stop, re-provisioning),
 * TrainingPipeline (worker death, stragglers, retry/backoff,
 * corruption re-fetch), PartitionStore (transient read errors and
 * bit-flip corruption of encoded PSF bytes on the functional path).
 */
#ifndef PRESTO_COMMON_FAULT_INJECTOR_H_
#define PRESTO_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace presto {

/** One scheduled fail-stop: device/worker @p device dies at @p time_sec. */
struct FailStop {
    int device = 0;
    double time_sec = 0;
};

/** One straggler: device/worker @p device runs @p slowdown_factor slower. */
struct Straggler {
    int device = 0;
    double slowdown_factor = 1.0;  ///< >= 1; 2.0 = half speed
};

/**
 * Declarative description of the faults to inject into one run.
 *
 * A default-constructed spec injects nothing; components must behave
 * bit-identically to their fault-free implementation when handed one.
 */
struct FaultSpec {
    uint64_t seed = 0xfa17fa17fa17fa17ULL;

    /** Fail-stop failures (device granularity, permanent). */
    std::vector<FailStop> fail_stops;

    /** Devices that run slower than their nominal throughput. */
    std::vector<Straggler> stragglers;

    /** Probability a partition read fails transiently (per attempt). */
    double transient_read_error_prob = 0.0;

    /** First retry backoff; doubles per retry (exponential backoff). */
    double retry_backoff_base_sec = 0.010;

    /** Retries before a read is declared permanently failed. */
    int max_read_retries = 8;

    /** Probability an encoded partition arrives bit-flipped (per fetch). */
    double corruption_prob = 0.0;

    /**
     * Probability an in-flight storage request times out (per attempt).
     * Timeouts are drawn independently from transient errors; both are
     * retried with the same backoff/budget (see IoRing).
     */
    double read_timeout_prob = 0.0;

    /**
     * Crash point for durable-write sequences (segment store). Counting
     * the store's durable operations (journal appends, file writes,
     * renames, directory syncs) from zero, the operation with this
     * index "crashes": a data write lands only a torn prefix (length
     * drawn by tornWriteLength), a rename/sync simply never happens,
     * and every later operation fails with kAborted. -1 never crashes.
     * Enumerating this index over a workload visits every crash window.
     */
    int64_t crash_at_durable_op = -1;

    /** True when any fault class is active. */
    bool anyFaults() const;
};

/**
 * Deterministic fault oracle over one FaultSpec.
 *
 * All probabilistic queries take an explicit (stream, event) pair which
 * the caller must derive from stable identifiers (worker id, partition
 * id, attempt number) — never from wall-clock state — to keep runs
 * replayable.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec);

    const FaultSpec& spec() const { return spec_; }

    /** False for a no-fault spec: callers can skip the fault path. */
    bool enabled() const { return enabled_; }

    /** Time at which @p device fail-stops (earliest if listed twice). */
    std::optional<double> failStopTime(int device) const;

    /** Fail-stop entries ordered by (time, device); for DES replay. */
    std::vector<FailStop> failStopsByTime() const;

    /** Slowdown factor of @p device (1.0 when not a straggler). */
    double slowdownFactor(int device) const;

    /** Whether read attempt @p event on @p stream transiently fails. */
    bool transientReadError(uint64_t stream, uint64_t event) const;

    /** Whether fetch @p event on @p stream delivers corrupted bytes. */
    bool corruptionOccurs(uint64_t stream, uint64_t event) const;

    /** Whether in-flight request attempt @p event on @p stream times out. */
    bool readTimeout(uint64_t stream, uint64_t event) const;

    /** Whether durable operation @p op_index is the injected crash. */
    bool crashAtDurableOp(uint64_t op_index) const;

    /**
     * Bytes of a @p full_len-byte durable write that reach the medium
     * when the crash interrupts it: a deterministic draw in
     * [0, full_len] keyed on (stream, event), so sweeping crash points
     * also sweeps torn-tail lengths.
     */
    uint64_t tornWriteLength(uint64_t stream, uint64_t event,
                             uint64_t full_len) const;

    /**
     * Backoff before retry @p retry (0-based) of a failed read:
     * retry_backoff_base_sec * 2^retry.
     */
    double retryBackoffSec(int retry) const;

    /**
     * Deterministically flip one bit of @p bytes (position derived from
     * the seed and @p stream/@p event). No-op on empty input.
     * @return Index of the flipped bit, or nullopt for empty input.
     */
    std::optional<uint64_t> corruptBytes(std::span<uint8_t> bytes,
                                         uint64_t stream,
                                         uint64_t event) const;

  private:
    /** Uniform [0,1) draw for (fault class @p kind, stream, event). */
    double unitDraw(uint64_t kind, uint64_t stream, uint64_t event) const;

    FaultSpec spec_;
    bool enabled_ = false;
};

}  // namespace presto

#endif  // PRESTO_COMMON_FAULT_INJECTOR_H_
