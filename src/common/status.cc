#include "common/status.h"

namespace presto {

const char*
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:                 return "OK";
      case StatusCode::kInvalidArgument:    return "INVALID_ARGUMENT";
      case StatusCode::kNotFound:           return "NOT_FOUND";
      case StatusCode::kCorruption:         return "CORRUPTION";
      case StatusCode::kOutOfRange:         return "OUT_OF_RANGE";
      case StatusCode::kUnimplemented:      return "UNIMPLEMENTED";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnavailable:        return "UNAVAILABLE";
      case StatusCode::kAborted:            return "ABORTED";
      case StatusCode::kResourceExhausted:  return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

}  // namespace presto
