/**
 * @file
 * Logging and error-termination helpers.
 *
 * Follows the gem5 convention:
 *  - inform(): status messages with no connotation of misbehaviour.
 *  - warn():   something is off but the run can continue.
 *  - fatal():  the run cannot continue due to a *user* error (bad config,
 *              invalid argument); exits with code 1.
 *  - panic():  an internal invariant was violated (a library bug); aborts.
 */
#ifndef PRESTO_COMMON_LOGGING_H_
#define PRESTO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace presto {

/** Severity of a log message. */
enum class LogLevel {
    kInform,
    kWarn,
    kFatal,
    kPanic,
};

namespace detail {

/** Emit a formatted log line; terminates for kFatal/kPanic. */
[[noreturn]] void logAndDie(LogLevel level, const std::string& msg,
                            const char* file, int line);
void log(LogLevel level, const std::string& msg);

/** Stringify a pack of arguments via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

}  // namespace detail

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::log(LogLevel::kInform, detail::concat(std::forward<Args>(args)...));
}

/** Print a warning message to stderr. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

/** Globally silence inform() output (warnings still print). */
void setQuietLogging(bool quiet);

/** Abort the process due to a user-level error (exit code 1). */
#define PRESTO_FATAL(...)                                                     \
    ::presto::detail::logAndDie(::presto::LogLevel::kFatal,                   \
                                ::presto::detail::concat(__VA_ARGS__),        \
                                __FILE__, __LINE__)

/** Abort the process due to an internal bug (calls std::abort). */
#define PRESTO_PANIC(...)                                                     \
    ::presto::detail::logAndDie(::presto::LogLevel::kPanic,                   \
                                ::presto::detail::concat(__VA_ARGS__),        \
                                __FILE__, __LINE__)

/** Panic unless an internal invariant holds. */
#define PRESTO_CHECK(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            PRESTO_PANIC("check failed: " #cond " ", ##__VA_ARGS__);          \
        }                                                                     \
    } while (false)

}  // namespace presto

#endif  // PRESTO_COMMON_LOGGING_H_
