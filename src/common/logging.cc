#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace presto {

namespace {

std::atomic<bool> g_quiet{false};

const char*
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kInform: return "info";
      case LogLevel::kWarn:   return "warn";
      case LogLevel::kFatal:  return "fatal";
      case LogLevel::kPanic:  return "panic";
    }
    return "?";
}

}  // namespace

void
setQuietLogging(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

namespace detail {

void
log(LogLevel level, const std::string& msg)
{
    if (level == LogLevel::kInform && g_quiet.load(std::memory_order_relaxed))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
logAndDie(LogLevel level, const std::string& msg, const char* file, int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelTag(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::kPanic)
        std::abort();
    std::exit(1);
}

}  // namespace detail
}  // namespace presto
