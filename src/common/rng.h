/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic data and simulation randomness flows through these
 * generators so that every bench/test run is bit-reproducible across
 * machines (std::mt19937 distributions are not portable across standard
 * library implementations, so we implement our own).
 */
#ifndef PRESTO_COMMON_RNG_H_
#define PRESTO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace presto {

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
constexpr uint64_t
splitMix64(uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a value (SplitMix64 finalizer). */
constexpr uint64_t
mix64(uint64_t x)
{
    uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Xoshiro256** PRNG.
 *
 * Fast, high-quality, and fully deterministic given a seed. Satisfies the
 * UniformRandomBitGenerator concept.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto& word : s_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    uint64_t operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. Unbiased via rejection. */
    uint64_t
    uniformInt(uint64_t n)
    {
        PRESTO_CHECK(n > 0, "uniformInt(0)");
        const uint64_t threshold = (0 - n) % n;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % n;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        PRESTO_CHECK(lo <= hi, "uniformInt range inverted");
        return lo + static_cast<int64_t>(
                        uniformInt(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Standard normal via Box-Muller (deterministic, portable). */
    double
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        spare_ = r * std::sin(theta);
        have_spare_ = true;
        return r * std::cos(theta);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Log-normal: exp(N(mu, sigma)). */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Fork an independent stream (e.g. one per worker/partition). */
    Rng
    fork(uint64_t stream_id)
    {
        return Rng(mix64(next() ^ mix64(stream_id)));
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4] = {};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace presto

#endif  // PRESTO_COMMON_RNG_H_
