#include "common/crc32.h"

#include <array>

namespace presto {

namespace {

/** Build the CRC32C (polynomial 0x82f63b78, reflected) lookup table. */
constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kTable = makeTable();

}  // namespace

uint32_t
crc32c(const void* data, size_t size, uint32_t seed)
{
    const auto* bytes = static_cast<const uint8_t*>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xff];
    return ~crc;
}

}  // namespace presto
