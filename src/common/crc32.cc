#include "common/crc32.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <string_view>

namespace presto {

#if defined(PRESTO_HAVE_SSE42_CRC)
namespace crc_detail {
bool sse42CrcSupported();
uint32_t crc32cSse42(const void* data, size_t size, uint32_t seed);
}  // namespace crc_detail
#endif

namespace {

/** Build the CRC32C (polynomial 0x82f63b78, reflected) lookup table. */
constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kTable = makeTable();

bool
initialHardwareState()
{
    if (!crc32cHardwareAvailable())
        return false;
    const char* env = std::getenv("PRESTO_CRC32");
    if (env != nullptr && std::string_view(env) == "table")
        return false;
    return true;
}

/** Function-local so first use during static init is still safe. */
std::atomic<bool>&
hardwareActiveFlag()
{
    static std::atomic<bool> active{initialHardwareState()};
    return active;
}

}  // namespace

uint32_t
crc32cTable(const void* data, size_t size, uint32_t seed)
{
    const auto* bytes = static_cast<const uint8_t*>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xff];
    return ~crc;
}

bool
crc32cHardwareAvailable()
{
#if defined(PRESTO_HAVE_SSE42_CRC)
    return crc_detail::sse42CrcSupported();
#else
    return false;
#endif
}

bool
crc32cHardwareActive()
{
    return hardwareActiveFlag().load(std::memory_order_relaxed);
}

bool
setCrc32cHardwareEnabled(bool enabled)
{
    const bool active = enabled && crc32cHardwareAvailable();
    hardwareActiveFlag().store(active, std::memory_order_relaxed);
    return active;
}

uint32_t
crc32c(const void* data, size_t size, uint32_t seed)
{
#if defined(PRESTO_HAVE_SSE42_CRC)
    if (hardwareActiveFlag().load(std::memory_order_relaxed))
        return crc_detail::crc32cSse42(data, size, seed);
#endif
    return crc32cTable(data, size, seed);
}

}  // namespace presto
