#include "common/stats.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace presto {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    PRESTO_CHECK(hi > lo, "Histogram range inverted");
    PRESTO_CHECK(bins > 0, "Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto bin = static_cast<size_t>((x - lo_) / bin_width_);
        if (bin >= counts_.size())
            bin = counts_.size() - 1;  // guard FP edge at hi
        ++counts_[bin];
    }
}

double
Histogram::binLow(size_t bin) const
{
    PRESTO_CHECK(bin < counts_.size(), "bin out of range");
    return lo_ + bin_width_ * static_cast<double>(bin);
}

double
Histogram::quantile(double q) const
{
    PRESTO_CHECK(q >= 0.0 && q <= 1.0, "quantile outside [0,1]");
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target && underflow_ > 0)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(counts_[i]);
            return binLow(i) + frac * bin_width_;
        }
        cum = next;
    }
    return hi_;
}

std::string
Histogram::toString(size_t max_width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    char buf[128];
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(max_width));
        std::snprintf(buf, sizeof(buf), "[%12.4g, %12.4g) %8llu ", binLow(i),
                      binLow(i) + bin_width_,
                      static_cast<unsigned long long>(counts_[i]));
        out += buf;
        out.append(bar_len, '#');
        out += '\n';
    }
    return out;
}

}  // namespace presto
