/**
 * @file
 * Aligned plain-text table rendering for bench output.
 *
 * Every bench binary prints the rows/series of one paper table or figure
 * through this printer so outputs share a consistent, diffable layout.
 */
#ifndef PRESTO_COMMON_TABLE_PRINTER_H_
#define PRESTO_COMMON_TABLE_PRINTER_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace presto {

/**
 * Collects header + rows of strings and renders them with per-column
 * alignment and a separator rule under the header.
 */
class TablePrinter
{
  public:
    /** Set the column headers; defines the column count. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: values are formatted with formatDouble(decimals). */
    void addRow(const std::string& label, const std::vector<double>& values,
                int decimals = 2);

    /** Insert a horizontal separator row. */
    void addSeparator();

    /** Render the table as a string (trailing newline included). */
    std::string toString() const;

    /** Render to stdout. */
    void print() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/** Print a titled section header for bench output. */
void printSection(const std::string& title);

}  // namespace presto

#endif  // PRESTO_COMMON_TABLE_PRINTER_H_
