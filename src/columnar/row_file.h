/**
 * @file
 * Row-oriented partition format (RSF) — the layout the paper's Extract
 * stage argues *against* (Section II-B): with row-major storage, fetching
 * any feature subset forces reading every row in full, wasting read
 * bandwidth on unwanted features.
 *
 * Included as the baseline for the overfetch ablation; the library's real
 * storage path is the columnar PSF format.
 *
 * Layout:
 *   "RSF1"
 *   row records: per row, per schema feature: dense -> f32;
 *                sparse -> varint length + zigzag-varint ids
 *   footer: schema, num_rows, partition_id, record offsets every
 *           kRowGroupRows rows
 *   footer_size u32, footer_crc u32, "RSF1"
 */
#ifndef PRESTO_COLUMNAR_ROW_FILE_H_
#define PRESTO_COLUMNAR_ROW_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tabular/row_batch.h"

namespace presto {

/** Serializes a RowBatch in row-major order. */
class RowFileWriter
{
  public:
    /** Encode @p batch as one RSF file. */
    std::vector<uint8_t> write(const RowBatch& batch,
                               uint64_t partition_id) const;
};

/**
 * Reads RSF bytes. Any projection must scan every record, so
 * bytesTouched() ~= the whole data region regardless of the subset —
 * the overfetch the columnar format exists to avoid.
 */
class RowFileReader
{
  public:
    /** Parse and validate the footer. Keeps a reference to @p data. */
    Status open(std::span<const uint8_t> data);

    /** Decode the named features for all rows (scans every record). */
    StatusOr<RowBatch> readColumns(const std::vector<std::string>& names);

    /** Decode every feature. */
    StatusOr<RowBatch> readAll();

    uint64_t numRows() const { return num_rows_; }
    uint64_t partitionId() const { return partition_id_; }
    const Schema& schema() const { return schema_; }

    /** Bytes inspected so far; for any projection this covers the whole
     *  record region. */
    uint64_t bytesTouched() const { return bytes_touched_; }

  private:
    std::span<const uint8_t> data_;
    Schema schema_;
    uint64_t num_rows_ = 0;
    uint64_t partition_id_ = 0;
    size_t records_begin_ = 0;
    size_t records_end_ = 0;
    uint64_t bytes_touched_ = 0;
    bool open_ = false;
};

}  // namespace presto

#endif  // PRESTO_COLUMNAR_ROW_FILE_H_
