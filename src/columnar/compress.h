/**
 * @file
 * Per-page compression codecs for the PSF format.
 *
 * The paper's Extract stage decompresses columnar pages before decoding
 * them; PSF models that with an optional per-page codec applied to the
 * *encoded* payload (the page CRC covers the compressed bytes, so
 * corruption is caught before any decompression runs).
 *
 * kLz is an LZ4-style byte-oriented LZ77 implemented in-repo (no
 * external dependency). Block format, borrowed from the LZ4 block spec:
 *
 *   sequence := token u8
 *               [literal-length extension bytes]   if (token >> 4) == 15
 *               literals                           (token >> 4) + ext bytes
 *               offset u16 LE                      1..65535, back-reference
 *               [match-length extension bytes]     if (token & 15) == 15
 *
 *   - token high nibble: literal run length (15 = add following bytes,
 *     each 0..255, until a byte != 255).
 *   - token low nibble: match length - 4 (same 15/255 extension rule);
 *     the minimum match is 4 bytes.
 *   - matches may overlap their output (offset < length copies
 *     byte-by-byte, giving RLE-like runs).
 *   - the final sequence is literals-only: the stream ends immediately
 *     after its literals and its match nibble must be zero.
 *
 * Decompression is fully bounds-checked: any truncated, overlong, or
 * otherwise malformed stream (including one that does not decompress to
 * exactly the advertised raw size) returns kCorruption and never reads
 * or writes out of bounds.
 */
#ifndef PRESTO_COLUMNAR_COMPRESS_H_
#define PRESTO_COLUMNAR_COMPRESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace presto {

/** Page codec identifiers (stable on-disk values; 0 is never stored). */
enum class PageCodec : uint8_t {
    kNone = 0,      ///< uncompressed page (no codec byte in the frame)
    kLz = 1,        ///< in-repo LZ4-style byte codec (see file comment)
    kEntropy = 2,   ///< canonical-Huffman entropy coding (entropy.h)
    kLzEntropy = 3, ///< kLz stream entropy-coded as a whole (entropy.h)
};

/** Human-readable codec name. */
const char* pageCodecName(PageCodec codec);

namespace enc {

/**
 * Compress @p in with the kLz codec, appending to @p out (cleared
 * first; capacity is reused across calls). The result always
 * decompresses to @p in exactly; it is not guaranteed to be smaller
 * (high-entropy input expands by up to ~1/255 + a few bytes).
 */
void lzCompress(std::span<const uint8_t> in, std::vector<uint8_t>& out);

/** Convenience form of lzCompress(). */
std::vector<uint8_t> lzCompress(std::span<const uint8_t> in);

/**
 * Decompress a kLz stream into exactly @p out.size() bytes.
 * @return kCorruption for any malformed input: truncated literals or
 * extension bytes, a zero or out-of-window match offset, output
 * overrun, a non-zero match nibble on the final sequence, or a stream
 * that ends before filling @p out.
 */
Status lzDecompress(std::span<const uint8_t> in, std::span<uint8_t> out);

}  // namespace enc
}  // namespace presto

#endif  // PRESTO_COLUMNAR_COMPRESS_H_
