/**
 * @file
 * Value encodings for columnar pages.
 *
 * The columnar file format (our stand-in for Apache Parquet) stores each
 * page's payload with one of these encodings:
 *  - kPlainF32 / kPlainI64: raw little-endian values.
 *  - kVarint:   LEB128 unsigned varints (ZigZag applied for signed data).
 *  - kDeltaVarint: first value ZigZag-varint, then ZigZag-varint deltas;
 *    compact for monotonically increasing offset arrays.
 *  - kRle: (run_length varint, value ZigZag-varint) pairs; compact for
 *    label columns and repeated lengths.
 *  - kDictionary: distinct-value dictionary (ZigZag-varint) followed by
 *    varint indices; compact for Zipf-popular categorical ids.
 *  - kBitPacked: fixed-width bit-packed values; compact for dictionary
 *    indices and small-range columns, and the cheapest non-plain
 *    encoding to decode (SIMD shift/mask, no byte-by-byte parse).
 *
 * kBitPacked payload framing (all multi-bit fields LSB-first):
 *
 *   [mode u8]
 *   mode 0 (frame-of-reference):
 *     [base  ZigZag-varint]            minimum value of the page
 *     [width u8, 0..64]                bits per packed delta
 *     [packed (value - base) deltas]   ceil(count * width / 8) bytes
 *   mode 1 (bit-packed dictionary):
 *     [dict_size varint]
 *     [dict entries, ZigZag-varint]    dict_size values, first-seen order
 *     [width u8, 0..64]                bits per packed index
 *     [packed indices]                 ceil(count * width / 8) bytes
 *   mode 2 (frame-of-reference over deltas; needs count >= 1):
 *     [first ZigZag-varint]            value[0]
 *     [base  ZigZag-varint]            minimum consecutive delta
 *     [width u8, 0..64]                bits per packed delta excess
 *     [packed (delta - base) excesses] ceil((count-1) * width / 8) bytes;
 *     value[i] = value[i-1] + base + excess[i-1] — near-constant-stride
 *     sequences (monotone offset arrays) pack in a few bits per value
 *     yet keep the shift/mask decode path instead of byte-wise varints.
 *
 * The packed block's byte length must match exactly, and unused bits of
 * the final byte must be zero; violations (as well as mode > 2,
 * width > 64, an index >= dict_size, or a mode-2 page with count == 0)
 * decode to kCorruption. Deltas use two's-complement wraparound
 * (base + delta mod 2^64), so any int64 range round-trips.
 *
 * Decoding is runtime-dispatched over SWAR/AVX2 kernels bit-identical
 * to the byte-wise reference decoders (see fast_decode_internal.h);
 * setFastDecodeEnabled(false) pins the reference path for tests and
 * benchmarks.
 */
#ifndef PRESTO_COLUMNAR_ENCODING_H_
#define PRESTO_COLUMNAR_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace presto {

/** Page payload encoding identifiers (stable on-disk values). */
enum class Encoding : uint8_t {
    kPlainF32 = 0,
    kPlainI64 = 1,
    kVarint = 2,
    kDeltaVarint = 3,
    kRle = 4,
    kDictionary = 5,
    kBitPacked = 6,
};

/** Human-readable encoding name. */
const char* encodingName(Encoding encoding);

namespace enc {

// --- primitive varint helpers (also used by the file footer) -------------

/** Append an unsigned LEB128 varint. */
void putVarint(std::vector<uint8_t>& out, uint64_t value);

/**
 * Read an unsigned LEB128 varint at @p pos (advanced past the varint).
 * @return kCorruption on truncated, over-long (> 10 bytes), or
 * overflowing (significant bits past 2^64) input.
 */
Status getVarint(std::span<const uint8_t> in, size_t& pos, uint64_t& value);

/** Encoded size of putVarint(value) in bytes (1..10). */
constexpr size_t
varintLen(uint64_t value)
{
    size_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

/** ZigZag-map a signed value to unsigned. */
constexpr uint64_t
zigZag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigZag(). */
constexpr int64_t
unZigZag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// --- whole-buffer encoders ------------------------------------------------

std::vector<uint8_t> encodePlainF32(std::span<const float> values);
std::vector<uint8_t> encodePlainI64(std::span<const int64_t> values);
std::vector<uint8_t> encodeVarint(std::span<const int64_t> values);
std::vector<uint8_t> encodeDeltaVarint(std::span<const int64_t> values);
std::vector<uint8_t> encodeRle(std::span<const int64_t> values);
std::vector<uint8_t> encodeDictionary(std::span<const int64_t> values);

/** Encode with the smallest of the three kBitPacked modes (see framing). */
std::vector<uint8_t> encodeBitPacked(std::span<const int64_t> values);

/**
 * Decode @p count floats; only kPlainF32 is valid for float payloads.
 */
Status decodeF32(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<float>& out);

/** Same, into caller-owned storage with room for @p count floats. */
Status decodeF32Into(Encoding encoding, std::span<const uint8_t> payload,
                     size_t count, float* out);

/**
 * Decode @p count int64 values with any integer encoding.
 */
Status decodeI64(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<int64_t>& out);

/**
 * Same, with a caller-owned scratch buffer for the page dictionary so
 * repeated decodes reuse its capacity (allocation-free steady state).
 */
Status decodeI64(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<int64_t>& out,
                 std::vector<int64_t>& dict_scratch);

/**
 * Dispatched decode into caller-owned storage with room for @p count
 * values (what decodeI64 and the page-parallel reader run). On failure
 * the output contents are unspecified.
 */
Status decodeI64Into(Encoding encoding, std::span<const uint8_t> payload,
                     size_t count, int64_t* out,
                     std::vector<int64_t>& dict_scratch);

/**
 * Byte-wise reference decoder: the semantics oracle the dispatched
 * kernels are differentially tested against (identical outputs and
 * identical accept/reject decisions).
 */
Status decodeI64Reference(Encoding encoding,
                          std::span<const uint8_t> payload, size_t count,
                          std::vector<int64_t>& out,
                          std::vector<int64_t>& dict_scratch);

/**
 * Test/bench hook: when disabled, decodeI64 routes through
 * decodeI64Reference instead of the dispatched kernels.
 * @return the previous state.
 */
bool setFastDecodeEnabled(bool enabled);

/** True when decodeI64 uses the dispatched kernels (the default). */
bool fastDecodeEnabled();

/**
 * Pick the smallest integer encoding for @p values by computing exact
 * encoded sizes for every candidate in one pass (ties go to the
 * cheaper-to-decode encoding).
 */
Encoding chooseIntEncoding(std::span<const int64_t> values);

}  // namespace enc
}  // namespace presto

#endif  // PRESTO_COLUMNAR_ENCODING_H_
