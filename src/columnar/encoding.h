/**
 * @file
 * Value encodings for columnar pages.
 *
 * The columnar file format (our stand-in for Apache Parquet) stores each
 * page's payload with one of these encodings:
 *  - kPlainF32 / kPlainI64: raw little-endian values.
 *  - kVarint:   LEB128 unsigned varints (ZigZag applied for signed data).
 *  - kDeltaVarint: first value ZigZag-varint, then ZigZag-varint deltas;
 *    compact for monotonically increasing offset arrays.
 *  - kRle: (run_length varint, value ZigZag-varint) pairs; compact for
 *    label columns and repeated lengths.
 *  - kDictionary: distinct-value dictionary (ZigZag-varint) followed by
 *    varint indices; compact for Zipf-popular categorical ids.
 */
#ifndef PRESTO_COLUMNAR_ENCODING_H_
#define PRESTO_COLUMNAR_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace presto {

/** Page payload encoding identifiers (stable on-disk values). */
enum class Encoding : uint8_t {
    kPlainF32 = 0,
    kPlainI64 = 1,
    kVarint = 2,
    kDeltaVarint = 3,
    kRle = 4,
    kDictionary = 5,
};

/** Human-readable encoding name. */
const char* encodingName(Encoding encoding);

namespace enc {

// --- primitive varint helpers (also used by the file footer) -------------

/** Append an unsigned LEB128 varint. */
void putVarint(std::vector<uint8_t>& out, uint64_t value);

/**
 * Read an unsigned LEB128 varint at @p pos (advanced past the varint).
 * @return kCorruption on truncated or over-long input.
 */
Status getVarint(std::span<const uint8_t> in, size_t& pos, uint64_t& value);

/** ZigZag-map a signed value to unsigned. */
constexpr uint64_t
zigZag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigZag(). */
constexpr int64_t
unZigZag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// --- whole-buffer encoders ------------------------------------------------

std::vector<uint8_t> encodePlainF32(std::span<const float> values);
std::vector<uint8_t> encodePlainI64(std::span<const int64_t> values);
std::vector<uint8_t> encodeVarint(std::span<const int64_t> values);
std::vector<uint8_t> encodeDeltaVarint(std::span<const int64_t> values);
std::vector<uint8_t> encodeRle(std::span<const int64_t> values);
std::vector<uint8_t> encodeDictionary(std::span<const int64_t> values);

/**
 * Decode @p count floats; only kPlainF32 is valid for float payloads.
 */
Status decodeF32(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<float>& out);

/**
 * Decode @p count int64 values with any integer encoding.
 */
Status decodeI64(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<int64_t>& out);

/**
 * Same, with a caller-owned scratch buffer for the page dictionary so
 * repeated decodes reuse its capacity (allocation-free steady state).
 */
Status decodeI64(Encoding encoding, std::span<const uint8_t> payload,
                 size_t count, std::vector<int64_t>& out,
                 std::vector<int64_t>& dict_scratch);

/**
 * Pick a compact integer encoding for @p values by estimating encoded
 * sizes (dictionary vs varint vs RLE; delta for monotone sequences).
 */
Encoding chooseIntEncoding(std::span<const int64_t> values);

}  // namespace enc
}  // namespace presto

#endif  // PRESTO_COLUMNAR_ENCODING_H_
