#include "columnar/compress.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace presto {

const char*
pageCodecName(PageCodec codec)
{
    switch (codec) {
      case PageCodec::kNone:      return "none";
      case PageCodec::kLz:        return "lz";
      case PageCodec::kEntropy:   return "entropy";
      case PageCodec::kLzEntropy: return "lz+entropy";
    }
    return "?";
}

namespace enc {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

uint32_t
read32(const uint8_t* p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

size_t
hash4(uint32_t v)
{
    // Fibonacci hash of the next four bytes; collisions only cost a
    // missed match, never a wrong one (candidates are verified).
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Append @p len as a 15/255-style extension run. */
void
putRunLength(std::vector<uint8_t>& out, size_t len)
{
    while (len >= 255) {
        out.push_back(255);
        len -= 255;
    }
    out.push_back(static_cast<uint8_t>(len));
}

/** Emit one literals[+match] sequence. @p match_len 0 = final literals. */
void
putSequence(std::vector<uint8_t>& out, std::span<const uint8_t> literals,
            size_t offset, size_t match_len)
{
    const size_t lit = literals.size();
    const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
    const uint8_t token =
        static_cast<uint8_t>((lit < 15 ? lit : 15) << 4 |
                             (match_code < 15 ? match_code : 15));
    out.push_back(token);
    if (lit >= 15)
        putRunLength(out, lit - 15);
    out.insert(out.end(), literals.begin(), literals.end());
    if (match_len == 0)
        return;
    out.push_back(static_cast<uint8_t>(offset));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (match_code >= 15)
        putRunLength(out, match_code - 15);
}

}  // namespace

void
lzCompress(std::span<const uint8_t> in, std::vector<uint8_t>& out)
{
    out.clear();
    const size_t n = in.size();
    out.reserve(n / 2 + 16);

    // Greedy single-probe hash table over 4-byte windows (values are
    // position + 1 so zero-initialized slots read as "empty").
    std::array<uint32_t, size_t{1} << kHashBits> table{};

    size_t anchor = 0;
    size_t pos = 0;
    while (n >= kMinMatch && pos + kMinMatch <= n) {
        const uint32_t v = read32(in.data() + pos);
        const size_t h = hash4(v);
        const size_t cand = table[h];
        table[h] = static_cast<uint32_t>(pos + 1);
        if (cand == 0 || pos + 1 - cand > kMaxOffset ||
            read32(in.data() + (cand - 1)) != v) {
            ++pos;
            continue;
        }
        const size_t match_pos = cand - 1;
        size_t len = kMinMatch;
        while (pos + len < n && in[match_pos + len] == in[pos + len])
            ++len;
        putSequence(out, in.subspan(anchor, pos - anchor), pos - match_pos,
                    len);
        pos += len;
        anchor = pos;
    }
    putSequence(out, in.subspan(anchor), 0, 0);
}

std::vector<uint8_t>
lzCompress(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out;
    lzCompress(in, out);
    return out;
}

Status
lzDecompress(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    size_t ip = 0;
    size_t op = 0;
    while (ip < in.size()) {
        const uint8_t token = in[ip++];

        // Literal run.
        uint64_t lit = token >> 4;
        if (lit == 15) {
            uint8_t b;
            do {
                if (ip >= in.size())
                    return Status::corruption(
                        "lz: truncated literal length");
                b = in[ip++];
                lit += b;
                // Cap early so a hostile extension run cannot spin or
                // overflow; anything past the raw size is malformed.
                if (lit > out.size())
                    return Status::corruption(
                        "lz: literal run exceeds raw size");
            } while (b == 255);
        }
        if (lit > in.size() - ip)
            return Status::corruption("lz: truncated literals");
        if (lit > out.size() - op)
            return Status::corruption("lz: literals exceed raw size");
        if (lit > 0) {
            // Wild copy: a fixed-width 16-byte copy beats a variable
            // memcpy for the short runs that dominate; the overshoot
            // lands inside buffers we own and is overwritten by the
            // next sequence. Fall back near either buffer's end.
            if (lit <= 16 && in.size() - ip >= 16 &&
                out.size() - op >= 16) {
                std::memcpy(out.data() + op, in.data() + ip, 16);
            } else {
                std::memcpy(out.data() + op, in.data() + ip, lit);
            }
        }
        ip += lit;
        op += lit;

        // Stream ends right after the final sequence's literals.
        if (ip == in.size()) {
            if ((token & 0x0f) != 0)
                return Status::corruption(
                    "lz: match after final literals");
            break;
        }

        // Match: 2-byte offset, then the (possibly extended) length.
        if (in.size() - ip < 2)
            return Status::corruption("lz: truncated match offset");
        const size_t offset =
            static_cast<size_t>(in[ip]) | static_cast<size_t>(in[ip + 1])
                                              << 8;
        ip += 2;
        if (offset == 0 || offset > op)
            return Status::corruption("lz: match offset out of window");
        uint64_t match_code = token & 0x0f;
        if (match_code == 15) {
            uint8_t b;
            do {
                if (ip >= in.size())
                    return Status::corruption(
                        "lz: truncated match length");
                b = in[ip++];
                match_code += b;
                if (match_code > out.size())
                    return Status::corruption(
                        "lz: match run exceeds raw size");
            } while (b == 255);
        }
        const uint64_t match_len = match_code + kMinMatch;
        if (match_len > out.size() - op)
            return Status::corruption("lz: match exceeds raw size");
        const uint8_t* src = out.data() + (op - offset);
        uint8_t* dst = out.data() + op;
        if (offset >= 8 && out.size() - op >= match_len + 8) {
            // 8-byte strided wild copy, overshooting by up to 7 bytes
            // into slack we own. Reads stay >= 8 bytes behind the
            // write cursor, so an overlapping match (offset < length)
            // still observes its own earlier output correctly.
            uint64_t i = 0;
            do {
                std::memcpy(dst + i, src + i, 8);
                i += 8;
            } while (i < match_len);
        } else if (offset >= match_len) {
            // Disjoint ranges: one bulk copy.
            std::memcpy(dst, src, match_len);
        } else {
            // Overlapping match: the copy must observe its own output
            // (RLE-style runs). Replicating the first `offset` bytes
            // doubles the safe chunk width each round, so even offset-1
            // runs copy in O(log len) memcpys instead of byte-wise.
            size_t filled = offset;
            std::memcpy(dst, src, filled);
            while (filled < match_len) {
                const size_t chunk =
                    std::min(filled, static_cast<size_t>(match_len) -
                                         filled);
                std::memcpy(dst + filled, dst, chunk);
                filled += chunk;
            }
        }
        op += match_len;
    }
    if (op != out.size())
        return Status::corruption("lz: decompressed size mismatch");
    return Status::okStatus();
}

}  // namespace enc
}  // namespace presto
