/**
 * @file
 * The PSF ("PreSto columnar File") format: our self-contained stand-in for
 * Apache Parquet.
 *
 * One file holds one partition (a mutually-exclusive shard of rows, as in
 * Figure 1 of the paper). Data is laid out column-major so a reader can
 * selectively fetch any subset of features without touching the rest —
 * the property the Extract stage depends on.
 *
 * Layout:
 *   "PSF1"                            4-byte header magic
 *   column chunks (per schema order)  each a run of framed pages
 *   footer                            schema + per-stream directory
 *   footer_size u32, footer_crc u32
 *   "PSF1"                            4-byte trailer magic
 *
 * Dense/label features have one value stream. Sparse features have a
 * lengths stream (RLE/varint) and a values stream (dictionary/varint).
 */
#ifndef PRESTO_COLUMNAR_COLUMNAR_FILE_H_
#define PRESTO_COLUMNAR_COLUMNAR_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/page.h"
#include "common/status.h"
#include "tabular/row_batch.h"

namespace presto {

class ThreadPool;

/** Directory entry for one encoded stream of one column. */
struct StreamMeta {
    uint64_t offset = 0;       ///< byte offset of the first page frame
    uint64_t byte_size = 0;    ///< total framed bytes of this stream
    uint64_t value_count = 0;  ///< decoded values across all pages
    uint32_t num_pages = 0;
    /**
     * Access heat: relative per-value downstream access cost of this
     * stream's column (from cachesim op traces or a supplied
     * histogram), quantized to [0, kMaxStreamHeat]. 0 = unknown/cold.
     * The async reader stripes pages of hot streams round-robin across
     * distinct flash channels; cold streams stay channel-contiguous.
     */
    uint32_t heat = 0;
};

/** Upper bound of StreamMeta::heat (quantization full scale). */
inline constexpr uint32_t kMaxStreamHeat = 1000;

/** Directory entry for one column. */
struct ColumnMeta {
    std::string name;
    FeatureKind kind = FeatureKind::kDense;
    std::vector<StreamMeta> streams;  ///< 1 (dense) or 2 (sparse: len, val)

    /** Total framed bytes across streams. */
    uint64_t byteSize() const;
};

/** Parsed footer of a PSF file. */
struct FileFooter {
    uint64_t num_rows = 0;
    uint64_t partition_id = 0;
    std::vector<ColumnMeta> columns;

    /** Reconstruct the schema described by the footer. */
    Schema schema() const;
};

/**
 * One planned page-frame read of the async Extract path: where the
 * framed page lives in the file and where its decoded values land.
 * Produced by ColumnarFileReader::planPageReads() and consumed by
 * completePage() once the frame bytes arrive (e.g. via an IoRing).
 */
struct PageReadPlan {
    uint64_t offset = 0;       ///< absolute file offset of the page frame
    uint32_t frame_bytes = 0;  ///< framed length: header + payload + CRC
    uint32_t value_count = 0;  ///< decoded values in this page
    uint64_t out_offset = 0;   ///< index of the first value in its stream
    uint32_t column = 0;       ///< footer column index
    uint32_t stream = 0;       ///< stream index within the column
    // Transient placement hints, assigned at read time from the footer's
    // heat metadata (never serialized — the PSJ journal format carries
    // only the six fields above; recovery re-derives placement).
    int32_t channel = -1;      ///< preferred flash channel, -1 = any
    bool hot = false;          ///< page belongs to a hot (striped) stream
};

/** Writer knobs. */
struct WriterOptions {
    /** Force a specific encoding for sparse values (nullopt = choose). */
    bool force_plain = false;
    /**
     * Per-page compression applied to encoded payloads. The value
     * selects the candidate menu writePageFrame() may try (kLzEntropy
     * = the full {lz, entropy, lz+entropy} menu); the strictly
     * smallest frame is stored, so dense already-packed pages
     * (kBitPacked indices, high-entropy hashed ids) typically stay
     * uncompressed while redundant or skewed pages shrink. kNone
     * disables compression entirely (byte-compatible with pre-codec
     * PSF files).
     */
    PageCodec codec = PageCodec::kLzEntropy;
    /**
     * Optional per-column access heat (same order as the batch's
     * columns), quantized into StreamMeta::heat by the writer; both
     * streams of a sparse column inherit the column's heat. Empty =
     * no heat metadata (every stream written cold). Values above
     * kMaxStreamHeat are clamped. See cachesim columnAccessHeat().
     */
    std::vector<uint32_t> column_heat;
};

/**
 * Serializes RowBatch partitions into PSF bytes.
 */
class ColumnarFileWriter
{
  public:
    explicit ColumnarFileWriter(WriterOptions options = {})
        : options_(options)
    {}

    /**
     * Encode @p batch as one PSF file.
     * @param partition_id Recorded in the footer.
     */
    std::vector<uint8_t> write(const RowBatch& batch,
                               uint64_t partition_id) const;

  private:
    WriterOptions options_;
};

/**
 * Reads PSF bytes with column projection and byte-touch accounting.
 *
 * The reader counts the bytes it actually inspects (pages of selected
 * columns + footer), which the storage model uses to credit columnar
 * layouts for avoiding overfetch.
 */
class ColumnarFileReader
{
  public:
    /** Parse and validate the footer. Keeps a reference to @p data. */
    Status open(std::span<const uint8_t> data);

    /**
     * Footer-only open from the file's tail bytes, for file-backed
     * reads where the body stays on storage: @p tail is the last
     * tail.size() bytes of a @p file_size-byte PSF file and must cover
     * the footer and trailer. Whole-stream decode and planPageReads()
     * need the body and fail with kFailedPrecondition on a footer-only
     * reader; the async split (beginReadInto / completePage /
     * finishReadInto) works unchanged because page frames arrive from
     * the caller. Page plans come from the caller too (e.g. a segment
     * store's journal), validated with validatePlans().
     */
    Status openTail(std::span<const uint8_t> tail, uint64_t file_size);

    /**
     * Check externally supplied page plans against the open footer:
     * every frame must lie inside the file body, land within its
     * stream's directory entry, and cover each stream's value range
     * exactly. Plans that pass cannot make completePage() write
     * outside the buffers beginReadInto() sized.
     */
    Status validatePlans(std::span<const PageReadPlan> plans) const;

    const FileFooter& footer() const { return footer_; }
    bool isOpen() const { return open_; }

    /**
     * Decode the named columns (schema order preserved) into a RowBatch
     * whose schema contains exactly those features.
     * @return kNotFound for unknown names, kCorruption for damaged pages.
     */
    StatusOr<RowBatch> readColumns(const std::vector<std::string>& names);

    /** Decode every column. */
    StatusOr<RowBatch> readAll();

    /**
     * Buffer-reusing form of readAll(): when @p out already has this
     * file's schema (same names and kinds), columns are decoded in
     * place into its existing vectors — after a warm-up batch, repeated
     * open()+readAllInto() cycles on same-shaped partitions allocate
     * nothing. Any other @p out (including a default-constructed one)
     * is replaced wholesale. Byte-touch accounting matches readAll().
     */
    Status readAllInto(RowBatch& out);

    /**
     * Decode multi-page streams page-parallel over @p pool (nullptr
     * restores serial decode). Models the paper's FPGA Decoder unit,
     * which works on independent pages concurrently. Results, error
     * semantics (first page failure -> kCorruption), and byte-touch
     * accounting are identical to serial decode; only the wall clock
     * changes. The pool may be shared across readers, but one reader
     * must not be used from two threads at once (as before).
     */
    void setThreadPool(ThreadPool* pool) { pool_ = pool; }

    // --- plan/submit/complete split (async page-granular reads) ---------
    //
    // The blocking readAllInto() fetches and decodes whole streams in
    // one call. The async path splits that into:
    //   1. planPageReads()  - enumerate every page frame of the file
    //   2. (caller)         - fetch each frame, e.g. through an IoRing
    //   3. beginReadInto()  - size the output batch's buffers
    //   4. completePage()   - CRC-check + decode one arrived frame
    //   5. finishReadInto() - rebuild CSR offsets, finalize accounting
    // so decode of page k can proceed while pages k+1..k+d are still in
    // flight. Results, error semantics, and byte-touch accounting are
    // identical to readAllInto() (the differential tests assert this).

    /**
     * Enumerate every page frame of every column (file order), with the
     * same structural validation as whole-stream decode: a plan set is
     * produced only for files whose page framing is consistent with the
     * footer. @p plans is clear()ed first and reuses its capacity.
     */
    Status planPageReads(std::vector<PageReadPlan>& plans);

    /**
     * Prepare @p out to receive decoded pages: same buffer-reuse rules
     * as readAllInto() (matching schema decodes in place; any other
     * batch is replaced), with every value buffer sized from the
     * footer. Must precede completePage()/finishReadInto().
     */
    Status beginReadInto(RowBatch& out);

    /**
     * Verify and decode one fetched page frame into its slice of
     * @p out. @p frame holds exactly plan.frame_bytes bytes read from
     * plan.offset; the per-page CRC is checked before any decode, so a
     * bit-flipped in-flight read surfaces here as kCorruption and the
     * caller can re-submit just that page. Thread-safe for concurrent
     * calls on *distinct* plans of one begun read (pages decode onto
     * disjoint output slices), which is what lets completed pages of
     * different partitions share one decode ThreadPool.
     */
    Status completePage(const PageReadPlan& plan,
                        std::span<const uint8_t> frame, RowBatch& out);

    /**
     * Finalize after every planned page completed: rebuilds sparse CSR
     * offsets from the decoded lengths, validates row counts, and adds
     * the streams' bytes to bytesTouched(). @p out must be the batch
     * passed to beginReadInto().
     */
    Status finishReadInto(RowBatch& out);

    /** Bytes of the file inspected so far (footer + selected pages). */
    uint64_t bytesTouched() const { return bytes_touched_; }

    /** Bytes a row-oriented layout would have to read for any projection. */
    uint64_t
    totalDataBytes() const
    {
        return file_size_;
    }

  private:
    /** One page of a stream being decoded in parallel. */
    struct PageTask {
        size_t frame_pos = 0;      ///< absolute offset of the page frame
        uint64_t out_offset = 0;   ///< first decoded value's index
        uint32_t value_count = 0;
    };

    /** Shared footer parse of open()/openTail(). @p region ends at the
        file's last byte; @p region_base is its absolute offset. */
    Status parseFooterRegion(std::span<const uint8_t> region,
                             uint64_t region_base, uint64_t file_size);
    Status decodeDense(const ColumnMeta& meta, DenseColumn& out);
    Status decodeSparse(const ColumnMeta& meta, SparseColumn& out);
    Status decodeDenseInto(const ColumnMeta& meta,
                           std::vector<float>& values);
    Status decodeSparseInto(const ColumnMeta& meta,
                            std::vector<int64_t>& values,
                            std::vector<uint32_t>& offsets);
    Status decodeI64Stream(const StreamMeta& stream,
                           std::vector<int64_t>& out);
    /** Decode a whole stream into the buffer selected by @p as_f32
        (the other pointer is ignored; a zero-row stream's buffer may
        legitimately be null, so the type cannot be inferred from
        pointer nullness). Picks serial or page-parallel decode. */
    Status decodeStream(const StreamMeta& stream, bool as_f32,
                        int64_t* i64_out, float* f32_out);
    Status decodeStreamSerial(const StreamMeta& stream, bool as_f32,
                              int64_t* i64_out, float* f32_out);
    Status decodeStreamParallel(const StreamMeta& stream, bool as_f32,
                                int64_t* i64_out, float* f32_out);
    void decodePageTask(size_t t);
    bool schemaMatches(const RowBatch& batch) const;

    std::span<const uint8_t> data_;
    FileFooter footer_;
    bool open_ = false;
    bool footer_only_ = false;
    uint64_t file_size_ = 0;
    uint64_t bytes_touched_ = 0;
    ThreadPool* pool_ = nullptr;
    // Per-reader scratch reused across pages/partitions so the decode
    // loop is allocation-free once warmed up.
    std::vector<uint8_t> decomp_;
    std::vector<int64_t> page_i64_;
    std::vector<int64_t> dict_;
    std::vector<int64_t> lengths_;
    std::vector<PageTask> tasks_;
    std::vector<Status> task_status_;
    // Output type and base pointers of the stream currently decoding in
    // parallel (the parallelFor closure captures only `this`).
    bool par_f32_ = false;
    int64_t* par_i64_out_ = nullptr;
    float* par_f32_out_ = nullptr;
    // Async split state: decoded sparse lengths per column (index =
    // footer column; empty vectors for dense columns) and whether a
    // beginReadInto() is pending its finishReadInto().
    std::vector<std::vector<int64_t>> async_lengths_;
    bool async_active_ = false;
};

/**
 * Relative service cost of one page read for channel balancing: a
 * fixed flash-read + controller term (expressed in transfer-byte
 * equivalents) plus the frame's transfer bytes. Without the fixed
 * term, byte-balancing would treat a 16-byte length page as free even
 * though it still occupies its channel for a full flash page read.
 */
inline uint64_t
placementPageCost(uint64_t frame_bytes)
{
    return 32 * 1024 + frame_bytes;
}

/**
 * Assign transient channel-placement hints to validated @p plans from
 * the footer's heat metadata (RecFlash-style frequency-aware mapping):
 * pages of *hot* streams — heat at least half the hottest stream's —
 * are striped round-robin across @p num_channels distinct flash
 * channels so the IoRing's per-channel workers serve them in parallel;
 * pages of cold streams stay channel-contiguous (one channel per whole
 * stream, chosen heaviest-stream-first onto the least-loaded channel
 * so total bytes balance across channels). With no heat metadata (all
 * zero) every plan keeps channel -1 (any worker). Plans may come from
 * planPageReads() or from a segment journal; the hints are transient
 * and never serialized.
 */
void assignChannelPlacement(const FileFooter& footer, int num_channels,
                            std::vector<PageReadPlan>& plans);

/** Write PSF bytes to a filesystem path. */
Status saveToFile(const std::string& path, std::span<const uint8_t> bytes);

/** Read a whole file from a filesystem path. */
StatusOr<std::vector<uint8_t>> loadFromFile(const std::string& path);

}  // namespace presto

#endif  // PRESTO_COLUMNAR_COLUMNAR_FILE_H_
