#include "columnar/entropy.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "columnar/encoding.h"

namespace presto {
namespace {

constexpr uint32_t kNumSymbols = 256;
constexpr uint32_t kTableBytes = kNumSymbols / 2;  // nibble-packed
constexpr uint32_t kDecodeSize = 1u << kMaxHuffCodeLen;
constexpr uint8_t kModeHuffman = 0;
constexpr uint8_t kModeSingle = 1;

uint32_t
reverseBits(uint32_t code, int len)
{
    uint32_t rev = 0;
    for (int i = 0; i < len; ++i)
        rev |= ((code >> i) & 1u) << (len - 1 - i);
    return rev;
}

/**
 * Length-limited code lengths via package-merge (Larmore-Hirschberg).
 * Guarantees a Kraft-complete set of lengths <= kMaxHuffCodeLen for any
 * 2..256 active symbols, which a plain Huffman tree plus ad-hoc depth
 * repair does not.
 */
void
packageMerge(const std::array<uint64_t, kNumSymbols>& freq,
             std::array<uint8_t, kNumSymbols>& lengths)
{
    struct Node {
        uint64_t weight;
        // Symbols covered by this (possibly packaged) node; a symbol's
        // final code length is its occurrence count across the chosen
        // prefix of the last level.
        std::vector<uint16_t> syms;
    };

    std::vector<Node> items;
    for (uint32_t s = 0; s < kNumSymbols; ++s)
        if (freq[s] > 0)
            items.push_back({freq[s], {static_cast<uint16_t>(s)}});
    std::sort(items.begin(), items.end(),
              [](const Node& a, const Node& b) {
                  return a.weight != b.weight ? a.weight < b.weight
                                              : a.syms[0] < b.syms[0];
              });

    std::vector<Node> prev = items;
    for (int level = 1; level < kMaxHuffCodeLen; ++level) {
        std::vector<Node> packages;
        for (size_t i = 0; i + 1 < prev.size(); i += 2) {
            Node merged;
            merged.weight = prev[i].weight + prev[i + 1].weight;
            merged.syms = prev[i].syms;
            merged.syms.insert(merged.syms.end(), prev[i + 1].syms.begin(),
                               prev[i + 1].syms.end());
            packages.push_back(std::move(merged));
        }
        std::vector<Node> next;
        next.reserve(items.size() + packages.size());
        std::merge(items.begin(), items.end(),
                   std::make_move_iterator(packages.begin()),
                   std::make_move_iterator(packages.end()),
                   std::back_inserter(next),
                   [](const Node& a, const Node& b) {
                       return a.weight < b.weight;
                   });
        prev = std::move(next);
    }

    lengths.fill(0);
    const size_t chosen = 2 * items.size() - 2;
    for (size_t i = 0; i < chosen && i < prev.size(); ++i)
        for (uint16_t s : prev[i].syms)
            ++lengths[s];
}

/**
 * Assign canonical codes (MSB-first numbering: shorter codes are
 * numerically smaller prefixes) from a length table. Returns the Kraft
 * sum scaled to kDecodeSize; a complete code sums to exactly
 * kDecodeSize.
 */
uint64_t
canonicalCodes(const std::array<uint8_t, kNumSymbols>& lengths,
               std::array<uint16_t, kNumSymbols>& codes)
{
    std::array<uint32_t, kMaxHuffCodeLen + 1> count{};
    uint64_t kraft = 0;
    for (uint32_t s = 0; s < kNumSymbols; ++s)
        if (lengths[s] > 0) {
            ++count[lengths[s]];
            kraft += kDecodeSize >> lengths[s];
        }
    std::array<uint32_t, kMaxHuffCodeLen + 2> first{};
    uint32_t code = 0;
    for (int len = 1; len <= kMaxHuffCodeLen; ++len) {
        first[len] = code;
        code = (code + count[len]) << 1;
    }
    std::array<uint32_t, kMaxHuffCodeLen + 1> next{};
    for (int len = 1; len <= kMaxHuffCodeLen; ++len)
        next[len] = first[len];
    for (uint32_t s = 0; s < kNumSymbols; ++s)
        if (lengths[s] > 0)
            codes[s] = static_cast<uint16_t>(next[lengths[s]]++);
    return kraft;
}

/**
 * Flat decode table entry: up to four symbols resolved per probe of the
 * low kMaxHuffCodeLen bits, so the hot loop's serial dependency (probe
 * -> shift -> probe) is paid once per several output bytes.
 *
 *   bits 0..31   symbols, in decode order (symbol k at bits 8k..8k+7)
 *   bits 32..35  symbol count (1..4)
 *   bits 36..39  total consumed bits across all packed symbols
 *   bits 40..43  first code's length alone (tail-loop single-symbol
 *                stepping and the mid-code truncation check)
 */
using DecodeTable = std::array<uint64_t, kDecodeSize>;
constexpr uint32_t kMaxSymsPerProbe = 4;

/**
 * Pass-2 fusion only pays for itself once the decode loop runs long
 * enough to amortize walking all 2^kMaxHuffCodeLen entries; below this
 * output size the pass-1 single-symbol table decodes the page faster
 * in total. (Fused and unfused tables decode identically — the fast
 * loop reads the same entry fields either way.)
 */
constexpr size_t kFusePassMinBytes = 8192;

bool
buildDecodeTable(const std::array<uint8_t, kNumSymbols>& lengths,
                 DecodeTable& table, bool fuse)
{
    std::array<uint16_t, kNumSymbols> codes{};
    if (canonicalCodes(lengths, codes) != kDecodeSize)
        return false;
    // Pass 1: single-symbol entries keyed by the bit-reversed code
    // (the bitstream is packed LSB-first).
    for (uint32_t s = 0; s < kNumSymbols; ++s) {
        const int len = lengths[s];
        if (len == 0)
            continue;
        const uint32_t rev = reverseBits(codes[s], len);
        const uint64_t entry = s | uint64_t{1} << 32 |
                               static_cast<uint64_t>(len) << 36 |
                               static_cast<uint64_t>(len) << 40;
        for (uint32_t hi = 0; hi < (kDecodeSize >> len); ++hi)
            table[rev | hi << len] = entry;
    }
    if (!fuse)
        return true;
    // Pass 2: greedily fuse as many whole codes as fit in one probe
    // window. A symbol is packed only when its code lies entirely
    // inside the kMaxHuffCodeLen probed bits, so fused entries never
    // depend on bits the probe did not see. Descending order makes the
    // rewrite safe in place: entry v only reads indices v and v >>
    // total (< v for v > 0), which still hold pass-1 entries.
    for (uint32_t v = kDecodeSize; v-- > 0;) {
        const uint32_t len1 =
            static_cast<uint32_t>(table[v] >> 40) & 0xF;
        uint64_t syms = table[v] & 0xFF;
        uint32_t count = 1;
        uint32_t total = len1;
        while (count < kMaxSymsPerProbe) {
            const uint64_t e = table[v >> total];
            const uint32_t len = static_cast<uint32_t>(e >> 40) & 0xF;
            if (total + len > kMaxHuffCodeLen)
                break;
            syms |= (e & 0xFF) << (8 * count);
            total += len;
            ++count;
        }
        table[v] = syms | static_cast<uint64_t>(count) << 32 |
                   static_cast<uint64_t>(total) << 36 |
                   static_cast<uint64_t>(len1) << 40;
    }
    return true;
}

uint64_t
loadLe64(const uint8_t* p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;  // x86/aarch64 little-endian; matches the rest of enc::.
}

}  // namespace

namespace enc {

void
huffCompress(std::span<const uint8_t> in, std::vector<uint8_t>& out)
{
    out.clear();
    putVarint(out, in.size());
    if (in.empty())
        return;

    std::array<uint64_t, kNumSymbols> freq{};
    for (uint8_t b : in)
        ++freq[b];
    uint32_t distinct = 0;
    uint32_t only = 0;
    for (uint32_t s = 0; s < kNumSymbols; ++s)
        if (freq[s] > 0) {
            ++distinct;
            only = s;
        }
    if (distinct == 1) {
        out.push_back(kModeSingle);
        out.push_back(static_cast<uint8_t>(only));
        return;
    }

    std::array<uint8_t, kNumSymbols> lengths{};
    packageMerge(freq, lengths);
    std::array<uint16_t, kNumSymbols> codes{};
    canonicalCodes(lengths, codes);

    out.push_back(kModeHuffman);

    // Pre-reverse the codes so the hot loop is a single shift-or into
    // the LSB-first accumulator.
    std::array<uint16_t, kNumSymbols> emit{};
    for (uint32_t s = 0; s < kNumSymbols; ++s)
        if (lengths[s] > 0)
            emit[s] = static_cast<uint16_t>(
                reverseBits(codes[s], lengths[s]));

    // Pack the lanes into reused scratch first: their byte sizes go in
    // the header ahead of them (all but the last, which the stream end
    // implies).
    static thread_local std::vector<uint8_t> lane_buf;
    lane_buf.clear();
    const size_t n = in.size();
    size_t lane_bytes[kNumHuffLanes];
    for (uint32_t k = 0; k < kNumHuffLanes; ++k) {
        const size_t begin = n * k / kNumHuffLanes;
        const size_t end = n * (k + 1) / kNumHuffLanes;
        const size_t start = lane_buf.size();
        uint64_t bitbuf = 0;
        uint32_t bitcount = 0;
        for (size_t i = begin; i < end; ++i) {
            const uint8_t b = in[i];
            bitbuf |= static_cast<uint64_t>(emit[b]) << bitcount;
            bitcount += lengths[b];
            while (bitcount >= 8) {
                lane_buf.push_back(static_cast<uint8_t>(bitbuf));
                bitbuf >>= 8;
                bitcount -= 8;
            }
        }
        if (bitcount > 0)
            lane_buf.push_back(static_cast<uint8_t>(bitbuf));
        lane_bytes[k] = lane_buf.size() - start;
    }

    for (uint32_t k = 0; k + 1 < kNumHuffLanes; ++k)
        putVarint(out, lane_bytes[k]);
    for (uint32_t i = 0; i < kTableBytes; ++i)
        out.push_back(
            static_cast<uint8_t>(lengths[2 * i] | lengths[2 * i + 1] << 4));
    out.insert(out.end(), lane_buf.begin(), lane_buf.end());
}

std::vector<uint8_t>
huffCompress(std::span<const uint8_t> in)
{
    std::vector<uint8_t> out;
    huffCompress(in, out);
    return out;
}

Status
huffStreamInfo(std::span<const uint8_t> in, HuffStreamInfo& info)
{
    size_t pos = 0;
    PRESTO_RETURN_IF_ERROR(getVarint(in, pos, info.raw_bytes));
    info.table_bytes = 0;
    info.mode = kModeHuffman;
    if (info.raw_bytes == 0) {
        info.header_bytes = static_cast<uint32_t>(pos);
        return Status::okStatus();
    }
    if (pos >= in.size())
        return Status::corruption("truncated entropy stream header");
    info.mode = in[pos++];
    if (info.mode == kModeSingle) {
        if (pos >= in.size())
            return Status::corruption("truncated single-symbol stream");
        ++pos;
    } else if (info.mode == kModeHuffman) {
        for (uint32_t k = 0; k + 1 < kNumHuffLanes; ++k) {
            uint64_t lane_bytes = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(in, pos, lane_bytes));
        }
        if (pos + kTableBytes > in.size())
            return Status::corruption("truncated entropy code table");
        info.table_bytes = kTableBytes;
        pos += kTableBytes;
    } else {
        return Status::corruption("unknown entropy stream mode");
    }
    info.header_bytes = static_cast<uint32_t>(pos);
    return Status::okStatus();
}

Status
huffDecompress(std::span<const uint8_t> in, std::span<uint8_t> out)
{
    size_t pos = 0;
    uint64_t raw_count = 0;
    PRESTO_RETURN_IF_ERROR(getVarint(in, pos, raw_count));
    if (raw_count != out.size())
        return Status::corruption("entropy stream raw size mismatch");
    if (raw_count == 0) {
        if (pos != in.size())
            return Status::corruption("trailing bytes in entropy stream");
        return Status::okStatus();
    }
    if (pos >= in.size())
        return Status::corruption("truncated entropy stream header");
    const uint8_t mode = in[pos++];

    if (mode == kModeSingle) {
        if (pos >= in.size())
            return Status::corruption("truncated single-symbol stream");
        const uint8_t sym = in[pos++];
        if (pos != in.size())
            return Status::corruption("trailing bytes in entropy stream");
        std::memset(out.data(), sym, out.size());
        return Status::okStatus();
    }
    if (mode != kModeHuffman)
        return Status::corruption("unknown entropy stream mode");

    uint64_t lane_bytes[kNumHuffLanes];
    uint64_t declared = 0;
    for (uint32_t k = 0; k + 1 < kNumHuffLanes; ++k) {
        PRESTO_RETURN_IF_ERROR(getVarint(in, pos, lane_bytes[k]));
        declared += lane_bytes[k];
    }
    if (pos + kTableBytes > in.size())
        return Status::corruption("truncated entropy code table");

    std::array<uint8_t, kNumSymbols> lengths{};
    for (uint32_t i = 0; i < kTableBytes; ++i) {
        const uint8_t packed = in[pos + i];
        const uint8_t lo = packed & 0xF;
        const uint8_t hi = packed >> 4;
        if (lo > kMaxHuffCodeLen || hi > kMaxHuffCodeLen)
            return Status::corruption("entropy code length exceeds limit");
        lengths[2 * i] = lo;
        lengths[2 * i + 1] = hi;
    }
    pos += kTableBytes;

    // One table per decode keeps the codec reentrant; the 8 KiB build
    // is amortized over the page and reuses thread-local storage so a
    // warmed-up decode loop stays allocation-free.
    static thread_local DecodeTable table;
    if (!buildDecodeTable(lengths, table,
                          out.size() >= kFusePassMinBytes))
        return Status::corruption("entropy code table not Kraft-complete");

    const size_t region = in.size() - pos;
    if (declared > region)
        return Status::corruption("entropy lane sizes exceed stream");
    lane_bytes[kNumHuffLanes - 1] = region - declared;

    // Per-lane cursors. Lane k decodes output bytes [k*n/N, (k+1)*n/N)
    // from its own bitstream; the four chains are independent, which is
    // the whole point — one chain's probe -> shift -> probe dependency
    // is ~8 cycles, so interleaving four keeps the decoder throughput-
    // bound instead of latency-bound.
    struct Lane {
        const uint8_t* bits;
        size_t nbytes;
        size_t in_pos;
        uint64_t bitbuf;
        uint32_t bitcount;
        uint8_t* dst;
        size_t o;
        size_t n;
    };
    Lane lane[kNumHuffLanes];
    {
        const uint8_t* p = in.data() + pos;
        const size_t total = out.size();
        for (uint32_t k = 0; k < kNumHuffLanes; ++k) {
            const size_t begin = total * k / kNumHuffLanes;
            const size_t end = total * (k + 1) / kNumHuffLanes;
            lane[k] = Lane{p, static_cast<size_t>(lane_bytes[k]), 0, 0,
                           0, out.data() + begin, 0, end - begin};
            p += lane_bytes[k];
        }
    }

    // Fast loop: per lane, one 64-bit refill feeds five probes
    // (5 * 11 <= 56 bits guaranteed after refill); each probe writes
    // its up-to-4 symbols branchlessly and advances by the entry's
    // total bit count. The margins on the loop condition guarantee
    // every write lands in bounds and every probe has its full code
    // window, so no per-symbol checks are needed; the per-lane
    // exact-consumption validation below still covers the whole stream
    // because in_pos/bitcount accounting is identical to the careful
    // tail loop.
    constexpr uint32_t kProbesPerRefill = 5;
    static_assert(kProbesPerRefill * kMaxHuffCodeLen <= 56);
    constexpr size_t kFastMargin = kProbesPerRefill * kMaxSymsPerProbe;
    static_assert(kNumHuffLanes == 4);
    {
        // The lane state must live in registers here: a straight
        // array-of-structs loop makes every probe a load-op-store
        // round trip and the whole point of the lanes is lost.
        const uint64_t* T = table.data();
        Lane &A = lane[0], &B = lane[1], &C = lane[2], &D = lane[3];
        uint64_t bbA = A.bitbuf, bbB = B.bitbuf, bbC = C.bitbuf,
                 bbD = D.bitbuf;
        uint32_t bcA = A.bitcount, bcB = B.bitcount, bcC = C.bitcount,
                 bcD = D.bitcount;
        size_t ipA = A.in_pos, ipB = B.in_pos, ipC = C.in_pos,
               ipD = D.in_pos;
        size_t oA = A.o, oB = B.o, oC = C.o, oD = D.o;
        auto refill = [](const Lane& L, size_t& ip, uint64_t& bb,
                         uint32_t& bc) {
            bb |= loadLe64(L.bits + ip) << bc;
            ip += (63 - bc) >> 3;
            bc |= 56;
        };
        auto probe = [T](const Lane& L, size_t& o, uint64_t& bb,
                         uint32_t& bc) {
            const uint64_t e = T[bb & (kDecodeSize - 1)];
            std::memcpy(L.dst + o, &e, 4);
            o += static_cast<uint32_t>(e >> 32) & 0xF;
            const uint32_t adv = static_cast<uint32_t>(e >> 36) & 0xF;
            bb >>= adv;
            bc -= adv;
        };
        while (ipA + 8 <= A.nbytes && oA + kFastMargin <= A.n &&
               ipB + 8 <= B.nbytes && oB + kFastMargin <= B.n &&
               ipC + 8 <= C.nbytes && oC + kFastMargin <= C.n &&
               ipD + 8 <= D.nbytes && oD + kFastMargin <= D.n) {
            refill(A, ipA, bbA, bcA);
            refill(B, ipB, bbB, bcB);
            refill(C, ipC, bbC, bcC);
            refill(D, ipD, bbD, bcD);
            for (uint32_t p = 0; p < kProbesPerRefill; ++p) {
                probe(A, oA, bbA, bcA);
                probe(B, oB, bbB, bcB);
                probe(C, oC, bbC, bcC);
                probe(D, oD, bbD, bcD);
            }
        }
        A.bitbuf = bbA; A.bitcount = bcA; A.in_pos = ipA; A.o = oA;
        B.bitbuf = bbB; B.bitcount = bcB; B.in_pos = ipB; B.o = oB;
        C.bitbuf = bbC; C.bitcount = bcC; C.in_pos = ipC; C.o = oC;
        D.bitbuf = bbD; D.bitcount = bcD; D.in_pos = ipD; D.o = oD;
    }

    // Careful per-lane tail: byte-wise refill, one symbol per probe,
    // and the mid-code check that a truncated or corrupt lane trips.
    for (auto& L : lane) {
        while (L.o < L.n) {
            if (L.bitcount < 2 * kMaxHuffCodeLen) {
                if (L.in_pos + 8 <= L.nbytes) {
                    L.bitbuf |= loadLe64(L.bits + L.in_pos)
                                << L.bitcount;
                    L.in_pos += (63 - L.bitcount) >> 3;
                    L.bitcount |= 56;
                } else {
                    while (L.in_pos < L.nbytes && L.bitcount <= 56) {
                        L.bitbuf |=
                            static_cast<uint64_t>(L.bits[L.in_pos++])
                            << L.bitcount;
                        L.bitcount += 8;
                    }
                }
            }
            const uint64_t e = table[L.bitbuf & (kDecodeSize - 1)];
            const uint32_t len1 = static_cast<uint32_t>(e >> 40) & 0xF;
            if (len1 > L.bitcount)
                return Status::corruption(
                    "entropy bitstream ends mid-code");
            L.dst[L.o++] = static_cast<uint8_t>(e);
            L.bitbuf >>= len1;
            L.bitcount -= len1;
        }

        // Exact-consumption check: every stored byte of the lane must
        // be needed, and the padding bits of its final byte must be
        // zero.
        const uint64_t consumed =
            8 * static_cast<uint64_t>(L.in_pos) - L.bitcount;
        const uint64_t used_bytes = (consumed + 7) / 8;
        if (used_bytes != L.nbytes)
            return Status::corruption("trailing bytes in entropy lane");
        const uint32_t pad =
            static_cast<uint32_t>(8 * used_bytes - consumed);
        if (pad > 0 && (L.bitbuf & ((1u << pad) - 1)) != 0)
            return Status::corruption("non-zero entropy padding bits");
    }
    return Status::okStatus();
}

}  // namespace enc
}  // namespace presto
