/**
 * @file
 * AVX-512 varint decode kernel (used at SimdLevel::kAvx512 on CPUs with
 * the BW + VBMI + VBMI2 byte-compaction extensions; see
 * avx512ByteCompactionSupported()). Compiled with the AVX-512 byte ISA
 * flags only in this translation unit; reached solely behind the runtime
 * CPU checks via the dispatcher in fast_decode.cc. Bit-identical to the
 * AVX2/SWAR/reference tiers.
 *
 * The AVX2 tier processes 32-byte windows with a serial tzcnt chain over
 * the continuation mask. This tier doubles the window and replaces the
 * chain with byte compaction: one vpcompressb turns the 64-bit
 * terminator mask into a dense list of terminator positions, and one
 * masked vpermb per eight varints aligns each varint's payload bytes
 * into its own 64-bit lane — the boundary scan becomes data-parallel
 * instead of a loop-carried bit-scan. Payloads then compact from 8x7
 * LEB128 groups to values entirely in registers (the 3-round compact7
 * sequence, 8 lanes at a time).
 *
 * Only the plain varint decoder gets this tier: the dictionary-index
 * decoder's hot path is the 1..2-byte splice (already one shuffle per 8
 * indices on AVX2) plus a table gather that does not widen, so a 512-bit
 * variant adds nothing there and it stays on the AVX2 kernels.
 */
#if defined(PRESTO_HAVE_X86_SIMD)

#include <immintrin.h>

#include "columnar/fast_decode_internal.h"

namespace presto::enc::detail {

bool
decodeVarintsAvx512(const uint8_t* in, size_t size, size_t& pos,
                    uint64_t* out, size_t count)
{
    const __m512i viota = _mm512_set_epi8(
        63, 62, 61, 60, 59, 58, 57, 56, 55, 54, 53, 52, 51, 50, 49, 48,
        47, 46, 45, 44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34, 33, 32,
        31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16,
        15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i vlo7 = _mm512_set1_epi8(0x7f);
    const __m512i m1a = _mm512_set1_epi64(0x007f007f007f007fll);
    const __m512i m1b = _mm512_set1_epi64(0x7f007f007f007f00ll);
    const __m512i m2a = _mm512_set1_epi64(0x00003fff00003fffll);
    const __m512i m2b = _mm512_set1_epi64(0x3fff00003fff0000ll);
    const __m512i m3a = _mm512_set1_epi64(0x000000000fffffffll);
    const __m512i m3b = _mm512_set1_epi64(0x0fffffff00000000ll);

    size_t i = 0;
    size_t p = pos;
    // The group loads via vpermb stay inside the 64-byte window; only
    // the rare 9..10-byte straddler check reads a word at the window's
    // last byte, hence the +72 guard.
    while (count - i >= 64 && p + 72 <= size) {
        const __m512i bytes =
            _mm512_loadu_si512(reinterpret_cast<const void*>(in + p));
        const uint64_t cont = _mm512_movepi8_mask(bytes);
        if (cont == 0) {
            // 64 single-byte varints: widen u8 -> u64, eight at a time.
            for (int k = 0; k < 8; ++k) {
                const __m128i low = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(in + p + 8 * k));
                _mm512_storeu_si512(
                    reinterpret_cast<void*>(out + i + 8 * k),
                    _mm512_cvtepu8_epi64(low));
            }
            i += 64;
            p += 64;
            continue;
        }
        const uint64_t term = ~cont;
        if (term == 0) {
            // 64 continuation bytes: a varint past the 10-byte limit.
            return decodeOneVarint(in, size, p, out[i]);
        }
        // vpcompressb: byte j of the result is the window position of
        // the j-th terminator — the whole boundary list in one step.
        alignas(64) uint8_t term_pos[64];
        _mm512_store_si512(reinterpret_cast<void*>(term_pos),
                           _mm512_maskz_compress_epi8(term, viota));
        const auto nvals = static_cast<size_t>(std::popcount(term));

        // Any varint longer than 8 bytes (terminator 8+ past its start)
        // needs the 64-bit overflow check; hand one 32-byte block to the
        // validating generic path and rescan. Rare: an 8-byte varint
        // already covers values up to 2^56.
        {
            size_t start = 0;
            bool overlong = false;
            for (size_t j = 0; j < nvals; ++j) {
                overlong |= (term_pos[j] - start) >= 8;
                start = term_pos[j] + 1;
            }
            if (overlong) {
                if (!decodeVarintBlock32(
                        in, size, static_cast<uint32_t>(cont), p, out, i,
                        count, [](uint64_t word, uint64_t keep) {
                            return _pext_u64(word, keep);
                        })) {
                    return false;
                }
                continue;
            }
        }

        // Eight varints per step: one masked vpermb aligns each
        // varint's payload bytes to the base of its own u64 lane (the
        // mask zeroes the bytes past each varint's length, so lane k
        // holds exactly varint k's bytes), then the payloads compact
        // 7-bit groups -> value across all eight lanes at once.
        size_t j = 0;
        size_t start = 0;
        for (; j + 8 <= nvals; j += 8) {
            alignas(64) uint64_t perm[8];
            uint64_t lane_mask = 0;
            for (int k = 0; k < 8; ++k) {
                const size_t end = term_pos[j + k];
                const size_t len = end - start + 1;
                perm[k] = start * 0x0101010101010101ull +
                          0x0706050403020100ull;
                lane_mask |= (len == 8 ? 0xffull : (1ull << len) - 1)
                             << (8 * k);
                start = end + 1;
            }
            __m512i x = _mm512_maskz_permutexvar_epi8(
                lane_mask,
                _mm512_load_si512(reinterpret_cast<const void*>(perm)),
                bytes);
            x = _mm512_and_si512(x, vlo7);
            x = _mm512_or_si512(
                _mm512_and_si512(x, m1a),
                _mm512_srli_epi64(_mm512_and_si512(x, m1b), 1));
            x = _mm512_or_si512(
                _mm512_and_si512(x, m2a),
                _mm512_srli_epi64(_mm512_and_si512(x, m2b), 2));
            x = _mm512_or_si512(
                _mm512_and_si512(x, m3a),
                _mm512_srli_epi64(_mm512_and_si512(x, m3b), 4));
            _mm512_storeu_si512(reinterpret_cast<void*>(out + i + j), x);
        }
        // Leftover varints of the window (< 8): plain word loads, pext.
        for (; j < nvals; ++j) {
            const size_t end = term_pos[j];
            const size_t len = end - start + 1;
            out[i + j] =
                _pext_u64(load64le(in + p + start), kVarintKeep[len]);
            start = end + 1;
        }
        i += nvals;
        // Bytes past the last terminator start a varint that straddles
        // the window edge; resume there.
        p += start;
    }
    pos = p;
    return decodeVarintsAvx2(in, size, pos, out + i, count - i);
}

}  // namespace presto::enc::detail

#endif  // PRESTO_HAVE_X86_SIMD
