/**
 * @file
 * Portable (SWAR) batch decode kernels and the SIMD-level dispatch used
 * by encoding.cc. See fast_decode_internal.h for the tier contract.
 */
#include "columnar/fast_decode_internal.h"

#include <algorithm>

#include "ops/simd.h"

namespace presto::enc::detail {

bool
decodeVarintsSwar(const uint8_t* in, size_t size, size_t& pos, uint64_t* out,
                  size_t count)
{
    size_t i = 0;
    size_t p = pos;
    while (i < count && p + 40 <= size) {
        const uint32_t cont = msbMask8(load64le(in + p)) |
                              msbMask8(load64le(in + p + 8)) << 8 |
                              msbMask8(load64le(in + p + 16)) << 16 |
                              msbMask8(load64le(in + p + 24)) << 24;
        if (cont == 0) {
            // 32 single-byte varints (the small-delta common case).
            const size_t take = count - i < 32 ? count - i : 32;
            for (size_t k = 0; k < take; ++k)
                out[i + k] = in[p + k];
            i += take;
            p += take;
            continue;
        }
        if (!decodeVarintBlock32(in, size, cont, p, out, i, count,
                                 [](uint64_t word, uint64_t keep) {
                                     return compact7(word & keep);
                                 })) {
            return false;
        }
    }
    // Buffer tail: byte-exact, so we never load past the payload.
    while (i < count) {
        if (!decodeOneVarint(in, size, p, out[i]))
            return false;
        ++i;
    }
    pos = p;
    return true;
}

bool
decodeDictIndicesSwar(const uint8_t* in, size_t size, size_t& pos,
                      const int64_t* dict, uint64_t dict_size, int64_t* out,
                      size_t count)
{
    size_t i = 0;
    size_t p = pos;
    while (i < count && p + 40 <= size) {
        const uint32_t cont = msbMask8(load64le(in + p)) |
                              msbMask8(load64le(in + p + 8)) << 8 |
                              msbMask8(load64le(in + p + 16)) << 16 |
                              msbMask8(load64le(in + p + 24)) << 24;
        if (!dictVarintBlock32(in, size, cont, p, dict, dict_size, out, i,
                               count, [](uint64_t word, uint64_t keep) {
                                   return compact7(word & keep);
                               })) {
            return false;
        }
    }
    while (i < count) {
        uint64_t idx = 0;
        if (!decodeOneVarint(in, size, p, idx) || idx >= dict_size)
            return false;
        out[i++] = dict[idx];
    }
    pos = p;
    return true;
}

void
unpackBitsWord(const uint8_t* in, size_t in_bytes, size_t width, size_t count,
               uint64_t* out, uint64_t start_bit)
{
    if (width == 0) {
        std::fill_n(out, count, uint64_t{0});
        return;
    }
    const uint64_t mask = width == 64 ? ~0ull : (1ull << width) - 1;
    size_t i = 0;
    uint64_t bit = start_bit;
    if (width <= 57) {
        // (bit & 7) + width <= 64, so one unaligned word covers any value.
        while (i < count && (bit >> 3) + 8 <= in_bytes) {
            out[i++] = (load64le(in + (bit >> 3)) >> (bit & 7)) & mask;
            bit += width;
        }
    } else {
        // Values can span 9 bytes; stitch two words.
        while (i < count && (bit >> 3) + 16 <= in_bytes) {
            const size_t byte = bit >> 3;
            const size_t shift = bit & 7;
            uint64_t v = load64le(in + byte) >> shift;
            if (shift != 0)
                v |= load64le(in + byte + 8) << (64 - shift);
            out[i++] = v & mask;
            bit += width;
        }
    }
    for (; i < count; ++i, bit += width)
        out[i] = getBitsRef(in, bit, width);
}

bool
gatherDictScalar(const int64_t* dict, uint64_t dict_size, int64_t* inout,
                 size_t count)
{
    const auto* idx = reinterpret_cast<const uint64_t*>(inout);
    for (size_t i = 0; i < count; ++i) {
        const uint64_t k = idx[i];
        if (k >= dict_size)
            return false;
        inout[i] = dict[k];
    }
    return true;
}

// --- dispatch ------------------------------------------------------------
// Plain varint decode has a true AVX-512 tier (vpcompressb boundary
// extraction; needs the byte-compaction CPU bits on top of kAvx512).
// The other kernels map kAvx512 to the AVX2 variants: those loops are
// load/shuffle bound and a 512-bit variant measured no faster.

bool
decodeVarintsBatch(const uint8_t* in, size_t size, size_t& pos, uint64_t* out,
                   size_t count)
{
#if defined(PRESTO_HAVE_X86_SIMD)
    const SimdLevel level = activeSimdLevel();
    if (level == SimdLevel::kAvx512 && avx512ByteCompactionSupported())
        return decodeVarintsAvx512(in, size, pos, out, count);
    if (level != SimdLevel::kScalar)
        return decodeVarintsAvx2(in, size, pos, out, count);
#endif
    return decodeVarintsSwar(in, size, pos, out, count);
}

bool
decodeDictIndices(const uint8_t* in, size_t size, size_t& pos,
                  const int64_t* dict, uint64_t dict_size, int64_t* out,
                  size_t count)
{
#if defined(PRESTO_HAVE_X86_SIMD)
    if (activeSimdLevel() != SimdLevel::kScalar)
        return decodeDictIndicesAvx2(in, size, pos, dict, dict_size, out,
                                     count);
#endif
    return decodeDictIndicesSwar(in, size, pos, dict, dict_size, out, count);
}

void
unpackBits(const uint8_t* in, size_t in_bytes, size_t width, size_t count,
           uint64_t* out)
{
#if defined(PRESTO_HAVE_X86_SIMD)
    if (activeSimdLevel() != SimdLevel::kScalar) {
        unpackBitsAvx2(in, in_bytes, width, count, out);
        return;
    }
#endif
    unpackBitsWord(in, in_bytes, width, count, out);
}

bool
gatherDict(const int64_t* dict, uint64_t dict_size, int64_t* inout,
           size_t count)
{
#if defined(PRESTO_HAVE_X86_SIMD)
    if (activeSimdLevel() != SimdLevel::kScalar)
        return gatherDictAvx2(dict, dict_size, inout, count);
#endif
    return gatherDictScalar(dict, dict_size, inout, count);
}

}  // namespace presto::enc::detail
