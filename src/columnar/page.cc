#include "columnar/page.h"

#include <cstring>

#include "common/crc32.h"

namespace presto {

namespace {

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(std::span<const uint8_t> in, size_t pos)
{
    return static_cast<uint32_t>(in[pos]) |
           static_cast<uint32_t>(in[pos + 1]) << 8 |
           static_cast<uint32_t>(in[pos + 2]) << 16 |
           static_cast<uint32_t>(in[pos + 3]) << 24;
}

}  // namespace

void
writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
               uint32_t value_count, std::span<const uint8_t> payload)
{
    const size_t header_pos = out.size();
    out.push_back(static_cast<uint8_t>(encoding));
    putU32(out, value_count);
    putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    const uint32_t crc =
        crc32c(out.data() + header_pos, out.size() - header_pos);
    putU32(out, crc);
}

namespace {

Status
parseFrame(std::span<const uint8_t> in, size_t& pos, PageView& page,
           bool verify_crc)
{
    const size_t header_size = 1 + 4 + 4;
    if (pos + header_size > in.size())
        return Status::corruption("truncated page header");
    const uint8_t enc_byte = in[pos];
    if (enc_byte > static_cast<uint8_t>(Encoding::kBitPacked))
        return Status::corruption("unknown page encoding");
    const uint32_t value_count = getU32(in, pos + 1);
    if (value_count > kMaxValuesPerPage)
        return Status::corruption("page value count exceeds maximum");
    const uint32_t payload_size = getU32(in, pos + 5);
    if (pos + header_size + payload_size + 4 > in.size())
        return Status::corruption("truncated page payload");
    if (verify_crc) {
        const uint32_t stored_crc =
            getU32(in, pos + header_size + payload_size);
        const uint32_t actual_crc =
            crc32c(in.data() + pos, header_size + payload_size);
        if (stored_crc != actual_crc)
            return Status::corruption("page checksum mismatch");
    }

    page.encoding = static_cast<Encoding>(enc_byte);
    page.value_count = value_count;
    page.payload = in.subspan(pos + header_size, payload_size);
    pos += header_size + payload_size + 4;
    return Status::okStatus();
}

}  // namespace

Status
readPageFrame(std::span<const uint8_t> in, size_t& pos, PageView& page)
{
    return parseFrame(in, pos, page, /*verify_crc=*/true);
}

Status
scanPageFrame(std::span<const uint8_t> in, size_t& pos, PageView& page)
{
    return parseFrame(in, pos, page, /*verify_crc=*/false);
}

}  // namespace presto
