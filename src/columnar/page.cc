#include "columnar/page.h"

#include <cstring>

#include "columnar/entropy.h"
#include "common/crc32.h"

namespace presto {

namespace {

/** Compression attempts below this payload size cannot pay for the
 *  extra frame bytes plus codec overhead often enough to matter. */
constexpr size_t kMinCompressPayload = 32;

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(std::span<const uint8_t> in, size_t pos)
{
    return static_cast<uint32_t>(in[pos]) |
           static_cast<uint32_t>(in[pos + 1]) << 8 |
           static_cast<uint32_t>(in[pos + 2]) << 16 |
           static_cast<uint32_t>(in[pos + 3]) << 24;
}

}  // namespace

void
writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
               uint32_t value_count, std::span<const uint8_t> payload)
{
    const size_t header_pos = out.size();
    out.push_back(static_cast<uint8_t>(encoding));
    putU32(out, value_count);
    putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    const uint32_t crc =
        crc32c(out.data() + header_pos, out.size() - header_pos);
    putU32(out, crc);
}

namespace {

void
writeCompressedFrame(std::vector<uint8_t>& out, Encoding encoding,
                     uint32_t value_count, PageCodec codec,
                     uint32_t raw_size, std::span<const uint8_t> stored)
{
    const size_t header_pos = out.size();
    out.push_back(static_cast<uint8_t>(encoding) | kPageCompressedFlag);
    putU32(out, value_count);
    putU32(out, static_cast<uint32_t>(stored.size()));
    out.push_back(static_cast<uint8_t>(codec));
    putU32(out, raw_size);
    out.insert(out.end(), stored.begin(), stored.end());
    const uint32_t crc =
        crc32c(out.data() + header_pos, out.size() - header_pos);
    putU32(out, crc);
}

}  // namespace

PageCodec
writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
               uint32_t value_count, std::span<const uint8_t> payload,
               PageCodec codec)
{
    if (codec == PageCodec::kNone || payload.size() < kMinCompressPayload) {
        writePageFrame(out, encoding, value_count, payload);
        return PageCodec::kNone;
    }
    const bool try_lz =
        codec == PageCodec::kLz || codec == PageCodec::kLzEntropy;
    const bool try_entropy =
        codec == PageCodec::kEntropy || codec == PageCodec::kLzEntropy;

    // Writer-local scratch: compression only runs while building
    // partitions, never on the (allocation-free) read path.
    static thread_local std::vector<uint8_t> lz_bytes;
    static thread_local std::vector<uint8_t> entropy_bytes;
    static thread_local std::vector<uint8_t> lz_entropy_bytes;

    // A candidate wins only by strictly shrinking the whole frame; ties
    // go to the earlier (cheaper-to-decode) menu entry.
    PageCodec best = PageCodec::kNone;
    std::span<const uint8_t> best_bytes = payload;
    size_t best_stored = payload.size();
    const auto consider = [&](PageCodec candidate,
                              const std::vector<uint8_t>& bytes) {
        if (bytes.size() + kCompressedPageExtraBytes < best_stored &&
            bytes.size() + kCompressedPageExtraBytes < payload.size()) {
            best = candidate;
            best_bytes = bytes;
            best_stored = bytes.size() + kCompressedPageExtraBytes;
        }
    };

    if (try_lz) {
        enc::lzCompress(payload, lz_bytes);
        consider(PageCodec::kLz, lz_bytes);
    }
    if (try_entropy) {
        enc::huffCompress(payload, entropy_bytes);
        consider(PageCodec::kEntropy, entropy_bytes);
    }
    if (codec == PageCodec::kLzEntropy &&
        lz_bytes.size() >= kMinCompressPayload) {
        enc::huffCompress(lz_bytes, lz_entropy_bytes);
        consider(PageCodec::kLzEntropy, lz_entropy_bytes);
    }

    if (best == PageCodec::kNone) {
        writePageFrame(out, encoding, value_count, payload);
        return PageCodec::kNone;
    }
    writeCompressedFrame(out, encoding, value_count, best,
                         static_cast<uint32_t>(payload.size()), best_bytes);
    return best;
}

namespace {

Status
parseFrame(std::span<const uint8_t> in, size_t& pos, PageView& page,
           bool verify_crc)
{
    const size_t header_size = 1 + 4 + 4;
    if (pos + header_size > in.size())
        return Status::corruption("truncated page header");
    const uint8_t enc_byte = in[pos] & ~kPageCompressedFlag;
    const bool compressed = (in[pos] & kPageCompressedFlag) != 0;
    if (enc_byte > static_cast<uint8_t>(Encoding::kBitPacked))
        return Status::corruption("unknown page encoding");
    const uint32_t value_count = getU32(in, pos + 1);
    if (value_count > kMaxValuesPerPage)
        return Status::corruption("page value count exceeds maximum");
    const uint32_t payload_size = getU32(in, pos + 5);
    const size_t extra = compressed ? kCompressedPageExtraBytes : 0;
    if (pos + header_size + extra + payload_size + 4 > in.size())
        return Status::corruption("truncated page payload");

    PageCodec codec = PageCodec::kNone;
    uint32_t raw_size = payload_size;
    if (compressed) {
        const uint8_t codec_byte = in[pos + header_size];
        if (codec_byte == static_cast<uint8_t>(PageCodec::kNone) ||
            codec_byte > static_cast<uint8_t>(PageCodec::kLzEntropy))
            return Status::corruption("unknown page codec");
        codec = static_cast<PageCodec>(codec_byte);
        raw_size = getU32(in, pos + header_size + 1);
        if (raw_size > kMaxPageRawBytes)
            return Status::corruption("page raw size exceeds maximum");
        // The writer compresses only when it strictly shrinks the
        // frame; an overlong compressed payload is damage.
        if (payload_size + kCompressedPageExtraBytes >= raw_size)
            return Status::corruption(
                "compressed page not smaller than raw");
    }
    if (verify_crc) {
        const size_t covered = header_size + extra + payload_size;
        const uint32_t stored_crc = getU32(in, pos + covered);
        const uint32_t actual_crc = crc32c(in.data() + pos, covered);
        if (stored_crc != actual_crc)
            return Status::corruption("page checksum mismatch");
    }

    page.encoding = static_cast<Encoding>(enc_byte);
    page.codec = codec;
    page.value_count = value_count;
    page.raw_size = raw_size;
    page.payload = in.subspan(pos + header_size + extra, payload_size);
    pos += header_size + extra + payload_size + 4;
    return Status::okStatus();
}

}  // namespace

Status
readPageFrame(std::span<const uint8_t> in, size_t& pos, PageView& page)
{
    return parseFrame(in, pos, page, /*verify_crc=*/true);
}

Status
scanPageFrame(std::span<const uint8_t> in, size_t& pos, PageView& page)
{
    return parseFrame(in, pos, page, /*verify_crc=*/false);
}

Status
pagePayload(const PageView& page, std::vector<uint8_t>& scratch,
            std::span<const uint8_t>& raw)
{
    switch (page.codec) {
      case PageCodec::kNone:
        raw = page.payload;
        return Status::okStatus();
      case PageCodec::kLz:
        scratch.resize(page.raw_size);
        PRESTO_RETURN_IF_ERROR(enc::lzDecompress(
            page.payload, {scratch.data(), scratch.size()}));
        break;
      case PageCodec::kEntropy:
        scratch.resize(page.raw_size);
        PRESTO_RETURN_IF_ERROR(enc::huffDecompress(
            page.payload, {scratch.data(), scratch.size()}));
        break;
      case PageCodec::kLzEntropy: {
        // Two-stage decode: entropy -> LZ stream -> raw. The LZ
        // stream's size is only known from the entropy header, so
        // bound it by the worst-case LZ expansion of raw_size before
        // sizing the intermediate buffer (the claim is CRC-covered,
        // but damage is rejected structurally too).
        HuffStreamInfo info;
        PRESTO_RETURN_IF_ERROR(enc::huffStreamInfo(page.payload, info));
        const uint64_t max_lz =
            static_cast<uint64_t>(page.raw_size) + page.raw_size / 255 + 16;
        if (info.raw_bytes > max_lz)
            return Status::corruption(
                "entropy-coded LZ stream larger than worst case");
        static thread_local std::vector<uint8_t> lz_stream;
        lz_stream.resize(info.raw_bytes);
        PRESTO_RETURN_IF_ERROR(enc::huffDecompress(
            page.payload, {lz_stream.data(), lz_stream.size()}));
        scratch.resize(page.raw_size);
        PRESTO_RETURN_IF_ERROR(enc::lzDecompress(
            lz_stream, {scratch.data(), scratch.size()}));
        break;
      }
    }
    raw = {scratch.data(), scratch.size()};
    return Status::okStatus();
}

}  // namespace presto
