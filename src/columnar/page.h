/**
 * @file
 * Page framing for columnar files.
 *
 * A page is the unit of encoding and integrity checking:
 *
 *   uncompressed (compression flag clear):
 *     [encoding u8][value_count u32][payload_size u32][payload][crc32c u32]
 *
 *   compressed (encoding byte has kPageCompressedFlag set):
 *     [encoding u8 | 0x80][value_count u32][payload_size u32]
 *     [codec u8][raw_size u32][compressed payload][crc32c u32]
 *
 * payload_size is always the number of *stored* payload bytes (the
 * compressed size when the flag is set); raw_size is the decompressed
 * payload size the decoder must reproduce. The CRC covers everything
 * from the encoding byte through the stored payload — i.e. the
 * *compressed* bytes — so any bit flip in a stored page is detected at
 * read time, before a single byte is decompressed or decoded.
 *
 * The writer stores a page compressed only when that strictly shrinks
 * the frame (compressed_size + kCompressedPageExtraBytes < raw_size);
 * readers reject frames violating this invariant, so an "overlong"
 * compressed frame can only come from damage.
 */
#ifndef PRESTO_COLUMNAR_PAGE_H_
#define PRESTO_COLUMNAR_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "columnar/compress.h"
#include "columnar/encoding.h"
#include "common/status.h"

namespace presto {

/** In-memory view of one decoded page frame. */
struct PageView {
    Encoding encoding = Encoding::kPlainF32;
    PageCodec codec = PageCodec::kNone;
    uint32_t value_count = 0;
    /** Decompressed payload size; equals payload.size() when kNone. */
    uint32_t raw_size = 0;
    /** Stored payload bytes (compressed when codec != kNone). */
    std::span<const uint8_t> payload;
};

/** Maximum values per page; streams longer than this are split. */
inline constexpr size_t kMaxValuesPerPage = 65536;

/** Serialized page-frame overhead in bytes (header + crc). */
inline constexpr size_t kPageFrameBytes = 1 + 4 + 4 + 4;

/** Compression flag on the frame's encoding byte. */
inline constexpr uint8_t kPageCompressedFlag = 0x80;

/** Extra frame bytes of a compressed page (codec u8 + raw_size u32). */
inline constexpr size_t kCompressedPageExtraBytes = 1 + 4;

/**
 * Maximum decompressed payload bytes a frame may claim. The writer's
 * densest legal payload (a full dictionary page of maximum-length
 * varints) stays well under this, so larger claims can only come from
 * damage and would make the reader allocate unbounded scratch.
 */
inline constexpr size_t kMaxPageRawBytes = size_t{2} << 20;

/** Append one framed page to @p out, stored uncompressed. */
void writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
                    uint32_t value_count, std::span<const uint8_t> payload);

/**
 * Append one framed page, compressing the payload when that strictly
 * shrinks the frame. @p codec selects the candidate menu the writer
 * may try:
 *
 *   kNone      store plain, always
 *   kLz        {plain, lz}
 *   kEntropy   {plain, entropy}
 *   kLzEntropy {plain, lz, entropy, lz+entropy} — the full menu
 *
 * The strictly-smallest framed candidate wins; ties go to the earlier
 * (cheaper-to-decode) menu entry. When every compressed candidate
 * loses, the page is stored as a plain frame — bit-identical to the
 * plain writePageFrame() overload, with no codec/raw_size bytes.
 * @return the codec actually stored.
 */
PageCodec writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
                         uint32_t value_count,
                         std::span<const uint8_t> payload, PageCodec codec);

/**
 * Parse the page frame at @p pos (advanced past the frame) and verify its
 * checksum.
 * @return kCorruption for truncation, CRC mismatch, an unknown encoding
 * or codec byte, a value count above kMaxValuesPerPage, a raw size
 * above kMaxPageRawBytes, or a compressed payload that is not strictly
 * smaller than its raw form (the writer never produces those, so they
 * can only come from damage).
 */
Status readPageFrame(std::span<const uint8_t> in, size_t& pos,
                     PageView& page);

/**
 * Parse the frame at @p pos (advanced past the frame) WITHOUT verifying
 * its checksum. The page-parallel reader uses this to split a stream
 * into per-page tasks up front; the CRC is still verified by the
 * readPageFrame call inside each decode task, so corruption detection
 * is unchanged.
 */
Status scanPageFrame(std::span<const uint8_t> in, size_t& pos,
                     PageView& page);

/**
 * Materialize the page's *raw* (decoded-ready) payload: the stored
 * bytes for an uncompressed page, or the decompression of them into
 * @p scratch (resized to raw_size; capacity reused across calls, so a
 * warmed-up decode loop stays allocation-free — kLzEntropy's
 * intermediate LZ stream lives in a thread-local buffer with the same
 * warm-up property). Call only after readPageFrame() verified the CRC.
 */
Status pagePayload(const PageView& page, std::vector<uint8_t>& scratch,
                   std::span<const uint8_t>& raw);

}  // namespace presto

#endif  // PRESTO_COLUMNAR_PAGE_H_
