/**
 * @file
 * Page framing for columnar files.
 *
 * A page is the unit of encoding and integrity checking:
 *   [encoding u8][value_count u32][payload_size u32][payload][crc32c u32]
 * The CRC covers the header fields and the payload, so any bit flip in a
 * stored page is detected at read time.
 */
#ifndef PRESTO_COLUMNAR_PAGE_H_
#define PRESTO_COLUMNAR_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "columnar/encoding.h"
#include "common/status.h"

namespace presto {

/** In-memory view of one decoded page frame. */
struct PageView {
    Encoding encoding = Encoding::kPlainF32;
    uint32_t value_count = 0;
    std::span<const uint8_t> payload;
};

/** Maximum values per page; streams longer than this are split. */
inline constexpr size_t kMaxValuesPerPage = 65536;

/** Serialized page-frame overhead in bytes (header + crc). */
inline constexpr size_t kPageFrameBytes = 1 + 4 + 4 + 4;

/** Append one framed page to @p out. */
void writePageFrame(std::vector<uint8_t>& out, Encoding encoding,
                    uint32_t value_count, std::span<const uint8_t> payload);

/**
 * Parse the page frame at @p pos (advanced past the frame) and verify its
 * checksum.
 * @return kCorruption for truncation, CRC mismatch, an unknown encoding
 * byte, or a value count above kMaxValuesPerPage (the writer never
 * exceeds it, so larger counts can only come from damage and would
 * otherwise make the decoder allocate unbounded output).
 */
Status readPageFrame(std::span<const uint8_t> in, size_t& pos,
                     PageView& page);

/**
 * Parse the frame at @p pos (advanced past the frame) WITHOUT verifying
 * its checksum. The page-parallel reader uses this to split a stream
 * into per-page tasks up front; the CRC is still verified by the
 * readPageFrame call inside each decode task, so corruption detection
 * is unchanged.
 */
Status scanPageFrame(std::span<const uint8_t> in, size_t& pos,
                     PageView& page);

}  // namespace presto

#endif  // PRESTO_COLUMNAR_PAGE_H_
