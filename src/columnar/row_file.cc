#include "columnar/row_file.h"

#include <cstring>

#include "columnar/encoding.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace presto {

namespace {

constexpr char kRowMagic[4] = {'R', 'S', 'F', '1'};

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(std::span<const uint8_t> in, size_t pos)
{
    return static_cast<uint32_t>(in[pos]) |
           static_cast<uint32_t>(in[pos + 1]) << 8 |
           static_cast<uint32_t>(in[pos + 2]) << 16 |
           static_cast<uint32_t>(in[pos + 3]) << 24;
}

void
putF32(std::vector<uint8_t>& out, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    putU32(out, bits);
}

Status
getF32(std::span<const uint8_t> in, size_t& pos, float& v)
{
    if (pos + 4 > in.size())
        return Status::corruption("truncated f32 in row record");
    const uint32_t bits = getU32(in, pos);
    std::memcpy(&v, &bits, 4);
    pos += 4;
    return Status::okStatus();
}

}  // namespace

std::vector<uint8_t>
RowFileWriter::write(const RowBatch& batch, uint64_t partition_id) const
{
    PRESTO_CHECK(batch.complete(), "cannot write an incomplete batch");
    std::vector<uint8_t> out;
    for (char c : kRowMagic)
        out.push_back(static_cast<uint8_t>(c));

    const auto& schema = batch.schema();
    for (size_t r = 0; r < batch.numRows(); ++r) {
        for (size_t c = 0; c < batch.numColumns(); ++c) {
            if (schema.feature(c).kind == FeatureKind::kSparse) {
                const auto row = batch.sparse(c).row(r);
                enc::putVarint(out, row.size());
                for (int64_t id : row)
                    enc::putVarint(out, enc::zigZag(id));
            } else {
                putF32(out, batch.dense(c).value(r));
            }
        }
    }
    const size_t records_end = out.size();

    // Footer: schema + counts.
    std::vector<uint8_t> footer;
    enc::putVarint(footer, batch.numRows());
    enc::putVarint(footer, partition_id);
    enc::putVarint(footer, records_end - 4);  // record-region size
    enc::putVarint(footer, schema.numFeatures());
    for (const auto& f : schema.features()) {
        enc::putVarint(footer, f.name.size());
        // Element-wise append sidesteps a GCC 12 -Wstringop-overflow
        // false positive on vector::insert from string iterators.
        for (char c : f.name)
            footer.push_back(static_cast<uint8_t>(c));
        footer.push_back(static_cast<uint8_t>(f.kind));
    }
    const uint32_t footer_crc = crc32c(footer.data(), footer.size());
    out.insert(out.end(), footer.begin(), footer.end());
    putU32(out, static_cast<uint32_t>(footer.size()));
    putU32(out, footer_crc);
    for (char c : kRowMagic)
        out.push_back(static_cast<uint8_t>(c));
    return out;
}

Status
RowFileReader::open(std::span<const uint8_t> data)
{
    open_ = false;
    bytes_touched_ = 0;
    data_ = data;
    schema_ = Schema();

    const size_t trailer = 12;
    if (data.size() < 4 + trailer)
        return Status::corruption("file too small for RSF framing");
    if (std::memcmp(data.data(), kRowMagic, 4) != 0 ||
        std::memcmp(data.data() + data.size() - 4, kRowMagic, 4) != 0)
        return Status::corruption("bad RSF magic");

    const size_t size_pos = data.size() - trailer;
    const uint32_t footer_size = getU32(data, size_pos);
    const uint32_t footer_crc = getU32(data, size_pos + 4);
    if (footer_size > size_pos - 4)
        return Status::corruption("footer size exceeds file");
    const size_t footer_pos = size_pos - footer_size;
    const auto footer = data.subspan(footer_pos, footer_size);
    if (crc32c(footer.data(), footer.size()) != footer_crc)
        return Status::corruption("footer checksum mismatch");

    size_t pos = 0;
    uint64_t record_bytes = 0;
    uint64_t num_features = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(footer, pos, num_rows_));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(footer, pos, partition_id_));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(footer, pos, record_bytes));
    PRESTO_RETURN_IF_ERROR(enc::getVarint(footer, pos, num_features));
    if (4 + record_bytes > footer_pos)
        return Status::corruption("record region exceeds file");
    for (uint64_t f = 0; f < num_features; ++f) {
        uint64_t name_len = 0;
        PRESTO_RETURN_IF_ERROR(enc::getVarint(footer, pos, name_len));
        if (pos + name_len + 1 > footer.size())
            return Status::corruption("truncated feature spec");
        std::string name(reinterpret_cast<const char*>(footer.data() + pos),
                         name_len);
        pos += name_len;
        const uint8_t kind = footer[pos++];
        if (kind > static_cast<uint8_t>(FeatureKind::kLabel))
            return Status::corruption("unknown feature kind");
        schema_.add({std::move(name), static_cast<FeatureKind>(kind)});
    }

    records_begin_ = 4;
    records_end_ = 4 + record_bytes;
    bytes_touched_ = footer_size + trailer + 4;
    open_ = true;
    return Status::okStatus();
}

StatusOr<RowBatch>
RowFileReader::readColumns(const std::vector<std::string>& names)
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");

    // Resolve the projection.
    Schema out_schema;
    std::vector<size_t> selected;
    for (const auto& name : names) {
        const auto idx = schema_.indexOf(name);
        if (!idx.has_value())
            return Status::notFound("no feature named " + name);
        out_schema.add(schema_.feature(*idx));
        selected.push_back(*idx);
    }

    // Row-major scan: every record must be parsed in full, even for a
    // one-column projection. This is the overfetch.
    std::vector<std::vector<float>> dense_out(selected.size());
    std::vector<SparseColumn> sparse_out(selected.size());

    size_t pos = records_begin_;
    std::vector<int64_t> ids;
    for (uint64_t r = 0; r < num_rows_; ++r) {
        for (size_t c = 0; c < schema_.numFeatures(); ++c) {
            const bool is_sparse =
                schema_.feature(c).kind == FeatureKind::kSparse;
            float fval = 0;
            ids.clear();
            if (is_sparse) {
                uint64_t len = 0;
                PRESTO_RETURN_IF_ERROR(enc::getVarint(data_, pos, len));
                if (len > records_end_ - pos)
                    return Status::corruption("row length overruns record");
                for (uint64_t k = 0; k < len; ++k) {
                    uint64_t u = 0;
                    PRESTO_RETURN_IF_ERROR(enc::getVarint(data_, pos, u));
                    ids.push_back(enc::unZigZag(u));
                }
            } else {
                PRESTO_RETURN_IF_ERROR(getF32(data_, pos, fval));
            }
            for (size_t s = 0; s < selected.size(); ++s) {
                if (selected[s] != c)
                    continue;
                if (is_sparse)
                    sparse_out[s].appendRow(ids);
                else
                    dense_out[s].push_back(fval);
            }
        }
        if (pos > records_end_)
            return Status::corruption("records overrun footer");
    }
    if (pos != records_end_)
        return Status::corruption("record region size mismatch");
    bytes_touched_ += records_end_ - records_begin_;

    RowBatch batch(out_schema);
    for (size_t s = 0; s < selected.size(); ++s) {
        if (schema_.feature(selected[s]).kind == FeatureKind::kSparse)
            batch.addColumn(std::move(sparse_out[s]));
        else
            batch.addColumn(DenseColumn(std::move(dense_out[s])));
    }
    return batch;
}

StatusOr<RowBatch>
RowFileReader::readAll()
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    std::vector<std::string> names;
    for (const auto& f : schema_.features())
        names.push_back(f.name);
    return readColumns(names);
}

}  // namespace presto
