#include "columnar/encoding.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <unordered_map>

#include "columnar/fast_decode_internal.h"

namespace presto {

const char*
encodingName(Encoding encoding)
{
    switch (encoding) {
      case Encoding::kPlainF32:    return "plain_f32";
      case Encoding::kPlainI64:    return "plain_i64";
      case Encoding::kVarint:      return "varint";
      case Encoding::kDeltaVarint: return "delta_varint";
      case Encoding::kRle:         return "rle";
      case Encoding::kDictionary:  return "dictionary";
      case Encoding::kBitPacked:   return "bit_packed";
    }
    return "?";
}

namespace enc {

namespace {

std::atomic<bool> g_fast_decode{true};

/** Distinct-value cap shared by the dictionary-flavored encoders. */
constexpr size_t kDictDistinctCap = 4096;

size_t
packedBytes(size_t count, size_t width)
{
    return (count * width + 7) / 8;
}

/** Append @p width-bit values LSB-first (reference bit-by-bit packer). */
void
putPackedBits(std::vector<uint8_t>& out, std::span<const uint64_t> values,
              size_t width)
{
    const size_t start = out.size();
    out.resize(start + packedBytes(values.size(), width), 0);
    uint8_t* bytes = out.data() + start;
    size_t bit = 0;
    for (uint64_t v : values) {
        for (size_t k = 0; k < width; ++k, ++bit) {
            if ((v >> k) & 1)
                bytes[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
        }
    }
}

/** Parsed and validated kBitPacked header (see encoding.h framing). */
struct BitPackedHeader {
    uint8_t mode = 0;
    int64_t base = 0;        ///< mode 0: min value; mode 2: min delta
    int64_t first = 0;       ///< mode 2: value[0]
    uint64_t dict_size = 0;  ///< mode 1
    size_t width = 0;
    size_t packed_pos = 0;   ///< payload offset of the packed block
};

/**
 * Parse everything before the packed block (decoding the mode-1
 * dictionary into @p dict) and validate the packed block's exact size
 * and zero trailing bits. Shared by the reference and dispatched
 * decoders so both reject exactly the same malformed pages.
 */
Status
parseBitPackedHeader(std::span<const uint8_t> payload, size_t count,
                     BitPackedHeader& h, std::vector<int64_t>& dict)
{
    if (payload.empty())
        return Status::corruption("truncated bit-packed page");
    h.mode = payload[0];
    size_t pos = 1;
    if (h.mode > 2)
        return Status::corruption("unknown bit-packed mode");
    if (h.mode == 0) {
        uint64_t zz = 0;
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, zz));
        h.base = unZigZag(zz);
    } else if (h.mode == 1) {
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, h.dict_size));
        if (h.dict_size > payload.size())
            return Status::corruption("dictionary size exceeds payload");
        dict.resize(h.dict_size);
        for (uint64_t i = 0; i < h.dict_size; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            dict[i] = unZigZag(u);
        }
    } else {
        if (count == 0)
            return Status::corruption("delta bit-packed page without values");
        uint64_t zz = 0;
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, zz));
        h.first = unZigZag(zz);
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, zz));
        h.base = unZigZag(zz);
    }
    if (pos >= payload.size())
        return Status::corruption("truncated bit-packed page");
    h.width = payload[pos++];
    if (h.width > 64)
        return Status::corruption("bit-packed width exceeds 64");
    const uint64_t packed_count = h.mode == 2 ? count - 1 : count;
    const uint64_t packed_bits = packed_count * h.width;
    const uint64_t packed = (packed_bits + 7) / 8;
    if (payload.size() - pos != packed)
        return Status::corruption("bit-packed payload size mismatch");
    if (packed_bits % 8 != 0) {
        const uint8_t last = payload[pos + packed - 1];
        if ((last >> (packed_bits % 8)) != 0)
            return Status::corruption("nonzero trailing bits in "
                                      "bit-packed page");
    }
    h.packed_pos = pos;
    return Status::okStatus();
}

}  // namespace

void
putVarint(std::vector<uint8_t>& out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

Status
getVarint(std::span<const uint8_t> in, size_t& pos, uint64_t& value)
{
    value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (pos >= in.size())
            return Status::corruption("truncated varint");
        const uint8_t byte = in[pos++];
        // The 10th byte holds bits 63..69; anything past bit 63 would
        // silently wrap, so reject instead.
        if (shift == 63 && (byte & 0x7f) > 1)
            return Status::corruption("varint overflows 64 bits");
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return Status::okStatus();
    }
    return Status::corruption("varint longer than 10 bytes");
}

std::vector<uint8_t>
encodePlainF32(std::span<const float> values)
{
    std::vector<uint8_t> out(values.size() * sizeof(float));
    if (!values.empty())
        std::memcpy(out.data(), values.data(), out.size());
    return out;
}

std::vector<uint8_t>
encodePlainI64(std::span<const int64_t> values)
{
    std::vector<uint8_t> out(values.size() * sizeof(int64_t));
    if (!values.empty())
        std::memcpy(out.data(), values.data(), out.size());
    return out;
}

std::vector<uint8_t>
encodeVarint(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    out.reserve(values.size() * 3);
    for (int64_t v : values)
        putVarint(out, zigZag(v));
    return out;
}

std::vector<uint8_t>
encodeDeltaVarint(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    out.reserve(values.size() * 2);
    uint64_t prev = 0;
    for (int64_t v : values) {
        // Unsigned subtraction: same bits as the signed delta wherever
        // that is defined, and well-defined for any int64 range.
        const uint64_t delta = static_cast<uint64_t>(v) - prev;
        putVarint(out, zigZag(static_cast<int64_t>(delta)));
        prev = static_cast<uint64_t>(v);
    }
    return out;
}

std::vector<uint8_t>
encodeRle(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    size_t i = 0;
    while (i < values.size()) {
        size_t run = 1;
        while (i + run < values.size() && values[i + run] == values[i])
            ++run;
        putVarint(out, run);
        putVarint(out, zigZag(values[i]));
        i += run;
    }
    return out;
}

std::vector<uint8_t>
encodeDictionary(std::span<const int64_t> values)
{
    std::unordered_map<int64_t, uint64_t> dict;
    std::vector<int64_t> distinct;
    std::vector<uint64_t> indices;
    indices.reserve(values.size());
    for (int64_t v : values) {
        auto [it, inserted] = dict.try_emplace(v, distinct.size());
        if (inserted)
            distinct.push_back(v);
        indices.push_back(it->second);
    }
    std::vector<uint8_t> out;
    putVarint(out, distinct.size());
    for (int64_t v : distinct)
        putVarint(out, zigZag(v));
    for (uint64_t idx : indices)
        putVarint(out, idx);
    return out;
}

std::vector<uint8_t>
encodeBitPacked(std::span<const int64_t> values)
{
    // Frame-of-reference candidate.
    int64_t lo = values.empty() ? 0 : values[0];
    int64_t hi = lo;
    for (int64_t v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    const size_t direct_width = std::bit_width(range);
    const size_t direct_size =
        2 + varintLen(zigZag(lo)) + packedBytes(values.size(), direct_width);

    // Bit-packed-dictionary candidate (first-seen order, capped).
    std::unordered_map<int64_t, uint64_t> seen;
    std::vector<int64_t> distinct;
    std::vector<uint64_t> indices;
    indices.reserve(values.size());
    size_t entry_bytes = 0;
    bool dict_ok = true;
    for (int64_t v : values) {
        auto [it, inserted] = seen.try_emplace(v, distinct.size());
        if (inserted) {
            if (distinct.size() == kDictDistinctCap) {
                dict_ok = false;
                break;
            }
            distinct.push_back(v);
            entry_bytes += varintLen(zigZag(v));
        }
        indices.push_back(it->second);
    }
    const size_t index_width =
        distinct.empty() ? 0 : std::bit_width(distinct.size() - 1);
    const size_t dict_size = 2 + varintLen(distinct.size()) + entry_bytes +
                             packedBytes(values.size(), index_width);

    // Frame-of-reference-over-deltas candidate (monotone offset arrays
    // and other near-constant-stride sequences).
    int64_t d_lo = 0;
    int64_t d_hi = 0;
    for (size_t i = 1; i < values.size(); ++i) {
        const auto d =
            static_cast<int64_t>(static_cast<uint64_t>(values[i]) -
                                 static_cast<uint64_t>(values[i - 1]));
        d_lo = i == 1 ? d : std::min(d_lo, d);
        d_hi = i == 1 ? d : std::max(d_hi, d);
    }
    const uint64_t d_range =
        static_cast<uint64_t>(d_hi) - static_cast<uint64_t>(d_lo);
    const size_t delta_width = std::bit_width(d_range);
    const size_t delta_size =
        values.size() < 2
            ? SIZE_MAX
            : 2 + varintLen(zigZag(values[0])) + varintLen(zigZag(d_lo)) +
                  packedBytes(values.size() - 1, delta_width);

    std::vector<uint8_t> out;
    const size_t best =
        std::min({direct_size, delta_size, dict_ok ? dict_size : SIZE_MAX});
    if (direct_size == best) {
        out.push_back(0);
        putVarint(out, zigZag(lo));
        out.push_back(static_cast<uint8_t>(direct_width));
        std::vector<uint64_t> deltas(values.size());
        for (size_t i = 0; i < values.size(); ++i) {
            deltas[i] = static_cast<uint64_t>(values[i]) -
                        static_cast<uint64_t>(lo);
        }
        putPackedBits(out, deltas, direct_width);
    } else if (delta_size == best) {
        out.push_back(2);
        putVarint(out, zigZag(values[0]));
        putVarint(out, zigZag(d_lo));
        out.push_back(static_cast<uint8_t>(delta_width));
        std::vector<uint64_t> excess(values.size() - 1);
        for (size_t i = 1; i < values.size(); ++i) {
            excess[i - 1] = static_cast<uint64_t>(values[i]) -
                            static_cast<uint64_t>(values[i - 1]) -
                            static_cast<uint64_t>(d_lo);
        }
        putPackedBits(out, excess, delta_width);
    } else {
        out.push_back(1);
        putVarint(out, distinct.size());
        for (int64_t v : distinct)
            putVarint(out, zigZag(v));
        out.push_back(static_cast<uint8_t>(index_width));
        putPackedBits(out, indices, index_width);
    }
    return out;
}

Status
decodeF32Into(Encoding encoding, std::span<const uint8_t> payload,
              size_t count, float* out)
{
    if (encoding != Encoding::kPlainF32)
        return Status::corruption("float page with non-float encoding");
    if (payload.size() != count * sizeof(float))
        return Status::corruption("plain_f32 payload size mismatch");
    if (count > 0)
        std::memcpy(out, payload.data(), payload.size());
    return Status::okStatus();
}

Status
decodeF32(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<float>& out)
{
    if (encoding != Encoding::kPlainF32)
        return Status::corruption("float page with non-float encoding");
    if (payload.size() != count * sizeof(float))
        return Status::corruption("plain_f32 payload size mismatch");
    out.resize(count);
    if (count > 0)
        std::memcpy(out.data(), payload.data(), payload.size());
    return Status::okStatus();
}

Status
decodeI64(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<int64_t>& out)
{
    std::vector<int64_t> dict_scratch;
    return decodeI64(encoding, payload, count, out, dict_scratch);
}

Status
decodeI64(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<int64_t>& out, std::vector<int64_t>& dict_scratch)
{
    if (!g_fast_decode.load(std::memory_order_relaxed))
        return decodeI64Reference(encoding, payload, count, out,
                                  dict_scratch);
    out.resize(count);
    return decodeI64Into(encoding, payload, count, out.data(), dict_scratch);
}

Status
decodeI64Into(Encoding encoding, std::span<const uint8_t> payload,
              size_t count, int64_t* out, std::vector<int64_t>& dict_scratch)
{
    size_t pos = 0;
    switch (encoding) {
      case Encoding::kPlainI64: {
        if (payload.size() != count * sizeof(int64_t))
            return Status::corruption("plain_i64 payload size mismatch");
        if (count > 0)
            std::memcpy(out, payload.data(), payload.size());
        return Status::okStatus();
      }
      case Encoding::kVarint: {
        auto* u = reinterpret_cast<uint64_t*>(out);
        if (!detail::decodeVarintsBatch(payload.data(), payload.size(), pos,
                                        u, count))
            return Status::corruption("truncated or malformed varint");
        for (size_t i = 0; i < count; ++i)
            out[i] = unZigZag(u[i]);
        break;
      }
      case Encoding::kDeltaVarint: {
        auto* u = reinterpret_cast<uint64_t*>(out);
        if (!detail::decodeVarintsBatch(payload.data(), payload.size(), pos,
                                        u, count))
            return Status::corruption("truncated or malformed varint");
        uint64_t prev = 0;
        for (size_t i = 0; i < count; ++i) {
            prev += static_cast<uint64_t>(unZigZag(u[i]));
            out[i] = static_cast<int64_t>(prev);
        }
        break;
      }
      case Encoding::kRle: {
        size_t filled = 0;
        while (filled < count) {
            uint64_t run = 0;
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, run));
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            if (run == 0 || run > count - filled)
                return Status::corruption("rle run overflows page");
            std::fill_n(out + filled, run, unZigZag(u));
            filled += run;
        }
        break;
      }
      case Encoding::kDictionary: {
        uint64_t dict_size = 0;
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, dict_size));
        if (dict_size > payload.size())
            return Status::corruption("dictionary size exceeds payload");
        dict_scratch.resize(dict_size);
        auto* du = reinterpret_cast<uint64_t*>(dict_scratch.data());
        if (!detail::decodeVarintsBatch(payload.data(), payload.size(), pos,
                                        du, dict_size))
            return Status::corruption("truncated or malformed varint");
        for (uint64_t i = 0; i < dict_size; ++i)
            dict_scratch[i] = unZigZag(du[i]);
        if (!detail::decodeDictIndices(payload.data(), payload.size(), pos,
                                       dict_scratch.data(), dict_size, out,
                                       count)) {
            return Status::corruption(
                "malformed dictionary index stream");
        }
        break;
      }
      case Encoding::kBitPacked: {
        BitPackedHeader h;
        PRESTO_RETURN_IF_ERROR(
            parseBitPackedHeader(payload, count, h, dict_scratch));
        auto* u = reinterpret_cast<uint64_t*>(out);
        if (h.mode == 2) {
            // Unpack the count-1 delta excesses into slots 1..count-1 so
            // the in-place prefix sum reads u[i] before writing out[i].
            detail::unpackBits(payload.data() + h.packed_pos,
                               payload.size() - h.packed_pos, h.width,
                               count - 1, u + 1);
            const auto base = static_cast<uint64_t>(h.base);
            auto prev = static_cast<uint64_t>(h.first);
            out[0] = h.first;
            for (size_t i = 1; i < count; ++i) {
                prev += base + u[i];
                out[i] = static_cast<int64_t>(prev);
            }
            return Status::okStatus();
        }
        detail::unpackBits(payload.data() + h.packed_pos,
                           payload.size() - h.packed_pos, h.width, count, u);
        if (h.mode == 0) {
            const auto base = static_cast<uint64_t>(h.base);
            for (size_t i = 0; i < count; ++i)
                out[i] = static_cast<int64_t>(base + u[i]);
        } else if (!detail::gatherDict(dict_scratch.data(), h.dict_size, out,
                                       count)) {
            return Status::corruption("dictionary index out of range");
        }
        // The header parse validated the exact packed-block size.
        return Status::okStatus();
      }
      case Encoding::kPlainF32:
        return Status::corruption("int page with float encoding");
    }
    if (pos != payload.size())
        return Status::corruption("trailing bytes after decoded page");
    return Status::okStatus();
}

Status
decodeI64Reference(Encoding encoding, std::span<const uint8_t> payload,
                   size_t count, std::vector<int64_t>& out,
                   std::vector<int64_t>& dict_scratch)
{
    out.clear();
    out.reserve(count);
    size_t pos = 0;
    switch (encoding) {
      case Encoding::kPlainI64: {
        if (payload.size() != count * sizeof(int64_t))
            return Status::corruption("plain_i64 payload size mismatch");
        out.resize(count);
        if (count > 0)
            std::memcpy(out.data(), payload.data(), payload.size());
        return Status::okStatus();
      }
      case Encoding::kVarint: {
        for (size_t i = 0; i < count; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            out.push_back(unZigZag(u));
        }
        break;
      }
      case Encoding::kDeltaVarint: {
        uint64_t prev = 0;
        for (size_t i = 0; i < count; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            prev += static_cast<uint64_t>(unZigZag(u));
            out.push_back(static_cast<int64_t>(prev));
        }
        break;
      }
      case Encoding::kRle: {
        while (out.size() < count) {
            uint64_t run = 0;
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, run));
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            if (run == 0 || out.size() + run > count)
                return Status::corruption("rle run overflows page");
            out.insert(out.end(), run, unZigZag(u));
        }
        break;
      }
      case Encoding::kDictionary: {
        uint64_t dict_size = 0;
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, dict_size));
        if (dict_size > payload.size())
            return Status::corruption("dictionary size exceeds payload");
        std::vector<int64_t>& dict = dict_scratch;
        dict.clear();
        dict.reserve(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            dict.push_back(unZigZag(u));
        }
        for (size_t i = 0; i < count; ++i) {
            uint64_t idx = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, idx));
            if (idx >= dict.size())
                return Status::corruption("dictionary index out of range");
            out.push_back(dict[idx]);
        }
        break;
      }
      case Encoding::kBitPacked: {
        BitPackedHeader h;
        PRESTO_RETURN_IF_ERROR(
            parseBitPackedHeader(payload, count, h, dict_scratch));
        const uint8_t* packed = payload.data() + h.packed_pos;
        if (h.mode == 2) {
            auto prev = static_cast<uint64_t>(h.first);
            out.push_back(h.first);
            for (size_t i = 1; i < count; ++i) {
                const uint64_t u = detail::getBitsRef(
                    packed, static_cast<uint64_t>(i - 1) * h.width, h.width);
                prev += static_cast<uint64_t>(h.base) + u;
                out.push_back(static_cast<int64_t>(prev));
            }
            return Status::okStatus();
        }
        for (size_t i = 0; i < count; ++i) {
            const uint64_t u = detail::getBitsRef(
                packed, static_cast<uint64_t>(i) * h.width, h.width);
            if (h.mode == 0) {
                out.push_back(static_cast<int64_t>(
                    static_cast<uint64_t>(h.base) + u));
            } else {
                if (u >= h.dict_size)
                    return Status::corruption(
                        "dictionary index out of range");
                out.push_back(dict_scratch[u]);
            }
        }
        return Status::okStatus();
      }
      case Encoding::kPlainF32:
        return Status::corruption("int page with float encoding");
    }
    if (pos != payload.size())
        return Status::corruption("trailing bytes after decoded page");
    return Status::okStatus();
}

bool
setFastDecodeEnabled(bool enabled)
{
    return g_fast_decode.exchange(enabled, std::memory_order_relaxed);
}

bool
fastDecodeEnabled()
{
    return g_fast_decode.load(std::memory_order_relaxed);
}

Encoding
chooseIntEncoding(std::span<const int64_t> values)
{
    if (values.empty())
        return Encoding::kVarint;

    // One pass accumulating the exact encoded size of every candidate.
    std::unordered_map<int64_t, uint64_t> seen;
    size_t varint_bytes = 0;
    size_t delta_bytes = 0;
    size_t rle_bytes = 0;
    size_t dict_entry_bytes = 0;
    size_t dict_index_bytes = 0;
    bool monotone = true;
    bool dict_ok = true;
    int64_t lo = values[0];
    int64_t hi = values[0];
    int64_t d_lo = 0;
    int64_t d_hi = 0;
    int64_t run_value = values[0];
    size_t run_len = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < values.size(); ++i) {
        const int64_t v = values[i];
        varint_bytes += varintLen(zigZag(v));
        const uint64_t delta = static_cast<uint64_t>(v) - prev;
        delta_bytes += varintLen(zigZag(static_cast<int64_t>(delta)));
        prev = static_cast<uint64_t>(v);
        if (i > 0) {
            const auto d = static_cast<int64_t>(delta);
            d_lo = i == 1 ? d : std::min(d_lo, d);
            d_hi = i == 1 ? d : std::max(d_hi, d);
        }
        if (i > 0 && v < values[i - 1])
            monotone = false;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        if (v == run_value && i > 0) {
            ++run_len;
        } else {
            if (i > 0)
                rle_bytes += varintLen(run_len) + varintLen(zigZag(run_value));
            run_value = v;
            run_len = 1;
        }
        if (dict_ok) {
            auto [it, inserted] = seen.try_emplace(v, seen.size());
            if (inserted && seen.size() > kDictDistinctCap)
                dict_ok = false;
            if (dict_ok) {
                if (inserted)
                    dict_entry_bytes += varintLen(zigZag(v));
                dict_index_bytes += varintLen(it->second);
            }
        }
    }
    rle_bytes += varintLen(run_len) + varintLen(zigZag(run_value));

    const size_t n = values.size();
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    size_t bp_bytes =
        2 + varintLen(zigZag(lo)) + packedBytes(n, std::bit_width(range));
    if (n >= 2) {
        // kBitPacked mode 2: frame-of-reference over consecutive deltas.
        const uint64_t d_range =
            static_cast<uint64_t>(d_hi) - static_cast<uint64_t>(d_lo);
        const size_t bp_delta = 2 + varintLen(zigZag(values[0])) +
                                varintLen(zigZag(d_lo)) +
                                packedBytes(n - 1, std::bit_width(d_range));
        bp_bytes = std::min(bp_bytes, bp_delta);
    }
    size_t dict_bytes = 0;
    if (dict_ok) {
        const size_t d = seen.size();  // >= 1 here
        const size_t index_width =
            std::bit_width(static_cast<uint64_t>(d - 1));
        const size_t bp_dict = 2 + varintLen(d) + dict_entry_bytes +
                               packedBytes(n, index_width);
        bp_bytes = std::min(bp_bytes, bp_dict);
        dict_bytes = varintLen(d) + dict_entry_bytes + dict_index_bytes;
    }

    // Candidates in decode-speed order; a later one must be strictly
    // smaller to win.
    Encoding best = Encoding::kPlainI64;
    size_t best_bytes = n * sizeof(int64_t);
    const auto consider = [&](Encoding e, size_t bytes) {
        if (bytes < best_bytes) {
            best = e;
            best_bytes = bytes;
        }
    };
    consider(Encoding::kBitPacked, bp_bytes);
    consider(Encoding::kRle, rle_bytes);
    if (monotone)
        consider(Encoding::kDeltaVarint, delta_bytes);
    if (dict_ok)
        consider(Encoding::kDictionary, dict_bytes);
    consider(Encoding::kVarint, varint_bytes);
    return best;
}

}  // namespace enc
}  // namespace presto
