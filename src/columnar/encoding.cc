#include "columnar/encoding.h"

#include <cstring>
#include <unordered_map>

namespace presto {

const char*
encodingName(Encoding encoding)
{
    switch (encoding) {
      case Encoding::kPlainF32:    return "plain_f32";
      case Encoding::kPlainI64:    return "plain_i64";
      case Encoding::kVarint:      return "varint";
      case Encoding::kDeltaVarint: return "delta_varint";
      case Encoding::kRle:         return "rle";
      case Encoding::kDictionary:  return "dictionary";
    }
    return "?";
}

namespace enc {

void
putVarint(std::vector<uint8_t>& out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

Status
getVarint(std::span<const uint8_t> in, size_t& pos, uint64_t& value)
{
    value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (pos >= in.size())
            return Status::corruption("truncated varint");
        const uint8_t byte = in[pos++];
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return Status::okStatus();
    }
    return Status::corruption("varint longer than 10 bytes");
}

std::vector<uint8_t>
encodePlainF32(std::span<const float> values)
{
    std::vector<uint8_t> out(values.size() * sizeof(float));
    if (!values.empty())
        std::memcpy(out.data(), values.data(), out.size());
    return out;
}

std::vector<uint8_t>
encodePlainI64(std::span<const int64_t> values)
{
    std::vector<uint8_t> out(values.size() * sizeof(int64_t));
    if (!values.empty())
        std::memcpy(out.data(), values.data(), out.size());
    return out;
}

std::vector<uint8_t>
encodeVarint(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    out.reserve(values.size() * 3);
    for (int64_t v : values)
        putVarint(out, zigZag(v));
    return out;
}

std::vector<uint8_t>
encodeDeltaVarint(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    out.reserve(values.size() * 2);
    int64_t prev = 0;
    for (int64_t v : values) {
        putVarint(out, zigZag(v - prev));
        prev = v;
    }
    return out;
}

std::vector<uint8_t>
encodeRle(std::span<const int64_t> values)
{
    std::vector<uint8_t> out;
    size_t i = 0;
    while (i < values.size()) {
        size_t run = 1;
        while (i + run < values.size() && values[i + run] == values[i])
            ++run;
        putVarint(out, run);
        putVarint(out, zigZag(values[i]));
        i += run;
    }
    return out;
}

std::vector<uint8_t>
encodeDictionary(std::span<const int64_t> values)
{
    std::unordered_map<int64_t, uint64_t> dict;
    std::vector<int64_t> distinct;
    std::vector<uint64_t> indices;
    indices.reserve(values.size());
    for (int64_t v : values) {
        auto [it, inserted] = dict.try_emplace(v, distinct.size());
        if (inserted)
            distinct.push_back(v);
        indices.push_back(it->second);
    }
    std::vector<uint8_t> out;
    putVarint(out, distinct.size());
    for (int64_t v : distinct)
        putVarint(out, zigZag(v));
    for (uint64_t idx : indices)
        putVarint(out, idx);
    return out;
}

Status
decodeF32(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<float>& out)
{
    if (encoding != Encoding::kPlainF32)
        return Status::corruption("float page with non-float encoding");
    if (payload.size() != count * sizeof(float))
        return Status::corruption("plain_f32 payload size mismatch");
    out.resize(count);
    if (count > 0)
        std::memcpy(out.data(), payload.data(), payload.size());
    return Status::okStatus();
}

Status
decodeI64(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<int64_t>& out)
{
    std::vector<int64_t> dict_scratch;
    return decodeI64(encoding, payload, count, out, dict_scratch);
}

Status
decodeI64(Encoding encoding, std::span<const uint8_t> payload, size_t count,
          std::vector<int64_t>& out, std::vector<int64_t>& dict_scratch)
{
    out.clear();
    out.reserve(count);
    size_t pos = 0;
    switch (encoding) {
      case Encoding::kPlainI64: {
        if (payload.size() != count * sizeof(int64_t))
            return Status::corruption("plain_i64 payload size mismatch");
        out.resize(count);
        if (count > 0)
            std::memcpy(out.data(), payload.data(), payload.size());
        return Status::okStatus();
      }
      case Encoding::kVarint: {
        for (size_t i = 0; i < count; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            out.push_back(unZigZag(u));
        }
        break;
      }
      case Encoding::kDeltaVarint: {
        int64_t prev = 0;
        for (size_t i = 0; i < count; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            prev += unZigZag(u);
            out.push_back(prev);
        }
        break;
      }
      case Encoding::kRle: {
        while (out.size() < count) {
            uint64_t run = 0;
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, run));
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            if (run == 0 || out.size() + run > count)
                return Status::corruption("rle run overflows page");
            out.insert(out.end(), run, unZigZag(u));
        }
        break;
      }
      case Encoding::kDictionary: {
        uint64_t dict_size = 0;
        PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, dict_size));
        if (dict_size > payload.size())
            return Status::corruption("dictionary size exceeds payload");
        std::vector<int64_t>& dict = dict_scratch;
        dict.clear();
        dict.reserve(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) {
            uint64_t u = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, u));
            dict.push_back(unZigZag(u));
        }
        for (size_t i = 0; i < count; ++i) {
            uint64_t idx = 0;
            PRESTO_RETURN_IF_ERROR(getVarint(payload, pos, idx));
            if (idx >= dict.size())
                return Status::corruption("dictionary index out of range");
            out.push_back(dict[idx]);
        }
        break;
      }
      case Encoding::kPlainF32:
        return Status::corruption("int page with float encoding");
    }
    if (pos != payload.size())
        return Status::corruption("trailing bytes after decoded page");
    return Status::okStatus();
}

Encoding
chooseIntEncoding(std::span<const int64_t> values)
{
    if (values.empty())
        return Encoding::kVarint;

    size_t distinct_cap = 4096;
    std::unordered_map<int64_t, size_t> seen;
    bool monotone = true;
    size_t runs = 1;
    for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
            if (values[i] < values[i - 1])
                monotone = false;
            if (values[i] != values[i - 1])
                ++runs;
        }
        if (seen.size() < distinct_cap)
            seen.try_emplace(values[i], seen.size());
    }
    // Few runs -> RLE wins outright.
    if (runs * 8 < values.size())
        return Encoding::kRle;
    if (monotone)
        return Encoding::kDeltaVarint;
    // Modest distinct set -> dictionary indices are much smaller than
    // full-width ids.
    if (seen.size() < distinct_cap && seen.size() * 4 < values.size() * 3)
        return Encoding::kDictionary;
    return Encoding::kVarint;
}

}  // namespace enc
}  // namespace presto
