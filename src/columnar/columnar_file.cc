#include "columnar/columnar_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/thread_pool.h"

namespace presto {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'F', '1'};

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32(std::span<const uint8_t> in, size_t pos)
{
    return static_cast<uint32_t>(in[pos]) |
           static_cast<uint32_t>(in[pos + 1]) << 8 |
           static_cast<uint32_t>(in[pos + 2]) << 16 |
           static_cast<uint32_t>(in[pos + 3]) << 24;
}

void
putString(std::vector<uint8_t>& out, const std::string& s)
{
    enc::putVarint(out, s.size());
    // Element-wise append sidesteps a GCC 12 -Wstringop-overflow false
    // positive on vector::insert from string iterators.
    for (char c : s)
        out.push_back(static_cast<uint8_t>(c));
}

Status
getString(std::span<const uint8_t> in, size_t& pos, std::string& s)
{
    uint64_t len = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(in, pos, len));
    if (pos + len > in.size())
        return Status::corruption("truncated string in footer");
    s.assign(reinterpret_cast<const char*>(in.data() + pos), len);
    pos += len;
    return Status::okStatus();
}

/** Append framed pages for an int64 sequence; returns stream metadata. */
StreamMeta
writeI64Stream(std::vector<uint8_t>& out, std::span<const int64_t> values,
               const WriterOptions& options)
{
    StreamMeta meta;
    meta.offset = out.size();
    meta.value_count = values.size();
    size_t pos = 0;
    do {
        const size_t n = std::min(values.size() - pos, kMaxValuesPerPage);
        const auto slice = values.subspan(pos, n);
        const Encoding encoding = options.force_plain
                                      ? Encoding::kPlainI64
                                      : enc::chooseIntEncoding(slice);
        std::vector<uint8_t> payload;
        switch (encoding) {
          case Encoding::kPlainI64:
            payload = enc::encodePlainI64(slice);
            break;
          case Encoding::kVarint:
            payload = enc::encodeVarint(slice);
            break;
          case Encoding::kDeltaVarint:
            payload = enc::encodeDeltaVarint(slice);
            break;
          case Encoding::kRle:
            payload = enc::encodeRle(slice);
            break;
          case Encoding::kDictionary:
            payload = enc::encodeDictionary(slice);
            break;
          case Encoding::kBitPacked:
            payload = enc::encodeBitPacked(slice);
            break;
          case Encoding::kPlainF32:
            PRESTO_PANIC("float encoding chosen for int stream");
        }
        // chooseIntEncoding ranks candidates by *pre-compression* size
        // (e.g. kBitPacked strips redundancy the codec would otherwise
        // find), but some pages invert under compression: low-entropy
        // plain bytes can LZ below a varint/bit-packed payload. Frame
        // both candidates and keep the smaller, so enabling a codec
        // never loses to force_plain on any page.
        static thread_local std::vector<uint8_t> frame;
        frame.clear();
        writePageFrame(frame, encoding, static_cast<uint32_t>(n), payload,
                       options.codec);
        if (options.codec != PageCodec::kNone &&
            encoding != Encoding::kPlainI64) {
            static thread_local std::vector<uint8_t> plain_frame;
            plain_frame.clear();
            writePageFrame(plain_frame, Encoding::kPlainI64,
                           static_cast<uint32_t>(n),
                           enc::encodePlainI64(slice), options.codec);
            if (plain_frame.size() < frame.size())
                frame.swap(plain_frame);
        }
        out.insert(out.end(), frame.begin(), frame.end());
        ++meta.num_pages;
        pos += n;
    } while (pos < values.size());
    meta.byte_size = out.size() - meta.offset;
    return meta;
}

/** Append framed pages for a float sequence; returns stream metadata. */
StreamMeta
writeF32Stream(std::vector<uint8_t>& out, std::span<const float> values,
               const WriterOptions& options)
{
    StreamMeta meta;
    meta.offset = out.size();
    meta.value_count = values.size();
    size_t pos = 0;
    do {
        const size_t n = std::min(values.size() - pos, kMaxValuesPerPage);
        const auto payload = enc::encodePlainF32(values.subspan(pos, n));
        writePageFrame(out, Encoding::kPlainF32, static_cast<uint32_t>(n),
                       payload, options.codec);
        ++meta.num_pages;
        pos += n;
    } while (pos < values.size());
    meta.byte_size = out.size() - meta.offset;
    return meta;
}

}  // namespace

uint64_t
ColumnMeta::byteSize() const
{
    uint64_t total = 0;
    for (const auto& s : streams)
        total += s.byte_size;
    return total;
}

Schema
FileFooter::schema() const
{
    Schema schema;
    for (const auto& col : columns)
        schema.add({col.name, col.kind});
    return schema;
}

std::vector<uint8_t>
ColumnarFileWriter::write(const RowBatch& batch, uint64_t partition_id) const
{
    PRESTO_CHECK(batch.complete(), "cannot write an incomplete batch");

    std::vector<uint8_t> out;
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));

    std::vector<ColumnMeta> columns;
    columns.reserve(batch.numColumns());

    for (size_t c = 0; c < batch.numColumns(); ++c) {
        const auto& spec = batch.schema().feature(c);
        ColumnMeta meta;
        meta.name = spec.name;
        meta.kind = spec.kind;
        if (spec.kind == FeatureKind::kSparse) {
            const auto& col = batch.sparse(c);
            // Lengths stream: one entry per row.
            std::vector<int64_t> lengths(col.numRows());
            for (size_t r = 0; r < col.numRows(); ++r)
                lengths[r] = static_cast<int64_t>(col.rowLength(r));
            meta.streams.push_back(writeI64Stream(out, lengths, options_));
            meta.streams.push_back(
                writeI64Stream(out, col.values(), options_));
        } else {
            const auto& col = batch.dense(c);
            meta.streams.push_back(
                writeF32Stream(out, col.values(), options_));
        }
        if (c < options_.column_heat.size())
            for (auto& s : meta.streams)
                s.heat = std::min(options_.column_heat[c], kMaxStreamHeat);
        columns.push_back(std::move(meta));
    }

    // Footer.
    std::vector<uint8_t> footer;
    enc::putVarint(footer, batch.numRows());
    enc::putVarint(footer, partition_id);
    enc::putVarint(footer, columns.size());
    for (const auto& col : columns) {
        putString(footer, col.name);
        footer.push_back(static_cast<uint8_t>(col.kind));
        enc::putVarint(footer, col.streams.size());
        for (const auto& s : col.streams) {
            enc::putVarint(footer, s.offset);
            enc::putVarint(footer, s.byte_size);
            enc::putVarint(footer, s.value_count);
            enc::putVarint(footer, s.num_pages);
            enc::putVarint(footer, s.heat);
        }
    }

    const uint32_t footer_crc = crc32c(footer.data(), footer.size());
    out.insert(out.end(), footer.begin(), footer.end());
    putU32(out, static_cast<uint32_t>(footer.size()));
    putU32(out, footer_crc);
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));
    return out;
}

Status
ColumnarFileReader::open(std::span<const uint8_t> data)
{
    open_ = false;
    footer_only_ = false;
    bytes_touched_ = 0;
    data_ = data;
    file_size_ = data.size();

    if (data.size() < 4)
        return Status::corruption("file too small for PSF framing");
    if (std::memcmp(data.data(), kMagic, 4) != 0)
        return Status::corruption("bad header magic");
    return parseFooterRegion(data, 0, data.size());
}

Status
ColumnarFileReader::openTail(std::span<const uint8_t> tail,
                             uint64_t file_size)
{
    open_ = false;
    footer_only_ = true;
    bytes_touched_ = 0;
    data_ = {};
    file_size_ = file_size;

    if (tail.size() > file_size)
        return Status::invalidArgument("tail larger than the file");
    // The header magic is outside the tail; the footer CRC and trailer
    // magic below still authenticate the directory before any plan or
    // page is trusted.
    return parseFooterRegion(tail, file_size - tail.size(), file_size);
}

Status
ColumnarFileReader::parseFooterRegion(std::span<const uint8_t> region,
                                      uint64_t region_base,
                                      uint64_t file_size)
{
    // Reset the footer in place: column/stream vectors (and the name
    // strings inside them) keep their capacity across open() calls, so
    // re-opening same-shaped partitions does not allocate.
    footer_.num_rows = 0;
    footer_.partition_id = 0;

    const size_t trailer = 4 + 4 + 4;  // size + crc + magic
    if (file_size < 4 + trailer || region.size() < trailer)
        return Status::corruption("file too small for PSF framing");
    if (std::memcmp(region.data() + region.size() - 4, kMagic, 4) != 0)
        return Status::corruption("bad trailer magic");

    const size_t size_pos = region.size() - trailer;
    const uint32_t footer_size = getU32(region, size_pos);
    const uint32_t footer_crc = getU32(region, size_pos + 4);
    if (footer_size > file_size - trailer - 4)
        return Status::corruption("footer size exceeds file");
    if (footer_size > size_pos)
        return Status::corruption("footer not covered by provided tail");
    const size_t footer_pos = size_pos - footer_size;
    // Absolute offset where the data region ends (== footer start).
    const uint64_t data_end = region_base + footer_pos;
    const auto footer_bytes = region.subspan(footer_pos, footer_size);
    if (crc32c(footer_bytes.data(), footer_bytes.size()) != footer_crc)
        return Status::corruption("footer checksum mismatch");

    size_t pos = 0;
    PRESTO_RETURN_IF_ERROR(
        enc::getVarint(footer_bytes, pos, footer_.num_rows));
    PRESTO_RETURN_IF_ERROR(
        enc::getVarint(footer_bytes, pos, footer_.partition_id));
    uint64_t num_columns = 0;
    PRESTO_RETURN_IF_ERROR(enc::getVarint(footer_bytes, pos, num_columns));
    if (num_columns > footer_size)
        return Status::corruption("implausible column count");
    footer_.columns.resize(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
        ColumnMeta& col = footer_.columns[c];
        PRESTO_RETURN_IF_ERROR(getString(footer_bytes, pos, col.name));
        if (pos >= footer_bytes.size())
            return Status::corruption("truncated column kind");
        const uint8_t kind = footer_bytes[pos++];
        if (kind > static_cast<uint8_t>(FeatureKind::kLabel))
            return Status::corruption("unknown feature kind");
        col.kind = static_cast<FeatureKind>(kind);
        uint64_t num_streams = 0;
        PRESTO_RETURN_IF_ERROR(
            enc::getVarint(footer_bytes, pos, num_streams));
        if (num_streams > 2)
            return Status::corruption("implausible stream count");
        col.streams.clear();
        for (uint64_t s = 0; s < num_streams; ++s) {
            StreamMeta stream;
            uint64_t num_pages = 0;
            PRESTO_RETURN_IF_ERROR(
                enc::getVarint(footer_bytes, pos, stream.offset));
            PRESTO_RETURN_IF_ERROR(
                enc::getVarint(footer_bytes, pos, stream.byte_size));
            PRESTO_RETURN_IF_ERROR(
                enc::getVarint(footer_bytes, pos, stream.value_count));
            PRESTO_RETURN_IF_ERROR(
                enc::getVarint(footer_bytes, pos, num_pages));
            stream.num_pages = static_cast<uint32_t>(num_pages);
            uint64_t heat = 0;
            PRESTO_RETURN_IF_ERROR(
                enc::getVarint(footer_bytes, pos, heat));
            if (heat > kMaxStreamHeat)
                return Status::corruption("stream heat out of range");
            stream.heat = static_cast<uint32_t>(heat);
            if (stream.offset + stream.byte_size > data_end)
                return Status::corruption("stream extends past data region");
            // Defensive: the writer caps pages at kMaxValuesPerPage, so
            // a larger claim can only come from footer damage and would
            // make the decoder allocate unbounded output.
            if (stream.value_count >
                static_cast<uint64_t>(stream.num_pages) * kMaxValuesPerPage)
                return Status::corruption("stream value count implausible");
            col.streams.push_back(stream);
        }
    }
    if (pos != footer_bytes.size())
        return Status::corruption("trailing bytes in footer");

    bytes_touched_ = footer_size + trailer + 4;
    open_ = true;
    return Status::okStatus();
}

Status
ColumnarFileReader::validatePlans(std::span<const PageReadPlan> plans) const
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    const size_t trailer = 4 + 4 + 4;
    const uint64_t body_end = file_size_ - trailer;
    // Per-(column, stream) coverage cursors. Plans must visit each
    // stream's pages in order and cover its value range exactly, the
    // same invariant planPageReads() establishes by scanning.
    std::vector<std::vector<uint64_t>> covered(footer_.columns.size());
    for (size_t c = 0; c < footer_.columns.size(); ++c)
        covered[c].assign(footer_.columns[c].streams.size(), 0);
    for (const PageReadPlan& plan : plans) {
        if (plan.column >= footer_.columns.size())
            return Status::corruption("plan names an unknown column");
        const ColumnMeta& col = footer_.columns[plan.column];
        if (plan.stream >= col.streams.size())
            return Status::corruption("plan names an unknown stream");
        const StreamMeta& stream = col.streams[plan.stream];
        if (plan.frame_bytes < kPageFrameBytes)
            return Status::corruption("plan frame impossibly small");
        if (plan.offset < stream.offset ||
            plan.offset + plan.frame_bytes >
                stream.offset + stream.byte_size ||
            plan.offset + plan.frame_bytes > body_end) {
            return Status::corruption("plan frame outside its stream");
        }
        uint64_t& cursor = covered[plan.column][plan.stream];
        if (plan.out_offset != cursor ||
            plan.out_offset + plan.value_count > stream.value_count) {
            return Status::corruption(
                "plan output range disagrees with footer");
        }
        cursor += plan.value_count;
    }
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        for (size_t s = 0; s < footer_.columns[c].streams.size(); ++s) {
            if (covered[c][s] != footer_.columns[c].streams[s].value_count)
                return Status::corruption(
                    "plans do not cover every stream value");
        }
    }
    return Status::okStatus();
}

Status
ColumnarFileReader::decodeStream(const StreamMeta& stream, bool as_f32,
                                 int64_t* i64_out, float* f32_out)
{
    if (pool_ != nullptr && stream.num_pages > 1)
        return decodeStreamParallel(stream, as_f32, i64_out, f32_out);
    return decodeStreamSerial(stream, as_f32, i64_out, f32_out);
}

Status
ColumnarFileReader::decodeStreamSerial(const StreamMeta& stream, bool as_f32,
                                       int64_t* i64_out, float* f32_out)
{
    size_t pos = stream.offset;
    uint64_t off = 0;
    for (uint32_t p = 0; p < stream.num_pages; ++p) {
        PageView page;
        PRESTO_RETURN_IF_ERROR(readPageFrame(data_, pos, page));
        if (off + page.value_count > stream.value_count)
            return Status::corruption("stream value count mismatch");
        // CRC (verified above, over the stored bytes) precedes this
        // decompression, so a damaged compressed page never reaches
        // the codec.
        std::span<const uint8_t> raw;
        PRESTO_RETURN_IF_ERROR(pagePayload(page, decomp_, raw));
        if (as_f32) {
            PRESTO_RETURN_IF_ERROR(enc::decodeF32Into(
                page.encoding, raw, page.value_count, f32_out + off));
        } else if (enc::fastDecodeEnabled()) {
            PRESTO_RETURN_IF_ERROR(enc::decodeI64Into(
                page.encoding, raw, page.value_count, i64_out + off,
                dict_));
        } else {
            PRESTO_RETURN_IF_ERROR(enc::decodeI64Reference(
                page.encoding, raw, page.value_count, page_i64_, dict_));
            std::copy(page_i64_.begin(), page_i64_.end(), i64_out + off);
        }
        off += page.value_count;
    }
    if (pos != stream.offset + stream.byte_size)
        return Status::corruption("stream page sizes disagree with footer");
    if (off != stream.value_count)
        return Status::corruption("stream value count mismatch");
    bytes_touched_ += stream.byte_size;
    return Status::okStatus();
}

Status
ColumnarFileReader::decodeStreamParallel(const StreamMeta& stream,
                                         bool as_f32, int64_t* i64_out,
                                         float* f32_out)
{
    // Pass 1 (serial): frame-header scan to locate every page and its
    // slice of the output. No CRC work here — each decode task verifies
    // its own page, so corruption detection is unchanged.
    tasks_.clear();
    const size_t end = stream.offset + stream.byte_size;
    size_t pos = stream.offset;
    uint64_t off = 0;
    for (uint32_t p = 0; p < stream.num_pages; ++p) {
        PageTask task;
        task.frame_pos = pos;
        task.out_offset = off;
        PageView page;
        PRESTO_RETURN_IF_ERROR(scanPageFrame(data_, pos, page));
        if (pos > end)
            return Status::corruption(
                "stream page sizes disagree with footer");
        if (off + page.value_count > stream.value_count)
            return Status::corruption("stream value count mismatch");
        task.value_count = page.value_count;
        tasks_.push_back(task);
        off += page.value_count;
    }
    if (pos != end)
        return Status::corruption("stream page sizes disagree with footer");
    if (off != stream.value_count)
        return Status::corruption("stream value count mismatch");

    // Pass 2: decode pages concurrently, each into its disjoint output
    // slice. Statuses land in per-task slots (no shared mutable state);
    // parallelFor's completion is the synchronization point.
    task_status_.clear();
    task_status_.resize(tasks_.size());
    par_f32_ = as_f32;
    par_i64_out_ = i64_out;
    par_f32_out_ = f32_out;
    pool_->parallelFor(tasks_.size(),
                       [this](size_t t) { decodePageTask(t); });
    for (const Status& st : task_status_) {
        if (!st.ok())
            return st;
    }
    bytes_touched_ += stream.byte_size;
    return Status::okStatus();
}

void
ColumnarFileReader::decodePageTask(size_t t)
{
    const PageTask& task = tasks_[t];
    size_t pos = task.frame_pos;
    PageView page;
    Status st = readPageFrame(data_, pos, page);
    if (st.ok()) {
        // Worker-local scratch: pages of one stream decode
        // concurrently, so the member buffers cannot be shared here.
        static thread_local std::vector<uint8_t> tl_decomp;
        std::span<const uint8_t> raw;
        st = pagePayload(page, tl_decomp, raw);
        if (!st.ok()) {
            task_status_[t] = std::move(st);
            return;
        }
        if (par_f32_) {
            st = enc::decodeF32Into(page.encoding, raw, page.value_count,
                                    par_f32_out_ + task.out_offset);
        } else if (enc::fastDecodeEnabled()) {
            static thread_local std::vector<int64_t> tl_dict;
            st = enc::decodeI64Into(page.encoding, raw, page.value_count,
                                    par_i64_out_ + task.out_offset,
                                    tl_dict);
        } else {
            static thread_local std::vector<int64_t> tl_out;
            static thread_local std::vector<int64_t> tl_dict;
            st = enc::decodeI64Reference(page.encoding, raw,
                                         page.value_count, tl_out, tl_dict);
            if (st.ok()) {
                std::copy(tl_out.begin(), tl_out.end(),
                          par_i64_out_ + task.out_offset);
            }
        }
    }
    task_status_[t] = std::move(st);
}

Status
ColumnarFileReader::decodeI64Stream(const StreamMeta& stream,
                                    std::vector<int64_t>& out)
{
    out.resize(stream.value_count);
    return decodeStream(stream, /*as_f32=*/false, out.data(), nullptr);
}

Status
ColumnarFileReader::decodeDenseInto(const ColumnMeta& meta,
                                    std::vector<float>& values)
{
    if (meta.streams.size() != 1)
        return Status::corruption("dense column must have one stream");
    const auto& stream = meta.streams[0];
    if (stream.value_count != footer_.num_rows)
        return Status::corruption("dense column row count mismatch");
    values.resize(stream.value_count);
    return decodeStream(stream, /*as_f32=*/true, nullptr, values.data());
}

Status
ColumnarFileReader::decodeDense(const ColumnMeta& meta, DenseColumn& out)
{
    std::vector<float> values;
    PRESTO_RETURN_IF_ERROR(decodeDenseInto(meta, values));
    out = DenseColumn(std::move(values));
    return Status::okStatus();
}

Status
ColumnarFileReader::decodeSparseInto(const ColumnMeta& meta,
                                     std::vector<int64_t>& values,
                                     std::vector<uint32_t>& offsets)
{
    if (meta.streams.size() != 2)
        return Status::corruption("sparse column must have two streams");
    PRESTO_RETURN_IF_ERROR(decodeI64Stream(meta.streams[0], lengths_));
    PRESTO_RETURN_IF_ERROR(decodeI64Stream(meta.streams[1], values));
    if (lengths_.size() != footer_.num_rows)
        return Status::corruption("sparse lengths row count mismatch");

    offsets.clear();
    offsets.reserve(lengths_.size() + 1);
    offsets.push_back(0);
    uint64_t running = 0;
    for (int64_t len : lengths_) {
        if (len < 0)
            return Status::corruption("negative sparse row length");
        running += static_cast<uint64_t>(len);
        if (running > values.size())
            return Status::corruption("sparse lengths exceed values");
        offsets.push_back(static_cast<uint32_t>(running));
    }
    if (running != values.size())
        return Status::corruption("sparse lengths do not cover values");
    return Status::okStatus();
}

Status
ColumnarFileReader::decodeSparse(const ColumnMeta& meta, SparseColumn& out)
{
    std::vector<int64_t> values;
    std::vector<uint32_t> offsets;
    PRESTO_RETURN_IF_ERROR(decodeSparseInto(meta, values, offsets));
    out = SparseColumn(std::move(values), std::move(offsets));
    return Status::okStatus();
}

StatusOr<RowBatch>
ColumnarFileReader::readColumns(const std::vector<std::string>& names)
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    if (footer_only_)
        return Status::failedPrecondition(
            "reader is footer-only (whole-stream decode needs the body)");

    Schema schema;
    std::vector<const ColumnMeta*> selected;
    for (const auto& name : names) {
        const ColumnMeta* found = nullptr;
        for (const auto& col : footer_.columns) {
            if (col.name == name) {
                found = &col;
                break;
            }
        }
        if (found == nullptr)
            return Status::notFound("no column named " + name);
        schema.add({found->name, found->kind});
        selected.push_back(found);
    }

    RowBatch batch(schema);
    for (const ColumnMeta* meta : selected) {
        if (meta->kind == FeatureKind::kSparse) {
            SparseColumn col;
            PRESTO_RETURN_IF_ERROR(decodeSparse(*meta, col));
            batch.addColumn(std::move(col));
        } else {
            DenseColumn col;
            PRESTO_RETURN_IF_ERROR(decodeDense(*meta, col));
            batch.addColumn(std::move(col));
        }
    }
    return batch;
}

StatusOr<RowBatch>
ColumnarFileReader::readAll()
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    std::vector<std::string> names;
    names.reserve(footer_.columns.size());
    for (const auto& col : footer_.columns)
        names.push_back(col.name);
    return readColumns(names);
}

bool
ColumnarFileReader::schemaMatches(const RowBatch& batch) const
{
    if (!batch.complete() ||
        batch.numColumns() != footer_.columns.size()) {
        return false;
    }
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        const auto& spec = batch.schema().feature(c);
        if (spec.name != footer_.columns[c].name ||
            spec.kind != footer_.columns[c].kind) {
            return false;
        }
    }
    return true;
}

Status
ColumnarFileReader::readAllInto(RowBatch& out)
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    if (footer_only_)
        return Status::failedPrecondition(
            "reader is footer-only (whole-stream decode needs the body)");
    if (!schemaMatches(out)) {
        auto fresh = readAll();
        PRESTO_RETURN_IF_ERROR(fresh.status());
        out = std::move(fresh).value();
        return Status::okStatus();
    }
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        const ColumnMeta& meta = footer_.columns[c];
        if (meta.kind == FeatureKind::kSparse) {
            SparseColumn& col = out.mutableSparse(c);
            PRESTO_RETURN_IF_ERROR(decodeSparseInto(
                meta, col.mutableValues(), col.mutableOffsets()));
        } else {
            DenseColumn& col = out.mutableDense(c);
            PRESTO_RETURN_IF_ERROR(
                decodeDenseInto(meta, col.mutableValues()));
        }
    }
    out.resetRowCountFromColumns();
    return Status::okStatus();
}

Status
ColumnarFileReader::planPageReads(std::vector<PageReadPlan>& plans)
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    if (footer_only_)
        return Status::failedPrecondition(
            "reader is footer-only (planning scans the page frames)");
    plans.clear();
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        const ColumnMeta& meta = footer_.columns[c];
        for (size_t s = 0; s < meta.streams.size(); ++s) {
            const StreamMeta& stream = meta.streams[s];
            const size_t end = stream.offset + stream.byte_size;
            size_t pos = stream.offset;
            uint64_t off = 0;
            for (uint32_t p = 0; p < stream.num_pages; ++p) {
                PageReadPlan plan;
                plan.offset = pos;
                plan.out_offset = off;
                plan.column = static_cast<uint32_t>(c);
                plan.stream = static_cast<uint32_t>(s);
                PageView page;
                PRESTO_RETURN_IF_ERROR(scanPageFrame(data_, pos, page));
                if (pos > end)
                    return Status::corruption(
                        "stream page sizes disagree with footer");
                if (off + page.value_count > stream.value_count)
                    return Status::corruption(
                        "stream value count mismatch");
                plan.frame_bytes =
                    static_cast<uint32_t>(pos - plan.offset);
                plan.value_count = page.value_count;
                plans.push_back(plan);
                off += page.value_count;
            }
            if (pos != end)
                return Status::corruption(
                    "stream page sizes disagree with footer");
            if (off != stream.value_count)
                return Status::corruption("stream value count mismatch");
        }
    }
    return Status::okStatus();
}

void
assignChannelPlacement(const FileFooter& footer, int num_channels,
                       std::vector<PageReadPlan>& plans)
{
    if (num_channels <= 0)
        num_channels = 1;
    uint32_t max_heat = 0;
    for (const auto& col : footer.columns)
        for (const auto& s : col.streams)
            max_heat = std::max(max_heat, s.heat);
    if (max_heat == 0) {
        for (auto& plan : plans) {
            plan.channel = -1;
            plan.hot = false;
        }
        return;
    }
    const uint32_t hot_threshold = (max_heat + 1) / 2;

    // Stream ordinals (file order) key the per-stream cold byte totals.
    std::vector<std::vector<uint32_t>> ordinal(footer.columns.size());
    uint32_t next_ordinal = 0;
    for (size_t c = 0; c < footer.columns.size(); ++c) {
        ordinal[c].resize(footer.columns[c].streams.size());
        for (size_t s = 0; s < footer.columns[c].streams.size(); ++s)
            ordinal[c][s] = next_ordinal++;
    }

    // Pass 1: classify, stripe hot pages round-robin, and total each
    // cold stream's service cost. Cost is a fixed flash-read term plus
    // the transfer bytes (placementPageCost), because a 16-byte length
    // page still costs a full flash page read — balancing raw bytes
    // would pile the fixed costs onto whichever channels draw the tiny
    // streams. Hot costs seed the per-channel load so the cold
    // balancing below accounts for them.
    std::vector<uint64_t> load(static_cast<size_t>(num_channels), 0);
    std::vector<uint64_t> cold_cost(next_ordinal, 0);
    uint32_t hot_rr = 0;
    for (auto& plan : plans) {
        if (plan.column >= footer.columns.size() ||
            plan.stream >= footer.columns[plan.column].streams.size()) {
            plan.channel = -1;
            plan.hot = false;
            continue;
        }
        const StreamMeta& stream =
            footer.columns[plan.column].streams[plan.stream];
        plan.hot = stream.heat >= hot_threshold;
        if (plan.hot) {
            plan.channel = static_cast<int32_t>(
                hot_rr++ % static_cast<uint32_t>(num_channels));
            load[static_cast<size_t>(plan.channel)] +=
                placementPageCost(plan.frame_bytes);
        } else {
            cold_cost[ordinal[plan.column][plan.stream]] +=
                placementPageCost(plan.frame_bytes);
        }
    }

    // Pass 2: place each cold stream whole on one channel — heaviest
    // stream first onto the least-loaded channel — so streams of very
    // different sizes (a 16-byte length stream beside a multi-page
    // value stream) cannot pile the heavy ones onto a channel subset.
    std::vector<uint32_t> by_weight;
    for (uint32_t o = 0; o < next_ordinal; ++o)
        if (cold_cost[o] > 0)
            by_weight.push_back(o);
    std::stable_sort(by_weight.begin(), by_weight.end(),
                     [&](uint32_t a, uint32_t b) {
                         return cold_cost[a] > cold_cost[b];
                     });
    std::vector<int32_t> cold_channel(next_ordinal, 0);
    for (uint32_t o : by_weight) {
        size_t best = 0;
        for (size_t c = 1; c < load.size(); ++c)
            if (load[c] < load[best])
                best = c;
        cold_channel[o] = static_cast<int32_t>(best);
        load[best] += cold_cost[o];
    }
    for (auto& plan : plans) {
        if (plan.hot)
            continue;
        if (plan.column >= footer.columns.size() ||
            plan.stream >= footer.columns[plan.column].streams.size())
            continue;  // invalid plan, forced to -1 above
        plan.channel = cold_channel[ordinal[plan.column][plan.stream]];
    }
}

Status
ColumnarFileReader::beginReadInto(RowBatch& out)
{
    if (!open_)
        return Status::failedPrecondition("reader is not open");
    if (!schemaMatches(out)) {
        // Fresh batch with this file's schema; columns start empty (all
        // zero rows) and are sized below like the reused-buffer path.
        RowBatch fresh(footer_.schema());
        for (const auto& col : footer_.columns) {
            if (col.kind == FeatureKind::kSparse)
                fresh.addColumn(SparseColumn{});
            else
                fresh.addColumn(DenseColumn{});
        }
        out = std::move(fresh);
    }
    async_lengths_.resize(footer_.columns.size());
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        const ColumnMeta& meta = footer_.columns[c];
        if (meta.kind == FeatureKind::kSparse) {
            if (meta.streams.size() != 2)
                return Status::corruption(
                    "sparse column must have two streams");
            if (meta.streams[0].value_count != footer_.num_rows)
                return Status::corruption(
                    "sparse lengths row count mismatch");
            async_lengths_[c].resize(meta.streams[0].value_count);
            out.mutableSparse(c).mutableValues().resize(
                meta.streams[1].value_count);
        } else {
            if (meta.streams.size() != 1)
                return Status::corruption(
                    "dense column must have one stream");
            if (meta.streams[0].value_count != footer_.num_rows)
                return Status::corruption(
                    "dense column row count mismatch");
            async_lengths_[c].clear();
            out.mutableDense(c).mutableValues().resize(
                meta.streams[0].value_count);
        }
    }
    async_active_ = true;
    return Status::okStatus();
}

Status
ColumnarFileReader::completePage(const PageReadPlan& plan,
                                 std::span<const uint8_t> frame,
                                 RowBatch& out)
{
    if (!async_active_)
        return Status::failedPrecondition("no async read in progress");
    // CRC verification happens here, before any decompress or decode,
    // so a bit flip acquired in flight is caught per page — including
    // flips inside a *compressed* payload, which fail the CRC (over
    // the compressed bytes) without the codec ever running.
    size_t pos = 0;
    PageView page;
    PRESTO_RETURN_IF_ERROR(readPageFrame(frame, pos, page));
    if (pos != frame.size() || page.value_count != plan.value_count)
        return Status::corruption("page frame disagrees with read plan");

    // Worker-local scratch: pages may decode on a shared pool
    // concurrently, so the member buffers cannot be used here.
    static thread_local std::vector<uint8_t> tl_decomp;
    std::span<const uint8_t> raw;
    PRESTO_RETURN_IF_ERROR(pagePayload(page, tl_decomp, raw));

    const ColumnMeta& meta = footer_.columns[plan.column];
    if (meta.kind != FeatureKind::kSparse) {
        float* dst = out.mutableDense(plan.column).mutableValues().data();
        return enc::decodeF32Into(page.encoding, raw, page.value_count,
                                  dst + plan.out_offset);
    }
    int64_t* dst =
        plan.stream == 0
            ? async_lengths_[plan.column].data()
            : out.mutableSparse(plan.column).mutableValues().data();
    if (enc::fastDecodeEnabled()) {
        static thread_local std::vector<int64_t> tl_dict;
        return enc::decodeI64Into(page.encoding, raw, page.value_count,
                                  dst + plan.out_offset, tl_dict);
    }
    static thread_local std::vector<int64_t> tl_out;
    static thread_local std::vector<int64_t> tl_dict;
    PRESTO_RETURN_IF_ERROR(enc::decodeI64Reference(
        page.encoding, raw, page.value_count, tl_out, tl_dict));
    std::copy(tl_out.begin(), tl_out.end(), dst + plan.out_offset);
    return Status::okStatus();
}

Status
ColumnarFileReader::finishReadInto(RowBatch& out)
{
    if (!async_active_)
        return Status::failedPrecondition("no async read in progress");
    async_active_ = false;
    for (size_t c = 0; c < footer_.columns.size(); ++c) {
        const ColumnMeta& meta = footer_.columns[c];
        if (meta.kind == FeatureKind::kSparse) {
            SparseColumn& col = out.mutableSparse(c);
            const std::vector<int64_t>& lengths = async_lengths_[c];
            std::vector<uint32_t>& offsets = col.mutableOffsets();
            offsets.clear();
            offsets.reserve(lengths.size() + 1);
            offsets.push_back(0);
            uint64_t running = 0;
            for (int64_t len : lengths) {
                if (len < 0)
                    return Status::corruption(
                        "negative sparse row length");
                running += static_cast<uint64_t>(len);
                if (running > col.mutableValues().size())
                    return Status::corruption(
                        "sparse lengths exceed values");
                offsets.push_back(static_cast<uint32_t>(running));
            }
            if (running != col.mutableValues().size())
                return Status::corruption(
                    "sparse lengths do not cover values");
        }
        for (const StreamMeta& stream : meta.streams)
            bytes_touched_ += stream.byte_size;
    }
    out.resetRowCountFromColumns();
    return Status::okStatus();
}

Status
saveToFile(const std::string& path, std::span<const uint8_t> bytes)
{
    // Crash-atomic publish (temp + fsync + rename + dir fsync): readers
    // of a partition or manifest either see the previous complete file
    // or the new complete one, never a torn prefix.
    return writeFileDurable(path, bytes);
}

StatusOr<std::vector<uint8_t>>
loadFromFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return Status::notFound("cannot open for reading: " + path);
    const auto size = static_cast<size_t>(in.tellg());
    in.seekg(0);
    std::vector<uint8_t> bytes(size);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in)
        return Status::corruption("short read from " + path);
    return bytes;
}

}  // namespace presto
