/**
 * @file
 * In-repo canonical-Huffman entropy codec for PSF pages.
 *
 * The LZ codec (compress.h) stops at match coding: varint, dictionary
 * and dense-float pages whose bytes repeat rarely but are *skewed*
 * (small varints, clustered exponents, low-cardinality dictionary
 * indices) stay near-incompressible under it. kEntropy closes that gap
 * with a byte-granular, length-limited canonical Huffman coder, and
 * kLzEntropy applies it to a whole LZ stream (tokens, literals and
 * length extension bytes alike) so match coding and entropy coding
 * compound.
 *
 * Stream format:
 *
 *   [raw_count varint]            decoded byte count
 *   [mode u8]                     0 = huffman, 1 = single-symbol run
 *   mode 1: [symbol u8]           raw_count copies of symbol
 *   mode 0: [lane sizes]          kNumHuffLanes-1 varints: byte length
 *                                 of each lane bitstream but the last
 *                                 (the last is implied by the stream
 *                                 end)
 *           [code-length table]   128 bytes: 256 nibble-packed lengths
 *                                 (symbol 2i -> low nibble of byte i,
 *                                 symbol 2i+1 -> high nibble), each in
 *                                 0..kMaxHuffCodeLen
 *           [lane bitstreams]     kNumHuffLanes independently packed
 *                                 bitstreams, concatenated. Lane k
 *                                 codes input bytes [k*n/N, (k+1)*n/N)
 *                                 (exact bound: floor(n*k/N)).
 *                                 Canonical codes, bit-reversed, packed
 *                                 LSB-first; each lane's final byte is
 *                                 zero-padded independently
 *
 * Codes are length-limited to kMaxHuffCodeLen bits via package-merge,
 * so the table is always Kraft-complete and the decoder can use one
 * flat 2^kMaxHuffCodeLen-entry lookup table (packing up to four
 * symbols per probe) with no escape path. The lanes exist purely for
 * decode ILP: one Huffman chain is serial (probe -> shift -> probe),
 * so the decoder interleaves kNumHuffLanes independent chains to hide
 * that latency. An empty input is just the varint 0.
 *
 * Decoding is fully validated: a code-length nibble above the limit, a
 * table whose Kraft sum is not exactly 2^kMaxHuffCodeLen, lane sizes
 * that disagree with the stream length, a lane that ends mid-code,
 * trailing bytes past a lane's final code, or non-zero padding bits
 * all return kCorruption and never read or write out of bounds.
 */
#ifndef PRESTO_COLUMNAR_ENTROPY_H_
#define PRESTO_COLUMNAR_ENTROPY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace presto {

/** Longest canonical Huffman code the format allows (table nibble max
 *  and the decoder's flat-lookup width). */
inline constexpr int kMaxHuffCodeLen = 11;

/** Independent bitstream lanes per kEntropy stream (decode ILP). */
inline constexpr uint32_t kNumHuffLanes = 4;

/** Parsed header of a kEntropy stream (no payload decode). */
struct HuffStreamInfo {
    uint64_t raw_bytes = 0;  ///< decoded size the stream advertises
    uint32_t table_bytes = 0;  ///< serialized code-length table size
    uint8_t mode = 0;          ///< 0 = huffman, 1 = single-symbol
    uint32_t header_bytes = 0;  ///< varint + mode + table/symbol bytes
};

namespace enc {

/**
 * Entropy-code @p in, appending to @p out (cleared first; capacity is
 * reused across calls). The result always decodes back to @p in
 * exactly; it is not guaranteed to be smaller (uniform bytes cost the
 * 130-byte header plus up to kMaxHuffCodeLen/8 per byte).
 */
void huffCompress(std::span<const uint8_t> in, std::vector<uint8_t>& out);

/** Convenience form of huffCompress(). */
std::vector<uint8_t> huffCompress(std::span<const uint8_t> in);

/**
 * Parse the stream header only: advertised raw size, mode, and the
 * serialized table size (what presto_cli surfaces as entropy-table
 * overhead). @return kCorruption for a truncated or malformed header.
 */
Status huffStreamInfo(std::span<const uint8_t> in, HuffStreamInfo& info);

/**
 * Decode a huffCompress() stream into exactly @p out.size() bytes.
 * @return kCorruption for any malformed input, including an advertised
 * raw size different from @p out.size().
 */
Status huffDecompress(std::span<const uint8_t> in, std::span<uint8_t> out);

}  // namespace enc
}  // namespace presto

#endif  // PRESTO_COLUMNAR_ENTROPY_H_
