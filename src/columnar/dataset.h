/**
 * @file
 * On-disk dataset: a directory of PSF partition files plus a manifest,
 * mirroring the paper's storage layout where a dataset is a set of
 * mutually-exclusive partitions, each stored contiguously on one device.
 *
 * Manifest (text, one header line + one line per partition):
 *   PSFDATASET 1 <num_partitions> <rows_per_partition>
 *   <partition_id> <file_name> <byte_size> <crc32c>
 */
#ifndef PRESTO_COLUMNAR_DATASET_H_
#define PRESTO_COLUMNAR_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/status.h"
#include "tabular/row_batch.h"

namespace presto {

/** Manifest entry for one stored partition. */
struct PartitionEntry {
    uint64_t partition_id = 0;
    std::string file_name;
    uint64_t byte_size = 0;
    uint32_t crc = 0;
};

/** Parsed dataset manifest. */
struct DatasetManifest {
    uint64_t num_partitions = 0;
    uint64_t rows_per_partition = 0;
    std::vector<PartitionEntry> partitions;
};

/**
 * Writes partitions and a manifest into a directory.
 */
class DatasetWriter
{
  public:
    /**
     * @param directory Must already exist and be writable.
     * @param options Per-partition PSF writer knobs (encoding choice,
     *        page compression).
     */
    explicit DatasetWriter(std::string directory,
                           WriterOptions options = {});

    /** Append one partition (encodes @p batch as PSF). */
    Status addPartition(const RowBatch& batch, uint64_t partition_id);

    /** Write the manifest; call once after the last partition. */
    Status finish();

    size_t numPartitions() const { return entries_.size(); }

  private:
    std::string directory_;
    ColumnarFileWriter writer_;
    std::vector<PartitionEntry> entries_;
    uint64_t rows_per_partition_ = 0;
    bool finished_ = false;
};

/**
 * Opens a dataset directory and reads partitions with integrity checks.
 */
class DatasetReader
{
  public:
    /** Parse the manifest in @p directory. */
    Status open(const std::string& directory);

    const DatasetManifest& manifest() const { return manifest_; }

    /**
     * Load and decode one partition by manifest index; verifies the
     * manifest CRC before decoding pages.
     */
    StatusOr<RowBatch> readPartition(size_t index) const;

  private:
    std::string directory_;
    DatasetManifest manifest_;
    bool open_ = false;
};

}  // namespace presto

#endif  // PRESTO_COLUMNAR_DATASET_H_
