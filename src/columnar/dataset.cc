#include "columnar/dataset.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "columnar/columnar_file.h"
#include "common/crc32.h"

namespace presto {

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestMagic = "PSFDATASET";
// Version 2 appends a "CRC <crc32c>" trailer line covering every
// preceding byte, so a torn manifest (crash mid-write on a filesystem
// without atomic rename, or a truncating copy) reads as corruption
// instead of silently dropping trailing partitions. Version 1 (no
// trailer) is still accepted for datasets written before the bump.
constexpr int kManifestVersion = 2;
constexpr const char* kManifestCrcTag = "CRC ";

std::string
partitionFileName(uint64_t partition_id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "part-%08" PRIu64 ".psf", partition_id);
    return buf;
}

}  // namespace

DatasetWriter::DatasetWriter(std::string directory, WriterOptions options)
    : directory_(std::move(directory)), writer_(options)
{
}

Status
DatasetWriter::addPartition(const RowBatch& batch, uint64_t partition_id)
{
    if (finished_)
        return Status::failedPrecondition("dataset already finished");
    if (rows_per_partition_ == 0) {
        rows_per_partition_ = batch.numRows();
    } else if (batch.numRows() != rows_per_partition_) {
        return Status::invalidArgument(
            "partitions must have equal row counts");
    }
    for (const auto& e : entries_) {
        if (e.partition_id == partition_id)
            return Status::invalidArgument("duplicate partition id");
    }

    const auto bytes = writer_.write(batch, partition_id);
    PartitionEntry entry;
    entry.partition_id = partition_id;
    entry.file_name = partitionFileName(partition_id);
    entry.byte_size = bytes.size();
    entry.crc = crc32c(bytes.data(), bytes.size());
    PRESTO_RETURN_IF_ERROR(
        saveToFile(directory_ + "/" + entry.file_name, bytes));
    entries_.push_back(std::move(entry));
    return Status::okStatus();
}

Status
DatasetWriter::finish()
{
    if (finished_)
        return Status::failedPrecondition("dataset already finished");
    std::ostringstream out;
    out << kManifestMagic << " " << kManifestVersion << " "
        << entries_.size() << " " << rows_per_partition_ << "\n";
    for (const auto& e : entries_) {
        out << e.partition_id << " " << e.file_name << " " << e.byte_size
            << " " << e.crc << "\n";
    }
    std::string text = out.str();
    const uint32_t crc = crc32c(
        reinterpret_cast<const uint8_t*>(text.data()), text.size());
    text += kManifestCrcTag;
    text += std::to_string(crc);
    text += "\n";
    PRESTO_RETURN_IF_ERROR(saveToFile(
        directory_ + "/" + kManifestName,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(text.data()), text.size())));
    finished_ = true;
    return Status::okStatus();
}

Status
DatasetReader::open(const std::string& directory)
{
    open_ = false;
    directory_ = directory;
    manifest_ = DatasetManifest();

    auto bytes = loadFromFile(directory + "/" + kManifestName);
    if (!bytes.ok())
        return bytes.status();
    const std::string text(bytes->begin(), bytes->end());
    std::istringstream in(text);

    std::string magic;
    int version = 0;
    if (!(in >> magic >> version >> manifest_.num_partitions >>
          manifest_.rows_per_partition) ||
        magic != kManifestMagic) {
        return Status::corruption("bad manifest header");
    }
    if (version != 1 && version != kManifestVersion)
        return Status::unimplemented("unsupported manifest version");
    if (version == kManifestVersion) {
        // The CRC trailer must be the complete last line; anything else
        // means the manifest was torn or tampered with.
        if (text.empty() || text.back() != '\n')
            return Status::corruption(
                "manifest not newline-terminated (torn write?)");
        const size_t body_len = text.rfind(kManifestCrcTag);
        if (body_len == std::string::npos ||
            (body_len != 0 && text[body_len - 1] != '\n')) {
            return Status::corruption(
                "manifest missing CRC trailer (torn write?)");
        }
        uint32_t stored = 0;
        std::istringstream tail(text.substr(body_len + 4));
        if (!(tail >> stored))
            return Status::corruption("unparsable manifest CRC trailer");
        const uint32_t actual = crc32c(
            reinterpret_cast<const uint8_t*>(text.data()), body_len);
        if (actual != stored)
            return Status::corruption("manifest checksum mismatch");
    }

    for (uint64_t i = 0; i < manifest_.num_partitions; ++i) {
        PartitionEntry e;
        if (!(in >> e.partition_id >> e.file_name >> e.byte_size >> e.crc))
            return Status::corruption("truncated manifest");
        manifest_.partitions.push_back(std::move(e));
    }
    open_ = true;
    return Status::okStatus();
}

StatusOr<RowBatch>
DatasetReader::readPartition(size_t index) const
{
    if (!open_)
        return Status::failedPrecondition("dataset is not open");
    if (index >= manifest_.partitions.size())
        return Status::outOfRange("partition index out of range");
    const auto& entry = manifest_.partitions[index];

    auto bytes = loadFromFile(directory_ + "/" + entry.file_name);
    if (!bytes.ok())
        return bytes.status();
    if (bytes->size() != entry.byte_size)
        return Status::corruption("partition size disagrees with manifest");
    if (crc32c(bytes->data(), bytes->size()) != entry.crc)
        return Status::corruption("partition checksum mismatch");

    ColumnarFileReader reader;
    PRESTO_RETURN_IF_ERROR(reader.open(*bytes));
    if (reader.footer().partition_id != entry.partition_id)
        return Status::corruption("partition id mismatch");
    return reader.readAll();
}

}  // namespace presto
