/**
 * @file
 * AVX2 decode kernels (used at SimdLevel::kAvx2 and kAvx512). Compiled
 * with -mavx2 only in this translation unit; reached solely behind the
 * runtime CPU check in ops/simd.cc via the dispatchers in
 * fast_decode.cc. Bit-identical to the SWAR/reference tiers.
 */
#if defined(PRESTO_HAVE_X86_SIMD)

#include <immintrin.h>

#include "columnar/fast_decode_internal.h"

namespace presto::enc::detail {

bool
decodeVarintsAvx2(const uint8_t* in, size_t size, size_t& pos, uint64_t* out,
                  size_t count)
{
    size_t i = 0;
    size_t p = pos;
    while (count - i >= 32 && p + 40 <= size) {
        const __m256i bytes =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + p));
        const auto msbs =
            static_cast<uint32_t>(_mm256_movemask_epi8(bytes));
        if (msbs == 0) {
            // 32 single-byte varints: widen u8 -> u64, four at a time.
            for (int k = 0; k < 8; ++k) {
                uint32_t quad;
                std::memcpy(&quad, in + p + 4 * k, sizeof(quad));
                const __m256i wide = _mm256_cvtepu8_epi64(
                    _mm_cvtsi32_si128(static_cast<int>(quad)));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(out + i + 4 * k), wide);
            }
            i += 32;
            p += 32;
            continue;
        }
        // Mixed widths: the movemask is exactly the block's
        // continuation mask, so decode the whole block off it. pext
        // selects and compacts the payload bits in one instruction.
        if (!decodeVarintBlock32(in, size, msbs, p, out, i, count,
                                 [](uint64_t word, uint64_t keep) {
                                     return _pext_u64(word, keep);
                                 })) {
            return false;
        }
    }
    pos = p;
    return decodeVarintsSwar(in, size, pos, out + i, count - i);
}

namespace {

/**
 * Shuffle recipe for one 8-byte chunk whose varints are all 1..2 bytes
 * (continuation mask has no two adjacent bits): pshufb control that
 * drops each varint into its own u16 lane (low byte first, 0x80 zeroes
 * the absent high byte of 1-byte varints and unused lanes).
 */
struct DictChunk {
    uint8_t count;     ///< varints that terminate inside the chunk
    uint8_t advance;   ///< 8, or 7 when byte 7 starts a straddler
    uint8_t ctrl[16];  ///< _mm_shuffle_epi8 control
};

consteval std::array<DictChunk, 256>
makeDictChunks()
{
    std::array<DictChunk, 256> table{};
    for (int mask = 0; mask < 256; ++mask) {
        if ((mask & (mask << 1)) != 0)
            continue;  // has a 3+-byte varint; the generic path runs
        DictChunk e{};
        for (auto& c : e.ctrl)
            c = 0x80;
        int start = 0;
        while (start < 8) {
            const bool two = ((mask >> start) & 1) != 0;
            if (two && start == 7)
                break;  // straddles the chunk edge
            e.ctrl[2 * e.count] = static_cast<uint8_t>(start);
            if (two)
                e.ctrl[2 * e.count + 1] = static_cast<uint8_t>(start + 1);
            ++e.count;
            start += two ? 2 : 1;
        }
        e.advance = static_cast<uint8_t>(start);
        table[static_cast<size_t>(mask)] = e;
    }
    return table;
}

constexpr std::array<DictChunk, 256> kDictChunks = makeDictChunks();

}  // namespace

bool
decodeDictIndicesAvx2(const uint8_t* in, size_t size, size_t& pos,
                      const int64_t* dict, uint64_t dict_size, int64_t* out,
                      size_t count)
{
    size_t i = 0;
    size_t p = pos;
    // A 2-byte varint caps an index at 0x3fff, so lanes fit int16 and a
    // signed compare against min(dict_size, 0x4000) - 1 validates them
    // (dict_size == 0 yields -1, rejecting everything, as it must).
    const auto limit = static_cast<int16_t>(
        (dict_size < 0x4000 ? dict_size : uint64_t{0x4000}) - 1);
    const __m128i vlimit = _mm_set1_epi16(limit);
    const __m128i lo7 = _mm_set1_epi16(0x007f);
    const __m128i hi7 = _mm_set1_epi16(0x3f80);
    // Expand one conforming chunk at in + p + q into eight u16 lanes.
    const auto splice = [&](size_t p_, size_t q, uint32_t m8) {
        const __m128i bytes = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(in + p_ + q));
        const __m128i raw = _mm_shuffle_epi8(
            bytes, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                       kDictChunks[m8].ctrl)));
        // u16 lane = b0 | (b1 << 8), b1 already < 0x80: splice the two
        // 7-bit groups.
        return _mm_or_si128(_mm_and_si128(raw, lo7),
                            _mm_and_si128(_mm_srli_epi16(raw, 1), hi7));
    };
    // Gather all eight lanes unconditionally — fixed trip count; the
    // lanes past the chunk's count hold index 0, and later writes
    // overwrite their slots (output offsets only advance past the real
    // values).
    const auto gather8 = [&](int64_t* dst, __m128i v) {
        alignas(16) uint16_t idx[8];
        _mm_store_si128(reinterpret_cast<__m128i*>(idx), v);
        for (int k = 0; k < 8; ++k)
            dst[k] = dict[idx[k]];
    };
    // Four 8-byte chunks per iteration, all off one wide movemask: the
    // chunk boundaries (advance = 8, or 7 when byte 7 starts a
    // straddler) come from pure ALU on the mask, so the serial
    // inter-chunk dependency is a few cycles and the shuffles, range
    // checks and gathers of all four chunks overlap.
    while (count - i >= 32 && p + 40 <= size) {
        const __m256i wide =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + p));
        const auto m32 =
            static_cast<uint32_t>(_mm256_movemask_epi8(wide));
        const uint32_t ma = m32 & 0xffu;
        const size_t qb = 8 - (ma >> 7);
        const uint32_t mb = (m32 >> qb) & 0xffu;
        const size_t qc = qb + 8 - (mb >> 7);
        const uint32_t mc = (m32 >> qc) & 0xffu;
        const size_t qd = qc + 8 - (mc >> 7);
        const uint32_t md = (m32 >> qd) & 0xffu;
        if (((ma & (ma << 1)) | (mb & (mb << 1)) | (mc & (mc << 1)) |
             (md & (md << 1))) != 0) {
            // A 3+-byte varint (an overlong index encoding) somewhere in
            // the window: decode one 32-byte block generically, then
            // retry (nothing was emitted for this window yet).
            if (!dictVarintBlock32(in, size, m32, p, dict, dict_size, out,
                                   i, count, [](uint64_t word, uint64_t keep) {
                                       return _pext_u64(word, keep);
                                   })) {
                return false;
            }
            continue;
        }
        const __m128i va = splice(p, 0, ma);
        const __m128i vb = splice(p, qb, mb);
        const __m128i vc = splice(p, qc, mc);
        const __m128i vd = splice(p, qd, md);
        const __m128i over = _mm_or_si128(
            _mm_or_si128(_mm_cmpgt_epi16(va, vlimit),
                         _mm_cmpgt_epi16(vb, vlimit)),
            _mm_or_si128(_mm_cmpgt_epi16(vc, vlimit),
                         _mm_cmpgt_epi16(vd, vlimit)));
        if (_mm_movemask_epi8(over) != 0)
            return false;  // index out of range (unused lanes are 0)
        const size_t ob = kDictChunks[ma].count;
        const size_t oc = ob + kDictChunks[mb].count;
        const size_t od = oc + kDictChunks[mc].count;
        gather8(out + i, va);
        gather8(out + i + ob, vb);
        gather8(out + i + oc, vc);
        gather8(out + i + od, vd);
        i += od + kDictChunks[md].count;
        p += qd + 8 - (md >> 7);
    }
    // Remainder in single chunks (same recipe, one at a time).
    while (count - i >= 8 && p + 40 <= size) {
        const __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + p));
        const auto m8 =
            static_cast<uint32_t>(_mm_movemask_epi8(bytes)) & 0xffu;
        if ((m8 & (m8 << 1)) != 0) {
            const __m256i wide = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(in + p));
            const auto msbs =
                static_cast<uint32_t>(_mm256_movemask_epi8(wide));
            if (!dictVarintBlock32(in, size, msbs, p, dict, dict_size, out,
                                   i, count, [](uint64_t word, uint64_t keep) {
                                       return _pext_u64(word, keep);
                                   })) {
                return false;
            }
            continue;
        }
        const __m128i v = splice(p, 0, m8);
        if (_mm_movemask_epi8(_mm_cmpgt_epi16(v, vlimit)) != 0)
            return false;
        gather8(out + i, v);
        i += kDictChunks[m8].count;
        p += 8 - (m8 >> 7);
    }
    while (i < count && p + 40 <= size) {
        const __m256i bytes =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + p));
        const auto msbs =
            static_cast<uint32_t>(_mm256_movemask_epi8(bytes));
        if (!dictVarintBlock32(in, size, msbs, p, dict, dict_size, out, i,
                               count, [](uint64_t word, uint64_t keep) {
                                   return _pext_u64(word, keep);
                               })) {
            return false;
        }
    }
    while (i < count) {
        uint64_t idx = 0;
        if (!decodeOneVarint(in, size, p, idx) || idx >= dict_size)
            return false;
        out[i++] = dict[idx];
    }
    pos = p;
    return true;
}

void
unpackBitsAvx2(const uint8_t* in, size_t in_bytes, size_t width, size_t count,
               uint64_t* out)
{
    // The 32-bit gather window holds (bit & 7) + width bits, so this
    // path needs width <= 25; wider values use the 64-bit word path.
    if (width == 0 || width > 25) {
        unpackBitsWord(in, in_bytes, width, count, out);
        return;
    }
    const uint32_t mask = (1u << width) - 1;
    alignas(32) uint32_t lane_bits[8];
    for (uint32_t k = 0; k < 8; ++k)
        lane_bits[k] = k * static_cast<uint32_t>(width);
    const __m256i vlane =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_bits));
    const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
    const __m256i vseven = _mm256_set1_epi32(7);
    size_t i = 0;
    uint64_t bit = 0;
    // The bit cap keeps offsets in int32 range for the epi32 math; real
    // pages stay far below it, the word path covers anything beyond.
    while (i + 8 <= count && bit <= (1u << 30)) {
        // Last lane reads 4 bytes at byte offset (bit + 7w) >> 3.
        if (((bit + 7 * width) >> 3) + 4 > in_bytes)
            break;
        const __m256i vbits = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(bit)), vlane);
        const __m256i voff = _mm256_srli_epi32(vbits, 3);
        const __m256i vshift = _mm256_and_si256(vbits, vseven);
        const __m256i raw = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(in), voff, 1);
        const __m256i vals =
            _mm256_and_si256(_mm256_srlv_epi32(raw, vshift), vmask);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + i),
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(vals)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + i + 4),
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(vals, 1)));
        i += 8;
        bit += 8 * width;
    }
    unpackBitsWord(in, in_bytes, width, count - i, out + i, bit);
}

bool
gatherDictAvx2(const int64_t* dict, uint64_t dict_size, int64_t* inout,
               size_t count)
{
    // Validate before gathering (the gather itself must not read out of
    // bounds). OR-reduce gives a cheap conservative bound: if the OR of
    // all indices is < dict_size then every index is.
    const auto* idx = reinterpret_cast<const uint64_t*>(inout);
    __m256i vor = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        vor = _mm256_or_si256(
            vor,
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)));
    }
    alignas(32) uint64_t ors[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(ors), vor);
    uint64_t any = ors[0] | ors[1] | ors[2] | ors[3];
    for (; i < count; ++i)
        any |= idx[i];
    if (any >= dict_size) {
        // Out-of-range index or an OR false positive (e.g. indices 1|2
        // with dict_size 3); the element-checked path settles it.
        return gatherDictScalar(dict, dict_size, inout, count);
    }
    for (i = 0; i + 4 <= count; i += 4) {
        const __m256i vi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
        const __m256i gathered = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(dict), vi, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(inout + i), gathered);
    }
    for (; i < count; ++i)
        inout[i] = dict[idx[i]];
    return true;
}

}  // namespace presto::enc::detail

#endif  // PRESTO_HAVE_X86_SIMD
