/**
 * @file
 * Internal kernels of the fast page-decode layer (the Extract analogue
 * of ops/fast_ops_internal.h).
 *
 * The public entry points stay enc::decodeI64/decodeF32; encoding.cc
 * routes their hot loops through the dispatched batch kernels declared
 * here. Three tiers exist:
 *
 *  - byte-wise reference loops (in encoding.cc, via decodeI64Reference):
 *    the semantics oracle, also what pre-SIMD builds of this repo ran;
 *  - portable SWAR kernels (fast_decode.cc): 8-byte word loads, used at
 *    SimdLevel::kScalar and on non-x86 builds;
 *  - AVX2 kernels (fast_decode_avx2.cc, per-file -mavx2): used at
 *    kAvx2, and at kAvx512 for everything but plain varint decode (those
 *    loops are load/shuffle bound, so a 512-bit variant adds nothing);
 *  - an AVX-512 varint kernel (fast_decode_avx512.cc): vpcompressb
 *    boundary extraction over 64-byte windows, used at kAvx512 when the
 *    CPU has the byte-compaction extensions (BW + VBMI + VBMI2).
 *
 * Every tier is bit-identical: same outputs for valid input, failure
 * (-> kCorruption at the caller) for exactly the same malformed inputs.
 * All loads are strictly in-bounds — word-wide fast paths stop early and
 * hand the buffer tail to byte-exact loops, so payloads that end flush
 * against a page (or allocation) boundary never over-read.
 */
#ifndef PRESTO_COLUMNAR_FAST_DECODE_INTERNAL_H_
#define PRESTO_COLUMNAR_FAST_DECODE_INTERNAL_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace presto::enc::detail {

/** MSB (LEB128 continuation bit) of each byte lane. */
inline constexpr uint64_t kMsbLanes = 0x8080808080808080ull;

inline uint64_t
load64le(const uint8_t* p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Compact eight 7-bit LEB128 groups (continuation bits already cleared)
 * into the value they encode: byte lane k contributes bits [7k, 7k+7).
 */
inline uint64_t
compact7(uint64_t x)
{
    x = (x & 0x007f007f007f007full) | ((x & 0x7f007f007f007f00ull) >> 1);
    x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
    x = (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
    return x;
}

/**
 * Validating byte-wise LEB128 decode; identical accept/reject semantics
 * to enc::getVarint (truncation, > 10 bytes, and 64-bit overflow all
 * fail). @return false on malformed input (@p pos may be mid-varint).
 */
inline bool
decodeOneVarint(const uint8_t* in, size_t size, size_t& pos, uint64_t& value)
{
    value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (pos >= size)
            return false;
        const uint8_t byte = in[pos++];
        if (shift == 63 && (byte & 0x7f) > 1)
            return false;  // bits past 2^64 are set
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
    }
    return false;  // longer than 10 bytes
}

consteval std::array<uint64_t, 9>
makeVarintKeep()
{
    std::array<uint64_t, 9> keep{};
    for (size_t len = 1; len <= 8; ++len) {
        const uint64_t bytes = len == 8 ? ~0ull : (1ull << (8 * len)) - 1;
        keep[len] = bytes & ~kMsbLanes;
    }
    return keep;
}

/** Payload-byte mask for an n-byte varint at the base of a word. */
inline constexpr std::array<uint64_t, 9> kVarintKeep = makeVarintKeep();

/** Continuation-bit mask of one 8-byte word (bit k = MSB of byte k). */
inline uint32_t
msbMask8(uint64_t word)
{
    // Portable movemask: one multiply gathers the eight MSBs (already
    // shifted to bit 8k) into the top byte; landing spots are distinct,
    // so no carries corrupt them.
    return static_cast<uint32_t>(
        (((word & kMsbLanes) >> 7) * 0x0102040810204080ull) >> 56);
}

/**
 * Decode every varint that terminates in the 32-byte block at @p p,
 * given the block's continuation-bit mask @p cont (bit k = MSB of byte
 * p + k; AVX2 gets this from one movemask, SWAR from four msbMask8
 * words). LEB128 is self-synchronizing — a varint ends exactly at each
 * clear mask bit — so every boundary comes from a tzcnt/clear-lowest
 * chain on one register, and the payload word loads are independent and
 * pipeline freely. Bytes past the last terminator belong to a varint
 * straddling the block edge; @p p stops at its start. 9..10-byte
 * varints (terminator 8+ bytes past start) are rare and validated
 * byte-wise. Requires p + 40 <= size so any in-block start allows an
 * 8-byte load. Advances @p p / @p i past what it consumed/produced
 * (always at least one value). @return false on malformed input.
 *
 * @p extract7 is (word, keep) -> value: compact the payload bits
 * selected by @p keep (a kVarintKeep entry). The portable tier passes
 * compact7(word & keep); the AVX2 tier passes a BMI2 pext, which does
 * the select-and-compact in one instruction (the dispatcher only
 * enables that tier on CPUs with BMI2). A template functor rather than
 * an #ifdef keeps the two expansions distinct types, so the mixed-ISA
 * translation units cannot ODR-merge them.
 */
template <typename Extract7>
inline bool
decodeVarintBlock32(const uint8_t* in, size_t size, uint32_t cont, size_t& p,
                    uint64_t* out, size_t& i, size_t count, Extract7 extract7)
{
    const uint32_t term = ~cont;  // bit k set: byte p+k terminates a varint
    if (term == 0) {
        // 32 continuation bytes: a varint past the 10-byte limit. The
        // byte-wise path reports the malformed input.
        return decodeOneVarint(in, size, p, out[i]);
    }
    // Decode the varint whose terminator is the lowest set bit of @p t,
    // starting at byte p + start; pops the bit and advances start.
    const auto decodeAt = [&](uint32_t& t, size_t& start, uint64_t& slot) {
        const auto end = static_cast<size_t>(std::countr_zero(t));
        t &= t - 1;
        const size_t len = end - start + 1;
        if (len <= 8) [[likely]] {
            slot = extract7(load64le(in + p + start), kVarintKeep[len]);
        } else {
            // 9..10 bytes: needs the 64-bit overflow check (and > 10
            // bytes is rejected outright).
            size_t q = p + start;
            if (!decodeOneVarint(in, size, q, slot))
                return false;
        }
        start = end + 1;
        return true;
    };
    const auto nvals = static_cast<size_t>(std::popcount(term));
    if (count - i < nvals) {  // page tail: plain capped chain
        const size_t take = count - i;
        uint32_t t = term;
        size_t start = 0;
        for (size_t k = 0; k < take; ++k) {
            if (!decodeAt(t, start, out[i + k]))
                return false;
        }
        i += take;
        p += start;
        return true;
    }
    // Split the mask into two independent bit-scan chains: the serial
    // tzcnt/clear-lowest dependency is the throughput floor of this
    // loop, and the halves don't depend on each other — the high
    // chain's first varint starts one past the low half's last
    // terminator, which is known up front.
    uint32_t t_lo = term & 0xffffu;
    uint32_t t_hi = term & ~0xffffu;
    const auto n_lo = static_cast<size_t>(std::popcount(t_lo));
    size_t start_lo = 0;
    size_t start_hi =
        t_lo == 0 ? 0 : 32 - static_cast<size_t>(std::countl_zero(t_lo));
    for (size_t k = 0; k < n_lo; ++k) {
        if (!decodeAt(t_lo, start_lo, out[i + k]))
            return false;
    }
    for (size_t k = n_lo; k < nvals; ++k) {
        if (!decodeAt(t_hi, start_hi, out[i + k]))
            return false;
    }
    i += nvals;
    p += 32 - static_cast<size_t>(std::countl_zero(term));
    return true;
}

/**
 * Fused variant of decodeVarintBlock32 for dictionary pages: each
 * decoded varint is a dictionary index, bounds-checked and materialized
 * as dict[idx] on the spot — one pass instead of an index-decode pass
 * plus a gather pass. Same contract otherwise; additionally fails
 * (false) on an index >= dict_size.
 */
template <typename Extract7>
inline bool
dictVarintBlock32(const uint8_t* in, size_t size, uint32_t cont, size_t& p,
                  const int64_t* dict, uint64_t dict_size, int64_t* out,
                  size_t& i, size_t count, Extract7 extract7)
{
    const uint32_t term = ~cont;  // bit k set: byte p+k terminates a varint
    if (term == 0) {
        uint64_t sink;  // > 10-byte varint: always rejected
        return decodeOneVarint(in, size, p, sink);
    }
    const auto decodeAt = [&](uint32_t& t, size_t& start, int64_t& slot) {
        const auto end = static_cast<size_t>(std::countr_zero(t));
        t &= t - 1;
        const size_t len = end - start + 1;
        uint64_t idx;
        if (len <= 8) [[likely]] {
            idx = extract7(load64le(in + p + start), kVarintKeep[len]);
        } else {
            size_t q = p + start;
            if (!decodeOneVarint(in, size, q, idx))
                return false;
        }
        if (idx >= dict_size)
            return false;
        slot = dict[idx];
        start = end + 1;
        return true;
    };
    const auto nvals = static_cast<size_t>(std::popcount(term));
    if (count - i < nvals) {  // page tail: plain capped chain
        const size_t take = count - i;
        uint32_t t = term;
        size_t start = 0;
        for (size_t k = 0; k < take; ++k) {
            if (!decodeAt(t, start, out[i + k]))
                return false;
        }
        i += take;
        p += start;
        return true;
    }
    // Two independent bit-scan chains, as in decodeVarintBlock32.
    uint32_t t_lo = term & 0xffffu;
    uint32_t t_hi = term & ~0xffffu;
    const auto n_lo = static_cast<size_t>(std::popcount(t_lo));
    size_t start_lo = 0;
    size_t start_hi =
        t_lo == 0 ? 0 : 32 - static_cast<size_t>(std::countl_zero(t_lo));
    for (size_t k = 0; k < n_lo; ++k) {
        if (!decodeAt(t_lo, start_lo, out[i + k]))
            return false;
    }
    for (size_t k = n_lo; k < nvals; ++k) {
        if (!decodeAt(t_hi, start_hi, out[i + k]))
            return false;
    }
    i += nvals;
    p += 32 - static_cast<size_t>(std::countl_zero(term));
    return true;
}

/**
 * Reference bit extraction: value @p width bits wide starting at
 * absolute bit offset @p bit, LSB-first. Reads only the bytes that
 * contain those bits.
 */
inline uint64_t
getBitsRef(const uint8_t* in, uint64_t bit, size_t width)
{
    uint64_t v = 0;
    for (size_t k = 0; k < width; ++k) {
        const uint64_t b = bit + k;
        v |= static_cast<uint64_t>((in[b >> 3] >> (b & 7)) & 1) << k;
    }
    return v;
}

// --- batch kernels (fast_decode.cc) --------------------------------------

/**
 * SWAR batch decode of @p count varints starting at @p pos (advanced on
 * success). @return false on malformed input.
 */
bool decodeVarintsSwar(const uint8_t* in, size_t size, size_t& pos,
                       uint64_t* out, size_t count);

/**
 * SWAR fused decode of @p count varint dictionary indices starting at
 * @p pos (advanced on success), writing dict[idx] to @p out. @return
 * false on malformed input or an index >= dict_size.
 */
bool decodeDictIndicesSwar(const uint8_t* in, size_t size, size_t& pos,
                           const int64_t* dict, uint64_t dict_size,
                           int64_t* out, size_t count);

/**
 * Unpack @p count @p width-bit values (LSB-first) from @p in, starting
 * at bit offset @p start_bit, via unaligned word windows with a
 * byte-exact tail. The caller guarantees the packed bits lie within
 * @p in_bytes.
 */
void unpackBitsWord(const uint8_t* in, size_t in_bytes, size_t width,
                    size_t count, uint64_t* out, uint64_t start_bit = 0);

/**
 * Replace @p count indices stored in @p inout (as uint64) with
 * dict[index]. @return false if any index >= dict_size (no writes are
 * lost on failure, but contents are unspecified).
 */
bool gatherDictScalar(const int64_t* dict, uint64_t dict_size,
                      int64_t* inout, size_t count);

#if defined(PRESTO_HAVE_X86_SIMD)
// --- AVX2 kernels (fast_decode_avx2.cc) ----------------------------------
bool decodeVarintsAvx2(const uint8_t* in, size_t size, size_t& pos,
                       uint64_t* out, size_t count);
bool decodeDictIndicesAvx2(const uint8_t* in, size_t size, size_t& pos,
                           const int64_t* dict, uint64_t dict_size,
                           int64_t* out, size_t count);
void unpackBitsAvx2(const uint8_t* in, size_t in_bytes, size_t width,
                    size_t count, uint64_t* out);
bool gatherDictAvx2(const int64_t* dict, uint64_t dict_size, int64_t* inout,
                    size_t count);

// --- AVX-512 kernels (fast_decode_avx512.cc) -----------------------------
// Requires the byte-compaction extensions (BW + VBMI + VBMI2) on top of
// SimdLevel::kAvx512 — see avx512ByteCompactionSupported(). 64-byte
// windows, vpcompressb boundary extraction, vpermb payload alignment.
bool decodeVarintsAvx512(const uint8_t* in, size_t size, size_t& pos,
                         uint64_t* out, size_t count);
#endif

// --- dispatched entry points used by encoding.cc -------------------------

/** Batch varint decode at the active SIMD level. */
bool decodeVarintsBatch(const uint8_t* in, size_t size, size_t& pos,
                        uint64_t* out, size_t count);

/** Fused index-decode + dictionary gather at the active SIMD level. */
bool decodeDictIndices(const uint8_t* in, size_t size, size_t& pos,
                       const int64_t* dict, uint64_t dict_size, int64_t* out,
                       size_t count);

/** Fixed-width unpack at the active SIMD level. */
void unpackBits(const uint8_t* in, size_t in_bytes, size_t width,
                size_t count, uint64_t* out);

/** In-place dictionary materialization at the active SIMD level. */
bool gatherDict(const int64_t* dict, uint64_t dict_size, int64_t* inout,
                size_t count);

}  // namespace presto::enc::detail

#endif  // PRESTO_COLUMNAR_FAST_DECODE_INTERNAL_H_
