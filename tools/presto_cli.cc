/**
 * @file
 * presto_cli — command-line front end for the PreSto library.
 *
 * Subcommands:
 *   gen <dir> --rm N [--partitions P] [--rows R] [--seed S]
 *       Synthesize a PSF dataset directory with a manifest.
 *   inspect <dir>
 *       Print the manifest and per-partition layout of a dataset.
 *   verify <dir>
 *       Re-read every partition, checking manifest CRCs and page CRCs.
 *   transform <dir> [--partition I]
 *       Run the standard Transform plan on one partition and summarize
 *       the train-ready tensors.
 *   decode <dir> [--partition I] [--reps N]
 *       Time page decode per (encoding, codec) bucket on one partition,
 *       reference vs. dispatched SIMD kernels, and report per-bucket
 *       stored/raw bytes, entropy-table overhead, and the achieved
 *       compression ratio.
 *   pages <dir> [--partition I] [--heat] [--channels C]
 *       List every page frame with its codec, stored size and stream
 *       heat; --heat additionally shows the frequency-aware channel
 *       placement (hot pages striped, cold streams contiguous) and the
 *       per-channel occupancy.
 *   provision --rm N [--gpus G]
 *       Print the T/P provisioning decision for a training job.
 *   io [--rm N] [--rows R] [--qd D] [--emulate-latency 0|1]
 *       Read one synthetic partition through the async IoRing
 *       (page-granular prefetch), differential-check it against the
 *       blocking reader, and print the ring's counters and latency
 *       percentiles.
 *   store <dir> [--demo N] [--verify 1] [--rm N] [--rows R]
 *       Open (recovering) a persistent segment store: print the
 *       recovery decisions, the segment manifest, and the journal
 *       records. --demo N first commits N synthetic partitions;
 *       --verify 1 re-checksums every page frame of every live
 *       segment.
 *   plan [--rm N] [--file F] [--emit-json]
 *       Compile a Transform plan and print the fused bytecode program's
 *       disassembly. Default: the standard plan for workload RM N.
 *       --file F parses a JSON plan document instead; --emit-json
 *       prints the plan back as canonical plan JSON (authoring
 *       round-trip) in place of the disassembly.
 *   serve [--rm N] [--epochs E] [--partitions P] [--rows R]
 *       Scripted demo of the multi-tenant ingestion service: publish E
 *       epochs of an in-memory catalog dataset, admit weighted tenants,
 *       reject an oversubscribed one with the admission reason, stream
 *       a few batches per tenant, and print per-session statistics.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cachesim/op_traces.h"
#include "columnar/columnar_file.h"
#include "columnar/dataset.h"
#include "columnar/entropy.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/isp_emulator.h"
#include "core/partition_store.h"
#include "core/provisioner.h"
#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"
#include "ops/plan_json.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"
#include "service/dataset_catalog.h"
#include "service/ingest_service.h"
#include "store/journal.h"
#include "store/segment_store.h"

using namespace presto;

namespace {

/** Tiny flag parser: --name value pairs after positional args. */
class Args
{
  public:
    Args(int argc, char** argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                // A flag followed by another flag (or nothing) is a
                // bare boolean switch, e.g. `pages <dir> --heat`.
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0) {
                    flags_.emplace_back(arg.substr(2), argv[i + 1]);
                    ++i;
                } else {
                    flags_.emplace_back(arg.substr(2), "1");
                }
            } else {
                positional_.push_back(std::move(arg));
            }
        }
    }

    long
    getInt(const std::string& name, long fallback) const
    {
        for (const auto& [k, v] : flags_) {
            if (k == name)
                return std::atol(v.c_str());
        }
        return fallback;
    }

    std::string
    getString(const std::string& name, std::string fallback) const
    {
        for (const auto& [k, v] : flags_) {
            if (k == name)
                return v;
        }
        return fallback;
    }

    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<std::string> positional_;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: presto_cli <command> [args]\n"
        "  gen <dir> --rm N [--partitions P] [--rows R] [--seed S]\n"
        "  inspect <dir>\n"
        "  verify <dir>\n"
        "  transform <dir> [--partition I] [--backend cpu|isp]\n"
        "  decode <dir> [--partition I] [--reps N]\n"
        "  pages <dir> [--partition I] [--heat] [--channels C]\n"
        "  provision --rm N [--gpus G]\n"
        "  io [--rm N] [--rows R] [--qd D] [--emulate-latency 0|1]\n"
        "  store <dir> [--demo N] [--verify 1] [--rm N] [--rows R]\n"
        "  plan [--rm N] [--file F] [--emit-json]\n"
        "  serve [--rm N] [--epochs E] [--partitions P] [--rows R]\n");
    return 2;
}

int
cmdGen(const Args& args)
{
    if (args.positional().empty())
        return usage();
    const std::string dir = args.positional()[0];
    const int rm = static_cast<int>(args.getInt("rm", 1));
    const long partitions = args.getInt("partitions", 4);
    const long rows = args.getInt("rows", 1024);
    const long seed = args.getInt("seed", 0x9e3779b9);

    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = static_cast<size_t>(rows);
    GeneratorOptions opts;
    opts.seed = static_cast<uint64_t>(seed);
    RawDataGenerator gen(cfg, opts);

    // Heat-annotated writes: the async reader stripes pages of hot
    // columns (per the cachesim access model) across flash channels.
    WriterOptions wopts;
    wopts.column_heat = columnAccessHeat(cfg);
    DatasetWriter writer(dir, wopts);
    for (long p = 0; p < partitions; ++p) {
        if (Status st = writer.addPartition(
                gen.generatePartition(static_cast<uint64_t>(p)),
                static_cast<uint64_t>(p));
            !st.ok()) {
            std::fprintf(stderr, "gen failed: %s\n", st.toString().c_str());
            return 1;
        }
    }
    if (Status st = writer.finish(); !st.ok()) {
        std::fprintf(stderr, "gen failed: %s\n", st.toString().c_str());
        return 1;
    }
    std::printf("wrote %ld partitions x %ld rows of %s into %s\n",
                partitions, rows, cfg.name.c_str(), dir.c_str());
    return 0;
}

int
cmdInspect(const Args& args)
{
    if (args.positional().empty())
        return usage();
    DatasetReader reader;
    if (Status st = reader.open(args.positional()[0]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    const auto& m = reader.manifest();
    std::printf("dataset: %llu partitions x %llu rows\n",
                static_cast<unsigned long long>(m.num_partitions),
                static_cast<unsigned long long>(m.rows_per_partition));
    TablePrinter table({"Partition", "File", "Bytes", "CRC32C"});
    for (const auto& e : m.partitions) {
        char crc[16];
        std::snprintf(crc, sizeof(crc), "%08x", e.crc);
        table.addRow({std::to_string(e.partition_id), e.file_name,
                      formatBytes(static_cast<double>(e.byte_size)), crc});
    }
    table.print();
    return 0;
}

int
cmdVerify(const Args& args)
{
    if (args.positional().empty())
        return usage();
    DatasetReader reader;
    if (Status st = reader.open(args.positional()[0]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    size_t ok_count = 0;
    for (size_t i = 0; i < reader.manifest().partitions.size(); ++i) {
        auto batch = reader.readPartition(i);
        if (!batch.ok()) {
            std::fprintf(stderr, "partition %zu: %s\n", i,
                         batch.status().toString().c_str());
            continue;
        }
        ++ok_count;
    }
    std::printf("%zu/%zu partitions verified (manifest CRC + page CRC + "
                "full decode)\n",
                ok_count, reader.manifest().partitions.size());
    return ok_count == reader.manifest().partitions.size() ? 0 : 1;
}

int
cmdTransform(const Args& args)
{
    if (args.positional().empty())
        return usage();
    const auto index = static_cast<size_t>(args.getInt("partition", 0));
    DatasetReader reader;
    if (Status st = reader.open(args.positional()[0]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    auto raw = reader.readPartition(index);
    if (!raw.ok()) {
        std::fprintf(stderr, "%s\n", raw.status().toString().c_str());
        return 1;
    }

    // Derive a config consistent with the stored schema.
    RmConfig cfg = rmConfig(1);
    cfg.num_dense = raw->schema().numDense();
    cfg.num_sparse = raw->schema().numSparse();
    cfg.num_generated = std::min(cfg.num_generated, cfg.num_dense);
    cfg.batch_size = raw->numRows();

    const std::string backend = args.getString("backend", "cpu");
    MiniBatch mb;
    if (backend == "isp") {
        // Run the FPGA-datapath emulator over the stored PSF bytes, the
        // way a SmartSSD would consume its local partition. Corruption
        // comes back as a Status instead of crashing the tool.
        if (index >= reader.manifest().partitions.size()) {
            std::fprintf(stderr, "no partition %zu\n", index);
            return 1;
        }
        const auto& entry = reader.manifest().partitions[index];
        auto bytes =
            loadFromFile(args.positional()[0] + "/" + entry.file_name);
        if (!bytes.ok()) {
            std::fprintf(stderr, "%s\n",
                         bytes.status().toString().c_str());
            return 1;
        }
        IspEmulator emulator(cfg);
        auto processed = emulator.process(*bytes);
        if (!processed.ok()) {
            std::fprintf(stderr, "isp transform failed: %s\n",
                         processed.status().toString().c_str());
            return 1;
        }
        mb = std::move(processed).value();
        std::printf("isp emulator: %u feature units engaged, %llu P2P "
                    "bytes, %llu buffer swaps\n",
                    emulator.counters().feature_units_used,
                    static_cast<unsigned long long>(
                        emulator.counters().p2p_bytes),
                    static_cast<unsigned long long>(
                        emulator.counters().buffer_swaps));
    } else if (backend == "cpu") {
        mb = Preprocessor(cfg).preprocess(*raw);
    } else {
        std::fprintf(stderr, "unknown backend: %s\n", backend.c_str());
        return usage();
    }
    std::printf("partition %zu -> %zu rows, %zu dense features, %zu "
                "embedding tables, %zu sparse indices, %s of tensors\n",
                index, mb.batch_size, mb.num_dense, mb.sparse.size(),
                mb.totalSparseValues(),
                formatBytes(static_cast<double>(mb.byteSize())).c_str());
    return 0;
}

int
cmdDecode(const Args& args)
{
    if (args.positional().empty())
        return usage();
    const auto index = static_cast<size_t>(args.getInt("partition", 0));
    const auto reps = static_cast<size_t>(args.getInt("reps", 5));
    DatasetReader reader;
    if (Status st = reader.open(args.positional()[0]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    if (index >= reader.manifest().partitions.size()) {
        std::fprintf(stderr, "no partition %zu\n", index);
        return 1;
    }
    const auto& entry = reader.manifest().partitions[index];
    auto bytes = loadFromFile(args.positional()[0] + "/" + entry.file_name);
    if (!bytes.ok()) {
        std::fprintf(stderr, "%s\n", bytes.status().toString().c_str());
        return 1;
    }
    ColumnarFileReader file;
    if (Status st = file.open(*bytes); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }

    // Bucket every page of every stream by (encoding, codec); the
    // payload spans point into `bytes`, which outlives the timing loops.
    struct Bucket {
        std::vector<PageView> pages;
        uint64_t values = 0;
        uint64_t stored_bytes = 0;  ///< on-disk (possibly compressed)
        uint64_t raw_bytes = 0;     ///< decompressed payload bytes
        uint64_t table_bytes = 0;   ///< entropy code-length table bytes
    };
    std::map<std::pair<Encoding, PageCodec>, Bucket> buckets;
    for (const auto& col : file.footer().columns) {
        for (const auto& stream : col.streams) {
            size_t pos = stream.offset;
            for (uint32_t pg = 0; pg < stream.num_pages; ++pg) {
                PageView page;
                if (Status st = readPageFrame(*bytes, pos, page);
                    !st.ok()) {
                    std::fprintf(stderr, "column %s: %s\n",
                                 col.name.c_str(), st.toString().c_str());
                    return 1;
                }
                Bucket& b = buckets[{page.encoding, page.codec}];
                b.pages.push_back(page);
                b.values += page.value_count;
                b.stored_bytes += page.payload.size();
                b.raw_bytes += page.raw_size;
                if (page.codec == PageCodec::kEntropy ||
                    page.codec == PageCodec::kLzEntropy) {
                    HuffStreamInfo info;
                    if (enc::huffStreamInfo(page.payload, info).ok())
                        b.table_bytes += info.table_bytes;
                }
            }
        }
    }

    // Best-of-reps wall time for one full pass over a bucket's pages
    // (decompress + decode: the work the Extract stage actually does).
    std::vector<float> f32;
    std::vector<int64_t> i64;
    std::vector<int64_t> dict;
    std::vector<uint8_t> decomp;
    const auto timeBucket = [&](Encoding e, const Bucket& b) -> double {
        double best = 0;
        for (size_t r = 0; r < reps; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            for (const PageView& page : b.pages) {
                std::span<const uint8_t> raw;
                Status st = pagePayload(page, decomp, raw);
                if (st.ok()) {
                    st = e == Encoding::kPlainF32
                             ? enc::decodeF32(e, raw, page.value_count,
                                              f32)
                             : enc::decodeI64(e, raw, page.value_count,
                                              i64, dict);
                }
                if (!st.ok()) {
                    std::fprintf(stderr, "decode failed: %s\n",
                                 st.toString().c_str());
                    std::exit(1);
                }
            }
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (r == 0 || dt.count() < best)
                best = dt.count();
        }
        return best;
    };

    std::printf("partition %zu (%s), simd level %s, best of %zu reps\n",
                index, entry.file_name.c_str(),
                simdLevelName(activeSimdLevel()), reps);
    TablePrinter table({"Encoding", "Codec", "Pages", "Values", "Stored",
                        "Raw", "Tbl", "Ratio", "Ref Mval/s",
                        "Fast Mval/s", "Speedup"});
    uint64_t stored_total = 0;
    uint64_t raw_total = 0;
    for (const auto& [key, bucket] : buckets) {
        const auto& [encoding, codec] = key;
        const bool prev = enc::setFastDecodeEnabled(false);
        const double ref = timeBucket(encoding, bucket);
        enc::setFastDecodeEnabled(true);
        const double fast = timeBucket(encoding, bucket);
        enc::setFastDecodeEnabled(prev);
        const double mvals = static_cast<double>(bucket.values) / 1e6;
        char ratio[32], ref_s[32], fast_s[32], speedup[32];
        std::snprintf(ratio, sizeof(ratio), "%.2fx",
                      static_cast<double>(bucket.raw_bytes) /
                          static_cast<double>(bucket.stored_bytes));
        std::snprintf(ref_s, sizeof(ref_s), "%.1f", mvals / ref);
        std::snprintf(fast_s, sizeof(fast_s), "%.1f", mvals / fast);
        std::snprintf(speedup, sizeof(speedup), "%.2fx", ref / fast);
        table.addRow(
            {encodingName(encoding), pageCodecName(codec),
             std::to_string(bucket.pages.size()),
             std::to_string(bucket.values),
             formatBytes(static_cast<double>(bucket.stored_bytes)),
             formatBytes(static_cast<double>(bucket.raw_bytes)),
             bucket.table_bytes == 0
                 ? std::string("-")
                 : formatBytes(static_cast<double>(bucket.table_bytes)),
             ratio, ref_s, fast_s, speedup});
        stored_total += bucket.stored_bytes;
        raw_total += bucket.raw_bytes;
    }
    table.print();
    std::printf("pages store %s for %s of encoded payload (%.2fx "
                "compression)\n",
                formatBytes(static_cast<double>(stored_total)).c_str(),
                formatBytes(static_cast<double>(raw_total)).c_str(),
                static_cast<double>(raw_total) /
                    static_cast<double>(stored_total));
    return 0;
}

int
cmdPages(const Args& args)
{
    if (args.positional().empty())
        return usage();
    const auto index = static_cast<size_t>(args.getInt("partition", 0));
    const bool heat_view = args.getInt("heat", 0) != 0;
    const int channels = static_cast<int>(args.getInt("channels", 4));
    DatasetReader reader;
    if (Status st = reader.open(args.positional()[0]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    if (index >= reader.manifest().partitions.size()) {
        std::fprintf(stderr, "no partition %zu\n", index);
        return 1;
    }
    const auto& entry = reader.manifest().partitions[index];
    auto bytes = loadFromFile(args.positional()[0] + "/" + entry.file_name);
    if (!bytes.ok()) {
        std::fprintf(stderr, "%s\n", bytes.status().toString().c_str());
        return 1;
    }
    ColumnarFileReader file;
    if (Status st = file.open(*bytes); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    std::vector<PageReadPlan> plans;
    if (Status st = file.planPageReads(plans); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    if (heat_view)
        assignChannelPlacement(file.footer(), channels, plans);

    std::printf("partition %zu (%s): %zu page frame(s)%s\n", index,
                entry.file_name.c_str(), plans.size(),
                heat_view ? ", heat-aware channel placement" : "");
    TablePrinter table(
        heat_view
            ? std::vector<std::string>{"Page", "Column", "Stream",
                                       "Codec", "Stored", "Heat",
                                       "Class", "Channel"}
            : std::vector<std::string>{"Page", "Column", "Stream",
                                       "Codec", "Stored", "Heat"});
    std::vector<uint64_t> hot_per_channel, cold_per_channel;
    if (heat_view && channels > 0) {
        hot_per_channel.assign(static_cast<size_t>(channels), 0);
        cold_per_channel.assign(static_cast<size_t>(channels), 0);
    }
    for (size_t i = 0; i < plans.size(); ++i) {
        const PageReadPlan& plan = plans[i];
        const ColumnMeta& col = file.footer().columns[plan.column];
        size_t pos = plan.offset;
        PageView page;
        if (Status st = readPageFrame(*bytes, pos, page); !st.ok()) {
            std::fprintf(stderr, "page %zu: %s\n", i,
                         st.toString().c_str());
            return 1;
        }
        std::vector<std::string> row{
            std::to_string(i), col.name,
            col.kind == FeatureKind::kSparse
                ? (plan.stream == 0 ? "lengths" : "values")
                : "values",
            pageCodecName(page.codec),
            formatBytes(static_cast<double>(plan.frame_bytes)),
            std::to_string(col.streams[plan.stream].heat)};
        if (heat_view) {
            row.push_back(plan.hot ? "hot" : "cold");
            row.push_back(plan.channel < 0 ? "-"
                                           : std::to_string(plan.channel));
            if (plan.channel >= 0 && plan.channel < channels) {
                auto& per = plan.hot ? hot_per_channel : cold_per_channel;
                ++per[static_cast<size_t>(plan.channel)];
            }
        }
        table.addRow(std::move(row));
    }
    table.print();

    if (heat_view && !hot_per_channel.empty()) {
        std::printf("\nchannel occupancy (hot pages striped round-robin, "
                    "cold streams contiguous):\n");
        TablePrinter occ({"Channel", "Hot Pages", "Cold Pages"});
        for (int c = 0; c < channels; ++c)
            occ.addRow({std::to_string(c),
                        std::to_string(
                            hot_per_channel[static_cast<size_t>(c)]),
                        std::to_string(
                            cold_per_channel[static_cast<size_t>(c)])});
        occ.print();
    }
    return 0;
}

int
cmdProvision(const Args& args)
{
    const int rm = static_cast<int>(args.getInt("rm", 5));
    const int gpus = static_cast<int>(args.getInt("gpus", 8));
    Provisioner prov(rmConfig(rm));
    const Provision cpu = prov.provisionCpu(gpus);
    const Provision isp = prov.provisionIsp(gpus, IspParams::smartSsd());
    std::printf("%s on %d GPU(s): demand %.1f batches/s\n",
                rmConfig(rm).name.c_str(), gpus,
                cpu.demand_batches_per_sec);
    std::printf("  Disagg CPU : %4d cores  (%.0f W, $%.0f over 3y)\n",
                cpu.workers, cpu.deployment.power_watts,
                cpu.deployment.totalCostDollars());
    std::printf("  PreSto     : %4d SmartSSDs (%.0f W, $%.0f over 3y)\n",
                isp.workers, isp.deployment.power_watts,
                isp.deployment.totalCostDollars());
    return 0;
}

int
cmdIo(const Args& args)
{
    const int rm = static_cast<int>(args.getInt("rm", 1));
    const long rows = args.getInt("rows", 65536);
    const auto qd = static_cast<size_t>(args.getInt("qd", 8));
    const bool emulate = args.getInt("emulate-latency", 1) != 0;
    if (rows <= 0 || qd == 0) {
        std::fprintf(stderr, "rows and qd must be positive\n");
        return usage();
    }

    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = static_cast<size_t>(rows);
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(0);

    ColumnarFileReader blocking;
    RowBatch expect;
    if (Status st = blocking.open(encoded); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    if (Status st = blocking.readAllInto(expect); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }

    IoRingOptions opt;
    opt.emulate_latency = emulate;
    IoRing ring(opt);
    AsyncReadOptions ropt;
    ropt.queue_depth = qd;
    AsyncPartitionReader reader(ring, ropt);
    RowBatch got;
    const auto t0 = std::chrono::steady_clock::now();
    if (Status st = reader.read(encoded, 0, got); !st.ok()) {
        std::fprintf(stderr, "async read failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (!(got == expect)) {
        std::fprintf(stderr,
                     "differential check FAILED: async batch differs "
                     "from blocking readAllInto\n");
        return 1;
    }

    const AsyncReadStats& rs = reader.lastReadStats();
    const IoRingStats stats = ring.statsSnapshot();
    std::printf("%s partition: %ld rows, %s encoded, %llu pages\n",
                cfg.name.c_str(), rows,
                formatBytes(static_cast<double>(encoded.size())).c_str(),
                static_cast<unsigned long long>(rs.pages));
    std::printf("async read: queue depth %zu, %d ring workers, "
                "latency emulation %s\n",
                qd, ring.options().workers, emulate ? "on" : "off");
    std::printf("differential check vs blocking readAllInto: OK "
                "(bit-identical)\n\n");

    TablePrinter table({"Counter", "Value"});
    table.addRow({"wall seconds", formatDouble(wall, 4)});
    table.addRow({"modeled storage seconds",
                  formatDouble(rs.modeled_storage_sec, 4)});
    table.addRow({"requests submitted",
                  std::to_string(stats.submitted)});
    table.addRow({"requests completed",
                  std::to_string(stats.completed)});
    table.addRow({"requests failed", std::to_string(stats.failed)});
    table.addRow({"device retries", std::to_string(stats.retries)});
    table.addRow({"corrupt page re-reads",
                  std::to_string(rs.corrupt_page_rereads)});
    table.addRow({"cq overflows", std::to_string(stats.cq_overflows)});
    table.addRow({"max in flight",
                  std::to_string(stats.max_in_flight)});
    table.addRow({"mean queue depth",
                  formatDouble(stats.queue_depth.mean(), 2)});
    table.addRow({"latency mean", formatTime(stats.latency.mean())});
    table.addRow({"latency p50",
                  formatTime(stats.latencyQuantile(0.50))});
    table.addRow({"latency p95",
                  formatTime(stats.latencyQuantile(0.95))});
    table.addRow({"latency p99",
                  formatTime(stats.latencyQuantile(0.99))});
    table.print();
    return 0;
}

int
cmdStore(const Args& args)
{
    if (args.positional().empty())
        return usage();
    const std::string dir = args.positional()[0];
    const long demo = args.getInt("demo", 0);
    const bool verify = args.getInt("verify", 0) != 0;

    SegmentStoreOptions opt;
    opt.directory = dir;
    RecoveryReport report;
    auto store = SegmentStore::open(opt, &report);
    if (!store.ok()) {
        std::fprintf(stderr, "store open failed: %s\n",
                     store.status().toString().c_str());
        return 1;
    }

    std::printf("store %s — recovery decisions:\n", dir.c_str());
    for (const std::string& line : report.decisions())
        std::printf("  %s\n", line.c_str());

    if (demo > 0) {
        RmConfig cfg = rmConfig(static_cast<int>(args.getInt("rm", 1)));
        cfg.batch_size = static_cast<size_t>(args.getInt("rows", 1024));
        RawDataGenerator gen(cfg);
        for (long p = 0; p < demo; ++p) {
            auto id = (*store)->appendPartition(
                gen.generatePartition(static_cast<uint64_t>(p)),
                static_cast<uint64_t>(p));
            if (!id.ok()) {
                std::fprintf(stderr, "append failed: %s\n",
                             id.status().toString().c_str());
                return 1;
            }
        }
        std::printf("committed %ld demo partition(s) of %s\n", demo,
                    cfg.name.c_str());
    }

    const auto segments = (*store)->listSegments();
    TablePrinter table({"Segment", "Partition", "State", "Bytes", "Rows",
                        "Pages", "CRC32C"});
    for (const SegmentInfo& info : segments) {
        char crc[16];
        std::snprintf(crc, sizeof(crc), "%08x", info.meta.file_crc);
        table.addRow(
            {std::to_string(info.meta.segment_id),
             std::to_string(info.meta.partition_id),
             info.state == SegmentState::kQuarantined
                 ? std::string(segmentStateName(info.state)) + " (" +
                       info.quarantine_reason + ")"
                 : segmentStateName(info.state),
             formatBytes(static_cast<double>(info.meta.byte_size)),
             std::to_string(info.meta.num_rows),
             std::to_string(info.meta.plans.size()), crc});
    }
    table.print();

    // The journal, record by record — the store's source of truth.
    auto bytes = loadFromFile((*store)->journalPath());
    if (!bytes.ok()) {
        std::fprintf(stderr, "cannot read journal: %s\n",
                     bytes.status().toString().c_str());
        return 1;
    }
    JournalReplay replay;
    if (Status st = replayJournal(*bytes, replay); !st.ok()) {
        std::fprintf(stderr, "journal replay failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    std::printf("\njournal: %zu byte(s), %zu record(s)\n", bytes->size(),
                replay.records.size());
    for (size_t i = 0; i < replay.records.size(); ++i) {
        const JournalRecord& rec = replay.records[i];
        const uint64_t id = rec.kind == JournalRecordKind::kSegmentSealed
                                ? rec.meta.segment_id
                                : rec.segment_id;
        std::printf("  #%zu %-9s", i, journalRecordKindName(rec.kind));
        if (rec.kind == JournalRecordKind::kCheckpoint)
            std::printf(" next-id=%llu",
                        static_cast<unsigned long long>(
                            rec.next_segment_id));
        else
            std::printf(" segment=%llu",
                        static_cast<unsigned long long>(id));
        if (rec.kind == JournalRecordKind::kSegmentSealed)
            std::printf(" partition=%llu bytes=%llu pages=%zu",
                        static_cast<unsigned long long>(
                            rec.meta.partition_id),
                        static_cast<unsigned long long>(
                            rec.meta.byte_size),
                        rec.meta.plans.size());
        if (rec.kind == JournalRecordKind::kSegmentCompacted)
            std::printf(" into=%llu", static_cast<unsigned long long>(
                                          rec.new_segment_id));
        if (rec.kind == JournalRecordKind::kSegmentQuarantined)
            std::printf(" reason=\"%s\"", rec.reason.c_str());
        std::printf("\n");
    }

    if (verify) {
        // Full re-checksum: every page frame of every live segment.
        uint64_t total_pages = 0;
        for (const SegmentInfo& info : segments) {
            if (info.state == SegmentState::kSealed ||
                info.state == SegmentState::kCompacted)
                total_pages += info.meta.plans.size();
        }
        auto verified = (*store)->scrubSome(
            static_cast<size_t>(total_pages) + 1);
        if (!verified.ok()) {
            std::fprintf(stderr, "scrub failed: %s\n",
                         verified.status().toString().c_str());
            return 1;
        }
        std::printf("\nverify: %llu/%llu page frame(s) passed CRC\n",
                    static_cast<unsigned long long>(*verified),
                    static_cast<unsigned long long>(total_pages));
        for (const SegmentInfo& info : (*store)->listSegments()) {
            if (info.state == SegmentState::kQuarantined)
                std::printf("  segment %llu quarantined: %s\n",
                            static_cast<unsigned long long>(
                                info.meta.segment_id),
                            info.quarantine_reason.c_str());
        }
        if (*verified != total_pages)
            return 1;
    }
    return 0;
}

int
cmdPlan(const Args& args)
{
    const int rm = static_cast<int>(args.getInt("rm", 1));
    const bool emit_json = args.getInt("emit-json", 0) != 0;
    const RmConfig cfg = rmConfig(rm);
    const std::string file = args.getString("file", "");

    TransformPlan plan;
    std::string origin;
    if (!file.empty()) {
        auto bytes = loadFromFile(file);
        if (!bytes.ok()) {
            std::fprintf(stderr, "%s\n",
                         bytes.status().toString().c_str());
            return 1;
        }
        auto parsed = parsePlanJson(std::string_view(
            reinterpret_cast<const char*>(bytes->data()), bytes->size()));
        if (!parsed.ok()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 1;
        }
        plan = std::move(parsed).value();
        origin = file;
    } else {
        plan = TransformPlan::standard(cfg);
        origin = "standard plan for " + cfg.name;
    }

    if (emit_json) {
        std::fputs(planToJson(plan).c_str(), stdout);
        return 0;
    }

    // Validate against the RM schema, then compile and disassemble.
    const Schema schema =
        Schema::makeRecSys(cfg.num_dense, cfg.num_sparse);
    if (Status st = plan.validate(schema); !st.ok()) {
        std::fprintf(stderr, "plan invalid against %s schema: %s\n",
                     cfg.name.c_str(), st.toString().c_str());
        return 1;
    }
    const PlanExecutor executor(plan, schema);
    std::printf("%s (%s schema), compiled\n", origin.c_str(),
                cfg.name.c_str());
    std::fputs(executor.program().disassemble().c_str(), stdout);
    return 0;
}

int
cmdServe(const Args& args)
{
    const int rm = static_cast<int>(args.getInt("rm", 1));
    const long epochs = args.getInt("epochs", 2);
    const long partitions = args.getInt("partitions", 4);
    const long rows = args.getInt("rows", 512);
    const long batches = args.getInt("batches", 3);

    DatasetSpec spec;
    spec.name = "clicklog";
    spec.config = rmConfig(rm);
    spec.config.batch_size = static_cast<size_t>(rows);
    spec.partitions_per_epoch = static_cast<size_t>(partitions);
    spec.shards = 2;
    DatasetCatalog catalog;
    if (Status st = catalog.registerDataset(spec); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    for (long e = 0; e < epochs; ++e) {
        auto epoch = catalog.publishEpoch("clicklog");
        if (!epoch.ok()) {
            std::fprintf(stderr, "publish failed: %s\n",
                         epoch.status().toString().c_str());
            return 1;
        }
        std::printf("published epoch %llu (%ld partitions x %ld rows of "
                    "%s across %zu shards)\n",
                    static_cast<unsigned long long>(*epoch), partitions,
                    rows, spec.config.name.c_str(), spec.shards);
    }

    ServiceOptions options;
    options.workers = 2;
    options.service_sec_override = 0.050;
    IngestService service(catalog, options);

    // Two well-behaved tenants at different weights, one oversubscribed
    // tenant the admission controller must turn away with a reason.
    TenantSpec heavy;
    heavy.name = "ranker";
    heavy.dataset = "clicklog";
    heavy.weight = 2.0;
    heavy.slo_p99_sec = 1.0;
    heavy.peak_batches_per_sec = 8.0;
    TenantSpec light = heavy;
    light.name = "retrieval";
    light.weight = 1.0;
    light.slo_p99_sec = 2.0;
    light.peak_batches_per_sec = 6.0;
    light.epoch = 1;  // pinned one epoch behind the head
    TenantSpec hog = heavy;
    hog.name = "firehose";
    hog.peak_batches_per_sec = 200.0;

    std::vector<uint64_t> sessions;
    for (const TenantSpec* tenant : {&heavy, &light}) {
        auto session = service.openSession(*tenant);
        if (!session.ok()) {
            std::fprintf(stderr, "open %s failed: %s\n",
                         tenant->name.c_str(),
                         session.status().toString().c_str());
            return 1;
        }
        std::printf("admitted %-9s weight %.0f, epoch %llu, session %llu\n",
                    tenant->name.c_str(), tenant->weight,
                    static_cast<unsigned long long>(
                        tenant->epoch == 0 ? *catalog.headEpoch("clicklog")
                                           : tenant->epoch),
                    static_cast<unsigned long long>(*session));
        sessions.push_back(*session);
    }
    auto rejected = service.openSession(hog);
    if (rejected.ok()) {
        std::fprintf(stderr, "expected the oversubscribed tenant to be "
                             "rejected\n");
        return 1;
    }
    std::printf("rejected %-9s %s\n", hog.name.c_str(),
                rejected.status().message().c_str());

    for (const uint64_t session : sessions) {
        for (long i = 0; i < batches; ++i) {
            auto batch = service.nextBatch(session);
            if (!batch.ok()) {
                std::fprintf(stderr, "nextBatch failed: %s\n",
                             batch.status().toString().c_str());
                return 1;
            }
            std::printf("session %llu batch %llu: epoch %llu partition "
                        "%llu, %zu rows, %s of tensors\n",
                        static_cast<unsigned long long>(session),
                        static_cast<unsigned long long>(batch->sequence),
                        static_cast<unsigned long long>(batch->epoch),
                        static_cast<unsigned long long>(
                            batch->partition_index),
                        batch->batch->batch_size,
                        formatBytes(static_cast<double>(
                                        batch->batch->byteSize()))
                            .c_str());
        }
    }

    std::printf("\nper-session statistics:\n");
    TablePrinter table({"Tenant", "Epoch", "Produced", "Delivered",
                        "Queue Cap", "Max Queue", "Svc Est"});
    for (const SessionStats& s : service.allSessionStats()) {
        table.addRow({s.tenant, std::to_string(s.epoch),
                      std::to_string(s.produced),
                      std::to_string(s.delivered),
                      std::to_string(s.queue_capacity),
                      std::to_string(s.max_queue_occupancy),
                      formatTime(s.service_sec_estimate)});
    }
    table.print();
    for (const uint64_t session : sessions) {
        if (Status st = service.closeSession(session); !st.ok()) {
            std::fprintf(stderr, "close failed: %s\n",
                         st.toString().c_str());
            return 1;
        }
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const Args args(argc, argv);
    const std::string cmd = argv[1];
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "inspect")
        return cmdInspect(args);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "transform")
        return cmdTransform(args);
    if (cmd == "decode")
        return cmdDecode(args);
    if (cmd == "pages")
        return cmdPages(args);
    if (cmd == "provision")
        return cmdProvision(args);
    if (cmd == "io")
        return cmdIo(args);
    if (cmd == "store")
        return cmdStore(args);
    if (cmd == "plan")
        return cmdPlan(args);
    if (cmd == "serve")
        return cmdServe(args);
    return usage();
}
