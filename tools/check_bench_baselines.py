#!/usr/bin/env python3
"""Diff a bench run's gate results against the committed baseline.

Each measurement-grade bench emits a JSON report whose *gate* subtrees
(keys named "gate" or "gates", plus top-level "*_ok" booleans) encode
the pass/fail claims the repo stands behind — BENCH_service.json's
retention-footprint and tiering gates, BENCH_fused.json's differential
gate, BENCH_decode.json's entropy-page gates. Timings drift with the
runner; gates must not. CI runs every bench with --quick, tees the JSON
next to the build, and calls this script to compare the gate subtrees
against the committed BENCH_*.json baselines:

    tools/check_bench_baselines.py BENCH_service.json /tmp/service.json

Exit status: 0 when every gate subtree matches the baseline, 1 on any
drift (a regressed gate, a silently dropped gate, or a new gate that
should be baselined by re-committing the BENCH file).
"""

import json
import sys


def gate_subtrees(node, path=""):
    """Yield (path, subtree) for every gate-bearing key, recursively."""
    if not isinstance(node, dict):
        return
    for key, value in node.items():
        here = f"{path}/{key}"
        if key in ("gate", "gates") or (
            path == "" and key.endswith("_ok")
        ):
            yield here, value
        else:
            yield from gate_subtrees(value, here)


def flatten(tree, path=""):
    """Flatten a gate subtree into {leaf_path: scalar}."""
    if isinstance(tree, dict):
        out = {}
        for key, value in tree.items():
            out.update(flatten(value, f"{path}/{key}"))
        return out
    return {path or "/": tree}


def compare(baseline_path, current_path):
    with open(baseline_path) as f:
        baseline = dict(gate_subtrees(json.load(f)))
    with open(current_path) as f:
        current = dict(gate_subtrees(json.load(f)))

    base_flat = {}
    for path, tree in baseline.items():
        base_flat.update(flatten(tree, path))
    cur_flat = {}
    for path, tree in current.items():
        cur_flat.update(flatten(tree, path))

    drift = []
    for path in sorted(base_flat.keys() | cur_flat.keys()):
        want = base_flat.get(path)
        got = cur_flat.get(path)
        if want == got:
            continue
        if path not in cur_flat:
            drift.append(f"  {path}: gate dropped (baseline: {want!r})")
        elif path not in base_flat:
            drift.append(
                f"  {path}: new gate {got!r} — re-commit the baseline"
            )
        else:
            drift.append(f"  {path}: baseline {want!r} -> run {got!r}")
    return base_flat, drift


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    base_flat, drift = compare(baseline_path, current_path)
    if not base_flat:
        print(f"{baseline_path}: no gate subtrees — nothing to check")
        return 0
    if drift:
        print(f"GATE DRIFT vs {baseline_path}:")
        print("\n".join(drift))
        return 1
    print(
        f"{baseline_path}: {len(base_flat)} gate value(s) match the run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
